"""Before/after timings for the columnar SfM core.

The registration phase of Algorithm 1 (``add_photos`` + ``model()`` +
the SOR filter) used to be O(model) per batch: every pending photo was
re-tested against a per-feature dict every fixpoint round, triangulation
scanned the whole observation table, ``model()`` rebuilt the point cloud
from per-point Python objects, and the SOR filter re-queried a fresh
KD-tree over the entire cloud. The columnar engine keys all four off the
batch *delta* (dense interning + vectorized bitmask registration, the
wavefront, O(delta) snapshots, cached-kNN SOR).

This bench records one guided fig10 campaign's exact SfM event stream
(photo batches + artificial-feature registrations, captured by wrapping
the live engine), then replays it twice — once through the preserved
``full_rebuild=True`` from-scratch path, once through the columnar path —
timing the full registration-phase composition per batch and asserting
inline that both replays stay bit-identical. The committed artefacts are
``benchmarks/results/perf_sfm_core.txt`` (human-readable table) and
``benchmarks/results/BENCH_sfm.json`` (machine-readable, schema
``repro.bench.sfm/v1``, validated by CI).

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI): a short campaign, no
artefact writes, equivalence + schema assertions only — shared-runner
timing is too noisy for a speedup floor.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.eval import Workbench
from repro.obs.bench import assert_valid_bench_sfm, bench_sfm_document, write_bench_sfm
from repro.sfm import IncrementalSfm, IncrementalSorFilter, sor_filter
from repro.simkit import RngStream

from .conftest import write_result

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Late-campaign window (ISSUE acceptance: batch >= 40 on the full run).
LATE_FROM_BATCH = 4 if SMOKE else 40
MAX_TASKS = 20 if SMOKE else 120
TARGET_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def recorded_events():
    """One guided campaign with the engine's SfM event stream captured."""
    bench = Workbench.for_library()
    pipeline = bench.make_pipeline()
    engine = pipeline.sfm
    events = []
    orig_add = engine.add_photos
    orig_register = engine.register_artificial_features

    def recording_add(photos):
        batch = list(photos)
        events.append(("add", batch))
        return orig_add(batch)

    def recording_register(ids, positions):
        ids, positions = [int(f) for f in ids], list(positions)
        events.append(("artificial", ids, positions))
        return orig_register(ids, positions)

    engine.add_photos = recording_add
    engine.register_artificial_features = recording_register
    campaign = bench.make_guided_campaign(pipeline, 10)
    campaign.run(max_tasks=MAX_TASKS)
    n_batches = sum(1 for e in events if e[0] == "add")
    assert n_batches > LATE_FROM_BATCH + 2, "campaign too short to compare"
    return bench, events


def _replay(bench, events, full_rebuild):
    """Replay the event stream, timing the registration-phase composition.

    Per batch: ``add_photos`` + ``model()`` + SOR filter — exactly what
    ``SnapTaskPipeline.process_batch`` runs before the map merge.
    """
    cfg = bench.config.sfm
    engine = IncrementalSfm(
        bench.world, cfg, RngStream(31337, "sfm-perf-replay"), full_rebuild=full_rebuild
    )
    sor = IncrementalSorFilter(cfg.sor_neighbors, cfg.sor_std_ratio)
    rows = []
    for event in events:
        if event[0] == "artificial":
            engine.register_artificial_features(event[1], event[2])
            continue
        batch = event[1]
        t0 = time.perf_counter()
        report = engine.add_photos(batch)
        model = engine.model()
        if full_rebuild:
            filtered = sor_filter(model.cloud, cfg.sor_neighbors, cfg.sor_std_ratio)
        else:
            filtered = sor.filter(model.cloud)
        ms = (time.perf_counter() - t0) * 1e3
        rows.append(
            {
                "ms": ms,
                "points": len(model.cloud),
                "cameras": model.n_cameras,
                "pending": report.still_pending,
                "report": report,
                "filtered": filtered,
            }
        )
    return rows


def test_perf_columnar_vs_scratch(recorded_events, results_dir):
    bench, events = recorded_events
    scratch = _replay(bench, events, full_rebuild=True)
    columnar = _replay(bench, events, full_rebuild=False)
    assert len(scratch) == len(columnar)

    # Inline differential oracle: the replay being timed is the replay
    # being verified — per-batch reports and filtered clouds bit-identical.
    for s, c in zip(scratch, columnar):
        assert s["report"] == c["report"]
        np.testing.assert_array_equal(
            s["filtered"].feature_ids, c["filtered"].feature_ids
        )
        np.testing.assert_array_equal(s["filtered"].xyz, c["filtered"].xyz)
        np.testing.assert_array_equal(
            s["filtered"].view_counts, c["filtered"].view_counts
        )

    batches = [
        {
            "batch": i + 1,
            "points": s["points"],
            "cameras": s["cameras"],
            "pending": s["pending"],
            "scratch_ms": round(s["ms"], 3),
            "incremental_ms": round(c["ms"], 3),
            "speedup": round(s["ms"] / max(c["ms"], 1e-9), 2),
        }
        for i, (s, c) in enumerate(zip(scratch, columnar))
    ]
    late = [row for row in batches if row["batch"] >= LATE_FROM_BATCH]
    late_scratch = sum(row["scratch_ms"] for row in late)
    late_columnar = sum(row["incremental_ms"] for row in late)
    late_speedup = late_scratch / max(late_columnar, 1e-9)
    summary = {
        "late_from_batch": LATE_FROM_BATCH,
        "late_batches": len(late),
        "late_scratch_ms": round(late_scratch, 3),
        "late_incremental_ms": round(late_columnar, 3),
        "late_speedup": round(late_speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
    }
    campaign = {
        "command": "bench:perf-sfm",
        "max_tasks": MAX_TASKS,
        "batches": len(batches),
        "smoke": SMOKE,
    }

    # The document must satisfy the in-repo schema in both modes.
    assert_valid_bench_sfm(bench_sfm_document(batches, summary, campaign))

    if SMOKE:
        return  # equivalence + schema only; no artefacts, no timing floor

    rows = [
        "batch  points  cameras  pending  scratch_ms  incremental_ms  speedup",
        "-----  ------  -------  -------  ----------  --------------  -------",
    ]
    for row in late:
        rows.append(
            f"{row['batch']:5d}  {row['points']:6d}  {row['cameras']:7d}  "
            f"{row['pending']:7d}  {row['scratch_ms']:10.2f}  "
            f"{row['incremental_ms']:14.2f}  {row['speedup']:6.1f}x"
        )
    total_scratch = sum(row["scratch_ms"] for row in batches)
    total_columnar = sum(row["incremental_ms"] for row in batches)
    rows.append("")
    rows.append(
        f"late batches (>= {LATE_FROM_BATCH}): scratch {late_scratch:.1f} ms vs "
        f"columnar {late_columnar:.1f} ms ({late_speedup:.1f}x)"
    )
    rows.append(
        f"full campaign ({len(batches)} batches): scratch {total_scratch:.1f} ms "
        f"vs columnar {total_columnar:.1f} ms "
        f"({total_scratch / max(total_columnar, 1e-9):.1f}x)"
    )
    write_result(results_dir, "perf_sfm_core", "\n".join(rows))
    write_bench_sfm(
        results_dir / "BENCH_sfm.json", batches, summary, campaign
    )

    # Acceptance criterion (ISSUE): >= 3x on the late-campaign window,
    # where the asymptotic O(model)-vs-O(delta) gap dominates.
    assert late_speedup >= TARGET_SPEEDUP, (
        f"late-campaign speedup {late_speedup:.2f}x below the "
        f"{TARGET_SPEEDUP:.1f}x target"
    )
