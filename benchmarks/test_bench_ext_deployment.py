"""Extension bench: deployment scaling (client/server system behaviour).

The paper's deployment is a distributed system (Sec. III); this bench
measures the system-level quantity the paper leaves implicit: how the
campaign makespan and backend load change with the number of concurrent
mobile clients. The finding: with the
paper's MAX_TASKS = 1 ("currently we generate 1 task at a time per
participant"), the campaign is inherently *serial* — the backend emits one
follow-up task per processed batch, so extra clients add polling and
longer walks (the task lands on whichever phone asks first) without adding
throughput. Scaling the fleet requires raising MAX_TASKS, which the paper
leaves as a parameter.
"""

from repro.eval import Workbench
from repro.server import Deployment

from .conftest import write_result

SIM_HORIZON_S = 12_000.0


def test_ext_deployment_scaling(benchmark, results_dir):
    def scale():
        rows = []
        for n_clients in (1, 2, 4):
            deployment = Deployment(Workbench.for_library(), n_clients=n_clients)
            report = deployment.run(until_s=SIM_HORIZON_S)
            bench = deployment._bench  # noqa: SLF001 - bench introspection
            coverage = 100.0 * report.coverage_cells / bench.ground_truth.region_cells
            rows.append(
                (
                    n_clients,
                    report.tasks_completed,
                    report.photos_uploaded,
                    coverage,
                    report.total_traffic_mb,
                )
            )
        return rows

    rows = benchmark.pedantic(scale, rounds=1, iterations=1)

    lines = [
        f"Extension: deployment scaling at a fixed {SIM_HORIZON_S:.0f} s horizon",
        "",
        f"{'clients':>8} {'tasks':>6} {'photos':>7} {'coverage %':>11} {'traffic MB':>11}",
    ]
    for n_clients, tasks, photos, coverage, traffic in rows:
        lines.append(
            f"{n_clients:>8} {tasks:>6} {photos:>7} {coverage:>10.2f}% {traffic:>11.0f}"
        )
    by_clients = {r[0]: r for r in rows}
    lines.append("")
    lines.append(
        "with MAX_TASKS=1 the campaign is serial: one follow-up task per "
        "processed batch, so adding clients does not add throughput — it "
        "only spreads the same task stream over more (and farther) phones."
    )
    write_result(results_dir, "ext_deployment_scaling", "\n".join(lines))

    # The serialisation finding: task throughput does not scale with the
    # fleet, and coverage stays in the same band.
    assert by_clients[4][1] <= by_clients[1][1] * 1.2
    assert abs(by_clients[4][3] - by_clients[1][3]) < 8.0
