"""Perf bench: recovery-ladder cost as a function of fallback depth.

One persisted campaign retains every checkpoint generation; the bench
then forces recovery at every rung of the ladder — damaging the newest
``depth`` generations' seals so verification quarantines them — and
measures what each extra rung of fallback costs: a longer WAL-suffix
replay and its wall time, *and nothing else* (every rung must recover
the identical logical state digest, which is also asserted).

Results go to ``BENCH_recovery.json`` (``repro.bench.recovery/v1``,
CI-validated): one row per depth, with the genesis-vs-newest replay and
wall amplification in the summary — the headline "what does keeping
fewer generations cost at recovery time" number for tuning
``--snapshot-retain``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI): a smaller venue with
a shallower ladder, same artefacts, no floor assertions beyond digest
equality.
"""

import os

from repro.obs.bench import write_bench_recovery
from repro.obs.wallclock import wall_now_s
from repro.persist import RecoveryManager, Snapshotter
from repro.testkit import Scenario

from .conftest import write_result

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: A two-client campaign over a venue large enough for a deep ladder
#: (~14 generations, ~300 WAL records at full size).
SCENARIO = Scenario(
    seed=7,
    n_clients=2,
    venue_width_m=12.0 if SMOKE else 16.0,
    venue_depth_m=10.0 if SMOKE else 12.0,
    persist=True,
    snapshot_every=1,
    snapshot_retain=999,  # keep the whole ladder
)


def _fork_store(host) -> Snapshotter:
    """A store whose retained-generation list is private to the fork.

    Seal damage replaces frozen ``Snapshot`` entries in the fork's list
    only; the state graphs stay shared (recovery deep-copies before
    installing, and the bench never tampers with state).
    """
    source = host.snapshotter
    store = Snapshotter(
        host.wal, every_batches=source.every_batches, retain=source.retain
    )
    store._snapshots = list(reversed(source.generations()))
    store._next_seq = source.taken
    return store


def test_bench_recovery(benchmark, results_dir):
    deployment = SCENARIO.make_deployment()
    report = deployment.run(
        until_s=SCENARIO.until_s, max_events=SCENARIO.max_events
    )
    assert report.venue_covered
    host = deployment.host
    generations = host.snapshotter.generations()  # newest first
    assert len(generations) >= 3, "venue too small for a ladder sweep"

    def sweep():
        rows = []
        digests = set()
        for depth in range(len(generations)):
            store = _fork_store(host)
            for snap in generations[:depth]:
                store.damage_seal(snap.seq, b"")
            t0 = wall_now_s()
            result = RecoveryManager(host.wal, store).recover(deployment.simulator)
            wall = wall_now_s() - t0
            result.server.fence()
            digests.add(result.digest)
            rows.append(
                {
                    "depth": depth,
                    "snapshot_seq": result.snapshot_seq,
                    "generations_tried": result.generations_tried,
                    "quarantined": len(result.quarantined_seqs),
                    "quarantined_bytes": result.quarantined_bytes,
                    "replayed_records": result.replayed_records,
                    "wall_s": round(wall, 6),
                }
            )
        return rows, digests

    rows, digests = benchmark.pedantic(sweep, rounds=1, iterations=1)

    newest, genesis = rows[0], rows[-1]
    assert genesis["snapshot_seq"] == 0  # the deepest rung is genesis
    replay_amp = genesis["replayed_records"] / max(newest["replayed_records"], 1)
    wall_amp = genesis["wall_s"] / max(newest["wall_s"], 1e-9)
    digest_identical = len(digests) == 1

    lines = [
        "Perf: recovery-ladder cost vs fallback depth",
        f"({len(generations)} generations, {host.wal.position} WAL records, "
        f"venue {SCENARIO.venue_width_m:.0f}x{SCENARIO.venue_depth_m:.0f}m, "
        f"{SCENARIO.n_clients} clients)",
        "",
        "depth  seq  replayed  wall_s",
    ] + [
        f"{r['depth']:5d}  {r['snapshot_seq']:3d}  {r['replayed_records']:8d}"
        f"  {r['wall_s']:.3f}"
        for r in rows
    ] + [
        "",
        f"replay amplification (genesis/newest): {replay_amp:.1f}x",
        f"wall amplification   (genesis/newest): {wall_amp:.2f}x",
        f"identical recovered digest at every rung: {digest_identical}",
    ]
    write_result(results_dir, "recovery_ladder", "\n".join(lines))

    summary = {
        "generations": len(generations),
        "wal_records": host.wal.position,
        "newest_replayed_records": newest["replayed_records"],
        "genesis_replayed_records": genesis["replayed_records"],
        "newest_wall_s": newest["wall_s"],
        "genesis_wall_s": genesis["wall_s"],
        "replay_amplification": round(replay_amp, 3),
        "wall_amplification": round(wall_amp, 3),
        "digest_identical": digest_identical,
    }
    write_bench_recovery(
        results_dir / "BENCH_recovery.json",
        rows,
        summary,
        campaign={
            "seed": SCENARIO.seed,
            "n_clients": SCENARIO.n_clients,
            "venue_width_m": SCENARIO.venue_width_m,
            "venue_depth_m": SCENARIO.venue_depth_m,
            "smoke": SMOKE,
        },
    )

    # The ladder's whole contract: deeper rungs replay more, recover the
    # same state. Wall amplification has no floor (replay is cheap
    # relative to server construction on small campaigns).
    assert digest_identical
    replays = [r["replayed_records"] for r in rows]
    assert replays == sorted(replays), replays
    assert genesis["replayed_records"] == host.wal.position
