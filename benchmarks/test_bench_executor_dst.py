"""Perf bench: the parallel campaign executor vs the serial fuzz loop.

Runs the same fuzz batch twice — ``jobs=1`` (the serial loop) and
``jobs=N`` (the seed-sharded process pool) — and records wall clock,
per-worker busy time, and the byte-equality of the two summaries in
``BENCH_dst.json`` (``repro.bench.dst/v1``, CI-validated).

Two speedups are recorded (see ``bench_dst_document``):

* ``wall_speedup`` — measured serial/parallel wall ratio, which is only
  meaningful when the generating host actually has >= ``jobs`` cores
  (``cpu_count`` is recorded alongside so consumers can tell);
* ``critical_path_speedup`` — total worker shard CPU seconds divided by
  the busiest worker lane's CPU seconds, i.e. the speedup the sharding
  itself achieves on sufficient cores. Lane busy time is accounted with
  ``time.process_time`` inside each worker, so it is immune to host
  contention: on an unloaded >= ``jobs``-core host the two speedups
  coincide; on a 1-core container only the second is attainable.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI): fewer campaigns and
2 workers, same artefacts, no speedup floor.
"""

import json
import os

from repro.obs.bench import write_bench_dst
from repro.obs.wallclock import wall_now_s
from repro.testkit.executor import ExecutorStats
from repro.testkit.fuzzer import run_fuzz

from .conftest import write_result

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

CAMPAIGNS = 6 if SMOKE else 40
JOBS = 2 if SMOKE else 4
# Seed 2's batch is clean and well-balanced (40 passing campaigns, the
# longest ~9% of total CPU), so the measured speedup reflects the
# executor rather than one monster shard. Seed 0's batch contains a
# 447 s failing campaign (invariant:admission-bound at index 26, shrink
# included) that alone bounds any whole-campaign sharding to 1.4x —
# see ROADMAP.md for the open finding.
MASTER_SEED = 2
TARGET_SPEEDUP = 2.5  # at 4 workers on >= 4 cores


def _run(jobs, stats=None):
    lines = []
    t0 = wall_now_s()
    summary = run_fuzz(
        campaigns=CAMPAIGNS,
        master_seed=MASTER_SEED,
        check_determinism=False,
        jobs=jobs,
        stats=stats,
        progress=lines.append,
    )
    return wall_now_s() - t0, summary, lines


def test_bench_executor_dst(benchmark, results_dir):
    def both():
        serial_wall, serial_summary, serial_lines = _run(jobs=1)
        stats = ExecutorStats()
        parallel_wall, parallel_summary, parallel_lines = _run(jobs=JOBS, stats=stats)
        return (
            serial_wall,
            serial_summary,
            serial_lines,
            parallel_wall,
            parallel_summary,
            parallel_lines,
            stats,
        )

    (
        serial_wall,
        serial_summary,
        serial_lines,
        parallel_wall,
        parallel_summary,
        parallel_lines,
        stats,
    ) = benchmark.pedantic(both, rounds=1, iterations=1)

    byte_identical = (
        serial_lines == parallel_lines
        and json.dumps(serial_summary.to_dict(), sort_keys=True)
        == json.dumps(parallel_summary.to_dict(), sort_keys=True)
    )
    cpu_count = os.cpu_count() or 1
    wall_speedup = serial_wall / parallel_wall if parallel_wall > 0 else 1.0
    critical_path_speedup = stats.balance_speedup

    ran = serial_summary.passed + len(serial_summary.failures)
    lines = [
        "Perf: seed-sharded parallel campaign executor (DST fuzz batch)",
        f"({CAMPAIGNS} campaigns, master seed {MASTER_SEED}, "
        f"{JOBS} workers, host cpu_count={cpu_count})",
        "",
        f"serial   (--jobs 1):  {serial_wall:8.2f} s wall",
        f"parallel (--jobs {JOBS}):  {parallel_wall:8.2f} s wall "
        f"({wall_speedup:.2f}x measured)",
        f"worker CPU total:     {stats.total_busy_s:8.2f} s across "
        f"{stats.workers_spawned} workers",
        f"critical path (CPU):  {stats.critical_path_s:8.2f} s "
        f"({critical_path_speedup:.2f}x at >= {JOBS} cores)",
        f"byte-identical output: {byte_identical}",
        "",
        "campaigns shard by the existing per-seed derivation and merge in "
        "index order, so --jobs changes wall clock only: summaries, labels "
        "and progress lines are byte-identical either way.",
    ]
    write_result(results_dir, "executor_dst", "\n".join(lines))

    runs = [
        {
            "mode": "serial",
            "jobs": 1,
            "wall_s": round(serial_wall, 3),
            "campaigns": ran,
            "passed": serial_summary.passed,
            "failed": len(serial_summary.failures),
            "checks_run": serial_summary.checks_run,
        },
        {
            "mode": "parallel",
            "jobs": JOBS,
            "wall_s": round(parallel_wall, 3),
            "campaigns": parallel_summary.passed + len(parallel_summary.failures),
            "passed": parallel_summary.passed,
            "failed": len(parallel_summary.failures),
            "checks_run": parallel_summary.checks_run,
        },
    ]
    summary = {
        "campaigns": CAMPAIGNS,
        "jobs": JOBS,
        "cpu_count": cpu_count,
        "serial_wall_s": round(serial_wall, 3),
        "parallel_wall_s": round(parallel_wall, 3),
        "wall_speedup": round(wall_speedup, 3),
        "total_busy_s": round(stats.total_busy_s, 3),
        "critical_path_s": round(stats.critical_path_s, 3),
        "critical_path_speedup": round(critical_path_speedup, 3),
        "target_speedup": TARGET_SPEEDUP,
        "byte_identical": byte_identical,
    }
    write_bench_dst(
        results_dir / "BENCH_dst.json",
        runs,
        summary,
        campaign={
            "master_seed": MASTER_SEED,
            "check_determinism": False,
            "smoke": SMOKE,
        },
    )

    # Determinism is unconditional; speedup floors depend on the regime.
    assert byte_identical
    assert stats.worker_crashes == 0
    if not SMOKE:
        # The sharding itself must beat the target at JOBS workers; the
        # measured wall ratio must too whenever the host has the cores.
        assert critical_path_speedup >= TARGET_SPEEDUP, summary
        if cpu_count >= JOBS:
            assert wall_speedup >= TARGET_SPEEDUP, summary
