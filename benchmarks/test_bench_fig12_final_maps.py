"""Fig. 12 — final visibility/obstacle maps of the three approaches vs GT.

The paper's qualitative claims for this figure:
* baselines miss parts of the outer wall, notably the glass region;
* "a room in a top right corner was visited by very few participants" in
  the unguided dataset;
* "only our guided approach was able to pinpoint the missing glass wall
  locations and ... complete the wall boundary there."
"""

import numpy as np

from repro.mapping import CoverageMaps, Grid2D, render_ascii

from .conftest import write_result


def _annex_coverage(bench, maps: CoverageMaps) -> float:
    """Covered fraction of the top-right annex room."""
    spec = maps.spec
    covered = maps.covered_mask() & bench.ground_truth.region_mask
    region = bench.ground_truth.region_mask.copy()
    rows, cols = np.nonzero(region)
    xs = spec.origin_x + (cols + 0.5) * spec.cell_size_m
    ys = spec.origin_y + (rows + 0.5) * spec.cell_size_m
    in_annex = (xs > 16.0) & (ys > 14.0)
    annex_cells = list(zip(rows[in_annex], cols[in_annex]))
    if not annex_cells:
        return 0.0
    hit = sum(1 for cell in annex_cells if covered[cell])
    return hit / len(annex_cells)


def _glass_bounds_percent(bench, maps: CoverageMaps) -> float:
    """Reconstructed fraction of the glass outer walls only."""
    from repro.mapping import outer_bounds_report

    report = outer_bounds_report(bench.venue, maps.obstacles)
    glass = [(label, got, total) for label, got, total in report.per_wall if "glass" in label]
    total = sum(t for _l, _g, t in glass)
    got = sum(g for _l, g, _t in glass)
    return 100.0 * got / total if total else 0.0


def test_fig12_final_maps(
    benchmark, guided_result, unguided_result, opportunistic_result, results_dir
):
    bench, guided = guided_result

    def assemble():
        return {
            "SnapTask": guided.final_maps,
            "Unguided participatory": unguided_result.final_maps,
            "Opportunistic": opportunistic_result.final_maps,
        }

    final_maps = benchmark.pedantic(assemble, rounds=1, iterations=1)

    gt_grid = bench.ground_truth.obstacles_grid()
    gt_visibility = Grid2D(bench.spec)
    gt_visibility.data[bench.ground_truth.traversable_mask] = 1.0
    final_maps["Ground truth"] = CoverageMaps(gt_grid, gt_visibility)

    lines = ["Fig. 12 — final maps (ASCII: '#' obstacles, '.' visible)", ""]
    stats = {}
    for label, maps in final_maps.items():
        lines.append(f"--- {label} ---")
        lines.append(render_ascii(maps, bench.ground_truth.region_mask, max_width=90))
        if label != "Ground truth":
            stats[label] = (
                _annex_coverage(bench, maps),
                _glass_bounds_percent(bench, maps),
            )
        lines.append("")

    lines.append(f"{'approach':>24} {'annex covered':>14} {'glass bounds':>13}")
    for label, (annex, glass) in stats.items():
        lines.append(f"{label:>24} {100 * annex:>13.1f}% {glass:>12.1f}%")
    write_result(results_dir, "fig12_final_maps", "\n".join(lines))

    # The paper's qualitative claims.
    assert stats["SnapTask"][0] > stats["Unguided participatory"][0]
    assert stats["SnapTask"][1] > stats["Unguided participatory"][1]
    assert stats["SnapTask"][1] > stats["Opportunistic"][1]
