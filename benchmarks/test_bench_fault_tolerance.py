"""Extension bench: campaign robustness under network faults and dropouts.

The paper's field deployment ran over real Wi-Fi with real volunteers
(Sec. V-B) but reports nothing about loss, retransmission, or worker
abandonment. This bench sweeps message-drop probability (with a fixed
duplicate rate and one mid-campaign client dropout) over the fault-
tolerant protocol and measures what the faults cost: extra sim-time to
the same coverage, retries, lease reaps/requeues, and traffic overhead
from retransmitted uploads.

The three sweep points are independent deployments, so they fan out
across the executor pool (``benchmarks/sweep.py``); each payload ships
the report plus the task-ledger summary the no-leaked-tasks assertions
need.

Finding: task leases + idempotent retransmission keep the campaign
converging to full venue coverage under 20% message loss; the cost is
bounded traffic overhead and a longer makespan, never a lost task.
"""

from .conftest import write_result
from .sweep import run_deployment_sweep

SIM_HORIZON_S = 60_000.0
DUPLICATE_P = 0.05
DROPOUT_AT_S = 1_000.0  # client-1 walks away mid-campaign in every run
N_CLIENTS = 3

DROPS = (0.0, 0.1, 0.2)


def test_bench_fault_tolerance_sweep(benchmark, results_dir):
    specs = [
        {
            "n_clients": N_CLIENTS,
            "drop_probability": drop,
            "duplicate_probability": DUPLICATE_P,
            "dropouts": {"client-1": DROPOUT_AT_S},
            "until_s": SIM_HORIZON_S,
            "max_events": 500_000,
        }
        for drop in DROPS
    ]

    def sweep():
        return dict(zip(DROPS, run_deployment_sweep(specs)))

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline = results[0.0]["report"]
    lines = [
        "Extension: fault-tolerant protocol under message loss",
        f"(duplicate_p={DUPLICATE_P}, {N_CLIENTS} clients, client-1 drops out "
        f"at {DROPOUT_AT_S:.0f} s, horizon {SIM_HORIZON_S:.0f} s)",
        "",
        f"{'drop':>5} {'covered':>8} {'lost':>5} {'dup':>4} "
        f"{'retries':>8} {'requeued':>9} {'reaped':>7} {'traffic MB':>11} "
        f"{'overhead':>9}",
    ]
    for drop, payload in sorted(results.items()):
        report = payload["report"]
        overhead = report["total_traffic_mb"] / baseline["total_traffic_mb"] - 1.0
        lines.append(
            f"{drop:>5.2f} {str(report['venue_covered']):>8} "
            f"{report['messages_lost']:>5} {report['messages_duplicated']:>4} "
            f"{report['client_retries']:>8} {report['tasks_requeued']:>9} "
            f"{report['leases_expired']:>7} {report['total_traffic_mb']:>11.0f} "
            f"{overhead:>8.1%}"
        )
    lines.append("")
    lines.append(
        "leases + idempotent retransmission absorb loss, duplication and an "
        "abandoning worker: every sweep point reaches full venue coverage "
        "and every recorded task ends completed or failed — none leak."
    )
    write_result(results_dir, "ext_fault_tolerance", "\n".join(lines))

    for drop, payload in results.items():
        report = payload["report"]
        statuses = payload["tasks_by_status"]
        # The headline guarantee: coverage is reached despite the faults...
        assert report["venue_covered"], f"campaign stalled at drop={drop}"
        # ...and no task is permanently lost: every recorded task reached a
        # terminal state (completed/failed) or sits pending for pickup.
        assert sum(statuses.values()) == payload["recorded_tasks"]
        assert statuses.get("assigned", 0) == 0
        assert report["dropouts"] == 1
        if drop > 0.0:
            assert report["messages_lost"] > 0
            assert report["client_retries"] > 0

    # Faults cost bounded overhead, not runaway retransmission storms.
    worst = results[0.2]["report"]
    assert worst["total_traffic_mb"] <= baseline["total_traffic_mb"] * 2.0
    assert worst["client_retries"] >= results[0.1]["report"]["client_retries"]
