"""Extension bench: participant selection & incentives (paper future work).

"We plan to integrate incentive mechanisms and location-based participant
selection into SnapTask to further improve the efficiency in data
collection" (Sec. VII). This bench replays the guided campaign's actual
task-location stream under three selection policies and reports the
travel and incentive-cost savings that location-based selection buys.
"""

from repro.crowd import (
    BudgetGreedyPolicy,
    NearestIdlePolicy,
    RoundRobinPolicy,
    make_participants,
    replay_task_locations,
)
from repro.geometry import Vec2
from repro.simkit import RngStream

from .conftest import write_result


def test_ext_participant_selection(benchmark, guided_result, results_dir):
    bench, guided = guided_result
    locations = [Vec2(x, y) for _kind, x, y in guided.task_locations]
    participants = make_participants(10, RngStream(61, "selection-cohort"))
    hotspots = list(bench.venue.hotspots)
    starts = [hotspots[i % len(hotspots)].position for i in range(len(participants))]

    def run_policies():
        reports = {}
        for policy in (RoundRobinPolicy(), NearestIdlePolicy(), BudgetGreedyPolicy()):
            reports[policy.name] = replay_task_locations(
                locations,
                participants,
                starts,
                policy,
                base_reward=1.0,
                rng=RngStream(62, "selection-rates"),
            )
        return reports

    reports = benchmark.pedantic(run_policies, rounds=1, iterations=1)

    lines = [
        "Extension: location-based participant selection + incentives",
        f"(replaying the guided campaign's {len(locations)} task locations)",
        "",
        f"{'policy':>14} {'assigned':>9} {'walk m':>8} {'mean m':>7} {'paid':>8}",
    ]
    for name, report in reports.items():
        lines.append(
            f"{name:>14} {report.assignments:>9} {report.total_distance_m:>8.1f} "
            f"{report.mean_distance_m:>7.2f} {report.total_paid:>8.2f}"
        )
    rr = reports["round-robin"]
    nearest = reports["nearest-idle"]
    greedy = reports["budget-greedy"]
    savings_walk = 100.0 * (1.0 - nearest.total_distance_m / rr.total_distance_m)
    savings_paid = 100.0 * (1.0 - greedy.total_paid / rr.total_paid)
    lines.append("")
    lines.append(f"nearest-idle walk-distance saving vs round-robin: {savings_walk:.1f}%")
    lines.append(f"budget-greedy incentive saving vs round-robin:    {savings_paid:.1f}%")
    write_result(results_dir, "ext_selection", "\n".join(lines))

    assert nearest.total_distance_m < rr.total_distance_m
    assert greedy.total_paid <= rr.total_paid + 1e-9
    assert all(r.assignments == len(locations) for r in reports.values())
