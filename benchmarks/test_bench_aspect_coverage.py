"""Aspect coverage (Fig. 4) across the three collection approaches.

"In order to fully cover a particular aspect, one has to take photos or
videos that would cover all sides of that aspect" — the property the
guided 360° capture is designed for. This bench computes, for each
approach's final model, how many distinct viewing directions cover each
cell and what fraction of the venue is seen from >= 4 of 8 directions.
"""

from repro.mapping.aspects import calculate_aspect_coverage

from .conftest import write_result


def test_aspect_coverage(
    benchmark, guided_result, unguided_result, opportunistic_result, results_dir
):
    bench, guided = guided_result

    def compute():
        results = {}
        for label, final_maps, model in (
            ("SnapTask", guided.final_maps, guided.run.completed[-1].outcome.model),
            ("Unguided participatory", unguided_result.final_maps, unguided_result.final_model),
            ("Opportunistic", opportunistic_result.final_maps, opportunistic_result.final_model),
        ):
            results[label] = calculate_aspect_coverage(
                model,
                final_maps.obstacles,
                bench.config.sfm.visibility_range_m,
            )
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    region = bench.ground_truth.region_mask

    lines = [
        "Aspect coverage (Fig. 4 concept): directions each cell is seen from",
        "",
        f"{'approach':>24} {'>=1 dir':>9} {'>=4 dirs':>9} {'mean dirs':>10}",
    ]
    stats = {}
    for label, aspects in results.items():
        any_f = aspects.fully_covered_fraction(region, min_aspects=1)
        full_f = aspects.fully_covered_fraction(region, min_aspects=4)
        mean_a = aspects.mean_aspects(region)
        stats[label] = (any_f, full_f, mean_a)
        lines.append(
            f"{label:>24} {100 * any_f:>8.2f}% {100 * full_f:>8.2f}% {mean_a:>10.2f}"
        )
    lines.append("")
    lines.append(
        "guided collection guarantees breadth (>=1 direction almost "
        "everywhere); the unguided baseline's hotspot redundancy yields "
        "high aspect counts only where it covers at all, and opportunistic "
        "trails on both."
    )
    write_result(results_dir, "aspect_coverage", "\n".join(lines))

    assert stats["SnapTask"][1] > stats["Opportunistic"][1]
    assert stats["SnapTask"][2] > 2.0
