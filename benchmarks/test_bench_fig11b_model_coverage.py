"""Fig. 11b — model coverage (obstacles + visibility) vs input photos.

Paper reference points: opportunistic peaks at 63.67 %, unguided
participatory converges around 500 photos at 77.4 %, SnapTask expands
gradually to 98.12 %. The reproduction must preserve the ordering and the
baselines' plateau behaviour.
"""

from repro.eval import format_series_rows

from .conftest import write_result

PAPER = {"SnapTask": 98.12, "Unguided participatory": 77.4, "Opportunistic": 63.67}


def test_fig11b_model_coverage(
    benchmark, guided_result, unguided_result, opportunistic_result, results_dir
):
    _bench, guided = guided_result

    def collect():
        return {
            "SnapTask": guided.series,
            "Unguided participatory": unguided_result.series,
            "Opportunistic": opportunistic_result.series,
        }

    series = benchmark.pedantic(collect, rounds=1, iterations=1)

    lines = ["Fig. 11b — model coverage (% of ground-truth cells)", ""]
    for label, s in series.items():
        lines.append(format_series_rows(s))
        lines.append("")
    finals = {label: s.final.coverage_percent for label, s in series.items()}
    lines.append(f"{'approach':>24} {'final %':>9} {'paper %':>9}")
    for label, value in finals.items():
        lines.append(f"{label:>24} {value:>8.2f}% {PAPER[label]:>8.2f}%")

    # Plateau check for the unguided baseline ("converges at around 500
    # images"): the last 300 photos add little coverage.
    unguided_series = series["Unguided participatory"]
    at_500 = [
        s.coverage_percent
        for s in unguided_series.samples
        if s.n_photos >= 500
    ]
    plateau_gain = (at_500[-1] - at_500[0]) if len(at_500) >= 2 else 0.0
    lines.append("")
    lines.append(f"unguided plateau gain past 500 photos: {plateau_gain:.2f} points")
    write_result(results_dir, "fig11b_model_coverage", "\n".join(lines))

    assert finals["SnapTask"] > finals["Unguided participatory"]
    assert finals["Unguided participatory"] > finals["Opportunistic"]
    assert plateau_gain < 12.0
