"""Observability overhead: telemetry-on vs telemetry-off wall time.

The obs subsystem's contract (DESIGN.md "Observability") is that it is
cheap enough to leave always-on and *free* when disabled: the null sinks
cost one attribute lookup per instrumented site, and a live bundle
should stay under ~5% wall-time on the full deployment campaign (the
same client/server run the fig10-style growth measurements exercise:
event loop + network + protocol + Algorithm-1 pipeline, every layer
instrumented).

The hard assertion here is deliberately lenient (CI machines are noisy
and the campaign is seconds long, so a single GC pause moves percent
figures); the <5% target is what ``benchmarks/results/
perf_obs_overhead.txt`` tracks over time. The *correctness* half of the
contract — identical campaign outputs with tracing on or off — is
pinned exactly in ``tests/test_obs_differential.py``.
"""

import time

from repro.config import paper_config
from repro.eval import Workbench
from repro.obs import Telemetry
from repro.obs.bench import write_bench_pipeline
from repro.server import Deployment

from .conftest import write_result

UNTIL_S = 2000.0
N_CLIENTS = 2
ROUNDS = 3

#: Documented target for a live bundle; tracked, not hard-asserted.
TARGET_OVERHEAD_PCT = 5.0
#: Hard ceiling: catches a pathological regression (e.g. an O(n) scan on
#: the hot path) without flaking on scheduler noise.
HARD_CEILING_PCT = 40.0


def _run_campaign(telemetry):
    bench = Workbench.for_library(paper_config())
    deployment = Deployment(bench, n_clients=N_CLIENTS, telemetry=telemetry)
    t0 = time.perf_counter()
    report = deployment.run(until_s=UNTIL_S)
    return time.perf_counter() - t0, report


def _best_of(n, telemetry_factory):
    times = []
    report = None
    last_telemetry = None
    for _ in range(n):
        last_telemetry = telemetry_factory()
        dt, report = _run_campaign(last_telemetry)
        times.append(dt)
    return min(times), report, last_telemetry


def test_bench_obs_overhead(results_dir):
    off_s, report_off, _ = _best_of(ROUNDS, lambda: None)
    on_s, report_on, telemetry = _best_of(ROUNDS, Telemetry.enable)

    # Inertness first: overhead numbers are meaningless if the runs
    # diverged (also pinned, more thoroughly, by the differential test).
    assert report_on.events_processed == report_off.events_processed
    assert report_on.coverage_cells == report_off.coverage_cells

    overhead_pct = (on_s - off_s) / off_s * 100.0
    tracer = telemetry.tracer
    spans = tracer.finished_count
    rows = [
        "observability overhead on the deployment campaign "
        f"({N_CLIENTS} clients, until_s={UNTIL_S:.0f}, best of {ROUNDS})",
        f"telemetry off (null sinks): {off_s * 1e3:9.1f} ms",
        f"telemetry on  (live bundle): {on_s * 1e3:9.1f} ms",
        f"overhead: {overhead_pct:+.2f}%  (target < {TARGET_OVERHEAD_PCT:.0f}%, "
        f"hard ceiling {HARD_CEILING_PCT:.0f}%)",
        f"spans recorded: {spans} (dropped: {tracer.dropped_spans}); "
        f"metrics: {len(telemetry.metrics.names())}",
        f"events processed (identical on/off): {report_on.events_processed}",
    ]
    write_result(results_dir, "perf_obs_overhead", "\n".join(rows))

    write_bench_pipeline(
        results_dir / "BENCH_pipeline.json",
        telemetry.metrics,
        campaign={
            "command": "bench:obs-overhead",
            "clients": N_CLIENTS,
            "until_s": UNTIL_S,
            "sim_time_s": report_on.sim_time_s,
            "events_processed": report_on.events_processed,
            "tasks_completed": report_on.tasks_completed,
            "venue_covered": report_on.venue_covered,
            "wall_s_telemetry_on": round(on_s, 4),
            "wall_s_telemetry_off": round(off_s, 4),
            "overhead_pct": round(overhead_pct, 2),
        },
    )

    assert spans > 0
    assert overhead_pct < HARD_CEILING_PCT
