"""Shared fixtures for the benchmark harness.

The three campaigns (guided / unguided / opportunistic) are expensive, so
they run once per session and are shared by every figure/table bench.
Each bench writes the rows it regenerates to ``benchmarks/results/`` so
the paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from
the files.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval import (
    Workbench,
    run_guided_experiment,
    run_opportunistic_experiment,
    run_unguided_experiment,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    # Also echo to the terminal for interactive runs.
    print(f"\n=== {name} ===\n{text}")


@pytest.fixture(scope="session")
def guided_result():
    bench = Workbench.for_library()
    return bench, run_guided_experiment(bench, max_tasks=120)


@pytest.fixture(scope="session")
def unguided_result():
    return run_unguided_experiment(Workbench.for_library())


@pytest.fixture(scope="session")
def opportunistic_result():
    return run_opportunistic_experiment(Workbench.for_library())
