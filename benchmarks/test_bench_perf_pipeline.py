"""Performance of the computational kernels.

The paper motivates guided collection partly by compute cost: "SfM
algorithms are highly compute intensive with an exponentially increasing
processing time" (Sec. II-A), so redundant crowdsourced photos directly
waste backend resources. These benches time the simulator's kernels —
capture, registration, map building, outlier filtering — per batch.
"""

import numpy as np
import pytest

from repro.camera import GALAXY_S7, CameraPose
from repro.eval import Workbench
from repro.geometry import Vec2
from repro.mapping import calculate_obstacles_map, calculate_visibility_map
from repro.sfm import IncrementalSfm, sor_filter
from repro.simkit import RngStream


@pytest.fixture(scope="module")
def perf_bench():
    return Workbench.for_library()


@pytest.fixture(scope="module")
def perf_model(perf_bench):
    engine = IncrementalSfm(
        perf_bench.world, perf_bench.config.sfm, RngStream(31, "perf")
    )
    for center in [(3, 3), (8, 3.7), (13, 6.4), (10.7, 12.2)]:
        engine.add_photos(
            list(perf_bench.capture.sweep(Vec2(*center), GALAXY_S7, 8.0, blur=0.0))
        )
    return engine.model()


def test_perf_capture_single_photo(benchmark, perf_bench):
    pose = CameraPose.at(10.0, 1.7, -1.57)
    benchmark(
        perf_bench.capture.take_photo, pose, GALAXY_S7, 0.05
    )


def test_perf_sfm_register_sweep(benchmark, perf_bench):
    """Registering one 45-photo 360-degree batch into a fresh model."""

    def build_and_register():
        engine = IncrementalSfm(
            perf_bench.world, perf_bench.config.sfm, RngStream(32, "perf-reg")
        )
        photos = list(
            perf_bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0)
        )
        return engine.add_photos(photos).total_points

    result = benchmark.pedantic(build_and_register, rounds=3, iterations=1)
    assert result > 100


def test_perf_obstacles_map(benchmark, perf_bench, perf_model):
    cloud = sor_filter(perf_model.cloud)
    grid = benchmark(calculate_obstacles_map, cloud, perf_bench.spec, 4)
    assert grid.nonzero_count() > 0


def test_perf_visibility_map(benchmark, perf_bench, perf_model):
    obstacles = calculate_obstacles_map(perf_model.cloud, perf_bench.spec, 4)
    grid = benchmark(
        calculate_visibility_map,
        perf_model,
        obstacles,
        perf_bench.config.sfm.visibility_range_m,
    )
    assert grid.nonzero_count() > 0


def test_perf_sor_filter(benchmark, perf_model):
    filtered = benchmark(sor_filter, perf_model.cloud)
    assert len(filtered) > 0


def test_perf_dbscan(benchmark):
    from repro.annotation import dbscan

    rng = np.random.default_rng(0)
    points = np.vstack(
        [rng.normal(c, 20.0, size=(60, 2)) for c in ((0, 0), (500, 500), (900, 100))]
    )
    labels = benchmark(dbscan, points, 60.0, 4)
    assert labels.max() >= 2


def test_perf_kmeans(benchmark):
    from repro.annotation import kmeans

    rng = np.random.default_rng(1)
    points = np.vstack(
        [rng.normal(c, 15.0, size=(60, 2)) for c in ((0, 0), (300, 0), (300, 300), (0, 300))]
    )
    result = benchmark(kmeans, points, 4, RngStream(1, "perf-km"))
    assert result.centroids.shape == (4, 2)
