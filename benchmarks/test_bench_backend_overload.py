"""Extension bench: backend overload under a bounded SfM lane.

The paper's backend processes every upload the moment it arrives — an
infinite-server model with no queueing and no admission control. This
bench sweeps the SfM lane shape (worker count x admission-queue bound)
over one crowded deployment (four clients fed from a parallel task
stream) and measures what finite capacity costs: queue wait folded into
batch completion, shed uploads, client backpressure retries, and the
campaign outcome.

The four lane shapes are independent deployments, so they fan out
across the executor pool (``benchmarks/sweep.py``); a checkpoint-copy
microbench on a real exported state graph records what the structured
fast copy (``persist/fastcopy.py``) saves per snapshot versus
``copy.deepcopy``.

Rows encode the lane shape with ``workers=0`` for the infinite-server
model and ``queue_limit=-1`` for an unbounded admission queue (JSON has
no ``None``). Results land in ``overload_backend.txt`` (human-readable)
and ``BENCH_backend.json`` (``repro.bench.backend/v1``, CI-validated).

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI): a shorter horizon,
same sweep, same artefacts.
"""

import copy
import os

from repro.config import paper_config
from repro.eval import Workbench
from repro.obs.bench import write_bench_backend
from repro.obs.wallclock import wall_now_s
from repro.persist.fastcopy import fast_deepcopy
from repro.persist.snapshot import structural_size
from repro.server import Deployment

from .conftest import write_result
from .sweep import run_deployment_sweep

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SIM_HORIZON_S = 1_500.0 if SMOKE else 4_000.0
N_CLIENTS = 4
MAX_TASKS = 3  # parallel task stream: several clients upload concurrently

#: (sfm_workers, queue_limit) lane shapes; None/None is today's model.
SWEEP = ((None, None), (2, None), (1, None), (1, 0))

CHECKPOINT_REPS = 3 if SMOKE else 10


def _row(workers, queue_limit, report):
    return {
        "workers": 0 if workers is None else workers,
        "queue_limit": -1 if queue_limit is None else queue_limit,
        "sim_time_s": round(report["sim_time_s"], 3),
        "tasks_completed": report["tasks_completed"],
        "photos_uploaded": report["photos_uploaded"],
        "batches_shed": report["batches_shed"],
        "client_backpressure": report["client_backpressure"],
        "queue_wait_s": round(report["sfm_queue_wait_s"], 6),
        "peak_queue_depth": report["sfm_peak_queue_depth"],
        "service_time_s": round(report["sfm_service_time_s"], 6),
    }


def _checkpoint_copy_times():
    """Time one real checkpoint copy: fast_deepcopy vs copy.deepcopy.

    Uses the state graph a crowded deployment actually exports (the same
    object the Snapshotter copies), so the datapoint measures the copy
    the durability lane pays on every snapshot cadence.
    """
    deployment = Deployment(
        Workbench.for_library(paper_config()), n_clients=N_CLIENTS
    )
    deployment.run(until_s=SIM_HORIZON_S / 2, max_events=250_000)
    server = deployment.server
    with server.pipeline.compact_history():
        state = server.export_state()
        t0 = wall_now_s()
        for _ in range(CHECKPOINT_REPS):
            slow = copy.deepcopy(state)
        deepcopy_s = (wall_now_s() - t0) / CHECKPOINT_REPS
        t0 = wall_now_s()
        for _ in range(CHECKPOINT_REPS):
            fast = fast_deepcopy(state)
        fastcopy_s = (wall_now_s() - t0) / CHECKPOINT_REPS
    # Both copies must capture the same logical state.
    assert structural_size(fast) == structural_size(slow) == structural_size(state)
    return deepcopy_s, fastcopy_s


def test_bench_backend_overload_sweep(benchmark, results_dir):
    specs = [
        {
            "n_clients": N_CLIENTS,
            "max_tasks": MAX_TASKS,
            "sfm_workers": workers,
            "sfm_queue_limit": queue_limit,
            "until_s": SIM_HORIZON_S,
            "max_events": 500_000,
        }
        for workers, queue_limit in SWEEP
    ]

    def sweep():
        payloads = run_deployment_sweep(specs)
        return {
            shape: payload["report"]
            for shape, payload in zip(SWEEP, payloads)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    deepcopy_s, fastcopy_s = _checkpoint_copy_times()
    copy_speedup = deepcopy_s / fastcopy_s if fastcopy_s > 0 else 1.0

    baseline = results[(None, None)]
    lines = [
        "Extension: bounded SfM lane under a crowded deployment",
        f"({N_CLIENTS} clients, max_tasks={MAX_TASKS}, horizon "
        f"{SIM_HORIZON_S:.0f} s; workers=inf is the paper's model)",
        "",
        f"{'workers':>7} {'qlimit':>6} {'tasks':>6} {'photos':>7} "
        f"{'shed':>5} {'backpr':>7} {'q wait s':>9} {'peak q':>7}",
    ]
    rows = []
    for (workers, queue_limit), report in results.items():
        w = "inf" if workers is None else str(workers)
        q = "inf" if queue_limit is None else str(queue_limit)
        lines.append(
            f"{w:>7} {q:>6} {report['tasks_completed']:>6} "
            f"{report['photos_uploaded']:>7} {report['batches_shed']:>5} "
            f"{report['client_backpressure']:>7} {report['sfm_queue_wait_s']:>9.2f} "
            f"{report['sfm_peak_queue_depth']:>7}"
        )
        rows.append(_row(workers, queue_limit, report))
    lines.append("")
    lines.append(
        "finite capacity folds queue wait into completion (workers=1), and "
        "a zero-length admission queue converts that wait into shed uploads "
        "the clients absorb with retry_after backoff — the campaign keeps "
        "converging either way."
    )
    lines.append("")
    lines.append(
        f"checkpoint copy of one exported state graph "
        f"({CHECKPOINT_REPS} reps): copy.deepcopy {deepcopy_s * 1e3:.2f} ms, "
        f"fast_deepcopy {fastcopy_s * 1e3:.2f} ms ({copy_speedup:.2f}x)"
    )
    write_result(results_dir, "overload_backend", "\n".join(lines))

    summary = {
        "rows": len(rows),
        "baseline_tasks_completed": baseline["tasks_completed"],
        "max_queue_wait_s": round(
            max(r["sfm_queue_wait_s"] for r in results.values()), 6
        ),
        "total_shed": sum(r["batches_shed"] for r in results.values()),
        "checkpoint_deepcopy_ms": round(deepcopy_s * 1e3, 3),
        "checkpoint_fastcopy_ms": round(fastcopy_s * 1e3, 3),
        "checkpoint_copy_speedup": round(copy_speedup, 3),
    }
    write_bench_backend(
        results_dir / "BENCH_backend.json",
        rows,
        summary,
        campaign={
            "n_clients": N_CLIENTS,
            "max_tasks": MAX_TASKS,
            "horizon_s": SIM_HORIZON_S,
            "smoke": SMOKE,
        },
    )

    # The infinite-server model never queues, waits, or sheds.
    assert baseline["batches_shed"] == 0
    assert baseline["client_backpressure"] == 0
    assert baseline["sfm_queue_wait_s"] == 0.0
    assert baseline["sfm_peak_queue_depth"] == 0

    # A single worker with an unbounded queue makes batches actually wait.
    squeezed = results[(1, None)]
    assert squeezed["sfm_queue_wait_s"] > 0.0
    assert squeezed["sfm_peak_queue_depth"] >= 1
    assert squeezed["batches_shed"] == 0  # unbounded queue never sheds

    # A zero-length admission queue sheds instead of queueing; clients
    # honor retry_after and the campaign still makes progress.
    shedding = results[(1, 0)]
    assert shedding["batches_shed"] > 0
    assert shedding["client_backpressure"] > 0
    assert shedding["sfm_peak_queue_depth"] == 0
    for report in results.values():
        assert report["tasks_completed"] > 0

    # The structured copy must not be slower than the protocol-discovery
    # path it replaced (asserted only on full runs: smoke reps are too
    # few to be stable).
    if not SMOKE:
        assert copy_speedup > 1.0, (deepcopy_s, fastcopy_s)
