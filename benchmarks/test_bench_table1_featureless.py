"""Table I — analysis of featureless surfaces reconstruction.

Paper rows (6 annotation tasks): identified 2-3 surfaces per task, most
reconstructed, precision 0.93-1.00, recall 0.64-1.00; averages 98.14 %
precision and 90.23 % F-score. "Only in cases 3 and 6 the recall was
lower" (surfaces spanning the whole image width).
"""

from repro.eval import format_table1

from .conftest import write_result

PAPER_MEAN_PRECISION = 0.9814
PAPER_MEAN_F = 0.9023


def test_table1_featureless_surfaces(benchmark, guided_result, results_dir):
    _bench, guided = guided_result

    rows = benchmark.pedantic(lambda: guided.featureless, rounds=1, iterations=1)

    lines = [format_table1(rows), ""]
    reconstructed = [r for r in rows if r.reconstructed_surfaces > 0]
    mean_p = (
        sum(r.precision for r in reconstructed) / len(reconstructed)
        if reconstructed
        else 0.0
    )
    mean_f = (
        sum(r.f_score for r in reconstructed) / len(reconstructed)
        if reconstructed
        else 0.0
    )
    lines.append(f"measured mean precision (reconstructed tasks): {mean_p:.4f}")
    lines.append(f"paper    mean precision:                      {PAPER_MEAN_PRECISION:.4f}")
    lines.append(f"measured mean F-score   (reconstructed tasks): {mean_f:.4f}")
    lines.append(f"paper    mean F-score:                        {PAPER_MEAN_F:.4f}")
    lines.append("")
    lines.append(
        f"annotation tasks executed: {len(rows)} (paper: 6); "
        f"tasks with a reconstructed surface: {len(reconstructed)}"
    )
    write_result(results_dir, "table1_featureless", "\n".join(lines))

    assert len(rows) >= 3, "the campaign must trigger several annotation tasks"
    assert len(reconstructed) >= 3, "several tasks must reconstruct surfaces"
    assert mean_p > 0.9
    # Recall (and hence F) has a heavier tail than the paper's 0.64 floor:
    # our 4 m panes overflow the oblique frames, shrinking fused quads.
    assert mean_f > 0.5
