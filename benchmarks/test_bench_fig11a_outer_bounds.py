"""Fig. 11a — reconstructed outer-bound length vs number of input photos.

Paper reference points: opportunistic reaches 72.04 % of the bounds,
unguided participatory 80.69 % (plateauing past ~500 photos), SnapTask
100 % with 633 photos. The reproduction regenerates the three series; the
required *shape* is the ordering (SnapTask > unguided > opportunistic at
their finals) and the unguided plateau.
"""

from repro.eval import format_series_rows

from .conftest import write_result

PAPER = {"SnapTask": 100.0, "Unguided participatory": 80.69, "Opportunistic": 72.04}


def test_fig11a_outer_bounds(
    benchmark, guided_result, unguided_result, opportunistic_result, results_dir
):
    _bench, guided = guided_result

    def collect():
        return {
            "SnapTask": guided.series,
            "Unguided participatory": unguided_result.series,
            "Opportunistic": opportunistic_result.series,
        }

    series = benchmark.pedantic(collect, rounds=1, iterations=1)

    lines = ["Fig. 11a — length of generated outer bounds (% of ground truth)", ""]
    for label, s in series.items():
        lines.append(format_series_rows(s))
        lines.append("")
    lines.append(f"{'approach':>24} {'final %':>9} {'paper %':>9}")
    finals = {}
    for label, s in series.items():
        finals[label] = s.final.bounds_percent
        lines.append(f"{label:>24} {finals[label]:>8.2f}% {PAPER[label]:>8.2f}%")
    write_result(results_dir, "fig11a_outer_bounds", "\n".join(lines))

    # Shape: SnapTask reconstructs more of the bounds than both baselines.
    assert finals["SnapTask"] > finals["Unguided participatory"]
    assert finals["SnapTask"] > finals["Opportunistic"]
