"""Fig. 10 — growth of the visibility/obstacles maps after each photo task.

"Figure 10 shows how the library model improved after each photo set, in
terms of obstacles map and visibility maps. ... after each photo
collection task the system was able to generate floor plans with a higher
coverage."

The bench regenerates the per-task growth series (covered cells +
coverage %) and renders the first/middle/final floor plans as ASCII.
"""

import numpy as np

from repro.core.tasks import TaskKind
from repro.mapping import render_ascii

from .conftest import write_result


def test_fig10_incremental_growth(benchmark, guided_result, results_dir):
    bench, result = guided_result

    def per_task_series():
        rows = []
        covered = []
        for record in result.run.completed:
            if record.task.kind != TaskKind.PHOTO_COLLECTION:
                continue
            mask = record.outcome.maps.covered_mask() & bench.ground_truth.region_mask
            covered.append(int(mask.sum()))
        return covered

    covered = benchmark.pedantic(per_task_series, rounds=1, iterations=1)

    region = bench.ground_truth.region_cells
    lines = ["Fig. 10 — map growth after each photo collection task", ""]
    lines.append(f"{'task':>5} {'covered cells':>14} {'coverage %':>11}")
    for i, cells in enumerate(covered, start=1):
        lines.append(f"{i:>5} {cells:>14} {100.0 * cells / region:>10.2f}%")
    growth_steps = sum(1 for a, b in zip(covered, covered[1:]) if b > a)
    lines.append("")
    lines.append(
        f"tasks with strictly growing coverage: {growth_steps}/{len(covered) - 1}"
    )

    # Early / middle / final floor plans (the paper's 3x4 grid of maps).
    snapshots = [r for r in result.run.completed if r.task.kind == TaskKind.PHOTO_COLLECTION]
    picks = [0, len(snapshots) // 2, len(snapshots) - 1]
    for idx in picks:
        lines.append("")
        lines.append(f"--- floor plan after photo task {idx + 1} ---")
        lines.append(
            render_ascii(
                snapshots[idx].outcome.maps, bench.ground_truth.region_mask, max_width=90
            )
        )

    write_result(results_dir, "fig10_incremental_growth", "\n".join(lines))

    # The paper's core claim for this figure: coverage grows across tasks.
    assert covered[-1] > covered[0]
    assert covered[-1] / region > 0.85
