"""Before/after timings for the incremental map-maintenance engine.

The pipeline used to rebuild Algorithm 2 (obstacles) and Algorithm 3
(visibility) from scratch on every uploaded batch, so per-batch map cost
grew with *model* size: O(points + cameras x wedge) even when a batch
contributed three photos. The incremental engine keys work off the batch
*delta* instead. This bench replays the fig10 guided campaign's batch
history through a fresh engine, timing every incremental update, then
times the old from-scratch path on the late (largest-model) batches where
the asymptotic gap matters most. The acceptance criterion is that
incremental beats from-scratch on those late batches; the measured table
is committed to ``benchmarks/results/perf_incremental_maps.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro.eval import Workbench
from repro.mapping import (
    IncrementalMapEngine,
    calculate_obstacles_map,
    calculate_visibility_map,
)

from .conftest import write_result

LATE_BATCHES = 10
SCRATCH_REPS = 3


@pytest.fixture(scope="module")
def campaign_history():
    """One guided campaign; its per-batch models are the replay input."""
    bench = Workbench.for_library()
    pipeline = bench.make_pipeline()
    campaign = bench.make_guided_campaign(pipeline, 10)
    campaign.run(max_tasks=120)
    history = pipeline.history
    assert len(history) > LATE_BATCHES + 5, "campaign too short to compare"
    return bench, history


def _time_scratch(outcome, bench) -> float:
    """Best-of-N wall time (ms) for the from-scratch Algorithm 2 + 3 pair."""
    threshold = bench.config.tasks.obstacle_threshold
    max_range = bench.config.sfm.visibility_range_m
    best = float("inf")
    for _ in range(SCRATCH_REPS):
        t0 = time.perf_counter()
        obstacles = calculate_obstacles_map(outcome.model.cloud, bench.spec, threshold)
        calculate_visibility_map(outcome.model, obstacles, max_range)
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return best


def test_perf_incremental_vs_scratch(campaign_history, results_dir):
    bench, history = campaign_history

    # Replay every batch through a fresh engine, timing each delta update.
    # ``outcome.model`` already carries the SOR-filtered cloud the pipeline
    # fed the engine, so this reproduces the production call sequence.
    engine = IncrementalMapEngine(
        bench.spec,
        obstacle_threshold=bench.config.tasks.obstacle_threshold,
        max_range_m=bench.config.sfm.visibility_range_m,
        site_mask=bench.ground_truth.region_mask,
    )
    incr_ms = []
    for outcome in history:
        t0 = time.perf_counter()
        update = engine.update(outcome.model)
        incr_ms.append((time.perf_counter() - t0) * 1e3)
        # The replay must remain cell-exact with what the pipeline saw.
        assert update.covered_cells == outcome.coverage_cells

    # From-scratch timings on the late batches, where the model is largest.
    late = history[-LATE_BATCHES:]
    late_incr = incr_ms[-LATE_BATCHES:]
    scratch_ms = [_time_scratch(outcome, bench) for outcome in late]

    rows = [
        "batch  points  cameras  scratch_ms  incremental_ms  speedup",
        "-----  ------  -------  ----------  --------------  -------",
    ]
    for outcome, s_ms, i_ms in zip(late, scratch_ms, late_incr):
        rows.append(
            f"{outcome.iteration:5d}  {len(outcome.model.cloud):6d}  "
            f"{len(outcome.model.cameras):7d}  {s_ms:10.2f}  {i_ms:14.2f}  "
            f"{s_ms / max(i_ms, 1e-9):6.1f}x"
        )
    total_scratch = sum(scratch_ms)
    total_incr = sum(late_incr)
    rows.append("")
    rows.append(
        f"late {LATE_BATCHES} batches: scratch {total_scratch:.1f} ms vs "
        f"incremental {total_incr:.1f} ms "
        f"({total_scratch / max(total_incr, 1e-9):.1f}x)"
    )
    rows.append(
        f"full campaign ({len(history)} batches): incremental map time "
        f"{sum(incr_ms):.1f} ms total, {sum(incr_ms) / len(incr_ms):.1f} ms/batch"
    )
    write_result(results_dir, "perf_incremental_maps", "\n".join(rows))

    # Acceptance criterion (ISSUE): incremental beats full rebuild on late
    # batches. The margin is asymptotic (O(delta) vs O(model)), so demand a
    # clear aggregate win and a per-batch win on the vast majority (one
    # noisy outlier tolerated on shared CI hardware).
    assert total_incr < total_scratch / 2.0, (
        f"incremental late-batch total {total_incr:.1f} ms not clearly below "
        f"from-scratch {total_scratch:.1f} ms"
    )
    wins = sum(1 for s, i in zip(scratch_ms, late_incr) if i < s)
    assert wins >= LATE_BATCHES - 1, f"incremental won only {wins}/{LATE_BATCHES}"
