"""Figs. 8 & 9 — participant paths and generated task positions.

Fig. 8: opportunistic walking paths with the camera positions of the
extracted frames — concentrated along hotspot-to-hotspot routes.
Fig. 9: the positions of the generated crowdsourcing tasks on the floor
plan — photo tasks spread over the venue, annotation tasks (green
diamonds in the paper) at the glass walls and the featureless meeting-room
wall.
"""

from repro.crowd import make_participants
from repro.eval import Workbench
from repro.eval.paths import (
    path_statistics,
    render_photo_positions,
    render_task_positions,
)
from repro.geometry import Vec2

from .conftest import write_result


def test_fig8_opportunistic_paths(benchmark, results_dir):
    bench = Workbench.for_library()
    collector = bench.make_opportunistic_collector()
    participants = make_participants(10, bench.rng.stream("fig8-cohort"))

    dataset = benchmark.pedantic(
        lambda: collector.collect(participants, n_videos=20), rounds=1, iterations=1
    )

    art = render_photo_positions(
        bench.spec, dataset.photos, bench.ground_truth.region_mask, max_width=100
    )
    stats = path_statistics(list(dataset.photos))
    lines = [
        "Fig. 8 — opportunistic participants' paths ('o' = extracted frame)",
        f"{dataset.n_videos} videos, {dataset.total_video_s:.0f} s of video, "
        f"{dataset.n_raw_frames} raw frames -> {dataset.n_photos} extracted "
        f"(paper: 20 videos, 369 s, 700 frames)",
        "",
        art,
        "",
        f"position spread: {stats['spread_m']:.2f} m",
    ]
    write_result(results_dir, "fig8_opportunistic_paths", "\n".join(lines))

    # Paths stay inside the venue and concentrate (hotspot bias).
    assert dataset.n_photos > 300
    for photo in dataset.photos:
        assert bench.venue.outer.contains(photo.true_pose.position)


def test_fig9_task_positions(benchmark, guided_result, results_dir):
    bench, guided = guided_result

    def assemble():
        arrived = [
            record.arrived_at
            for record in guided.run.completed
            if record.arrived_at is not None
        ]
        return guided.task_locations, arrived

    locations, arrived = benchmark.pedantic(assemble, rounds=1, iterations=1)

    art = render_task_positions(
        bench.spec,
        locations,
        arrived,
        bench.ground_truth.region_mask,
        max_width=100,
    )
    n_photo = sum(1 for kind, _x, _y in locations if kind != "annotation")
    n_annotation = len(locations) - n_photo
    lines = [
        "Fig. 9 — generated task positions",
        "('T' photo task, 'A' annotation task, 'x' actual capture position)",
        f"{n_photo} photo tasks, {n_annotation} annotation tasks "
        f"(paper: 11 and 6)",
        "",
        art,
    ]
    # The paper's observation: annotation tasks sit near featureless walls.
    distances = []
    for kind, x, y in locations:
        if kind == "annotation":
            surface = bench.venue.nearest_featureless_surface(Vec2(x, y))
            distances.append(surface.segment.distance_to_point(Vec2(x, y)))
    if distances:
        near = sum(1 for d in distances if d < 6.0)
        lines.append("")
        lines.append(
            f"annotation tasks within 6 m of a featureless surface: "
            f"{near}/{len(distances)}"
        )
    write_result(results_dir, "fig9_task_positions", "\n".join(lines))

    assert n_photo > 0 and n_annotation > 0
    # Most annotation tasks are generated near featureless geometry.
    if distances:
        assert sum(1 for d in distances if d < 6.0) >= len(distances) / 2
