"""Ablations around the paper's operating point.

* grid cell size — "The size can be adjusted depending on a venue size
  and a required granularity - typically between 10cm and 50cm" (Sec. IV);
* OBSTACLE_THRESHOLD — the paper sets 4;
* COVERED_VIEW_TOLERANCE / MIN_AREA_SIZE — "Having smaller value would
  yield higher coverage rates, however, this would increase the number of
  tasks and collected photos" (Sec. V-C2).

All ablations run on one fixed photo dataset so only the parameter under
study varies.
"""

import numpy as np
import pytest

from repro.camera import GALAXY_S7
from repro.core import find_unvisited
from repro.eval import Workbench
from repro.geometry import Vec2
from repro.mapping import (
    CoverageMaps,
    calculate_obstacles_map,
    calculate_visibility_map,
    outer_bounds_report,
)
from repro.sfm import IncrementalSfm, sor_filter
from repro.simkit import RngStream
from repro.venue.ground_truth import build_ground_truth, default_grid_spec

from .conftest import write_result

SWEEP_CENTERS = [(3, 3), (8, 3.7), (13, 6.4), (18.8, 4.7), (10.7, 12.2), (4, 9)]


@pytest.fixture(scope="module")
def fixed_model():
    """One reconstruction reused by every ablation."""
    bench = Workbench.for_library()
    engine = IncrementalSfm(bench.world, bench.config.sfm, RngStream(11, "ablation"))
    for center in SWEEP_CENTERS:
        engine.add_photos(
            list(bench.capture.sweep(Vec2(*center), GALAXY_S7, 8.0, blur=0.0))
        )
    model = engine.model()
    cloud = sor_filter(model.cloud, bench.config.sfm.sor_neighbors, bench.config.sfm.sor_std_ratio)
    return bench, model, cloud


def test_ablation_cell_size(benchmark, fixed_model, results_dir):
    bench, model, cloud = fixed_model

    def sweep_cell_sizes():
        rows = []
        for cell in (0.10, 0.15, 0.30, 0.50):
            spec = default_grid_spec(bench.venue, cell)
            gt = build_ground_truth(bench.venue, spec)
            obstacles = calculate_obstacles_map(cloud, spec, 4)
            visibility = calculate_visibility_map(
                model, obstacles, bench.config.sfm.visibility_range_m
            )
            maps = CoverageMaps(obstacles, visibility)
            covered = int((maps.covered_mask() & gt.region_mask).sum())
            rows.append(
                (
                    cell,
                    spec.n_rows * spec.n_cols,
                    100.0 * covered / gt.region_cells,
                    outer_bounds_report(bench.venue, obstacles).percent,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep_cell_sizes, rounds=1, iterations=1)
    lines = ["Ablation: grid cell size (paper operating point: 15 cm)", ""]
    lines.append(f"{'cell':>6} {'grid cells':>11} {'coverage %':>11} {'bounds %':>9}")
    for cell, n_cells, coverage, bounds in rows:
        lines.append(f"{cell:>5.2f}m {n_cells:>11} {coverage:>10.2f}% {bounds:>8.2f}%")
    write_result(results_dir, "ablation_cell_size", "\n".join(lines))

    coverages = [c for _cell, _n, c, _b in rows]
    # Coarser cells over-count coverage (each covered cell is larger).
    assert coverages[-1] >= coverages[0] - 5.0


def test_ablation_obstacle_threshold(benchmark, fixed_model, results_dir):
    bench, model, cloud = fixed_model
    spec = bench.spec

    def sweep_thresholds():
        rows = []
        for threshold in (1, 2, 4, 8, 16):
            obstacles = calculate_obstacles_map(cloud, spec, threshold)
            bounds = outer_bounds_report(bench.venue, obstacles).percent
            rows.append((threshold, obstacles.nonzero_count(), bounds))
        return rows

    rows = benchmark.pedantic(sweep_thresholds, rounds=1, iterations=1)
    lines = ["Ablation: OBSTACLE_THRESHOLD (paper: 4)", ""]
    lines.append(f"{'threshold':>10} {'obstacle cells':>15} {'bounds %':>9}")
    for threshold, cells, bounds in rows:
        lines.append(f"{threshold:>10} {cells:>15} {bounds:>8.2f}%")
    write_result(results_dir, "ablation_obstacle_threshold", "\n".join(lines))

    cells = [c for _t, c, _b in rows]
    assert cells == sorted(cells, reverse=True), "higher threshold -> fewer obstacles"


def test_ablation_task_generation_params(benchmark, fixed_model, results_dir):
    bench, model, cloud = fixed_model
    spec = bench.spec
    obstacles = calculate_obstacles_map(cloud, spec, 4)
    visibility = calculate_visibility_map(
        model, obstacles, bench.config.sfm.visibility_range_m
    )

    def sweep_params():
        rows = []
        for tolerance in (1, 3, 5):
            for min_area_m2 in (1.0, 2.25, 9.0):
                min_cells = max(1, int(round(min_area_m2 / spec.cell_area_m2)))
                areas = find_unvisited(
                    obstacles,
                    visibility,
                    bench.venue.entrance,
                    max_areas=50,
                    covered_view_tolerance=tolerance,
                    min_area_cells=min_cells,
                    site_mask=bench.ground_truth.region_mask,
                    expansion_cap_cells=min_cells * 8,
                )
                rows.append((tolerance, min_area_m2, len(areas)))
        return rows

    rows = benchmark.pedantic(sweep_params, rounds=1, iterations=1)
    lines = [
        "Ablation: COVERED_VIEW_TOLERANCE x MIN_AREA_SIZE (paper: 3, 2.25 m^2)",
        "",
        f"{'tolerance':>10} {'min area':>9} {'areas found':>12}",
    ]
    for tolerance, area, count in rows:
        lines.append(f"{tolerance:>10} {area:>7.2f}m2 {count:>12}")
    write_result(results_dir, "ablation_task_generation", "\n".join(lines))

    by_key = {(t, a): n for t, a, n in rows}
    # Larger MIN_AREA_SIZE -> fewer (or equal) candidate task areas.
    for tolerance in (1, 3, 5):
        assert by_key[(tolerance, 9.0)] <= by_key[(tolerance, 1.0)]
