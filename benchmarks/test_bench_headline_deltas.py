"""Headline deltas (Sec. I / Sec. VII).

"With the same amount of input data our design of guided data collection
increases the map coverage by 20.72 % and 34.45 %, respectively, compared
with unguided participatory and opportunistic VCS" — i.e. SnapTask's
final coverage (98.12 %) minus the baselines' final coverage (77.4 % and
63.67 %). Also: "SnapTask achieves 100 % reconstruction of library walls
and 98.12 % reconstruction of obstacles and traversable areas."
"""

from .conftest import write_result

PAPER_DELTA_UNGUIDED = 20.72
PAPER_DELTA_OPPORTUNISTIC = 34.45


def test_headline_deltas(
    benchmark, guided_result, unguided_result, opportunistic_result, results_dir
):
    _bench, guided = guided_result

    def deltas():
        final = guided.final.coverage_percent
        return {
            "snaptask_final": final,
            "unguided_final": unguided_result.series.final.coverage_percent,
            "opportunistic_final": opportunistic_result.series.final.coverage_percent,
        }

    values = benchmark.pedantic(deltas, rounds=1, iterations=1)
    delta_unguided = values["snaptask_final"] - values["unguided_final"]
    delta_opportunistic = values["snaptask_final"] - values["opportunistic_final"]

    lines = [
        "Headline: coverage gain of guided collection over the baselines",
        "",
        f"{'quantity':>38} {'measured':>9} {'paper':>8}",
        f"{'SnapTask final coverage':>38} {values['snaptask_final']:>8.2f}% {98.12:>7.2f}%",
        f"{'unguided final coverage':>38} {values['unguided_final']:>8.2f}% {77.40:>7.2f}%",
        f"{'opportunistic final coverage':>38} {values['opportunistic_final']:>8.2f}% {63.67:>7.2f}%",
        f"{'gain over unguided':>38} {delta_unguided:>8.2f}% {PAPER_DELTA_UNGUIDED:>7.2f}%",
        f"{'gain over opportunistic':>38} {delta_opportunistic:>8.2f}% {PAPER_DELTA_OPPORTUNISTIC:>7.2f}%",
        "",
        f"guided bounds: {guided.final.bounds_percent:.2f}% (paper: 100%)",
        f"guided photo tasks: {guided.n_photo_tasks} (paper: 11), "
        f"annotation tasks: {guided.n_annotation_tasks} (paper: 6)",
        f"guided collection photos: {guided.run.n_collection_photos} (paper: 633)",
    ]
    write_result(results_dir, "headline_deltas", "\n".join(lines))

    # The reproduction contract: both gains positive and substantial.
    assert delta_unguided > 5.0
    assert delta_opportunistic > 15.0
