"""Shared executor fan-out for parameter-sweep benchmarks.

Sweep benchmarks (`test_bench_backend_overload`, `test_bench_fault_tolerance`,
ablations) run one independent deployment per configuration point — the
same embarrassing parallelism the fuzzer has, so they share the same
pool: each sweep point becomes a ``library-deployment`` shard on the
:mod:`repro.testkit.executor` and results come back in spec order as
plain payload dicts (``report`` via ``dataclasses.asdict``, plus the
task-ledger summary), byte-identical to an inline run.

``REPRO_BENCH_JOBS`` overrides the worker count (int or ``auto``;
default auto). ``jobs=1`` — e.g. a single-core CI runner — degrades to
the executor's inline path with no processes spawned.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.testkit.executor import ExecutorStats, run_shards


def bench_jobs(default: str = "auto") -> str:
    """The benchmark worker count: ``REPRO_BENCH_JOBS`` or ``default``."""
    return os.environ.get("REPRO_BENCH_JOBS", default)


def run_deployment_sweep(
    specs: Sequence[dict],
    jobs=None,
    stats: Optional[ExecutorStats] = None,
) -> List[dict]:
    """Run ``library-deployment`` specs on the pool; payloads in spec order.

    A failed shard raises — a sweep with holes would silently skew the
    benchmark's summary statistics.
    """
    if jobs is None:
        jobs = bench_jobs()
    payloads: List[dict] = []
    for envelope in run_shards("library-deployment", list(specs), jobs=jobs, stats=stats):
        if not envelope["ok"]:
            raise RuntimeError(
                f"sweep shard {envelope['index']} failed: "
                f"{envelope.get('error', 'unknown')}"
            )
        payloads.append(envelope["payload"])
    return payloads
