"""Tests for participants, mobility, video extraction and collectors."""

import pytest

from repro.camera import GALAXY_S7, NEXUS_5
from repro.crowd import (
    GuidedCampaign,
    HotspotMobility,
    Participant,
    UnguidedCollector,
    extract_sharpest_frames,
    frame_specs_for_walk,
    guided_participants,
    make_participants,
)
from repro.crowd.video import FrameSpec
from repro.geometry import Vec2
from repro.simkit import RngStream


class TestParticipants:
    def test_cohort_devices_cycle(self):
        cohort = make_participants(4, RngStream(1, "p"))
        assert cohort[0].device is not cohort[1].device
        assert cohort[0].device is cohort[2].device

    def test_guided_cohort_uses_nexus(self):
        cohort = guided_participants(2, RngStream(1, "p"))
        models = {p.device.device_model for p in cohort}
        assert NEXUS_5.device_model in models

    def test_blur_scaled_by_steadiness(self):
        steady = Participant("a", GALAXY_S7, steadiness=1.0)
        shaky = Participant("b", GALAXY_S7, steadiness=0.7)
        rng = RngStream(2, "blur")
        base = 0.2
        avg_steady = sum(steady.blur_for(base, rng.child(f"s{i}")) for i in range(50)) / 50
        avg_shaky = sum(shaky.blur_for(base, rng.child(f"h{i}")) for i in range(50)) / 50
        assert avg_shaky > avg_steady

    def test_blur_clamped(self):
        p = Participant("c", GALAXY_S7, steadiness=0.7)
        assert 0.0 <= p.blur_for(0.95, RngStream(3, "x")) <= 1.0


class TestMobility:
    def test_itinerary_no_immediate_repeat(self, bench):
        mobility = bench.make_mobility("test-mob")
        rng = bench.rng.stream("test-mob-pick")
        stops = mobility.pick_itinerary(8, rng)
        for a, b in zip(stops, stops[1:]):
            assert a.label != b.label

    def test_walk_connects_stops(self, bench):
        mobility = bench.make_mobility("test-mob-2")
        trajectory = mobility.walk(
            bench.venue.entrance, [Vec2(10.5, 3.7), Vec2(18.8, 4.7)], speed_mps=1.2
        )
        assert trajectory.length_m > 10
        assert trajectory.duration_s > 5
        # End near the last stop.
        assert trajectory.points[-1].position.distance_to(Vec2(18.8, 4.7)) < 1.0

    def test_trajectory_points_traversable(self, bench):
        mobility = bench.make_mobility("test-mob-3")
        trajectory = mobility.walk(bench.venue.entrance, [Vec2(10.5, 6.4)], 1.0)
        for point in trajectory.points[:: max(1, len(trajectory.points) // 30)]:
            assert bench.venue.is_traversable(point.position)


class TestVideo:
    def test_frame_specs_sampled_along_walk(self, bench):
        mobility = bench.make_mobility("test-vid")
        trajectory = mobility.walk(bench.venue.entrance, [Vec2(10.5, 3.7)], 1.2)
        participant = make_participants(1, RngStream(4, "v"))[0]
        specs = frame_specs_for_walk(trajectory, participant, RngStream(4, "f"), fps=5.0)
        assert len(specs) > 10
        assert all(0.0 <= s.blur <= 1.0 for s in specs)

    def test_moving_frames_blurrier_than_dwell(self, bench):
        mobility = bench.make_mobility("test-vid-2")
        trajectory = mobility.walk(
            bench.venue.entrance, [Vec2(10.5, 3.7)], 1.3, dwell_s=6.0
        )
        participant = Participant("p", GALAXY_S7, steadiness=1.0)
        specs = frame_specs_for_walk(trajectory, participant, RngStream(5, "f"))
        moving = [s.blur for s in specs if s.pose is not None and s.blur > 0][:20]
        # Dwell frames (speed 0) come at the end.
        tail = [s.blur for s in specs[-10:]]
        assert sum(tail) / len(tail) < sum(moving) / len(moving)

    def test_sharpest_frame_extraction(self):
        specs = [
            FrameSpec(time_s=i, pose=None, blur=0.5, sharpness=float(i % 7))
            for i in range(21)
        ]
        winners = extract_sharpest_frames(specs, window=7)
        assert len(winners) == 3
        assert all(w.sharpness == 6.0 for w in winners)

    def test_window_validation(self):
        with pytest.raises(Exception):
            extract_sharpest_frames([], window=0)


class TestCollectors:
    def test_unguided_filters_blur(self, bench):
        collector = bench.make_unguided_collector()
        cohort = make_participants(2, bench.rng.stream("test-cohort"))
        dataset = collector.collect(cohort, photos_per_participant=30)
        assert dataset.n_taken == 60
        assert 0 < dataset.n_photos <= 60
        assert dataset.n_filtered_out == 60 - dataset.n_photos

    def test_unguided_photos_inside_venue(self, bench):
        collector = bench.make_unguided_collector()
        cohort = make_participants(1, bench.rng.stream("test-cohort-2"))
        dataset = collector.collect(cohort, photos_per_participant=20)
        for photo in dataset.photos:
            assert bench.venue.is_traversable(photo.true_pose.position)

    def test_opportunistic_collects_frames(self, bench):
        collector = bench.make_opportunistic_collector()
        cohort = make_participants(3, bench.rng.stream("test-cohort-3"))
        dataset = collector.collect(cohort, n_videos=3)
        assert dataset.n_videos == 3
        assert dataset.n_photos > 10
        assert dataset.n_raw_frames > dataset.n_photos  # extraction subsamples
        assert dataset.total_video_s > 10

    def test_guided_bootstrap_photo_counts(self, bench):
        pipeline = bench.make_pipeline()
        campaign = bench.make_guided_campaign(pipeline, n_participants=2)
        photos = campaign.bootstrap_photos()
        assert len(photos) == 46 + 39  # video frames + geo-calibration
        sources = {p.source for p in photos}
        assert sources == {"bootstrap-video", "geo-calibration"}
