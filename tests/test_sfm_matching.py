"""Tests for the feature match index and point cloud / filters."""

import numpy as np
import pytest

from repro.camera import GALAXY_S7, CameraPose
from repro.sfm import MatchIndex, PointCloud, match_count, sor_filter, sor_mask
from repro.sfm.pointcloud import CloudPoint


def take(bench, x, y, yaw=0.0):
    return bench.capture.take_photo(CameraPose.at(x, y, yaw), GALAXY_S7, blur=0.0)


class TestMatchIndex:
    def test_match_count_same_pose_high(self, bench):
        a = take(bench, 10.0, 1.7, -1.57)
        b = take(bench, 10.05, 1.7, -1.57)
        assert match_count(a, b) > 30

    def test_match_count_opposite_views_low(self, bench):
        a = take(bench, 10.0, 1.7, -1.57)
        b = take(bench, 10.0, 1.7, 1.57)
        assert match_count(a, b) < 10

    def test_match_count_equals_legacy_membership_loop(self, bench):
        """Pin the set-intersection rewrite to the previous algorithm.

        ``match_count`` used to walk one photo's feature ids and test
        membership in the other's set one element at a time.  The rewrite
        (``len(sa & sb)``) must produce the same number for every pair,
        including self-pairs and asymmetric operand orders.
        """

        def legacy_match_count(a, b):
            sb = b.feature_id_set()
            count = 0
            for fid in a.feature_id_set():
                if fid in sb:
                    count += 1
            return count

        photos = [
            take(bench, 10.0, 1.7, -1.57),
            take(bench, 10.05, 1.7, -1.57),
            take(bench, 10.0, 1.7, 1.57),
            take(bench, 18.8, 4.7, 1.57),
        ]
        for a in photos:
            for b in photos:
                assert match_count(a, b) == legacy_match_count(a, b)
                assert match_count(a, b) == match_count(b, a)

    def test_index_add_remove(self, bench):
        index = MatchIndex()
        a = take(bench, 10.0, 1.7, -1.57)
        index.add(a)
        assert a.photo_id in index
        assert len(index) == 1
        index.remove(a.photo_id)
        assert a.photo_id not in index
        assert len(index) == 0

    def test_duplicate_add_is_noop(self, bench):
        index = MatchIndex()
        a = take(bench, 10.0, 1.7, -1.57)
        index.add(a)
        index.add(a)
        assert len(index) == 1

    def test_pair_match_counts(self, bench):
        index = MatchIndex()
        a = take(bench, 10.0, 1.7, -1.57)
        b = take(bench, 10.05, 1.7, -1.57)
        index.add(a)
        index.add(b)
        counts = index.pair_match_counts(a)
        assert counts.get(b.photo_id, 0) == match_count(a, b)

    def test_best_seed_pair(self, bench):
        index = MatchIndex()
        a = take(bench, 10.0, 1.7, -1.57)
        b = take(bench, 10.05, 1.7, -1.57)
        c = take(bench, 18.8, 4.7, 1.57)  # unrelated view
        for p in (a, b, c):
            index.add(p)
        seed = index.best_seed_pair(min_matches=20)
        assert seed is not None
        assert {seed[0], seed[1]} == {a.photo_id, b.photo_id}

    def test_best_seed_pair_none_when_sparse(self, bench):
        index = MatchIndex()
        index.add(take(bench, 10.0, 1.7, -1.57))
        index.add(take(bench, 18.8, 4.7, 1.57))
        assert index.best_seed_pair(min_matches=30) is None

    def test_observers_view(self, bench):
        index = MatchIndex()
        a = take(bench, 10.0, 1.7, -1.57)
        index.add(a)
        fid = int(a.feature_ids[0])
        observers = index.observers_view(fid)
        assert a.photo_id in observers
        # Unknown features yield an empty (non-copying) view.
        assert len(index.observers_view(-1)) == 0


def make_cloud(points):
    return PointCloud(
        [CloudPoint(feature_id=i, x=x, y=y, z=z, n_views=3) for i, (x, y, z) in enumerate(points)]
    )


class TestPointCloud:
    def test_masks(self):
        cloud = PointCloud(
            [
                CloudPoint(1, 0, 0, 0, 3),
                CloudPoint(10_000_005, 1, 1, 1, 3),
                CloudPoint(20_000_001, 2, 2, 2, 3),
            ]
        )
        assert cloud.artificial_mask.tolist() == [False, True, False]
        assert cloud.reflection_mask.tolist() == [False, False, True]
        assert len(cloud.without_reflections()) == 2

    def test_subset_and_merge(self):
        cloud = make_cloud([(0, 0, 0), (1, 1, 1), (2, 2, 2)])
        sub = cloud.subset(np.array([True, False, True]))
        assert len(sub) == 2
        merged = sub.merged_with(cloud)
        assert len(merged) == 3

    def test_bbox(self):
        cloud = make_cloud([(0, 0, 0), (2, 4, 1)])
        assert cloud.bounding_box_2d() == (0, 0, 2, 4)
        assert PointCloud.empty().bounding_box_2d() is None

    def test_subset_bad_mask(self):
        from repro.errors import ReconstructionError

        with pytest.raises(ReconstructionError):
            make_cloud([(0, 0, 0)]).subset(np.array([True, False]))


class TestSorFilter:
    def test_outlier_removed(self):
        rng = np.random.default_rng(0)
        inliers = rng.normal(0.0, 0.2, size=(200, 3))
        outlier = np.array([[50.0, 50.0, 50.0]])
        xyz = np.vstack([inliers, outlier])
        mask = sor_mask(xyz, n_neighbors=8, std_ratio=2.0)
        assert not mask[-1]
        assert mask[:-1].mean() > 0.9

    def test_small_cloud_untouched(self):
        xyz = np.zeros((3, 3))
        assert sor_mask(xyz).all()

    def test_filter_preserves_type(self):
        cloud = make_cloud([(0, 0, 0)] * 30 + [(99, 99, 99)])
        filtered = sor_filter(cloud)
        assert isinstance(filtered, PointCloud)
        assert len(filtered) < len(cloud)

    def test_empty_cloud(self):
        assert len(sor_filter(PointCloud.empty())) == 0

    def test_bad_shape(self):
        from repro.errors import ReconstructionError

        with pytest.raises(ReconstructionError):
            sor_mask(np.zeros((5, 2)))
