"""Tests for polygons, bounding boxes and convex hull."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import BoundingBox, Polygon, Vec2, convex_hull

coord = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


class TestBoundingBox:
    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox(1, 0, 0, 1)

    def test_contains_and_center(self):
        box = BoundingBox(0, 0, 2, 4)
        assert box.contains(Vec2(1, 2))
        assert not box.contains(Vec2(3, 2))
        assert box.center == Vec2(1, 2)
        assert box.width == 2 and box.height == 4

    def test_expanded(self):
        box = BoundingBox(0, 0, 1, 1).expanded(0.5)
        assert box.min_x == -0.5 and box.max_y == 1.5

    def test_of_points(self):
        box = BoundingBox.of_points([Vec2(1, 5), Vec2(-2, 3)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, 3, 1, 5)
        with pytest.raises(GeometryError):
            BoundingBox.of_points([])


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([Vec2(0, 0), Vec2(1, 1)])

    def test_rectangle_area_perimeter(self):
        rect = Polygon.rectangle(0, 0, 4, 3)
        assert rect.area() == pytest.approx(12.0)
        assert rect.perimeter() == pytest.approx(14.0)

    def test_contains_interior_exterior(self):
        rect = Polygon.rectangle(0, 0, 2, 2)
        assert rect.contains(Vec2(1, 1))
        assert not rect.contains(Vec2(3, 1))

    def test_contains_boundary(self):
        rect = Polygon.rectangle(0, 0, 2, 2)
        assert rect.contains(Vec2(0, 1))
        assert rect.contains(Vec2(2, 2))

    def test_l_shape_containment(self):
        l_shape = Polygon(
            [Vec2(0, 0), Vec2(4, 0), Vec2(4, 4), Vec2(2, 4), Vec2(2, 2), Vec2(0, 2)]
        )
        assert l_shape.contains(Vec2(1, 1))
        assert l_shape.contains(Vec2(3, 3))
        assert not l_shape.contains(Vec2(1, 3))  # the notch

    def test_centroid_rectangle(self):
        rect = Polygon.rectangle(0, 0, 2, 4)
        c = rect.centroid()
        assert c.x == pytest.approx(1.0)
        assert c.y == pytest.approx(2.0)

    def test_rotated_rectangle(self):
        import math

        rect = Polygon.rotated_rectangle(Vec2(0, 0), 2.0, 1.0, math.pi / 2)
        assert rect.area() == pytest.approx(2.0)
        # After 90-degree rotation, the long axis is vertical.
        assert rect.bbox.height == pytest.approx(2.0)
        assert rect.bbox.width == pytest.approx(1.0)

    @given(
        st.floats(-10, 10),
        st.floats(-10, 10),
        st.floats(0.5, 10),
        st.floats(0.5, 10),
    )
    def test_rectangle_contains_own_centroid(self, x, y, w, h):
        rect = Polygon.rectangle(x, y, x + w, y + h)
        assert rect.contains(rect.centroid())

    def test_edges_count(self):
        rect = Polygon.rectangle(0, 0, 1, 1)
        assert len(rect.edges()) == 4


class TestConvexHull:
    def test_square_with_interior_point(self):
        pts = [Vec2(0, 0), Vec2(1, 0), Vec2(1, 1), Vec2(0, 1), Vec2(0.5, 0.5)]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert Vec2(0.5, 0.5) not in hull

    def test_collinear(self):
        pts = [Vec2(0, 0), Vec2(1, 0), Vec2(2, 0)]
        hull = convex_hull(pts)
        assert len(hull) <= 2 or all(p.y == 0 for p in hull)

    @given(st.lists(st.tuples(coord, coord), min_size=3, max_size=40))
    def test_hull_contains_all_points(self, raw):
        pts = [Vec2(x, y) for x, y in raw]
        hull = convex_hull(pts)
        if len(hull) < 3:
            return
        poly = Polygon(hull)
        for p in pts:
            assert poly.contains(p) or poly.bbox.expanded(1e-6).contains(p)
