"""Failure-injection tests: the system must degrade gracefully.

Each test injects one realistic failure (all-blurry uploads, unreachable
tasks, empty worlds, budget exhaustion, network outage windows) and checks
the corresponding recovery behaviour rather than a crash.
"""

import numpy as np
import pytest

from repro.camera import GALAXY_S7, CameraPose
from repro.core import SnapTaskPipeline, TaskFactory, TaskKind
from repro.errors import ReproError, VenueError
from repro.geometry import Polygon, Segment, Vec2
from repro.simkit import RngStream, Simulator
from repro.venue import BRICK, Hotspot, Surface, SurfaceKind, Venue
from repro.venue.features import FeatureWorld, build_feature_world


def sweep(bench, x, y, blur=0.0):
    return list(bench.capture.sweep(Vec2(x, y), GALAXY_S7, 8.0, blur=blur))


class TestBlurryUploads:
    def test_all_blurry_campaign_step_recovers(self, bench):
        """A completely shaky participant's upload reassigns the task and
        the next (sharp) attempt proceeds normally."""
        pipeline = bench.make_pipeline()
        pipeline.process_batch(sweep(bench, 3, 3))
        task = TaskFactory().photo_task(Vec2(6, 4), 2)
        blurry = pipeline.process_batch(sweep(bench, 6, 4, blur=0.92), task)
        assert blurry.quality is not None and blurry.quality.is_low_quality
        retry = blurry.new_tasks[0]
        assert retry.kind == TaskKind.PHOTO_COLLECTION
        sharp = pipeline.process_batch(sweep(bench, 6, 4, blur=0.0), retry)
        assert sharp.coverage_increased


class TestDegenerateWorlds:
    def make_bare_venue(self):
        """A venue whose only wall is glass: nothing to reconstruct."""
        from repro.venue import GLASS

        outer = Polygon.rectangle(0, 0, 8, 8)
        surfaces = [
            Surface(0, Segment(Vec2(0, 0), Vec2(8, 0)), GLASS, SurfaceKind.OUTER_WALL),
            Surface(1, Segment(Vec2(8, 0), Vec2(8, 8)), GLASS, SurfaceKind.OUTER_WALL),
            Surface(2, Segment(Vec2(8, 8), Vec2(0, 8)), GLASS, SurfaceKind.OUTER_WALL),
            Surface(3, Segment(Vec2(0, 8), Vec2(0, 2)), GLASS, SurfaceKind.OUTER_WALL),
        ]
        return Venue(
            name="bare-glass-box",
            outer=outer,
            surfaces=surfaces,
            furniture_footprints=[],
            entrance=Vec2(1, 1),
            hotspots=[Hotspot(Vec2(4, 4), 1.0, "centre")],
        )

    def test_featureless_world_never_registers(self):
        from repro.config import paper_config
        from repro.camera import CaptureSimulator
        from repro.sfm import IncrementalSfm

        venue = self.make_bare_venue()
        config = paper_config()
        world = build_feature_world(venue, RngStream(1, "bare"))
        capture = CaptureSimulator(world, config.sfm, config.camera, RngStream(1, "cap"))
        engine = IncrementalSfm(world, config.sfm, RngStream(1, "sfm"))
        photos = list(capture.sweep(Vec2(4, 4), GALAXY_S7, 8.0))
        report = engine.add_photos(photos)
        assert report.newly_registered == 0
        assert report.total_points == 0

    def test_empty_feature_world_capture(self):
        venue = self.make_bare_venue()
        world = build_feature_world(venue, RngStream(2, "bare2"), reflection_sample_rate=0.0)
        assert len(world) == 0


class TestUnreachableTask:
    def test_navigation_to_far_point_clamps(self, bench):
        navigator = bench.make_navigator("fail-nav")
        # A point just outside the venue: the participant ends up at the
        # closest standable spot inside.
        outcome = navigator.navigate(bench.venue.entrance, Vec2(23.5, 10.0))
        assert bench.venue.is_traversable(outcome.arrived)

    def test_nearest_traversable_radius_exhaustion(self):
        outer = Polygon.rectangle(0, 0, 4, 4)
        surfaces = [
            Surface(0, Segment(Vec2(0, 0), Vec2(4, 0)), BRICK, SurfaceKind.OUTER_WALL)
        ]
        venue = Venue(
            "tiny",
            outer,
            surfaces,
            furniture_footprints=[Polygon.rectangle(0.01, 0.01, 3.99, 3.99)],
            entrance=Vec2(2, 2),
            hotspots=[Hotspot(Vec2(2, 2), 1.0, "h")],
        )
        with pytest.raises(VenueError):
            venue.nearest_traversable(Vec2(2, 2), max_radius=1.0)


class TestBackendOverload:
    def test_many_queued_batches_processed_in_order(self, bench):
        from repro.server import BackendServer, PhotoBatch

        sim = Simulator()
        server = BackendServer(bench.make_pipeline(), sim, "venue")
        order = []
        for i, center in enumerate([(3, 3), (4, 4), (5, 5)]):
            photos = tuple(sweep(bench, *center))
            server.handle_photo_batch(
                PhotoBatch(f"c{i}", None, photos),
                on_done=lambda result, i=i: order.append(i),
            )
        sim.run()
        assert order == [0, 1, 2]

    def test_simulation_event_budget_guard(self, bench):
        from repro.errors import SimulationError

        sim = Simulator()

        def storm():
            sim.schedule(0.001, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(SimulationError):
            sim.run(max_events=50)


class TestBudgetExhaustion:
    def test_selection_halts_cleanly(self):
        from repro.crowd import NearestIdlePolicy, Participant, replay_task_locations

        people = [Participant("p0", GALAXY_S7, 0.9)]
        report = replay_task_locations(
            [Vec2(5, 0), Vec2(10, 0), Vec2(15, 0)],
            people,
            [Vec2(0, 0)],
            NearestIdlePolicy(),
            base_reward=1.0,
            budget=2.0,  # only the first task is affordable
        )
        assert report.assignments == 1
        assert report.unassigned == 2
