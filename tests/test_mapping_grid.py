"""Tests for GridSpec / Grid2D and the octomap."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MappingError
from repro.geometry import BoundingBox, Vec2
from repro.mapping import Grid2D, GridSpec, OctoMap


class TestGridSpec:
    def spec(self, cell=0.15):
        return GridSpec.from_bbox(BoundingBox(0, 0, 3, 3), cell, margin_m=0.0)

    def test_from_bbox_shape(self):
        spec = self.spec(0.5)
        assert spec.shape == (6, 6)

    def test_cell_of_roundtrip(self):
        spec = self.spec()
        cell = spec.cell_of(Vec2(1.0, 2.0))
        assert cell is not None
        center = spec.center_of(*cell)
        assert center.distance_to(Vec2(1.0, 2.0)) <= spec.cell_size_m

    def test_outside_returns_none(self):
        assert self.spec().cell_of(Vec2(-10, 0)) is None

    def test_cells_of_vectorised(self):
        spec = self.spec()
        xy = np.array([[1.0, 2.0], [-10.0, 0.0]])
        cells = spec.cells_of(xy)
        assert cells.shape == (2, 2)
        assert (cells[1] == -1).all()
        assert tuple(cells[0]) == spec.cell_of(Vec2(1.0, 2.0))

    def test_validation(self):
        with pytest.raises(MappingError):
            GridSpec(0, 0, 0.0, 10, 10)
        with pytest.raises(MappingError):
            GridSpec(0, 0, 0.1, 0, 10)

    @given(st.floats(0.05, 0.5), st.floats(0.1, 30), st.floats(0.1, 30))
    def test_grid_covers_bbox(self, cell, w, h):
        spec = GridSpec.from_bbox(BoundingBox(0, 0, w, h), cell, margin_m=0.0)
        assert spec.n_cols * cell >= w - 1e-9
        assert spec.n_rows * cell >= h - 1e-9


class TestGrid2D:
    def test_set_get(self):
        spec = GridSpec.from_bbox(BoundingBox(0, 0, 3, 3), 0.5, 0.0)
        grid = Grid2D(spec)
        grid.set_at(Vec2(1.0, 1.0), 5.0)
        assert grid.value_at(Vec2(1.0, 1.0)) == 5.0
        assert grid.nonzero_count() == 1
        assert grid.covered_area_m2 () == pytest.approx(0.25)

    def test_outside_value_zero(self):
        spec = GridSpec.from_bbox(BoundingBox(0, 0, 3, 3), 0.5, 0.0)
        grid = Grid2D(spec)
        assert grid.value_at(Vec2(-1, -1)) == 0.0
        with pytest.raises(MappingError):
            grid.set_at(Vec2(-1, -1), 1.0)

    def test_union_mask_spec_check(self):
        a = Grid2D(GridSpec(0, 0, 0.5, 4, 4))
        b = Grid2D(GridSpec(0, 0, 0.25, 4, 4))
        with pytest.raises(MappingError):
            a.union_mask(b)

    def test_union_mask(self):
        spec = GridSpec(0, 0, 0.5, 4, 4)
        a, b = Grid2D(spec), Grid2D(spec)
        a.data[0, 0] = 1
        b.data[1, 1] = 1
        assert a.union_mask(b).sum() == 2

    def test_copy_is_independent(self):
        grid = Grid2D(GridSpec(0, 0, 0.5, 4, 4))
        clone = grid.copy()
        clone.data[0, 0] = 9
        assert grid.data[0, 0] == 0

    def test_data_shape_validation(self):
        spec = GridSpec(0, 0, 0.5, 4, 4)
        with pytest.raises(MappingError):
            Grid2D(spec, np.zeros((3, 3)))


class TestOctoMap:
    def test_insert_and_count(self):
        tree = OctoMap((0, 0, 0), half_extent=8.0, resolution=0.2)
        assert tree.insert(1.0, 1.0, 1.0)
        assert tree.insert(1.0, 1.0, 1.0)
        assert tree.count_at(1.0, 1.0, 1.0) == 2
        assert tree.count_at(5.0, 5.0, 5.0) == 0

    def test_outside_rejected(self):
        tree = OctoMap((0, 0, 0), half_extent=1.0, resolution=0.2)
        assert not tree.insert(5.0, 0.0, 0.0)
        assert tree.n_points == 0

    def test_leaf_size_bound(self):
        tree = OctoMap((0, 0, 0), half_extent=8.0, resolution=0.2)
        assert tree.leaf_size <= 0.2

    def test_leaves_enumeration(self):
        tree = OctoMap((0, 0, 0), half_extent=4.0, resolution=0.5)
        tree.insert(1.0, 1.0, 1.0)
        tree.insert(-1.0, -1.0, -1.0)
        leaves = list(tree.leaves())
        assert len(leaves) == 2
        assert sum(count for *_xyz, count in leaves) == 2

    def test_merge_columns_z_filter(self):
        tree = OctoMap((0, 0, 0), half_extent=4.0, resolution=0.5)
        for z in (0.2, 0.7, 1.2, 3.5):
            tree.insert(1.0, 1.0, z)
        columns = tree.merge_columns(z_min=0.0, z_max=2.0)
        assert sum(columns.values()) == 3  # the z=3.5 point is excluded

    def test_for_cloud_encloses_points(self):
        xyz = np.array([[0, 0, 0], [10, 5, 2], [-3, 8, 1]], dtype=float)
        tree = OctoMap.for_cloud(xyz, resolution=0.25)
        assert tree.insert_array(xyz) == 3

    def test_bad_resolution(self):
        with pytest.raises(MappingError):
            OctoMap((0, 0, 0), half_extent=1.0, resolution=0.0)
