"""fast_deepcopy must keep copy.deepcopy's semantics on snapshot graphs.

The structured fast copy (``persist/fastcopy.py``) replaces
``copy.deepcopy`` on the checkpoint and restore paths; these tests pin
the properties the durability lane depends on: deep independence,
aliasing preservation (one Task in two collections stays one Task in
the copy), cycle termination, ``__deepcopy__`` hooks, and fallback
equivalence for protocol-customised types — plus a differential against
``copy.deepcopy`` on a real exported backend state graph.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.config import paper_config
from repro.eval import Workbench
from repro.obs.metrics import Histogram
from repro.persist.fastcopy import fast_deepcopy
from repro.persist.snapshot import structural_size
from repro.server import Deployment


@dataclass
class PlainRow:
    key: str
    values: list = field(default_factory=list)


@dataclass(frozen=True)
class FrozenRow:
    key: str
    payload: tuple = ()


class SlottedRow:
    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b


class CustomCopy:
    def __init__(self, tag):
        self.tag = tag

    def __deepcopy__(self, memo):
        return CustomCopy(self.tag + "-copied")


class TestAtomsAndContainers:
    def test_atoms_return_themselves(self):
        for atom in (None, True, 7, 2.5, "s", b"b", range(3), fast_deepcopy):
            assert fast_deepcopy(atom) is atom

    def test_containers_are_deep_and_independent(self):
        src = {"a": [1, [2, 3]], "b": {4}, "c": (5, [6]), "d": deque([7])}
        out = fast_deepcopy(src)
        assert out == src
        out["a"][1].append(99)
        out["c"][1].append(99)
        assert src["a"][1] == [2, 3]
        assert src["c"][1] == [6]

    def test_all_atomic_tuple_is_shared(self):
        t = (1, "x", 2.5)
        assert fast_deepcopy(t) is t

    def test_aliasing_is_preserved(self):
        row = PlainRow("shared", [1])
        src = {"queue": [row], "ledger": {"k": row}, "pair": (row, row)}
        out = fast_deepcopy(src)
        assert out["queue"][0] is out["ledger"]["k"]
        assert out["pair"][0] is out["pair"][1] is out["queue"][0]
        assert out["queue"][0] is not row

    def test_cycles_terminate(self):
        src = {"name": "loop"}
        src["self"] = src
        lst = [1]
        lst.append(lst)
        src["list"] = lst
        out = fast_deepcopy(src)
        assert out["self"] is out
        assert out["list"][1] is out["list"]
        assert out is not src

    def test_deque_keeps_maxlen(self):
        src = deque([1, 2, 3], maxlen=3)
        out = fast_deepcopy(src)
        assert out.maxlen == 3 and list(out) == [1, 2, 3]
        out.append(4)
        assert list(src) == [1, 2, 3]


class TestClasses:
    def test_plain_dataclass_fast_path(self):
        row = PlainRow("k", [1, 2])
        out = fast_deepcopy(row)
        assert out is not row and out == row
        out.values.append(3)
        assert row.values == [1, 2]

    def test_frozen_dataclass(self):
        row = FrozenRow("k", ([1], [2]))
        out = fast_deepcopy(row)
        assert out == row and out is not row
        assert out.payload[0] is not row.payload[0]

    def test_slotted_class(self):
        row = SlottedRow([1], {"x": 2})
        out = fast_deepcopy(row)
        assert out.a == [1] and out.a is not row.a
        assert out.b == {"x": 2} and out.b is not row.b

    def test_dunder_deepcopy_is_honoured(self):
        src = [CustomCopy("t")]
        out = fast_deepcopy(src)
        assert out[0].tag == "t-copied"

    def test_telemetry_instruments_copy_as_themselves(self):
        h = Histogram("repro.test.h")
        h.record(1.0)
        out = fast_deepcopy({"h": h})
        assert out["h"] is h  # live handle, identity __deepcopy__

    def test_fallback_matches_deepcopy_for_protocol_types(self):
        arr = np.arange(6, dtype=np.float64).reshape(2, 3)
        src = {"arr": arr, "alias": arr}
        out = fast_deepcopy(src)
        assert out["arr"] is not arr
        assert np.array_equal(out["arr"], arr)
        # aliasing across the deepcopy-fallback region survives the
        # shared memo
        assert out["arr"] is out["alias"]
        out["arr"][0, 0] = 99.0
        assert arr[0, 0] == 0.0


class TestDifferentialOnRealState:
    """fast_deepcopy vs copy.deepcopy on an exported backend graph."""

    @pytest.fixture(scope="class")
    def exported_state(self):
        deployment = Deployment(
            Workbench.for_library(paper_config()), n_clients=2
        )
        deployment.run(until_s=4_000.0, max_events=200_000)
        server = deployment.server
        with server.pipeline.compact_history():
            yield server.export_state()

    def test_same_structural_size_and_keys(self, exported_state):
        fast = fast_deepcopy(exported_state)
        slow = copy.deepcopy(exported_state)
        assert fast.keys() == slow.keys() == exported_state.keys()
        assert (
            structural_size(fast)
            == structural_size(slow)
            == structural_size(exported_state)
        )

    def test_copy_is_independent_of_the_live_graph(self, exported_state):
        fast = fast_deepcopy(exported_state)
        assert fast["_task_queue"] is not exported_state["_task_queue"]
        assert list(fast["_task_queue"]) == list(exported_state["_task_queue"])
        assert fast["_request_ledger"] == exported_state["_request_ledger"]
        assert fast["_request_ledger"] is not exported_state["_request_ledger"]

    def test_in_graph_aliasing_matches_deepcopy(self, exported_state):
        fast = fast_deepcopy(exported_state)
        slow = copy.deepcopy(exported_state)

        def shared_ids(state):
            # map id(original) -> how many container slots point at it
            seen = {}
            for task in state["_task_queue"]:
                seen[id(task)] = seen.get(id(task), 0) + 1
            return sorted(seen.values())

        assert shared_ids(fast) == shared_ids(slow)
