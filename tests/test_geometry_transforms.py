"""Tests for the pin-hole projection and pixel-ray back-projection."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import PinholeProjection, Segment, Vec2, Vec3


def make_projection(x=0.0, y=0.0, yaw=0.0, z=1.5):
    return PinholeProjection(
        position=Vec3(x, y, z),
        yaw_rad=yaw,
        focal_px=3000.0,
        image_width_px=4000,
        image_height_px=3000,
    )


class TestProjection:
    def test_point_on_axis_hits_center(self):
        proj = make_projection()
        pixel = proj.project(Vec3(5.0, 0.0, 1.5))
        assert pixel is not None
        assert pixel.x == pytest.approx(2000.0)
        assert pixel.y == pytest.approx(1500.0)

    def test_point_behind_camera(self):
        proj = make_projection()
        assert proj.project(Vec3(-5.0, 0.0, 1.5)) is None

    def test_point_above_projects_up(self):
        proj = make_projection()
        pixel = proj.project(Vec3(5.0, 0.0, 2.5))
        assert pixel is not None
        assert pixel.y < 1500.0  # image v decreases upward

    def test_point_out_of_frame(self):
        proj = make_projection()
        # Nearly perpendicular to the optical axis.
        assert proj.project(Vec3(0.1, 50.0, 1.5)) is None

    def test_project_unclamped_returns_offscreen(self):
        proj = make_projection()
        pixel = proj.project_unclamped(Vec3(1.0, 3.0, 1.5))
        assert pixel is not None
        assert not (0 <= pixel.x < 4000)

    def test_clamp_pixel(self):
        proj = make_projection()
        clamped = proj.clamp_pixel(Vec2(-10, 5000))
        assert clamped == Vec2(0.0, 2999.0)

    @given(
        st.floats(1.0, 20.0),
        st.floats(-1.0, 1.0),
        st.floats(0.2, 2.6),
        st.floats(-math.pi, math.pi),
    )
    def test_pixel_ray_roundtrip(self, forward, lateral, height, yaw):
        """Back-projecting a projected point returns a ray through it."""
        proj = make_projection(yaw=yaw)
        c, s = math.cos(yaw), math.sin(yaw)
        # World point from camera-frame offsets.
        right = Vec2(-s, c)
        world = Vec3(
            c * forward + right.x * lateral,
            s * forward + right.y * lateral,
            height,
        )
        pixel = proj.project_unclamped(world)
        if pixel is None:
            return
        origin, direction = proj.pixel_ray(pixel)
        # The point must lie on the ray.
        t = (
            (world.x - origin.x) * direction.x
            + (world.y - origin.y) * direction.y
            + (world.z - origin.z) * direction.z
        )
        closest = Vec3(
            origin.x + direction.x * t,
            origin.y + direction.y * t,
            origin.z + direction.z * t,
        )
        assert closest.distance_to(world) < 1e-6 * max(1.0, world.norm())


class TestWallIntersection:
    def test_frontal_wall_hit(self):
        proj = make_projection()
        wall = Segment(Vec2(5, -3), Vec2(5, 3))
        hit = proj.intersect_pixel_with_wall(Vec2(2000, 1500), wall)
        assert hit is not None
        assert hit.x == pytest.approx(5.0)
        assert hit.y == pytest.approx(0.0, abs=1e-9)
        assert hit.z == pytest.approx(1.5)

    def test_upper_pixel_hits_higher(self):
        proj = make_projection()
        wall = Segment(Vec2(5, -3), Vec2(5, 3))
        hit = proj.intersect_pixel_with_wall(Vec2(2000, 600), wall)
        assert hit is not None
        assert hit.z > 1.5

    def test_miss_outside_extent(self):
        proj = make_projection()
        wall = Segment(Vec2(5, 10), Vec2(5, 13))
        assert proj.intersect_pixel_with_wall(Vec2(2000, 1500), wall) is None

    def test_extend_frac_tolerates_overshoot(self):
        proj = make_projection()
        wall = Segment(Vec2(5, 0.05), Vec2(5, 3))
        # Central pixel ray passes at y=0, barely outside the wall start.
        assert proj.intersect_pixel_with_wall(Vec2(2000, 1500), wall) is None
        hit = proj.intersect_pixel_with_wall(Vec2(2000, 1500), wall, extend_frac=0.1)
        assert hit is not None

    def test_behind_camera_none(self):
        proj = make_projection()
        wall = Segment(Vec2(-5, -3), Vec2(-5, 3))
        assert proj.intersect_pixel_with_wall(Vec2(2000, 1500), wall) is None

    def test_bearing_to(self):
        proj = make_projection()
        pose_bearing = proj.bearing_to(Vec2(1.0, 1.0))
        assert pose_bearing == pytest.approx(math.pi / 4)
