"""Tests for the server-side AnnotationProcessor."""

import pytest

from repro.annotation import AnnotationCampaign, AnnotationProcessor
from repro.camera import GALAXY_S7
from repro.geometry import Vec2
from repro.simkit import RngStream


@pytest.fixture()
def glass_set(bench):
    campaign = AnnotationCampaign(
        bench.venue, bench.capture, bench.config, RngStream(91, "proc-test")
    )
    surface, photos = campaign.collect_photos(Vec2(0.5, 7.0), GALAXY_S7)
    context = campaign.collect_context_photos(Vec2(0.5, 7.0), GALAXY_S7)
    return surface, photos, context


class TestProcessor:
    def test_process_identifies_and_imprints(self, bench, glass_set):
        _surface, photos, _context = glass_set
        processor = AnnotationProcessor(
            bench.venue, bench.config, RngStream(92, "proc")
        )
        result = processor.process(photos)
        assert result.n_annotations > 0
        assert len(result.objects) >= 1
        assert result.imprint.objects
        assert result.imprint.all_feature_ids()

    def test_textures_unique_across_calls(self, bench, glass_set):
        _surface, photos, _context = glass_set
        processor = AnnotationProcessor(
            bench.venue, bench.config, RngStream(93, "proc2")
        )
        first = processor.process(photos)
        # Processing a second (identical) set must issue fresh textures.
        second = processor.process(photos)
        ids_a = set(first.imprint.all_feature_ids())
        ids_b = set(second.imprint.all_feature_ids())
        assert ids_a and ids_b
        assert not (ids_a & ids_b)

    def test_split_batch_by_source(self, bench, glass_set):
        _surface, photos, context = glass_set
        annotated, rest = AnnotationProcessor.split_batch(list(photos) + context)
        assert {p.photo_id for p in annotated} == {p.photo_id for p in photos}
        assert {p.photo_id for p in rest} == {p.photo_id for p in context}

    def test_worker_draws_vary_between_sets(self, bench, glass_set):
        """Per-set RNG: two sets must not get identical worker behaviour."""
        _surface, photos, _context = glass_set
        processor = AnnotationProcessor(
            bench.venue, bench.config, RngStream(94, "proc3")
        )
        a = processor.process(photos)
        b = processor.process(photos)
        corners_a = a.objects[0].corners_by_photo[photos[0].photo_id]
        corners_b = b.objects[0].corners_by_photo[photos[0].photo_id]
        assert not (corners_a == corners_b).all()
