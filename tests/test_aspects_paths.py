"""Tests for aspect coverage and the Fig. 8/9 path renderers."""

import numpy as np
import pytest

from repro.camera import GALAXY_S7, CameraPose
from repro.eval.paths import (
    path_statistics,
    render_photo_positions,
    render_task_positions,
)
from repro.geometry import BoundingBox, Vec2
from repro.mapping import Grid2D, GridSpec, calculate_aspect_coverage
from repro.mapping.aspects import AspectCoverage, N_ASPECT_BUCKETS
from repro.sfm import PointCloud, SfmModel
from repro.sfm.model import RecoveredCamera
from repro.sfm.pointcloud import CloudPoint


def camera_at(photo_id, x, y, yaw, observed):
    return RecoveredCamera(
        photo_id=photo_id,
        pose=CameraPose.at(x, y, yaw),
        intrinsics=GALAXY_S7,
        n_inliers=10,
        observed_feature_ids=np.asarray(observed, dtype=int),
    )


class TestAspectCoverage:
    def spec(self):
        return GridSpec.from_bbox(BoundingBox(0, 0, 10, 10), 0.25, 0.0)

    def ring_model(self, target=Vec2(5, 5), radius=2.0, n=8):
        """Cameras on a ring, all looking at the centre; one point there."""
        import math

        cloud = PointCloud([CloudPoint(1, target.x, target.y, 1.0, 3)])
        cameras = []
        for i in range(n):
            angle = 2 * math.pi * i / n
            pos = target + Vec2.from_angle(angle, radius)
            cameras.append(
                camera_at(i + 1, pos.x, pos.y, angle + math.pi, [1])
            )
        return SfmModel(cloud, cameras)

    def test_ring_gives_many_aspects_at_center(self):
        spec = self.spec()
        model = self.ring_model()
        aspects = calculate_aspect_coverage(model, Grid2D(spec), 5.0)
        counts = aspects.aspects_seen()
        center = spec.cell_of(Vec2(5, 5))
        assert counts[center] >= 6

    def test_single_camera_single_aspect(self):
        spec = self.spec()
        cloud = PointCloud([CloudPoint(1, 7.0, 5.0, 1.0, 3)])
        model = SfmModel(cloud, [camera_at(1, 3.0, 5.0, 0.0, [1])])
        aspects = calculate_aspect_coverage(model, Grid2D(spec), 6.0)
        counts = aspects.aspects_seen()
        assert counts.max() == 1

    def test_mean_and_fraction_statistics(self):
        spec = self.spec()
        model = self.ring_model()
        aspects = calculate_aspect_coverage(model, Grid2D(spec), 5.0)
        assert 0.0 < aspects.mean_aspects() <= N_ASPECT_BUCKETS
        all_cells = aspects.fully_covered_fraction(min_aspects=1)
        strict = aspects.fully_covered_fraction(min_aspects=6)
        assert 0.0 <= strict <= all_cells <= 1.0

    def test_empty_model(self):
        spec = self.spec()
        aspects = calculate_aspect_coverage(SfmModel.empty(), Grid2D(spec), 5.0)
        assert aspects.mean_aspects() == 0.0
        assert aspects.fully_covered_fraction() == 0.0


class TestPathRendering:
    def test_photo_positions_rendered(self, bench):
        photos = [
            bench.capture.take_photo(CameraPose.at(3, 3), GALAXY_S7),
            bench.capture.take_photo(CameraPose.at(10, 5), GALAXY_S7),
        ]
        art = render_photo_positions(bench.spec, photos, bench.ground_truth.region_mask)
        assert art.count("o") >= 1
        assert "~" in art

    def test_task_positions_symbols(self, bench):
        art = render_task_positions(
            bench.spec,
            [("photo_collection", 5.0, 5.0), ("annotation", 10.0, 10.0)],
            arrived_positions=[Vec2(6.0, 6.0)],
            region_mask=bench.ground_truth.region_mask,
        )
        assert "T" in art
        assert "A" in art
        assert "x" in art

    def test_out_of_grid_points_skipped(self, bench):
        art = render_task_positions(bench.spec, [("photo_collection", 999.0, 999.0)])
        assert "T" not in art

    def test_path_statistics(self, bench):
        photos = [bench.capture.take_photo(CameraPose.at(3, 3), GALAXY_S7)]
        stats = path_statistics(photos)
        assert stats["n_photos"] == 1
        assert stats["bbox"][0] == pytest.approx(3.0)
        assert path_statistics([])["n_photos"] == 0
