"""Tests for materials, surfaces, the venue model and the library replica."""

import pytest

from repro.errors import VenueError
from repro.geometry import Segment, Vec2
from repro.venue import (
    BRICK,
    GLASS,
    PLASTER,
    POSTER,
    Surface,
    SurfaceKind,
    box_surfaces,
    build_library,
    material_by_name,
    preset_names,
)


class TestMaterials:
    def test_glass_is_featureless_and_transparent(self):
        assert GLASS.featureless
        assert not GLASS.opaque
        assert GLASS.reflective

    def test_brick_is_textured(self):
        assert not BRICK.featureless
        assert BRICK.opaque

    def test_plaster_is_featureless_but_not_empty(self):
        # Real plaster has a few features (outlets, skirting) yet cannot
        # be reconstructed usefully.
        assert PLASTER.featureless
        assert PLASTER.feature_density > 0

    def test_lookup(self):
        assert material_by_name("brick") is BRICK
        with pytest.raises(VenueError):
            material_by_name("vibranium")
        assert "glass" in preset_names()

    def test_negative_density_rejected(self):
        from repro.venue import Material

        with pytest.raises(VenueError):
            Material("bad", feature_density=-1.0)


class TestSurface:
    def make(self, material=BRICK, height=2.7, base_z=0.0):
        return Surface(
            surface_id=1,
            segment=Segment(Vec2(0, 0), Vec2(4, 0)),
            material=material,
            kind=SurfaceKind.OUTER_WALL,
            height=height,
            base_z=base_z,
        )

    def test_area(self):
        assert self.make().area == pytest.approx(4 * 2.7)

    def test_corners_order(self):
        corners = self.make().corners()
        assert corners[0].as_tuple() == (0, 0, 0)
        assert corners[1].as_tuple() == (4, 0, 0)
        assert corners[2].as_tuple() == (4, 0, 2.7)
        assert corners[3].as_tuple() == (0, 0, 2.7)

    def test_point_at(self):
        p = self.make().point_at(0.5, 0.5)
        assert p.as_tuple() == (2.0, 0.0, pytest.approx(1.35))

    def test_bad_height(self):
        with pytest.raises(VenueError):
            self.make(height=0.0)

    def test_facing_point(self):
        surface = self.make()
        front = surface.facing_point(2.0)
        assert front.y == pytest.approx(2.0)

    def test_box_surfaces(self):
        sides = box_surfaces(10, 0, 0, 2, 1, BRICK, height=1.0)
        assert len(sides) == 4
        assert [s.surface_id for s in sides] == [10, 11, 12, 13]
        perimeter = sum(s.segment.length for s in sides)
        assert perimeter == pytest.approx(6.0)
        with pytest.raises(VenueError):
            box_surfaces(0, 1, 1, 1, 2, BRICK, 1.0)


class TestLibrary:
    def test_size_roughly_350(self, library):
        assert 300 <= library.floor_area() <= 380

    def test_two_materials_of_outer_walls(self, library):
        materials = {s.material.name for s in library.outer_wall_surfaces()}
        assert materials == {"brick", "glass"}

    def test_entrance_traversable_and_inside(self, library):
        assert library.is_traversable(library.entrance)

    def test_hotspots_traversable(self, library):
        for hotspot in library.hotspots:
            assert library.is_traversable(hotspot.position), hotspot.label

    def test_annex_hotspot_is_rare(self, library):
        annex = next(h for h in library.hotspots if h.label == "annex-room")
        others = [h.weight for h in library.hotspots if h.label != "annex-room"]
        assert annex.weight < min(others)

    def test_outer_bounds_excludes_entrance(self, library):
        total = library.outer_bounds_length()
        perimeter = library.outer.perimeter()
        assert total < perimeter  # the entrance gap is excluded
        assert perimeter - total == pytest.approx(1.8, abs=0.01)

    def test_glass_walls_are_featureless(self, library):
        featureless = library.featureless_surfaces()
        assert any(s.material.name == "glass" for s in featureless)
        assert any(s.material.name == "plaster" for s in featureless)

    def test_nearest_featureless_surface(self, library):
        surface = library.nearest_featureless_surface(Vec2(0.5, 7.0))
        assert "west-glass" in surface.label

    def test_furniture_blocks_traversal(self, library):
        # Inside a bookshelf row.
        assert not library.is_traversable(Vec2(10.0, 2.2))
        assert library.is_obstructed(Vec2(10.0, 2.2))

    def test_nearest_traversable_escapes_furniture(self, library):
        p = library.nearest_traversable(Vec2(10.0, 2.2))
        assert library.is_traversable(p)
        assert p.distance_to(Vec2(10.0, 2.2)) < 1.5

    def test_surface_lookup_error(self, library):
        with pytest.raises(VenueError):
            library.surface(99999)

    def test_opaque_soup_excludes_glass(self, library):
        n_glass = sum(
            1
            for s in library.surfaces
            if not s.material.opaque and s.kind != SurfaceKind.DECOR
        )
        assert len(library.opaque_soup) == len(
            [s for s in library.surfaces if s.opaque and s.kind != SurfaceKind.DECOR]
        )
        assert n_glass > 0

    def test_describe_mentions_name(self, library):
        assert "aalto-library-replica" in library.describe()

    def test_deterministic_construction(self, library):
        other = build_library()
        assert len(other.surfaces) == len(library.surfaces)
        assert other.outer_bounds_length() == library.outer_bounds_length()


class TestOffice:
    def test_generated_office_is_consistent(self, office):
        assert office.floor_area() > 50
        assert office.is_traversable(office.entrance)
        for hotspot in office.hotspots:
            assert office.is_traversable(hotspot.position)

    def test_office_spec_validation(self):
        from repro.venue import OfficeSpec

        with pytest.raises(VenueError):
            OfficeSpec(width_m=2.0).validate()
        with pytest.raises(VenueError):
            OfficeSpec(glass_walls=7).validate()
