"""Tracer spans: sim-time intervals, cross-event context propagation,
bounded ring, and the deprecated ``Simulator.enable_tracing`` shim."""

import pytest

from repro.obs import Telemetry
from repro.obs.tracing import NULL_TRACER, NullSpan, Tracer
from repro.simkit.events import Simulator


def _span_by_name(tracer, name):
    spans = tracer.spans(name=name)
    assert len(spans) == 1, f"expected exactly one {name!r} span, got {spans}"
    return spans[0]


class TestSpanShapes:
    def test_scoped_span_records_sim_interval(self):
        clock = {"t": 10.0}
        tracer = Tracer(clock=lambda: clock["t"])
        with tracer.span("work", category="app", foo=1) as span:
            clock["t"] = 12.5
        assert span.finished
        assert span.start_sim_s == 10.0
        assert span.end_sim_s == 12.5
        assert span.sim_duration_s == pytest.approx(2.5)
        assert span.attrs["foo"] == 1
        assert span.wall_ms >= 0.0

    def test_nested_scoped_spans_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_detached_begin_end_with_outcome_attrs(self):
        tracer = Tracer()
        span = tracer.begin("lease", category="server", task_id=7)
        assert not span.finished
        span.end(outcome="released")
        assert span.finished
        assert span.attrs == {"task_id": 7, "outcome": "released"}

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("once")
        span.end()
        span.end(outcome="again")
        assert "outcome" not in span.attrs
        assert tracer.finished_count == 1

    def test_record_known_endpoints(self):
        tracer = Tracer()
        span = tracer.record("net.msg", 5.0, 8.0, category="net", size_mb=2.5)
        assert span.start_sim_s == 5.0 and span.end_sim_s == 8.0
        assert tracer.spans(category="net") == [span]

    def test_instant(self):
        clock = {"t": 3.0}
        tracer = Tracer(clock=lambda: clock["t"])
        span = tracer.instant("tick")
        assert span.start_sim_s == span.end_sim_s == 3.0


class TestContextPropagation:
    def test_span_context_crosses_event_queue_hops(self):
        """A span opened in one handler is the ancestor of spans created
        when a later event (scheduled inside it) fires."""
        telemetry = Telemetry.enable()
        sim = Simulator(telemetry=telemetry)
        tracer = telemetry.tracer
        seen = {}

        def later():
            span = tracer.begin("work.later")
            span.end()
            seen["later"] = span

        def first():
            with tracer.span("work.first") as span:
                seen["first"] = span
                sim.schedule(5.0, later, label="ev-later")

        sim.schedule(1.0, first, label="ev-first")
        sim.run()

        # The dispatch span of ev-later parents to work.first (captured at
        # schedule time), and work.later parents to that dispatch span.
        dispatch_later = _span_by_name(tracer, "ev-later")
        assert dispatch_later.parent_id == seen["first"].span_id
        assert seen["later"].parent_id == dispatch_later.span_id

    def test_no_ambient_context_means_no_parent(self):
        telemetry = Telemetry.enable()
        sim = Simulator(telemetry=telemetry)
        sim.schedule(1.0, lambda: None, label="root-ev")
        sim.run()
        assert _span_by_name(telemetry.tracer, "root-ev").parent_id is None

    def test_capture_activate_roundtrip(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            ctx = tracer.capture()
        assert tracer.current_id() is None
        with tracer.activate(ctx):
            assert tracer.current_id() == outer.span_id
        assert tracer.current_id() is None

    def test_activate_none_is_noop(self):
        tracer = Tracer()
        with tracer.activate(None):
            assert tracer.current_id() is None


class TestRingBuffer:
    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record(f"s{i}", 0.0, 1.0)
        spans = tracer.spans()
        assert len(spans) == 4
        assert [s.name for s in spans] == ["s6", "s7", "s8", "s9"]
        assert tracer.dropped_spans == 6
        assert tracer.finished_count == 10

    def test_clear(self):
        tracer = Tracer(capacity=4)
        tracer.record("s", 0.0, 1.0)
        tracer.counter("repro.q", 1.0)
        tracer.clear()
        assert tracer.spans() == [] and tracer.counter_samples() == []


class TestSimulatorIntegration:
    def test_dispatch_spans_and_queue_metrics(self):
        telemetry = Telemetry.enable()
        sim = Simulator(telemetry=telemetry)
        sim.schedule(1.0, lambda: None, label="a")
        sim.schedule(2.0, lambda: None, label="b")
        sim.run()
        names = [s.name for s in telemetry.tracer.spans(category="sim.event")]
        assert names == ["a", "b"]
        assert telemetry.metrics.get("repro.sim.events.dispatched").value == 2
        samples = telemetry.tracer.counter_samples("repro.sim.queue.depth")
        assert len(samples) == 2

    def test_cancelled_events_are_counted_not_silent(self):
        telemetry = Telemetry.enable()
        sim = Simulator(telemetry=telemetry)
        token = sim.schedule(1.0, lambda: None, label="doomed")
        sim.schedule(2.0, lambda: None, label="kept")
        token.cancel()
        sim.run()
        assert telemetry.metrics.get("repro.sim.events.cancelled").value == 1
        assert telemetry.metrics.get("repro.sim.events.dispatched").value == 1

    def test_legacy_enable_tracing_shim_format(self):
        sim = Simulator()
        sim.enable_tracing()
        sim.schedule(1.0, lambda: None, label="tick")
        sim.run()
        assert sim.trace == ["1.000000:tick"]

    def test_legacy_shim_is_bounded(self):
        sim = Simulator()
        sim.enable_tracing(capacity=8)
        for i in range(20):
            sim.schedule(float(i), lambda: None, label=f"e{i}")
        sim.run()
        assert len(sim.trace) == 8
        assert sim.tracer.dropped_spans == 12

    def test_default_simulator_has_null_telemetry(self):
        sim = Simulator()
        assert sim.tracer is NULL_TRACER
        assert sim.telemetry.enabled is False


class TestNullFastPath:
    def test_null_tracer_everything_is_noop(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.begin("x")
        assert isinstance(span, NullSpan)
        span.end(outcome="ignored")
        with NULL_TRACER.span("y"):
            pass
        NULL_TRACER.counter("repro.q", 1.0)
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.counter_samples() == []
        assert NULL_TRACER.capture() is None

    def test_null_span_is_shared_and_immutable_shape(self):
        a = NULL_TRACER.begin("a")
        b = NULL_TRACER.span("b")
        assert a is b
        assert a.set_attr("k", "v") is a
        assert a.attrs == {}
