"""The parallel campaign executor: determinism, fault paths, merging.

Pins the tentpole contract: ``--jobs N`` must change wall clock only.
Summaries, labels, progress lines and artifact bytes are byte-identical
to the serial loop because shards merge in campaign-index order; a
worker killed mid-campaign becomes a recorded ``worker-crash`` failure
with a replayable seed artifact and the pool drains cleanly.

The cheap pool-plumbing tests use the ``selftest`` task (no deployment
runs); the byte-equality pins run real bounded fuzz batches like
``test_dst_smoke`` does.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.testkit import load_artifact, replay_artifact
from repro.testkit.executor import (
    ENVELOPE_SCHEMA,
    ExecutorStats,
    resolve_jobs,
    run_shards,
)
from repro.testkit.fuzzer import run_fuzz


class TestResolveJobs:
    def test_int_and_string_forms(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("2") == 2

    def test_auto_resolves_to_at_least_one(self):
        assert resolve_jobs("auto") >= 1
        assert resolve_jobs(None) >= 1

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs("-1")

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError, match="unknown executor task"):
            list(run_shards("no-such-task", [{}]))


class TestPoolPlumbing:
    """Selftest-task shards: ordering, crash, raise, early close."""

    def test_inline_path_preserves_order_and_envelopes(self):
        stats = ExecutorStats()
        out = list(
            run_shards(
                "selftest",
                [{"mode": "echo", "value": i} for i in range(4)],
                jobs=1,
                stats=stats,
            )
        )
        assert [e["index"] for e in out] == [0, 1, 2, 3]
        assert [e["payload"]["value"] for e in out] == [0, 1, 2, 3]
        assert all(e["schema"] == ENVELOPE_SCHEMA for e in out)
        assert stats.jobs == 1 and stats.shards == 4
        assert stats.workers_spawned == 0  # inline: no processes

    def test_pool_emits_in_index_order(self):
        stats = ExecutorStats()
        out = list(
            run_shards(
                "selftest",
                [{"mode": "echo", "value": i} for i in range(6)],
                jobs=3,
                stats=stats,
            )
        )
        assert [e["payload"]["value"] for e in out] == list(range(6))
        assert stats.jobs == 3
        assert stats.workers_spawned == 3
        assert stats.total_busy_s >= stats.critical_path_s >= 0.0

    def test_task_exception_returns_error_envelope(self):
        out = list(
            run_shards(
                "selftest",
                [{"mode": "echo", "value": 1}, {"mode": "raise", "message": "boom"}],
                jobs=2,
            )
        )
        assert out[0]["ok"] and out[0]["payload"] == {"value": 1}
        assert not out[1]["ok"]
        assert "boom" in out[1]["error"]
        assert not out[1].get("worker_crash", False)

    def test_worker_death_yields_crash_envelope_and_pool_drains(self):
        stats = ExecutorStats()
        specs = [
            {"mode": "echo", "value": 0},
            {"mode": "exit"},  # hard os._exit mid-shard
            {"mode": "echo", "value": 2},
            {"mode": "echo", "value": 3},
        ]
        out = list(run_shards("selftest", specs, jobs=2, stats=stats))
        assert [e["index"] for e in out] == [0, 1, 2, 3]
        crash = out[1]
        assert not crash["ok"] and crash["worker_crash"]
        assert "mid-shard" in crash["error"]
        # every other shard still completed, in order
        assert out[0]["payload"]["value"] == 0
        assert out[2]["payload"]["value"] == 2
        assert out[3]["payload"]["value"] == 3
        assert stats.worker_crashes == 1

    def test_closing_the_generator_early_shuts_the_pool_down(self):
        gen = run_shards(
            "selftest",
            [{"mode": "echo", "value": i} for i in range(8)],
            jobs=2,
        )
        first = next(gen)
        assert first["payload"]["value"] == 0
        gen.close()  # must not hang or leak workers


class TestFuzzByteEquality:
    """`repro fuzz --jobs 2` output is byte-identical to `--jobs 1`."""

    def _run(self, jobs, **kwargs):
        lines = []
        summary = run_fuzz(
            master_seed=0,
            check_determinism=False,
            progress=lines.append,
            jobs=jobs,
            **kwargs,
        )
        return lines, summary

    def test_passing_batch_is_byte_identical(self):
        serial_lines, serial = self._run(1, campaigns=2, shrink=False)
        parallel_lines, parallel = self._run(2, campaigns=2, shrink=False)
        assert serial_lines == parallel_lines
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    def test_failing_batch_shrinks_and_writes_identical_artifacts(self, tmp_path):
        mutation = "skip-batch-dedupe"
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial_lines, serial = self._run(
            1,
            campaigns=2,
            mutation=mutation,
            shrink=True,
            shrink_budget=8,
            artifact_dir=serial_dir,
        )
        parallel_lines, parallel = self._run(
            2,
            campaigns=2,
            mutation=mutation,
            shrink=True,
            shrink_budget=8,
            artifact_dir=parallel_dir,
        )
        assert not serial.ok and not parallel.ok
        # identical summaries (artifact filenames are seed-derived)...
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )
        # ...identical progress lines except the artifact-dir prefix
        normalize = lambda lines: [  # noqa: E731
            line.replace(str(serial_dir), "D").replace(str(parallel_dir), "D")
            for line in lines
        ]
        assert normalize(serial_lines) == normalize(parallel_lines)
        # ...and byte-identical artifact files
        serial_files = sorted(p.name for p in serial_dir.iterdir())
        parallel_files = sorted(p.name for p in parallel_dir.iterdir())
        assert serial_files == parallel_files and serial_files
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == (
                parallel_dir / name
            ).read_bytes()


class TestFuzzWorkerCrash:
    def test_killed_worker_records_replayable_failure(self, tmp_path):
        lines = []
        stats = ExecutorStats()
        metrics = MetricsRegistry()
        summary = run_fuzz(
            campaigns=3,
            master_seed=0,
            check_determinism=False,
            shrink=False,
            artifact_dir=tmp_path,
            progress=lines.append,
            jobs=2,
            stats=stats,
            metrics=metrics,
            _kill_indices=[1],
        )
        # the other two campaigns completed normally
        assert summary.passed == 2
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert failure.index == 1
        assert failure.result.failure_kind == "worker-crash"
        assert summary.labels["worker-crash"] == 1
        assert stats.worker_crashes == 1
        assert any("WORKER CRASH" in line for line in lines)
        # the artifact is valid and replayable: the scenario itself is
        # healthy, so the replay runs clean (the crash was the host
        # process dying, not the simulation)
        assert failure.artifact_path is not None
        doc = load_artifact(failure.artifact_path)
        assert doc["failure"] == "worker-crash"
        replayed = replay_artifact(doc, check_determinism=False)
        assert replayed.ok
        # per-worker metrics from the surviving workers still merged
        assert metrics.counter("repro.executor.campaigns").value == 2


class TestRecoverJobsParity:
    def test_recover_output_is_identical_across_jobs(self, capsys):
        from repro.cli import main

        argv = ["recover", "--until", "12000", "--crash-at", "2000"]
        code_serial = main(argv + ["--jobs", "1"])
        out_serial = capsys.readouterr().out
        code_parallel = main(argv + ["--jobs", "2"])
        out_parallel = capsys.readouterr().out
        assert code_serial == code_parallel
        assert out_serial == out_parallel
        assert "crashed run:" in out_serial
