"""Tests for segments, interval merging, and polygon edges."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    Segment,
    Vec2,
    iter_polygon_edges,
    merge_intervals,
    polyline_length,
    total_interval_length,
)

coord = st.floats(-50, 50, allow_nan=False, allow_infinity=False)


class TestSegment:
    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Segment(Vec2(1, 1), Vec2(1, 1))

    def test_length_direction(self):
        s = Segment(Vec2(0, 0), Vec2(3, 4))
        assert s.length == pytest.approx(5.0)
        d = s.direction
        assert d.x == pytest.approx(0.6)
        assert d.y == pytest.approx(0.8)

    def test_midpoint_and_point_at(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        assert s.midpoint == Vec2(5, 0)
        assert s.point_at(0.25) == Vec2(2.5, 0)

    def test_sample_points_cover_both_ends(self):
        s = Segment(Vec2(0, 0), Vec2(1, 0))
        points = s.sample_points(0.3)
        assert points[0] == Vec2(0, 0)
        assert points[-1] == Vec2(1, 0)
        gaps = [points[i].distance_to(points[i + 1]) for i in range(len(points) - 1)]
        assert all(g <= 0.3 + 1e-9 for g in gaps)

    def test_sample_points_bad_spacing(self):
        with pytest.raises(GeometryError):
            Segment(Vec2(0, 0), Vec2(1, 0)).sample_points(0.0)

    def test_closest_point_clamps(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        assert s.closest_point(Vec2(-5, 3)) == Vec2(0, 0)
        assert s.closest_point(Vec2(15, 3)) == Vec2(10, 0)
        assert s.closest_point(Vec2(5, 3)) == Vec2(5, 0)

    def test_distance_to_point(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        assert s.distance_to_point(Vec2(5, 2)) == pytest.approx(2.0)
        assert s.distance_to_point(Vec2(13, 4)) == pytest.approx(5.0)

    def test_intersection_crossing(self):
        a = Segment(Vec2(0, 0), Vec2(2, 2))
        b = Segment(Vec2(0, 2), Vec2(2, 0))
        hit = a.intersect(b)
        assert hit is not None
        assert hit.x == pytest.approx(1.0)
        assert hit.y == pytest.approx(1.0)

    def test_intersection_miss(self):
        a = Segment(Vec2(0, 0), Vec2(1, 0))
        b = Segment(Vec2(0, 1), Vec2(1, 1))
        assert a.intersect(b) is None

    def test_parallel_no_crash(self):
        a = Segment(Vec2(0, 0), Vec2(1, 0))
        b = Segment(Vec2(0.5, 0), Vec2(2, 0))
        assert a.intersect(b) is None  # collinear overlap treated as None

    def test_subsegment(self):
        s = Segment(Vec2(0, 0), Vec2(10, 0))
        sub = s.subsegment(0.2, 0.5)
        assert sub.a == Vec2(2, 0)
        assert sub.b == Vec2(5, 0)
        with pytest.raises(GeometryError):
            s.subsegment(0.5, 0.2)

    @given(coord, coord, coord, coord, st.floats(0.01, 0.99))
    def test_project_parameter_roundtrip(self, ax, ay, bx, by, t):
        if math.hypot(bx - ax, by - ay) < 1e-6:
            return
        s = Segment(Vec2(ax, ay), Vec2(bx, by))
        p = s.point_at(t)
        assert s.project_parameter(p) == pytest.approx(t, abs=1e-6)


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([], 0.1) == []

    def test_disjoint_kept(self):
        merged = merge_intervals([(0, 1), (2, 3)], 0.5)
        assert merged == [(0, 1), (2, 3)]

    def test_small_gap_merged(self):
        merged = merge_intervals([(0, 1), (1.1, 2)], 0.15)
        assert merged == [(0, 2)]

    def test_threshold_semantics(self):
        # The paper: segments merge when the gap is below T = 0.15 m.
        merged = merge_intervals([(0, 1), (1.15, 2)], 0.15)
        assert merged == [(0, 2)]
        merged = merge_intervals([(0, 1), (1.16, 2)], 0.15)
        assert len(merged) == 2

    def test_unsorted_input(self):
        merged = merge_intervals([(2, 3), (0, 1.95)], 0.1)
        assert merged == [(0, 3)]

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 5)).map(
                lambda p: (p[0], p[0] + p[1])
            ),
            max_size=30,
        ),
        st.floats(0.0, 1.0),
    )
    def test_merge_preserves_total_length_lower_bound(self, intervals, gap):
        merged = merge_intervals(intervals, gap)
        # Merged intervals are sorted and non-overlapping.
        for (lo1, hi1), (lo2, hi2) in zip(merged, merged[1:]):
            assert hi1 + gap < lo2 + 1e-12
        # Total length never decreases below the longest single interval.
        if intervals:
            longest = max(hi - lo for lo, hi in intervals)
            assert total_interval_length(merged) >= longest - 1e-9


def test_polyline_length():
    pts = [Vec2(0, 0), Vec2(3, 0), Vec2(3, 4)]
    assert polyline_length(pts) == pytest.approx(7.0)


def test_iter_polygon_edges_closes():
    pts = [Vec2(0, 0), Vec2(1, 0), Vec2(1, 1)]
    edges = list(iter_polygon_edges(pts))
    assert len(edges) == 3
    assert edges[-1].b == pts[0]
    with pytest.raises(GeometryError):
        list(iter_polygon_edges(pts[:2]))
