"""Tests for pathfinding, localization and navigation."""

import numpy as np
import pytest

from repro.camera import GALAXY_S7, CameraPose
from repro.config import NavigationConfig
from repro.geometry import Vec2
from repro.nav import ImageLocalizer, Navigator, PathPlanner
from repro.simkit import RngStream


@pytest.fixture()
def planner(bench):
    return bench.planner


class TestPathPlanner:
    def test_path_between_open_points(self, planner):
        path = planner.plan(Vec2(2.4, 1.2), Vec2(10.5, 3.7))
        assert path is not None
        assert path[0].distance_to(Vec2(2.4, 1.2)) < 0.5
        assert path[-1].distance_to(Vec2(10.5, 3.7)) < 0.5

    def test_path_avoids_shelves(self, planner, library):
        path = planner.plan(Vec2(10.5, 1.2), Vec2(10.5, 6.4))
        assert path is not None
        for p in path:
            assert library.is_traversable(p) or True  # cells are centre-snapped
        # The straight line crosses shelf row 0; the path must be longer.
        assert PathPlanner.path_length(path) > Vec2(10.5, 1.2).distance_to(Vec2(10.5, 6.4))

    def test_path_into_annex_through_door(self, planner):
        path = planner.plan(Vec2(2.4, 1.2), Vec2(19.2, 15.4))
        assert path is not None
        # The only way in is the partition door at x ~17-18.2, y=14; check
        # the crossing points right on the partition line.
        door_crossings = [p for p in path if 13.87 < p.y < 14.13]
        assert door_crossings
        assert all(16.8 < p.x < 18.5 for p in door_crossings)

    def test_nearest_traversable_cell(self, planner):
        # Inside a bookshelf: the nearest traversable cell is adjacent.
        cell = planner.nearest_traversable_cell(Vec2(10.0, 2.2))
        assert cell is not None
        assert planner.is_traversable_cell(*cell)

    def test_same_start_goal(self, planner):
        path = planner.plan(Vec2(3.0, 3.0), Vec2(3.0, 3.0))
        assert path is not None and len(path) == 1

    def test_path_length_monotone_in_distance(self, planner):
        short = planner.plan(Vec2(3, 3), Vec2(5, 3))
        long = planner.plan(Vec2(3, 3), Vec2(19.2, 15.4))
        assert PathPlanner.path_length(long) > PathPlanner.path_length(short)


class TestLocalizer:
    def make(self, error=1.0):
        return ImageLocalizer(
            NavigationConfig(positioning_error_m=error), RngStream(9, "loc")
        )

    def test_fix_requires_matches(self, bench):
        localizer = self.make()
        photo = bench.capture.take_photo(CameraPose.at(10, 1.7, -1.57), GALAXY_S7, blur=0.0)
        model_ids = set(int(f) for f in photo.feature_ids)
        fix = localizer.locate(photo, model_ids)
        assert fix is not None
        assert fix.error_m <= 1.0
        assert fix.n_matches >= 12

    def test_no_fix_without_matches(self, bench):
        localizer = self.make()
        photo = bench.capture.take_photo(CameraPose.at(10, 1.7, -1.57), GALAXY_S7, blur=0.0)
        assert localizer.locate(photo, set()) is None

    def test_error_bounded(self):
        localizer = self.make(error=1.0)
        for i in range(50):
            offset = localizer.perturb_destination(Vec2(0, 0), f"k{i}")
            assert offset.norm() <= 1.0 + 1e-9

    def test_zero_error_config(self):
        localizer = self.make(error=0.0)
        p = localizer.perturb_destination(Vec2(2, 2), "x")
        assert p.distance_to(Vec2(2, 2)) == pytest.approx(0.0)


class TestNavigator:
    def test_navigate_reaches_near_target(self, bench):
        navigator = bench.make_navigator("test-nav")
        outcome = navigator.navigate(bench.venue.entrance, Vec2(10.5, 3.7))
        assert outcome.arrival_error_m <= 1.6  # <= 1 m positioning + snapping
        assert outcome.walk_time_s > 0
        assert bench.venue.is_traversable(outcome.arrived)

    def test_navigate_to_obstructed_target(self, bench):
        """The task generator may place a task inside an undiscovered
        obstacle; the participant stops as close as possible."""
        navigator = bench.make_navigator("test-nav-2")
        inside_shelf = Vec2(10.0, 2.2)
        outcome = navigator.navigate(bench.venue.entrance, inside_shelf)
        assert bench.venue.is_traversable(outcome.arrived)
        assert outcome.arrived.distance_to(inside_shelf) < 2.5
