"""Tests for metrics, dataset splitting and reporting."""

import numpy as np
import pytest

from repro.camera import GALAXY_S7
from repro.eval import (
    IncrementalMapEvaluator,
    IncrementalSeries,
    Workbench,
    evaluate_incrementally,
    format_final_comparison,
    format_series_rows,
    format_series_table,
    format_table1,
    split_photos,
    visible_extent_intervals,
)
from repro.eval.metrics import FeaturelessTaskMetrics
from repro.geometry import Vec2
from repro.simkit import RngStream


class TestSplitPhotos:
    def test_even_split(self):
        parts = split_photos(list(range(10)), 5)
        assert [len(p) for p in parts] == [5, 5]

    def test_remainder_kept(self):
        parts = split_photos(list(range(7)), 3)
        assert [len(p) for p in parts] == [3, 3, 1]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            split_photos([], 0)


class TestIncrementalEvaluator:
    def test_coverage_monotone_under_additions(self, bench):
        evaluator = IncrementalMapEvaluator(
            bench.world, bench.venue, bench.ground_truth, bench.config,
            bench.spec, RngStream(55, "eval-test"),
        )
        photos = list(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0))
        more = list(bench.capture.sweep(Vec2(6, 4), GALAXY_S7, 8.0, blur=0.0))
        first = evaluator.add_and_evaluate(photos)
        second = evaluator.add_and_evaluate(more)
        assert second.n_photos == first.n_photos + len(more)
        assert second.coverage_percent >= first.coverage_percent - 2.0

    def test_initial_model_not_counted(self, bench):
        evaluator = IncrementalMapEvaluator(
            bench.world, bench.venue, bench.ground_truth, bench.config,
            bench.spec, RngStream(56, "eval-test-2"),
        )
        initial = list(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0))
        parts = [list(bench.capture.sweep(Vec2(5, 4), GALAXY_S7, 8.0, blur=0.0))]
        series = evaluate_incrementally(evaluator, initial, parts, "test")
        assert series.photo_counts() == [45]

    def test_series_accessors(self):
        from repro.eval.metrics import MapEvaluation
        from repro.mapping.boundary import BoundsReport
        from repro.mapping.coverage import CoverageScore

        sample = MapEvaluation(
            n_photos=100,
            coverage=CoverageScore(50, 100, 5, 10),
            bounds=BoundsReport(41.1, 82.2, ()),
        )
        series = IncrementalSeries("x", (sample,))
        assert series.coverage_percents() == [50.0]
        assert series.bounds_percents() == [pytest.approx(50.0)]
        assert series.final is sample


class TestVisibleExtent:
    def test_frontal_photo_sees_middle(self, bench):
        from repro.camera import CameraPose

        surface = bench.venue.nearest_featureless_surface(Vec2(0.5, 7.0))
        photo = bench.capture.take_photo(
            CameraPose.at(3.0, surface.segment.midpoint.y, 3.14159), GALAXY_S7
        )
        intervals = visible_extent_intervals(surface, [photo], bench.venue)
        total = sum(hi - lo for lo, hi in intervals)
        assert total > 0.5

    def test_no_photos_no_extent(self, bench):
        surface = bench.venue.nearest_featureless_surface(Vec2(0.5, 7.0))
        assert visible_extent_intervals(surface, [], bench.venue) == []


class TestReporting:
    def rows(self):
        return [
            FeaturelessTaskMetrics(1, 2, 2, 1.0, 1.0),
            FeaturelessTaskMetrics(2, 3, 2, 1.0, 0.9),
        ]

    def test_table1_formatting(self):
        text = format_table1(self.rows())
        assert "Task#" in text
        assert "mean" in text
        assert "1.00" in text

    def test_f_score(self):
        row = FeaturelessTaskMetrics(1, 1, 1, 1.0, 0.9)
        assert row.f_score == pytest.approx(2 * 0.9 / 1.9)
        zero = FeaturelessTaskMetrics(1, 1, 0, 0.0, 0.0)
        assert zero.f_score == 0.0

    def test_series_rows_formatting(self):
        from repro.eval.metrics import MapEvaluation
        from repro.mapping.boundary import BoundsReport
        from repro.mapping.coverage import CoverageScore

        sample = MapEvaluation(100, CoverageScore(77, 100, 1, 2), BoundsReport(60, 82.2, ()))
        text = format_series_rows(IncrementalSeries("SnapTask", (sample,)))
        assert "SnapTask" in text and "77.00%" in text

    def test_series_table_validation(self):
        with pytest.raises(ValueError):
            format_series_table([], metric="nonsense")

    def test_final_comparison(self):
        from repro.eval.metrics import MapEvaluation
        from repro.mapping.boundary import BoundsReport
        from repro.mapping.coverage import CoverageScore

        final = MapEvaluation(100, CoverageScore(77, 100, 1, 2), BoundsReport(60, 82.2, ()))
        text = format_final_comparison(
            [("SnapTask", final)], paper_values={"SnapTask": "98.12%"}
        )
        assert "SnapTask" in text and "paper reference" in text


class TestWorkbench:
    def test_for_library_deterministic(self):
        a = Workbench.for_library()
        b = Workbench.for_library()
        assert len(a.world) == len(b.world)
        assert np.allclose(a.world.positions, b.world.positions)
        assert a.ground_truth.region_cells == b.ground_truth.region_cells

    def test_pipeline_uses_site_mask(self, bench):
        with_mask = bench.make_pipeline(use_site_mask=True)
        without = bench.make_pipeline(use_site_mask=False)
        assert with_mask._site_mask is not None  # noqa: SLF001
        assert without._site_mask is None  # noqa: SLF001

    def test_custom_venue_workbench(self, office):
        custom = Workbench(office)
        assert custom.venue is office
        assert custom.ground_truth.region_cells > 0
