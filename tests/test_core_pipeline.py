"""Tests for the SnapTask pipeline (Algorithm 1 control flow)."""

import pytest

from repro.camera import GALAXY_S7, CameraPose
from repro.core import SnapTaskPipeline, TaskFactory, TaskKind
from repro.errors import TaskGenerationError
from repro.geometry import Vec2
from repro.simkit import RngStream


@pytest.fixture()
def pipeline(bench):
    return bench.make_pipeline()


def sweep(bench, x, y, blur=0.0):
    return list(bench.capture.sweep(Vec2(x, y), GALAXY_S7, 8.0, blur=blur))


class TestAlgorithm1:
    def test_empty_batch_rejected(self, pipeline):
        with pytest.raises(TaskGenerationError):
            pipeline.process_batch([])

    def test_maps_before_first_batch_rejected(self, pipeline):
        with pytest.raises(TaskGenerationError):
            _ = pipeline.maps

    def test_growth_generates_photo_task(self, bench, pipeline):
        outcome = pipeline.process_batch(sweep(bench, 3, 3))
        assert outcome.photos_added
        assert outcome.coverage_increased
        assert len(outcome.new_tasks) == 1
        assert outcome.new_tasks[0].kind == TaskKind.PHOTO_COLLECTION
        assert not outcome.venue_covered

    def test_coverage_counter_updates(self, bench, pipeline):
        first = pipeline.process_batch(sweep(bench, 3, 3))
        assert pipeline.coverage_cells == first.coverage_cells
        second = pipeline.process_batch(sweep(bench, 6, 4))
        assert second.previous_coverage_cells == first.coverage_cells

    def test_unregistered_batch_goes_to_quality_path(self, bench, pipeline):
        pipeline.process_batch(sweep(bench, 3, 3))
        factory = TaskFactory()
        task = factory.photo_task(Vec2(19.2, 15.4), 2)
        # The annex is visually isolated: photos will not register.
        outcome = pipeline.process_batch(sweep(bench, 19.2, 15.4), task)
        assert not outcome.photos_added
        assert outcome.quality is not None
        assert not outcome.quality.is_low_quality
        assert len(outcome.new_tasks) == 1
        # Good quality, first failure -> same-location photo task reissue.
        reissue = outcome.new_tasks[0]
        assert reissue.kind == TaskKind.PHOTO_COLLECTION
        assert reissue.reissue_of == task.task_id

    def test_blurry_batch_reassigns_same_task(self, bench, pipeline):
        pipeline.process_batch(sweep(bench, 3, 3))
        task = TaskFactory().photo_task(Vec2(3, 3), 2)
        outcome = pipeline.process_batch(sweep(bench, 3, 3, blur=0.9), task)
        assert outcome.quality is not None and outcome.quality.is_low_quality
        assert outcome.new_tasks[0].kind == TaskKind.PHOTO_COLLECTION
        # Blur does not count toward the annotation trigger.
        assert pipeline.attempts_at(Vec2(3, 3)) == 0

    def test_tt_escalation_to_annotation(self, bench, pipeline):
        pipeline.process_batch(sweep(bench, 3, 3))
        location = Vec2(19.2, 15.4)
        factory = TaskFactory()
        task = factory.photo_task(location, 2)
        kinds = []
        for i in range(3):
            outcome = pipeline.process_batch(sweep(bench, 19.2 + 0.02 * i, 15.4), task)
            task = outcome.new_tasks[0]
            kinds.append(task.kind)
        # TT = 2: the third good-quality failure escalates.
        assert kinds[:2] == [TaskKind.PHOTO_COLLECTION, TaskKind.PHOTO_COLLECTION]
        assert kinds[2] == TaskKind.ANNOTATION

    def test_streamed_capture_guard(self, bench, pipeline):
        """Trailing sub-batches of a capture that already grew do not
        escalate or spawn tasks."""
        photos = sweep(bench, 3, 3)
        task = TaskFactory().photo_task(Vec2(3, 3), 1)
        grew = pipeline.process_batch(photos[:30], task)
        assert grew.coverage_increased
        trailing = pipeline.process_batch(photos[30:], task)
        if not trailing.coverage_increased:
            assert trailing.new_tasks == ()
            assert pipeline.attempts_at(Vec2(3, 3)) == 0

    def test_history_records_outcomes(self, bench, pipeline):
        pipeline.process_batch(sweep(bench, 3, 3))
        pipeline.process_batch(sweep(bench, 6, 4))
        history = pipeline.history
        assert [o.iteration for o in history] == [1, 2]

    def test_location_key_merges_nearby(self, pipeline):
        key = SnapTaskPipeline._location_key
        assert key(Vec2(3.0, 3.0)) == key(Vec2(3.2, 2.9))
        assert key(Vec2(3.0, 3.0)) != key(Vec2(4.5, 3.0))
