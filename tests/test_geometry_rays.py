"""Tests for SegmentSoup visibility (incl. heights) and ray marching."""

import numpy as np
import pytest

from repro.geometry import Segment, SegmentSoup, Vec2, ray_march_cells


def soup_of(*pairs, heights=None):
    segments = [Segment(Vec2(*a), Vec2(*b)) for a, b in pairs]
    return SegmentSoup(segments, heights=heights)


class TestVisibility:
    def test_empty_soup_everything_visible(self):
        soup = SegmentSoup([])
        mask = soup.visible(Vec2(0, 0), np.array([[1.0, 1.0], [5.0, 5.0]]))
        assert mask.all()

    def test_wall_blocks(self):
        soup = soup_of(((1, -1), (1, 1)))
        mask = soup.visible(Vec2(0, 0), np.array([[2.0, 0.0], [0.5, 0.0]]))
        assert not mask[0]  # behind the wall
        assert mask[1]  # in front of the wall

    def test_target_on_surface_not_self_occluded(self):
        soup = soup_of(((1, -1), (1, 1)))
        mask = soup.visible(Vec2(0, 0), np.array([[1.0, 0.0]]), target_margin=5e-3)
        assert mask[0]

    def test_ray_past_segment_end(self):
        soup = soup_of(((1, 1), (1, 2)))
        mask = soup.visible(Vec2(0, 0), np.array([[2.0, 0.0]]))
        assert mask[0]

    def test_height_aware_sees_over_low_table(self):
        # Table top at 0.75 m; camera at 1.5 m looking at a target at 1.4 m.
        soup = soup_of(((1, -1), (1, 1)), heights=[(0.0, 0.75)])
        targets = np.array([[2.0, 0.0]])
        over = soup.visible(
            Vec2(0, 0), targets, origin_z=1.5, target_z=np.array([1.4])
        )
        assert over[0]
        # A floor-level target just behind the table is hidden (the sight
        # line crosses the table plane at ~0.33 m, below the 0.75 m top).
        under = soup.visible(
            Vec2(0, 0), np.array([[1.2, 0.0]]), origin_z=1.5, target_z=np.array([0.1])
        )
        assert not under[0]

    def test_full_height_wall_blocks_at_any_height(self):
        soup = soup_of(((1, -1), (1, 1)), heights=[(0.0, 2.7)])
        mask = soup.visible(
            Vec2(0, 0), np.array([[2.0, 0.0]]), origin_z=1.5, target_z=np.array([2.0])
        )
        assert not mask[0]

    def test_without_heights_blocks_regardless(self):
        soup = soup_of(((1, -1), (1, 1)))
        mask = soup.visible(
            Vec2(0, 0), np.array([[2.0, 0.0]]), origin_z=1.5, target_z=np.array([9.0])
        )
        # No heights -> infinite extent -> blocked.
        assert not mask[0]

    def test_bad_targets_shape(self):
        from repro.errors import GeometryError

        soup = soup_of(((1, -1), (1, 1)))
        with pytest.raises(GeometryError):
            soup.visible(Vec2(0, 0), np.zeros((3, 3)))


class TestFirstHit:
    def test_hits_closest(self):
        soup = soup_of(((1, -1), (1, 1)), ((2, -1), (2, 1)))
        hit = soup.first_hit(Vec2(0, 0), Vec2(1, 0), 10.0)
        assert hit is not None
        dist, idx = hit
        assert dist == pytest.approx(1.0)
        assert idx == 0

    def test_miss_returns_none(self):
        soup = soup_of(((1, 1), (2, 1)))
        assert soup.first_hit(Vec2(0, 0), Vec2(1, 0), 10.0) is None

    def test_range_limit(self):
        soup = soup_of(((5, -1), (5, 1)))
        assert soup.first_hit(Vec2(0, 0), Vec2(1, 0), 2.0) is None

    def test_segments_within(self):
        soup = soup_of(((0, 1), (1, 1)), ((10, 10), (11, 10)))
        assert soup.segments_within(Vec2(0, 0), 2.0) == [0]


class TestRayMarchCells:
    def test_horizontal(self):
        cells = ray_march_cells((0, 0), (0, 3))
        assert cells == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_diagonal(self):
        cells = ray_march_cells((0, 0), (2, 2))
        assert cells[0] == (0, 0)
        assert cells[-1] == (2, 2)

    def test_single_cell(self):
        assert ray_march_cells((1, 1), (1, 1)) == [(1, 1)]

    def test_endpoints_always_included(self):
        for target in [(5, 2), (-3, 7), (0, -4)]:
            cells = ray_march_cells((0, 0), target)
            assert cells[0] == (0, 0)
            assert cells[-1] == target
