"""Storage fault injection + the recovery ladder (DESIGN §10).

The tentpole robustness contract, pinned at every layer:

* :class:`StorageFaultConfig` validation and the injector's
  determinism / no-draws-when-disabled guarantees;
* WAL damage: torn tails leave a decodable clean prefix (exact drop
  count, ``repro.persist.wal.torn_records`` counted), dropped flushes
  cut at a clean boundary (the journal looks pristine);
* snapshot damage: the cascade walks newest-first, every mode is
  caught by seal verification, the depth cap bounds it;
* the recovery ladder: a damaged newest generation is quarantined and
  recovery falls back to an older verified generation **with an
  identical recovered state digest** (the WAL has everything); all
  generations damaged fails closed with a structured quarantine report;
* hypothesis: corrupting the seal at *any* byte offset (flip or
  truncation) yields quarantine-or-clean-restore — never a divergent
  restored state (derandomized, like the codec properties);
* DST integration: the crafted storage probe fails closed as an ``ok``
  outcome, the ``skip-digest-verify`` mutation is caught by the
  recovery-integrity invariant, and a sampled snapshot-corruption
  campaign recovers through the fallback and still converges exactly
  like its crash-free twin.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, SimulationError, UnrecoverableStateError
from repro.obs.metrics import MetricsRegistry
from repro.persist import (
    SNAPSHOT_DAMAGE_MODES,
    GrantRecord,
    LocateRecord,
    RecoveryManager,
    Snapshotter,
    StorageFaultConfig,
    StorageFaultInjector,
    WriteAheadLog,
    verify_snapshot,
)
from repro.persist.fastcopy import fast_deepcopy
from repro.simkit.rng import RngStream
from repro.testkit import Scenario, run_scenario
from repro.testkit.mutations import storage_probe

BASE = Scenario(seed=11, n_clients=1)

#: A seed whose storage draws at the 900 s crash damage exactly the
#: newest retained generation (seq 1) and leave genesis clean — found
#: by scanning seeds: recovery must fall back one generation and still
#: converge like the crash-free twin.
FALLBACK_SEED = 13
FALLBACK_CORRUPTION = 0.5


@pytest.fixture(scope="module")
def media():
    """One persisted deployment whose (WAL, snapshots) every test forks."""
    scenario = replace(BASE, persist=True, snapshot_every=1, snapshot_retain=2)
    deployment = scenario.make_deployment()
    report = deployment.run(
        until_s=scenario.until_s, max_events=scenario.max_events
    )
    assert report.venue_covered
    assert deployment.host.snapshotter.count >= 3  # a real ladder to walk
    return deployment


def _fork_store(host) -> Snapshotter:
    """An isolated copy of the snapshot store (damage stays local)."""
    source = host.snapshotter
    store = Snapshotter(
        host.wal, every_batches=source.every_batches, retain=source.retain
    )
    store._snapshots = [
        replace(snap, state=fast_deepcopy(snap.state))
        for snap in reversed(source.generations())
    ]
    store._next_seq = source.taken
    return store


def _journal() -> WriteAheadLog:
    wal = WriteAheadLog()
    for i in range(6):
        wal.append(GrantRecord(t=float(i), client_id=f"c-{i}", request_id=None,
                               position_x=None, position_y=None))
    wal.append(LocateRecord(t=9.0, query_count=4))
    return wal


class TestConfig:
    def test_probabilities_validated(self):
        for name in ("wal_torn_tail", "wal_dropped_flush", "snapshot_corruption"):
            with pytest.raises(ConfigError):
                StorageFaultConfig(**{name: 1.5}).validate()
            with pytest.raises(ConfigError):
                StorageFaultConfig(**{name: -0.1}).validate()
        StorageFaultConfig(snapshot_corruption=1.0).validate()

    def test_count_fields_validated(self):
        with pytest.raises(ConfigError):
            StorageFaultConfig(max_dropped_flushes=0).validate()
        with pytest.raises(ConfigError):
            StorageFaultConfig(max_damaged_generations=0).validate()
        StorageFaultConfig(max_damaged_generations=1).validate()

    def test_enabled_and_wal_loss_flags(self):
        assert not StorageFaultConfig().enabled
        assert StorageFaultConfig(snapshot_corruption=0.2).enabled
        assert not StorageFaultConfig(snapshot_corruption=0.2).loses_wal_data
        assert StorageFaultConfig(wal_torn_tail=0.1).loses_wal_data
        assert StorageFaultConfig(wal_dropped_flush=0.1).loses_wal_data


class TestInjector:
    def test_enabled_requires_rng(self):
        with pytest.raises(SimulationError):
            StorageFaultInjector(StorageFaultConfig(wal_torn_tail=0.5))
        StorageFaultInjector(StorageFaultConfig())  # disabled: rng optional

    def test_disabled_config_does_no_damage(self):
        wal = _journal()
        before = wal.to_bytes()
        injector = StorageFaultInjector(StorageFaultConfig())
        report = injector.inject(wal, Snapshotter(wal), crash_t=5.0)
        assert not report.any_damage
        assert report.wal_records_before == 7
        assert wal.to_bytes() == before

    def test_injection_is_seed_deterministic(self):
        def run():
            wal = _journal()
            injector = StorageFaultInjector(
                StorageFaultConfig(wal_torn_tail=0.6, wal_dropped_flush=0.6),
                rng=RngStream(7, "test/storage"),
            )
            return injector.inject(wal, Snapshotter(wal), crash_t=5.0), wal.to_bytes()

        (report_a, bytes_a), (report_b, bytes_b) = run(), run()
        assert report_a == report_b
        assert bytes_a == bytes_b

    def test_torn_tail_leaves_a_decodable_prefix(self):
        registry = MetricsRegistry()
        wal = WriteAheadLog(metrics=registry)
        for record in _journal().records():
            wal.append(record)
        injector = StorageFaultInjector(
            StorageFaultConfig(wal_torn_tail=1.0),
            rng=RngStream(3, "test/storage"),
            metrics=registry,
        )
        report = injector.inject(wal, Snapshotter(wal), crash_t=5.0)
        assert report.wal_torn
        assert report.wal_dropped_records >= 1
        assert report.loses_wal_data
        assert wal.position == 7 - report.wal_dropped_records
        # The surviving journal is a clean prefix: reloadable, untorn.
        _, load = WriteAheadLog.from_bytes(wal.to_bytes())
        assert not load.torn
        assert load.records == wal.position
        torn = registry.counter("repro.persist.wal.torn_records").value
        assert torn == report.wal_dropped_records
        assert registry.counter("repro.persist.faults.wal_torn").value == 1

    def test_dropped_flush_cuts_at_a_clean_boundary(self):
        wal = _journal()
        injector = StorageFaultInjector(
            StorageFaultConfig(wal_dropped_flush=1.0, max_dropped_flushes=3),
            rng=RngStream(5, "test/storage"),
        )
        original = wal.records()
        report = injector.inject(wal, Snapshotter(wal), crash_t=5.0)
        assert not report.wal_torn  # the lying-fsync mode: no visible tear
        assert 1 <= report.wal_dropped_records <= 3
        assert wal.records() == original[: 7 - report.wal_dropped_records]
        _, load = WriteAheadLog.from_bytes(wal.to_bytes())
        assert not load.torn  # nothing below the ledger layer can notice

    def test_cascade_damages_newest_first(self, media):
        store = _fork_store(media.host)
        injector = StorageFaultInjector(
            StorageFaultConfig(snapshot_corruption=1.0),
            rng=RngStream(9, "test/storage"),
        )
        generations = [snap.seq for snap in store.generations()]
        report = injector.inject(media.host.wal, store, crash_t=5.0)
        assert list(report.damaged_snapshot_seqs) == generations  # all, in order
        assert set(report.damage_modes) <= set(SNAPSHOT_DAMAGE_MODES)
        for snap in store.generations():
            assert verify_snapshot(snap) is not None, snap.seq

    def test_cascade_depth_cap(self, media):
        store = _fork_store(media.host)
        newest = store.generations()[0].seq
        injector = StorageFaultInjector(
            StorageFaultConfig(snapshot_corruption=1.0, max_damaged_generations=1),
            rng=RngStream(9, "test/storage"),
        )
        report = injector.inject(media.host.wal, store, crash_t=5.0)
        assert report.damaged_snapshot_seqs == (newest,)
        assert verify_snapshot(store.generations()[0]) is not None
        for snap in store.generations()[1:]:
            assert verify_snapshot(snap) is None, snap.seq


class TestRecoveryLadder:
    def _recover(self, media, store):
        result = RecoveryManager(media.host.wal, store).recover(media.simulator)
        result.server.fence()  # probe servers must never act
        return result

    def test_clean_store_restores_from_the_newest_generation(self, media):
        store = _fork_store(media.host)
        newest = store.generations()[0].seq
        result = self._recover(media, store)
        assert result.snapshot_seq == newest
        assert result.generations_tried == 1
        assert not result.fallback
        assert result.quarantined_seqs == ()

    def test_damaged_newest_falls_back_with_an_identical_digest(self, media):
        baseline = self._recover(media, _fork_store(media.host))
        store = _fork_store(media.host)
        newest, older = (snap.seq for snap in store.generations()[:2])
        store.damage_seal(newest, b"not a seal")
        result = self._recover(media, store)
        assert result.fallback
        assert result.snapshot_seq == older
        assert result.quarantined_seqs == (newest,)
        assert result.quarantined_bytes == len(b"not a seal")
        assert result.replayed_records > baseline.replayed_records
        # The headline equivalence: the longer WAL replay from the older
        # generation reconstructs byte-for-byte the same logical state.
        assert result.digest == baseline.digest
        # The damaged generation is gone from the store: the next
        # crash's ladder never re-examines known-bad media.
        assert store.get(newest) is None

    def test_state_tamper_is_caught_semantically(self, media):
        baseline = self._recover(media, _fork_store(media.host))
        store = _fork_store(media.host)
        newest = store.generations()[0]
        newest.state["_admit_watermark"] = newest.state["_admit_watermark"] + 1
        assert verify_snapshot(newest) == "state/seal digest mismatch"
        result = self._recover(media, store)
        assert result.fallback
        assert result.quarantine_reasons == ("state/seal digest mismatch",)
        assert result.digest == baseline.digest

    def test_all_generations_damaged_fails_closed(self, media):
        store = _fork_store(media.host)
        seqs = [snap.seq for snap in store.generations()]
        for seq in seqs:
            store.damage_seal(seq, b"")
        with pytest.raises(UnrecoverableStateError) as excinfo:
            RecoveryManager(media.host.wal, store).recover(media.simulator)
        report = excinfo.value.report
        assert [q["seq"] for q in report["quarantined"]] == seqs
        assert report["generations"] == len(seqs)
        assert report["wal_records"] == media.host.wal.position
        assert all(q["reason"] for q in report["quarantined"])

    def test_retention_keeps_genesis(self, media):
        """Pruning keeps the newest ``retain`` plus generation 0 — the
        ladder's deepest rung (full WAL-only replay) always exists."""
        snapshotter = media.host.snapshotter
        assert snapshotter.taken > snapshotter.retain  # pruning happened
        seqs = [snap.seq for snap in snapshotter.generations()]
        assert 0 in seqs
        assert len(seqs) <= snapshotter.retain + 1
        newest = seqs[: snapshotter.retain]
        assert newest == sorted(newest, reverse=True)
        # Genesis-only recovery (every newer rung quarantined) works.
        store = _fork_store(media.host)
        for seq in seqs:
            if seq != 0:
                store.damage_seal(seq, b"")
        baseline = RecoveryManager(media.host.wal, _fork_store(media.host)).recover(
            media.simulator
        )
        baseline.server.fence()
        result = RecoveryManager(media.host.wal, store).recover(media.simulator)
        result.server.fence()
        assert result.snapshot_seq == 0
        assert result.replayed_records == media.host.wal.position
        assert result.digest == baseline.digest


class TestEveryByteSealCorruption:
    """ISSUE satellite: any single-point seal corruption is quarantine-
    or-clean-restore — the recovered state never silently diverges.

    Derandomized like the codec properties: DST treats the suite as a
    pure function of the tree.
    """

    @settings(deadline=None, max_examples=30, derandomize=True)
    @given(offset=st.floats(0.0, 1.0), flip=st.integers(1, 255))
    def test_flip_any_byte(self, media, offset, flip):
        baseline = RecoveryManager(media.host.wal, _fork_store(media.host)).recover(
            media.simulator
        )
        baseline.server.fence()
        store = _fork_store(media.host)
        newest = store.generations()[0]
        seal = bytearray(newest.seal)
        pos = min(int(offset * len(seal)), len(seal) - 1)
        seal[pos] ^= flip
        store.damage_seal(newest.seq, bytes(seal))
        result = RecoveryManager(media.host.wal, store).recover(media.simulator)
        result.server.fence()
        assert result.quarantined_seqs == (newest.seq,)
        assert result.digest == baseline.digest

    @settings(deadline=None, max_examples=30, derandomize=True)
    @given(offset=st.floats(0.0, 1.0))
    def test_truncate_at_any_byte(self, media, offset):
        baseline = RecoveryManager(media.host.wal, _fork_store(media.host)).recover(
            media.simulator
        )
        baseline.server.fence()
        store = _fork_store(media.host)
        newest = store.generations()[0]
        cut = min(int(offset * (len(newest.seal) + 1)), len(newest.seal))
        store.damage_seal(newest.seq, newest.seal[:cut])
        result = RecoveryManager(media.host.wal, store).recover(media.simulator)
        result.server.fence()
        if cut == len(newest.seal):  # the identity cut: clean restore
            assert result.quarantined_seqs == ()
        else:
            assert result.quarantined_seqs == (newest.seq,)
        assert result.digest == baseline.digest


class TestStorageFaultCampaigns:
    def test_fail_closed_probe_is_an_ok_outcome(self):
        """All generations damaged -> refusal is correct behaviour."""
        result = run_scenario(storage_probe(), check_determinism=False)
        assert result.ok
        assert result.fail_closed
        assert result.label == "fail-closed"
        assert "UnrecoverableStateError" in result.crash

    def test_skip_digest_verify_mutation_is_caught(self):
        """The ladder without verification restores damaged media — the
        recovery-integrity invariant must fail the run on ground truth."""
        result = run_scenario(
            storage_probe(), mutation="skip-digest-verify", check_determinism=False
        )
        assert not result.ok
        assert result.failure_kind == "invariant"
        assert result.violation.invariant == "recovery-integrity"

    def test_fallback_campaign_converges_like_the_crash_free_twin(self):
        """A sampled-style corruption campaign whose newest generation is
        damaged at the crash: recovery falls back a generation, the run
        stays invariant-clean, and the harness's crash-twin diff holds."""
        scenario = replace(
            BASE,
            seed=FALLBACK_SEED,
            persist=True,
            snapshot_every=2,
            backend_crashes=((900.0, 30.0),),
            snapshot_corruption=FALLBACK_CORRUPTION,
        )
        assert scenario.crash_twin_eligible  # corruption keeps eligibility
        deployment = scenario.make_deployment()
        report = deployment.run(
            until_s=scenario.until_s, max_events=scenario.max_events
        )
        assert report.venue_covered
        audits = deployment.host.recovery_audits
        assert any(a.fallback for a in audits), "no fallback exercised"
        assert all(a.audit_ok for a in audits)
        # The harness run: invariants + the crash-twin equivalence diff.
        result = run_scenario(scenario, check_determinism=False)
        assert result.ok, result.determinism_detail or result.label

    def test_wal_damage_forfeits_twin_eligibility(self):
        scenario = replace(
            BASE,
            persist=True,
            backend_crashes=((900.0, 30.0),),
            wal_torn_tail=0.5,
        )
        assert scenario.storage_faults_enabled
        assert scenario.loses_wal_data
        assert not scenario.crash_twin_eligible

    def test_with_storage_faults_arms_the_axes(self):
        forced = BASE.with_storage_faults()
        assert forced.backend_crashes  # chains with_crashes()
        assert forced.persist
        assert forced.storage_faults_enabled
        assert forced.snapshot_corruption > 0  # always armed
        assert forced.make_storage_faults() is not None
        assert forced.with_storage_faults() == forced  # idempotent
