"""Bounded SfM lane: worker pool, admission control, ledger GC, poll jitter.

Covers the backend-overload contract points:

1. the bounded worker pool serves admitted batches FIFO (completion =
   queue wait + deterministic service time), never exceeding the pool;
2. admission control — a full pool with a full queue sheds the upload
   with a ``retry_after_s`` hint the client honors via its existing
   backoff machinery, and the campaign still converges;
3. bounded ledgers — dedup entries are evicted a retention window after
   their task turns terminal; late duplicates re-ACK from the store
   archive without reprocessing;
4. poll-herd decorrelation — idle re-polls jitter deterministically when
   configured, and the zero-jitter trace is unchanged (the byte-for-byte
   differential in ``test_fault_tolerance.py`` pins the default path);
5. layering — the client learns the per-photo service time from its
   ``TaskAssignment``, not from backend internals;
6. DST — the ``skip-admission-bound`` mutation is caught by the
   ``admission-bound`` invariant on the crafted overload probe.
"""

import pathlib
from dataclasses import replace

import pytest

from repro.camera import GALAXY_S7
from repro.config import BackendConfig, ConfigError, ProtocolConfig, paper_config
from repro.core import TaskFactory
from repro.eval import Workbench
from repro.geometry import Vec2
from repro.server import (
    PROCESSING_S_PER_PHOTO,
    BackendServer,
    Deployment,
    PhotoBatch,
    TaskRequest,
)
from repro.simkit import Simulator
from repro.testkit import MUTATIONS, overload_probe, run_scenario


def make_server(bench, protocol=None, backend=None):
    sim = Simulator()
    pipeline = bench.make_pipeline()
    server = BackendServer(pipeline, sim, "venue", protocol=protocol, backend=backend)
    return sim, pipeline, server


def sweep_at(bench, x, y):
    return tuple(bench.capture.sweep(Vec2(x, y), GALAXY_S7, 8.0, blur=0.0))


def overloaded_config(queue_limit=0, max_tasks=3):
    config = paper_config()
    return replace(
        config,
        tasks=replace(config.tasks, max_tasks=max_tasks),
        backend=BackendConfig(sfm_workers=1, queue_limit=queue_limit),
    )


class TestBackendConfig:
    def test_defaults_are_the_infinite_server_model(self):
        config = BackendConfig()
        config.validate()
        assert config.sfm_workers is None
        assert config.queue_limit is None
        assert paper_config().backend == config

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ConfigError):
            BackendConfig(sfm_workers=0).validate()
        with pytest.raises(ConfigError):
            BackendConfig(queue_limit=2).validate()  # queue without pool
        with pytest.raises(ConfigError):
            BackendConfig(sfm_workers=1, queue_limit=-1).validate()
        with pytest.raises(ConfigError):
            BackendConfig(sfm_workers=1, retry_after_floor_s=0.0).validate()
        with pytest.raises(ConfigError):
            replace(ProtocolConfig(), poll_interval_s=0.0).validate()
        with pytest.raises(ConfigError):
            replace(ProtocolConfig(), poll_jitter_s=-1.0).validate()
        with pytest.raises(ConfigError):
            replace(ProtocolConfig(), ledger_retention_s=0.0).validate()

    def test_with_backend_helper(self):
        config = paper_config().with_backend(sfm_workers=2, queue_limit=4)
        assert config.backend.sfm_workers == 2
        assert config.backend.queue_limit == 4
        assert config.sfm_workers == 2
        bench = Workbench.for_library().with_backend(sfm_workers=3)
        assert bench.config.backend.sfm_workers == 3


class TestWorkerPool:
    def test_single_worker_serves_fifo(self, bench):
        sim, _pipeline, server = make_server(
            bench, backend=BackendConfig(sfm_workers=1)
        )
        results = []
        for i, pos in enumerate([(2, 2), (4, 4), (6, 3)]):
            batch = PhotoBatch(
                "c0", None, sweep_at(bench, *pos), batch_id=f"c0:b{i + 1}"
            )
            server.handle_photo_batch(batch, on_done=results.append)
        # All three arrived at t=0: one in service, two queued.
        assert server.sfm_busy_workers == 1
        assert server.sfm_queue_depth == 2
        assert server.sfm_peak_queue_depth == 2
        sim.run()
        assert [r.batch_id for r in results] == ["c0:b1", "c0:b2", "c0:b3"]
        assert server.sfm_service_order() == [1, 2, 3]
        assert server.sfm_busy_workers == 0
        assert server.sfm_queue_depth == 0
        # Queue wait is real: b2 waited one service time, b3 two.
        service = PROCESSING_S_PER_PHOTO * 45  # one 360-sweep batch
        assert server.sfm_queue_wait_total_s == pytest.approx(3 * service)
        assert server.sfm_service_time_total_s == pytest.approx(3 * service)
        # Completion = queue wait + service: last batch lands at 3x.
        assert sim.now == pytest.approx(3 * service)

    def test_pool_runs_batches_concurrently(self, bench):
        sim, _pipeline, server = make_server(
            bench, backend=BackendConfig(sfm_workers=2)
        )
        done = []
        for i, pos in enumerate([(2, 2), (4, 4)]):
            server.handle_photo_batch(
                PhotoBatch("c0", None, sweep_at(bench, *pos), batch_id=f"c0:b{i}"),
                on_done=done.append,
            )
        assert server.sfm_busy_workers == 2
        assert server.sfm_queue_depth == 0
        sim.run()
        assert len(done) == 2
        assert server.sfm_queue_wait_total_s == 0.0
        # Both served in parallel: wall time is one service, not two.
        assert sim.now == pytest.approx(PROCESSING_S_PER_PHOTO * 45)

    def test_infinite_model_never_queues_or_waits(self, bench):
        sim, _pipeline, server = make_server(bench)  # default BackendConfig
        assert server.sfm_worker_limit is None
        for i, pos in enumerate([(2, 2), (4, 4), (6, 3)]):
            server.handle_photo_batch(
                PhotoBatch("c0", None, sweep_at(bench, *pos), batch_id=f"c0:b{i}")
            )
        assert server.sfm_busy_workers == 0  # lane bookkeeping untouched
        assert server.sfm_queue_depth == 0
        sim.run()
        assert server.sfm_queue_wait_total_s == 0.0
        assert server.sfm_peak_queue_depth == 0
        assert sim.now == pytest.approx(PROCESSING_S_PER_PHOTO * 45)


class TestAdmissionControl:
    def test_full_queue_sheds_with_retry_after(self, bench):
        sim, _pipeline, server = make_server(
            bench, backend=BackendConfig(sfm_workers=1, queue_limit=0)
        )
        results = []
        server.handle_photo_batch(
            PhotoBatch("c0", None, sweep_at(bench, 2, 2), batch_id="c0:b1"),
            on_done=results.append,
        )
        server.handle_photo_batch(
            PhotoBatch("c1", None, sweep_at(bench, 4, 4), batch_id="c1:b1"),
            on_done=results.append,
        )
        # The second upload was refused immediately, nothing queued.
        assert len(results) == 1
        shed = results[0]
        assert not shed.ok
        assert shed.error == "backend overloaded"
        assert shed.batch_id == "c1:b1"
        # The hint points at the in-service batch's completion.
        assert shed.retry_after_s == pytest.approx(PROCESSING_S_PER_PHOTO * 45)
        assert server.store.counter("batches_shed") == 1
        # A shed is no verdict: the id stays fresh for the real attempt.
        assert not server.ledger_contains("c1:b1")
        assert all(r.batch_id != "c1:b1" for r in server.results)
        sim.run()
        # Retransmitting after the hint gets the batch processed for real.
        server.handle_photo_batch(
            PhotoBatch("c1", None, sweep_at(bench, 4, 4), batch_id="c1:b1"),
            on_done=results.append,
        )
        sim.run()
        assert [r.batch_id for r in results] == ["c1:b1", "c0:b1", "c1:b1"]
        assert results[-1].error is None

    def test_bounded_queue_admits_up_to_the_bound(self, bench):
        sim, _pipeline, server = make_server(
            bench, backend=BackendConfig(sfm_workers=1, queue_limit=1)
        )
        outcomes = []
        for i, pos in enumerate([(2, 2), (4, 4), (6, 3)]):
            server.handle_photo_batch(
                PhotoBatch("c0", None, sweep_at(bench, *pos), batch_id=f"c0:b{i}"),
                on_done=outcomes.append,
            )
        # b0 in service, b1 queued (at the bound), b2 shed.
        assert server.sfm_queue_depth == 1
        assert [r.batch_id for r in outcomes] == ["c0:b2"]
        assert outcomes[0].error == "backend overloaded"
        sim.run()
        assert server.store.counter("batches_shed") == 1
        assert server.sfm_peak_queue_depth == 1

    def test_empty_assignment_hints_while_saturated(self, bench):
        sim, _pipeline, server = make_server(
            bench, backend=BackendConfig(sfm_workers=1, queue_limit=0)
        )
        # Idle lane: no hint on an empty assignment.
        idle = server.handle_task_request(TaskRequest("c0", request_id="c0:r1"))
        assert idle.task is None and idle.retry_after_s is None
        server.handle_photo_batch(
            PhotoBatch("c0", None, sweep_at(bench, 2, 2), batch_id="c0:b1")
        )
        busy = server.handle_task_request(TaskRequest("c0", request_id="c0:r2"))
        assert busy.task is None
        assert busy.retry_after_s == pytest.approx(PROCESSING_S_PER_PHOTO * 45)
        sim.run()

    def test_overloaded_deployment_sheds_and_converges(self):
        deployment = Deployment(
            Workbench.for_library(overloaded_config(queue_limit=0)), n_clients=4
        )
        report = deployment.run(until_s=1200.0)
        # The lane actually refused work, and the clients absorbed every
        # refusal with retry_after backoff — nothing queued past the bound.
        assert report.batches_shed > 0
        assert report.client_backpressure == report.batches_shed
        assert report.sfm_peak_queue_depth == 0
        assert report.tasks_completed > 0
        # Every shed batch was eventually processed exactly once: one
        # pipeline result per distinct batch id.
        batch_ids = [r.batch_id for r in deployment.server.results if r.batch_id]
        assert len(batch_ids) == len(set(batch_ids))

    def test_unbounded_queue_waits_instead_of_shedding(self):
        config = replace(
            overloaded_config(), backend=BackendConfig(sfm_workers=1)
        )
        report = Deployment(Workbench.for_library(config), n_clients=4).run(
            until_s=1200.0
        )
        assert report.batches_shed == 0
        assert report.sfm_queue_wait_s > 0.0
        assert report.sfm_peak_queue_depth >= 1
        assert report.sfm_service_time_s > 0.0


class TestLedgerEviction:
    def make_completed_task(self, bench, retention_s=50.0):
        protocol = replace(ProtocolConfig(), ledger_retention_s=retention_s)
        sim, pipeline, server = make_server(bench, protocol=protocol)
        server.enqueue_task(TaskFactory().photo_task(Vec2(3, 3), 1))
        assignment = server.handle_task_request(TaskRequest("c0", request_id="c0:r1"))
        task_id = assignment.task.task_id
        server.handle_photo_batch(
            PhotoBatch("c0", task_id, sweep_at(bench, 3, 3), batch_id="c0:b1")
        )
        sim.run()
        assert server.store.task(task_id).status.value == "completed"
        return sim, server, task_id

    def advance(self, sim, delay):
        sim.schedule(delay, lambda: None, label="advance")
        sim.run()

    def test_ledgers_evict_after_retention(self, bench):
        sim, server, _task_id = self.make_completed_task(bench)
        assert server.ledger_contains("c0:b1")
        assert server.request_ledger_size == 1
        self.advance(sim, 100.0)  # past the 50 s retention window
        # GC is an inline sweep at handler entry, not an event.
        server.handle_task_request(TaskRequest("c0", request_id="c0:r2"))
        assert not server.ledger_contains("c0:b1")
        assert server.request_ledger_size == 1  # only the fresh r2
        assert server.store.counter("ledger_evictions") == 2
        assert server.store.archived_batch_count() == 1

    def test_post_eviction_duplicate_reacks_from_archive(self, bench):
        sim, server, task_id = self.make_completed_task(bench)
        self.advance(sim, 100.0)
        processed_before = server.store.counter("photos_processed")
        acks = []
        server.handle_photo_batch(
            PhotoBatch("c0", task_id, sweep_at(bench, 3, 3), batch_id="c0:b1"),
            on_done=acks.append,
        )
        sim.run()
        # Answered synchronously from the archive: same verdict, no
        # reprocessing, no new ledger entry, task untouched.
        assert len(acks) == 1
        assert acks[0].ok and acks[0].task_id == task_id
        assert server.store.counter("photos_processed") == processed_before
        assert server.store.counter("late_duplicates_reacked") == 1
        assert not server.ledger_contains("c0:b1")
        assert server.store.task(task_id).status.value == "completed"

    def test_retention_keeps_entries_alive(self, bench):
        sim, server, _task_id = self.make_completed_task(bench, retention_s=10_000.0)
        self.advance(sim, 100.0)
        server.handle_task_request(TaskRequest("c0", request_id="c0:r2"))
        assert server.ledger_contains("c0:b1")
        assert server.store.archived_batch_count() == 0


class TestPollJitter:
    def test_zero_jitter_draws_nothing(self):
        deployment = Deployment(Workbench.for_library(), n_clients=2)
        for client in deployment.clients:
            assert client._poll_rng is None
            assert client._poll_delay() == ProtocolConfig().poll_interval_s

    def test_jitter_decorrelates_clients_deterministically(self):
        config = replace(
            paper_config(), protocol=replace(ProtocolConfig(), poll_jitter_s=3.0)
        )

        def delays():
            deployment = Deployment(Workbench.for_library(config), n_clients=3)
            return [client._poll_delay() for client in deployment.clients]

        first = delays()
        base = ProtocolConfig().poll_interval_s
        for delay in first:
            assert base < delay <= base + 3.0
        # Distinct per client (the herd is broken), reproducible per seed.
        assert len(set(first)) == len(first)
        assert delays() == first


class TestLayering:
    def test_client_module_does_not_import_service_model(self):
        import repro.server.client as client_module

        source = pathlib.Path(client_module.__file__).read_text()
        assert "PROCESSING_S_PER_PHOTO" not in source

    def test_assignment_carries_the_service_hint(self, bench):
        sim, _pipeline, server = make_server(bench)
        server.enqueue_task(TaskFactory().photo_task(Vec2(1, 1), 1))
        assignment = server.handle_task_request(TaskRequest("c0", request_id="c0:r1"))
        assert assignment.processing_s_per_photo == PROCESSING_S_PER_PHOTO

    def test_client_uses_the_hint_for_ack_floors(self):
        deployment = Deployment(Workbench.for_library(), n_clients=2)
        client = deployment.clients[0]
        batch = PhotoBatch("client-0", None, (object(),) * 10, batch_id="x")
        transfer = client._link.uplink.transfer_time(
            client._photo_size_mb * 10
        )
        # Before any assignment the hint is zero (pure transfer floor)...
        assert client._ack_estimate_s(batch) == pytest.approx(transfer)
        # ...and tracks whatever the server advertises afterwards.
        client._service_hint_spp = 0.5
        assert client._ack_estimate_s(batch) == pytest.approx(transfer + 5.0)


class TestAdmissionMutation:
    def test_catalogue_lists_the_admission_mutation(self):
        assert set(MUTATIONS) == {
            "skip-batch-dedupe",
            "leak-completed-lease",
            "skip-map-dirty-marking",
            "skip-admission-bound",
            "skip-digest-verify",
        }
        mutation = MUTATIONS["skip-admission-bound"]
        assert mutation.expected_invariant == "admission-bound"
        assert mutation.probe is not None

    def test_overload_probe_passes_clean(self):
        result = run_scenario(overload_probe(), check_determinism=False)
        assert result.ok, result.label
        # The probe genuinely saturates the lane: work was refused and
        # retried, so the admission-bound invariant saw real pressure.
        assert result.report.batches_shed > 0
        assert result.report.client_backpressure > 0

    def test_mutation_is_caught_by_admission_bound(self):
        result = run_scenario(
            overload_probe(),
            mutation="skip-admission-bound",
            check_determinism=False,
        )
        assert not result.ok
        assert result.label == "invariant:admission-bound"
