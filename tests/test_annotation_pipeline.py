"""Tests for workers, bounds fusion (Alg 5), textures and imprint (Alg 6)."""

import numpy as np
import pytest

from repro.annotation import (
    AnnotationCampaign,
    FEATURES_PER_TEXTURE,
    TextureDatabase,
    WorkerPool,
    annotate_surface,
    get_marked_obstacle_bounds,
    identify_annotated_surface,
    order_corners,
    reconstruct_featureless_surfaces,
    visible_featureless_surfaces,
)
from repro.camera import GALAXY_S7, CameraPose
from repro.core import SnapTaskPipeline, TaskFactory
from repro.errors import AnnotationError
from repro.geometry import Vec2
from repro.simkit import RngStream
from repro.venue.features import ARTIFICIAL_FEATURE_BASE


@pytest.fixture()
def glass_photos(bench):
    """Four photos facing a west-glass pane from inside, with context."""
    campaign = AnnotationCampaign(
        bench.venue, bench.capture, bench.config, RngStream(41, "annot-test")
    )
    surface, photos = campaign.collect_photos(Vec2(0.5, 7.0), GALAXY_S7)
    return surface, photos


class TestWorkers:
    def test_visible_surfaces_sorted_by_distance(self, bench):
        photo = bench.capture.take_photo(
            CameraPose.at(3.0, 7.0, 3.14159), GALAXY_S7, exposure_compensated=True
        )
        visible = visible_featureless_surfaces(bench.venue, photo)
        assert visible, "west glass should be visible"
        distances = [
            s.segment.distance_to_point(photo.true_pose.position) for s in visible
        ]
        assert distances == sorted(distances)

    def test_annotate_surface_noise_and_clamping(self, bench):
        photo = bench.capture.take_photo(
            CameraPose.at(3.0, 7.0, 3.14159), GALAXY_S7, exposure_compensated=True
        )
        surface = visible_featureless_surfaces(bench.venue, photo)[0]
        annotation = annotate_surface(
            surface, photo, worker_id=1, rng=RngStream(1, "w"), corner_noise_px=30.0
        )
        assert annotation is not None
        corners = annotation.corners_array()
        assert corners.shape == (4, 2)
        assert (corners[:, 0] >= 0).all() and (corners[:, 0] <= 4032).all()

    def test_behind_camera_returns_none(self, bench):
        photo = bench.capture.take_photo(
            CameraPose.at(3.0, 7.0, 0.0), GALAXY_S7  # facing east, glass behind
        )
        surface = bench.venue.nearest_featureless_surface(Vec2(0.5, 7.0))
        annotation = annotate_surface(
            surface, photo, 1, RngStream(1, "w"), corner_noise_px=30.0
        )
        assert annotation is None

    def test_worker_pool_annotates_all_photos(self, bench, glass_photos, config):
        _surface, photos = glass_photos
        pool = WorkerPool(bench.venue, config.annotation, RngStream(2, "pool"))
        annotations = pool.annotate_photo_set(photos)
        counts = [len(annotations[p.photo_id]) for p in photos]
        assert max(counts) == config.annotation.workers_per_task
        total = sum(counts)
        assert total >= config.annotation.workers_per_task * 2  # most photos annotated


class TestBoundsFusion:
    def test_order_corners_canonical(self):
        corners = np.array([[10, 0], [0, 0], [0, 10], [10, 10]], dtype=float)
        ordered = order_corners(corners)
        assert ordered[0].tolist() == [0, 0]  # top-left first
        # Going around the quad, consecutive corners share an edge.
        assert ordered.shape == (4, 2)

    def test_fusion_recovers_objects(self, bench, glass_photos, config):
        _surface, photos = glass_photos
        pool = WorkerPool(bench.venue, config.annotation, RngStream(2, "pool"))
        annotations = pool.annotate_photo_set(photos)
        objects = get_marked_obstacle_bounds(
            [p.photo_id for p in photos], annotations, config.annotation, RngStream(3, "f")
        )
        assert len(objects) >= 1
        main = objects[0]
        assert len(main.worker_ids) >= config.annotation.dbscan_center_min_samples
        assert main.n_photos >= 2
        for corners in main.corners_by_photo.values():
            assert corners.shape == (4, 2)

    def test_empty_photo_set_rejected(self, config):
        with pytest.raises(AnnotationError):
            get_marked_obstacle_bounds([], {}, config.annotation, RngStream(1, "x"))

    def test_no_annotations_no_objects(self, config):
        objects = get_marked_obstacle_bounds(
            [1, 2], {1: [], 2: []}, config.annotation, RngStream(1, "x")
        )
        assert objects == []


class TestTextures:
    def test_unique_blocks(self):
        db = TextureDatabase()
        a, b = db.next_texture(), db.next_texture()
        assert a.texture_id != b.texture_id
        assert a.base_feature_id != b.base_feature_id
        assert a.owns(a.feature_id(0))
        assert not a.owns(b.feature_id(0))

    def test_feature_id_range(self):
        texture = TextureDatabase().next_texture()
        assert texture.feature_id(0) >= ARTIFICIAL_FEATURE_BASE
        with pytest.raises(AnnotationError):
            texture.feature_id(FEATURES_PER_TEXTURE)

    def test_reverse_lookup(self):
        db = TextureDatabase()
        texture = db.next_texture()
        assert db.texture_of_feature(texture.feature_id(5)) is texture
        with pytest.raises(AnnotationError):
            db.texture_of_feature(ARTIFICIAL_FEATURE_BASE + 10_000_000)


class TestImprint:
    def test_identify_surface(self, bench, glass_photos):
        surface, photos = glass_photos
        proj_photo = photos[0]
        # Centre of the pane in pixel space.
        projection = proj_photo.true_pose.projection(GALAXY_S7)
        mid = surface.segment.midpoint
        from repro.geometry import Vec3

        pixel = projection.project_unclamped(Vec3(mid.x, mid.y, 1.35))
        if pixel is None:
            pytest.skip("pane centre not in this frame")
        found = identify_annotated_surface(
            proj_photo, (pixel.x, pixel.y), bench.venue.featureless_surfaces()
        )
        assert found is not None
        assert found.material.featureless

    def test_reconstruction_produces_points_on_plane(self, bench, glass_photos, config):
        surface, photos = glass_photos
        pool = WorkerPool(bench.venue, config.annotation, RngStream(2, "pool"))
        annotations = pool.annotate_photo_set(photos)
        objects = get_marked_obstacle_bounds(
            [p.photo_id for p in photos], annotations, config.annotation, RngStream(3, "f")
        )
        result = reconstruct_featureless_surfaces(
            photos,
            objects,
            bench.venue.featureless_surfaces(),
            TextureDatabase(),
            config.annotation,
            RngStream(4, "imp"),
        )
        assert result.objects, "at least one object imprinted"
        obj = result.objects[0]
        target = bench.venue.surface(obj.surface_id)
        # All texture features lie near the annotated plane.
        for pos in obj.feature_positions:
            assert target.segment.distance_to_point(Vec2(pos.x, pos.y)) < 0.3
        # Photos got the artificial observations.
        imprinted = [p for p in result.photos if p.photo_id in obj.photos_with_texture]
        for photo in imprinted:
            assert (photo.feature_ids >= ARTIFICIAL_FEATURE_BASE).any()


class TestCampaignEndToEnd:
    def test_annotation_task_reconstructs_glass(self, bench):
        from repro.camera import GALAXY_S7

        pipeline = bench.make_pipeline()
        # Build a model in the west area so annotation photos can register.
        for center in [(3, 3), (3, 6), (3.5, 9)]:
            pipeline.process_batch(
                list(bench.capture.sweep(Vec2(*center), GALAXY_S7, 8.0, blur=0.0))
            )
        campaign = AnnotationCampaign(
            bench.venue, bench.capture, bench.config, RngStream(77, "campaign")
        )
        task = TaskFactory().annotation_task(Vec2(0.5, 7.0), iteration=9)
        result = campaign.run(task, pipeline, GALAXY_S7)
        assert result.n_annotations > 0
        assert result.n_identified >= 1
        model = pipeline.model()
        assert result.n_reconstructed(model) >= 1
        assert model.cloud.artificial_mask.sum() > 50

    def test_far_task_reports_empty(self, bench):
        pipeline = bench.make_pipeline()
        pipeline.process_batch(
            list(bench.capture.sweep(Vec2(10.5, 3.7), GALAXY_S7, 8.0, blur=0.0))
        )
        campaign = AnnotationCampaign(
            bench.venue, bench.capture, bench.config, RngStream(78, "far")
        )
        # An aisle deep between shelves: no featureless surface within 6 m.
        task = TaskFactory().annotation_task(Vec2(10.5, 3.7), iteration=2)
        result = campaign.run(task, pipeline, GALAXY_S7)
        assert result.n_identified == 0
        assert result.n_annotations == 0
