"""Exporter schemas: Chrome trace JSON, metrics JSON, BENCH_pipeline.json."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, Telemetry
from repro.obs.bench import (
    BENCH_PIPELINE_SCHEMA,
    assert_valid_bench_pipeline,
    bench_pipeline_document,
    load_and_validate,
    validate_bench_pipeline,
    write_bench_pipeline,
)
from repro.obs.export import (
    METRICS_SCHEMA,
    assert_valid_chrome_trace,
    chrome_trace,
    chrome_trace_events,
    metrics_document,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.tracing import Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("server.process_batch", category="server", photos=4):
        tracer.record("net.photo-batch", 1.0, 3.5, category="net", size_mb=10.0)
    tracer.instant("pipeline.registration", category="pipeline")
    tracer.counter("repro.sim.queue.depth", 3.0)
    return tracer


class TestChromeTrace:
    def test_events_schema_valid(self):
        doc = chrome_trace(_sample_tracer())
        assert validate_chrome_trace(doc) == []
        assert_valid_chrome_trace(doc)

    def test_x_events_use_sim_microseconds(self):
        events = chrome_trace_events(_sample_tracer())
        net = [e for e in events if e["name"] == "net.photo-batch"][0]
        assert net["ph"] == "X"
        assert net["ts"] == pytest.approx(1.0e6)
        assert net["dur"] == pytest.approx(2.5e6)
        assert net["args"]["size_mb"] == 10.0
        assert "span_id" in net["args"]

    def test_zero_width_spans_widened_to_one_us(self):
        events = chrome_trace_events(_sample_tracer())
        inst = [e for e in events if e["name"] == "pipeline.registration"][0]
        assert inst["dur"] == 1.0

    def test_parent_id_exported(self):
        events = chrome_trace_events(_sample_tracer())
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        child = by_name["net.photo-batch"]
        parent = by_name["server.process_batch"]
        assert child["args"]["parent_id"] == parent["args"]["span_id"]

    def test_counter_events_and_metadata(self):
        events = chrome_trace_events(_sample_tracer())
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and counters[0]["name"] == "repro.sim.queue.depth"
        metas = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metas)
        thread_names = {
            e["args"]["name"] for e in metas if e["name"] == "thread_name"
        }
        assert {"server", "net", "pipeline"} <= thread_names

    def test_wall_ms_rides_along(self):
        events = chrome_trace_events(_sample_tracer())
        x = [e for e in events if e["ph"] == "X"][0]
        assert x["args"]["wall_ms"] >= 0.0

    def test_write_roundtrip(self, tmp_path):
        path = write_chrome_trace(_sample_tracer(), tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["spans_recorded"] == 3

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": 3}) != []
        bad_phase = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1}]}
        assert validate_chrome_trace(bad_phase) != []
        no_dur = {
            "traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "ts": 0.0, "args": {}}
            ]
        }
        assert validate_chrome_trace(no_dur) != []
        with pytest.raises(ObservabilityError):
            assert_valid_chrome_trace(no_dur)

    def test_non_json_attr_values_stringified(self):
        tracer = Tracer()
        tracer.record("x", 0.0, 1.0, obj=object())
        events = chrome_trace_events(tracer)
        x = [e for e in events if e["ph"] == "X"][0]
        assert isinstance(x["args"]["obj"], str)
        json.dumps(events)  # must be serialisable


class TestMetricsJson:
    def test_document_schema(self):
        reg = MetricsRegistry()
        reg.counter("repro.net.messages").inc(5)
        doc = metrics_document(reg)
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["metrics"]["repro.net.messages"]["value"] == 5

    def test_write_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.histogram("repro.client.walk_s", base=1.0).record(12.0)
        path = write_metrics_json(reg, tmp_path / "metrics.json")
        doc = json.loads(path.read_text())
        assert doc["metrics"]["repro.client.walk_s"]["count"] == 1


def _registry_with_phases() -> MetricsRegistry:
    reg = MetricsRegistry()
    for name in ("registration", "map_merge", "unvisited", "task_gen", "total"):
        h = reg.histogram(f"repro.pipeline.phase.{name}")
        h.record(0.01)
        h.record(0.03)
    reg.counter("repro.pipeline.batches").inc(2)
    return reg


class TestBenchPipelineDocument:
    def test_document_valid_and_phase_rows(self):
        doc = bench_pipeline_document(
            _registry_with_phases(), campaign={"seed": 2018}
        )
        assert validate_bench_pipeline(doc) == []
        assert doc["schema"] == BENCH_PIPELINE_SCHEMA
        assert set(doc["phases"]) == {
            "registration", "map_merge", "unvisited", "task_gen", "total",
        }
        row = doc["phases"]["registration"]
        assert row["count"] == 2
        assert row["total_s"] == pytest.approx(0.04)
        assert row["mean_s"] == pytest.approx(0.02)
        assert row["max_s"] == pytest.approx(0.03)
        assert doc["campaign"] == {"seed": 2018}

    def test_write_validates_and_roundtrips(self, tmp_path):
        path = write_bench_pipeline(
            tmp_path / "BENCH_pipeline.json", _registry_with_phases()
        )
        doc = load_and_validate(path)
        assert doc["phases"]["total"]["count"] == 2

    def test_validator_rejects_mutations(self):
        doc = bench_pipeline_document(_registry_with_phases())
        bad = dict(doc, schema="something/else")
        assert validate_bench_pipeline(bad) != []
        bad = dict(doc)
        bad["phases"] = {"registration": {"count": "two"}}
        assert validate_bench_pipeline(bad) != []
        bad = dict(doc)
        del bad["generated_at"]
        assert validate_bench_pipeline(bad) != []
        with pytest.raises(ObservabilityError):
            assert_valid_bench_pipeline({"schema": "nope"})

    def test_empty_registry_still_valid(self):
        doc = bench_pipeline_document(MetricsRegistry())
        assert validate_bench_pipeline(doc) == []
        assert doc["phases"] == {}


class TestTelemetryBundle:
    def test_disabled_is_shared_and_inert(self):
        a = Telemetry.disabled()
        b = Telemetry.disabled()
        assert a is b
        assert not a.enabled

    def test_enable_builds_live_pair(self):
        t = Telemetry.enable(span_capacity=16)
        assert t.enabled
        assert t.tracer.capacity == 16
        assert t.metrics.enabled
