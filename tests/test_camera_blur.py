"""Tests for the blur model and variance-of-Laplacian."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.camera import (
    convolve2d_same,
    detection_factor,
    motion_blur_kernel,
    render_patch,
    variance_of_laplacian,
)
from repro.errors import CaptureError
from repro.simkit import RngStream


class TestConvolution:
    def test_identity_kernel(self):
        image = np.arange(25, dtype=float).reshape(5, 5)
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        out = convolve2d_same(image, kernel)
        assert np.allclose(out, image)

    def test_box_blur_reduces_variance(self):
        rng = RngStream(0, "conv")
        image = rng.uniform_array((16, 16))
        box = np.full((3, 3), 1.0 / 9.0)
        assert convolve2d_same(image, box).var() < image.var()

    def test_same_shape(self):
        image = np.ones((7, 9))
        out = convolve2d_same(image, np.ones((3, 3)))
        assert out.shape == image.shape


class TestVarianceOfLaplacian:
    def test_flat_image_zero(self):
        assert variance_of_laplacian(np.ones((8, 8))) == pytest.approx(0.0)

    def test_checkerboard_high(self):
        image = np.indices((8, 8)).sum(axis=0) % 2
        assert variance_of_laplacian(image) > 1.0

    def test_rejects_tiny_images(self):
        with pytest.raises(CaptureError):
            variance_of_laplacian(np.ones((2, 2)))
        with pytest.raises(CaptureError):
            variance_of_laplacian(np.ones(10))

    def test_blur_monotonicity(self):
        """More motion blur => lower sharpness score (the paper's quality
        check relies on this)."""
        rng = RngStream(5, "sharp")
        scores = []
        for blur in (0.0, 0.3, 0.6, 0.9):
            patch = render_patch(blur, rng.child(f"b{blur}"))
            scores.append(variance_of_laplacian(patch))
        assert scores == sorted(scores, reverse=True)


class TestMotionBlurKernel:
    def test_no_blur_is_identity(self):
        kernel = motion_blur_kernel(0.0)
        assert kernel.shape == (1, 1)
        assert kernel[0, 0] == 1.0

    def test_full_blur_widest(self):
        kernel = motion_blur_kernel(1.0, max_width=9)
        assert kernel.shape == (1, 9)
        assert kernel.sum() == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(CaptureError):
            motion_blur_kernel(1.5)
        with pytest.raises(CaptureError):
            motion_blur_kernel(-0.1)

    @given(st.floats(0.0, 1.0))
    def test_kernel_normalised(self, blur):
        assert motion_blur_kernel(blur).sum() == pytest.approx(1.0)


class TestDetectionFactor:
    def test_extremes(self):
        assert detection_factor(0.0) == 1.0
        assert detection_factor(1.0) == 0.0

    @given(st.floats(0.0, 0.99), st.floats(0.001, 1.0))
    def test_monotonic(self, blur, delta):
        higher = min(1.0, blur + delta)
        assert detection_factor(higher) <= detection_factor(blur)

    def test_range_check(self):
        with pytest.raises(CaptureError):
            detection_factor(2.0)


class TestRenderPatch:
    def test_shape_and_range(self):
        patch = render_patch(0.2, RngStream(1, "p"), size=24)
        assert patch.shape == (24, 24)
        assert patch.min() >= 0.0 and patch.max() <= 1.0

    def test_deterministic(self):
        a = render_patch(0.2, RngStream(1, "p"))
        b = render_patch(0.2, RngStream(1, "p"))
        assert np.array_equal(a, b)

    def test_size_validation(self):
        with pytest.raises(CaptureError):
            render_patch(0.2, RngStream(1, "p"), size=2)
