"""Differential oracle: incremental maps must be cell-exact vs rebuilds.

The incremental map-maintenance engine (``repro.mapping.incremental``)
replaces the per-batch from-scratch runs of Algorithm 2 + Algorithm 3 in
the pipeline. Its correctness contract is *cell-exact equivalence* with
the from-scratch functions — not "close enough". This suite enforces it:

* the full fig10 guided campaign is replayed batch-by-batch and every
  obstacles / visibility grid and covered-cell count the pipeline emitted
  is compared against an independent from-scratch rebuild;
* targeted delta scenarios (camera re-observation, SOR point churn,
  obstacle appearance inside cached wedges, glass-wall imprint recovery
  via artificial features, annotation write-off) are driven through the
  engine directly;
* the ``full_rebuild`` escape hatch is proven to be behaviour-preserving.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.camera import GALAXY_S7, CameraPose
from repro.core.tasks import TaskKind
from repro.geometry import BoundingBox, Vec2
from repro.mapping import (
    GridSpec,
    IncrementalMapEngine,
    calculate_obstacles_map,
    calculate_visibility_map,
)
from repro.core.pipeline import SnapTaskPipeline
from repro.sfm import PointCloud, SfmModel
from repro.sfm.model import RecoveredCamera
from repro.sfm.pointcloud import CloudPoint
from repro.simkit import RngStream
from repro.venue.features import ARTIFICIAL_FEATURE_BASE


# --------------------------------------------------------------------------
# Oracle helpers
# --------------------------------------------------------------------------


def scratch_maps(model, spec, threshold=4, max_range=5.0):
    """Independent from-scratch rebuild (Algorithm 2 + Algorithm 3)."""
    obstacles = calculate_obstacles_map(model.cloud, spec, threshold)
    visibility = calculate_visibility_map(model, obstacles, max_range)
    return obstacles, visibility


def assert_cell_exact(update, model, spec, threshold=4, max_range=5.0, site_mask=None):
    obstacles, visibility = scratch_maps(model, spec, threshold, max_range)
    np.testing.assert_array_equal(
        update.maps.obstacles.data, obstacles.data, err_msg="obstacles diverged"
    )
    np.testing.assert_array_equal(
        update.maps.visibility.data, visibility.data, err_msg="visibility diverged"
    )
    covered = obstacles.nonzero_mask() | visibility.nonzero_mask()
    if site_mask is not None:
        covered = covered & site_mask
    assert update.covered_cells == int(covered.sum())


# --------------------------------------------------------------------------
# Synthetic model building blocks
# --------------------------------------------------------------------------


def small_spec(cell=0.25, size=12.0):
    return GridSpec.from_bbox(BoundingBox(0, 0, size, size), cell, margin_m=0.0)


def wall_points(fid0, x, y0, y1, step=0.1, per_column=5):
    """A dense wall of cloud points along x=const; returns (points, ids)."""
    points = []
    fid = fid0
    for y in np.arange(y0, y1, step):
        for k in range(per_column):
            points.append(CloudPoint(fid, float(x), float(y), 0.4 + 0.4 * k, 3))
            fid += 1
    return points


def make_camera(photo_id, x, y, yaw, observed):
    return RecoveredCamera(
        photo_id=photo_id,
        pose=CameraPose.at(x, y, yaw),
        intrinsics=GALAXY_S7,
        n_inliers=100,
        observed_feature_ids=np.asarray(observed, dtype=int),
    )


class TestSyntheticDeltas:
    """Engine vs oracle across hand-built delta scenarios."""

    def check_sequence(self, spec, states, site_mask=None):
        """Run ``states`` through one engine, oracle-checking every step."""
        engine = IncrementalMapEngine(spec, site_mask=site_mask)
        updates = []
        for cloud, cameras in states:
            model = SfmModel(PointCloud(cloud), cameras)
            update = engine.update(model)
            assert_cell_exact(update, model, spec, site_mask=site_mask)
            updates.append(update)
        return updates

    def test_growth_then_reobservation_reuses_wedges(self):
        spec = small_spec()
        wall_a = wall_points(0, 6.0, 2.0, 6.0)
        ids_a = [p.feature_id for p in wall_a]
        cam1 = make_camera(1, 3.0, 4.0, 0.0, ids_a)
        # Camera 2 re-observes exactly the same points from a new spot far
        # from any dirtied cell; camera 1's cached wedge must be reused.
        cam2 = make_camera(2, 3.0, 5.0, 0.0, ids_a)
        states = [
            (wall_a, [cam1]),
            (wall_a, [cam1, cam2]),
        ]
        updates = self.check_sequence(spec, states)
        assert updates[0].cameras_added == 1
        assert updates[1].cameras_added == 1
        assert updates[1].cameras_reused == 1  # no dirt: wedge reused
        assert updates[1].points_added == 0

    def test_new_wall_dirties_only_its_columns(self):
        spec = small_spec()
        wall_a = wall_points(0, 6.0, 2.0, 6.0)
        wall_b = wall_points(10_000, 9.0, 2.0, 6.0)
        cam = make_camera(1, 3.0, 4.0, 0.0, [p.feature_id for p in wall_a])
        updates = self.check_sequence(
            spec, [(wall_a, [cam]), (wall_a + wall_b, [cam])]
        )
        n_wall_b_cells = len({(round(p.y, 6)) for p in wall_b})
        assert updates[1].points_added == len(wall_b)
        # Only the new wall's columns were re-merged, not the whole grid.
        assert 0 < updates[1].dirty_obstacle_cells < spec.n_rows * spec.n_cols / 4

    def test_sor_churn_removes_points(self):
        """SOR is global: previously-inlying points can vanish."""
        spec = small_spec()
        wall = wall_points(0, 6.0, 2.0, 6.0)
        survivors = wall[: len(wall) - 10]
        cam = make_camera(1, 3.0, 4.0, 0.0, [p.feature_id for p in wall])
        updates = self.check_sequence(spec, [(wall, [cam]), (survivors, [cam])])
        assert updates[1].points_removed == 10
        assert updates[1].points_added == 0

    def test_point_position_change_is_remove_plus_add(self):
        spec = small_spec()
        wall = wall_points(0, 6.0, 2.0, 6.0)
        moved = [CloudPoint(wall[0].feature_id, 6.2, wall[0].y, wall[0].z, 3)]
        moved += wall[1:]
        cam = make_camera(1, 3.0, 4.0, 0.0, [p.feature_id for p in wall])
        updates = self.check_sequence(spec, [(wall, [cam]), (moved, [cam])])
        assert updates[1].points_removed == 1
        assert updates[1].points_added == 1

    def test_obstacle_appearing_inside_cached_wedge_invalidates(self):
        """A wall materialising mid-wedge must clip cached rays."""
        spec = small_spec()
        far_wall = wall_points(0, 9.0, 3.0, 5.0)
        near_wall = wall_points(20_000, 5.0, 3.0, 5.0)
        observed = [p.feature_id for p in far_wall] + [
            p.feature_id for p in near_wall
        ]
        cam = make_camera(1, 3.0, 4.0, 0.0, observed)
        states = [(far_wall, [cam]), (far_wall + near_wall, [cam])]
        updates = self.check_sequence(spec, states)
        assert updates[1].cameras_refreshed == 1
        # Cells behind the new near wall are no longer visible.
        behind = spec.cell_of(Vec2(7.0, 4.0))
        assert updates[0].maps.visibility.data[behind] > 0
        assert updates[1].maps.visibility.data[behind] == 0

    def test_obstacle_vanishing_restores_visibility(self):
        """The inverse: removing a blocking wall re-extends cached rays."""
        spec = small_spec()
        far_wall = wall_points(0, 9.0, 3.0, 5.0)
        near_wall = wall_points(20_000, 5.0, 3.0, 5.0)
        observed = [p.feature_id for p in far_wall] + [
            p.feature_id for p in near_wall
        ]
        cam = make_camera(1, 3.0, 4.0, 0.0, observed)
        states = [(far_wall + near_wall, [cam]), (far_wall, [cam])]
        updates = self.check_sequence(spec, states)
        behind = spec.cell_of(Vec2(7.0, 4.0))
        assert updates[0].maps.visibility.data[behind] == 0
        assert updates[1].maps.visibility.data[behind] > 0

    def test_glass_wall_imprint_recovery(self):
        """Artificial-texture points (Algorithm 6) arriving late must
        imprint the glass wall and extend wedges, exactly as a rebuild."""
        spec = small_spec()
        wall = wall_points(0, 9.0, 2.0, 3.5)
        # Imprinted glass surface: artificial feature ids, dense points.
        glass = [
            CloudPoint(ARTIFICIAL_FEATURE_BASE + i, 7.0, 5.0 + 0.02 * i, 1.2, 3)
            for i in range(60)
        ]
        cam1 = make_camera(1, 3.0, 4.0, 0.0, [p.feature_id for p in wall])
        cam2 = make_camera(
            2, 4.0, 5.0, 0.0, [p.feature_id for p in glass]
        )
        states = [(wall, [cam1]), (wall + glass, [cam1, cam2])]
        updates = self.check_sequence(spec, states)
        glass_cell = spec.cell_of(Vec2(7.0, 5.5))
        assert updates[1].maps.obstacles.data[glass_cell] > 0
        assert updates[1].points_added == len(glass)

    def test_site_mask_restricts_covered_cells(self):
        spec = small_spec()
        site = np.zeros(spec.shape, dtype=bool)
        site[: spec.n_rows // 2, :] = True
        wall = wall_points(0, 6.0, 2.0, 6.0)
        cam = make_camera(1, 3.0, 4.0, 0.0, [p.feature_id for p in wall])
        self.check_sequence(spec, [(wall, [cam])], site_mask=site)

    def test_full_rebuild_escape_hatch_is_identical(self):
        spec = small_spec()
        wall_a = wall_points(0, 6.0, 2.0, 6.0)
        wall_b = wall_points(10_000, 9.0, 2.0, 6.0)
        cam1 = make_camera(1, 3.0, 4.0, 0.0, [p.feature_id for p in wall_a])
        cam2 = make_camera(2, 3.0, 5.0, 0.2, [p.feature_id for p in wall_b])
        states = [
            (wall_a, [cam1]),
            (wall_a + wall_b, [cam1, cam2]),
            (wall_a[5:] + wall_b, [cam1, cam2]),
        ]
        incremental = IncrementalMapEngine(spec)
        scratch = IncrementalMapEngine(spec)
        for cloud, cameras in states:
            model = SfmModel(PointCloud(cloud), cameras)
            a = incremental.update(model)
            b = scratch.update(model, full_rebuild=True)
            assert b.full_rebuild and not a.full_rebuild
            np.testing.assert_array_equal(
                a.maps.obstacles.data, b.maps.obstacles.data
            )
            np.testing.assert_array_equal(
                a.maps.visibility.data, b.maps.visibility.data
            )
            assert a.covered_cells == b.covered_cells


# --------------------------------------------------------------------------
# The fig10 guided campaign, replayed batch-by-batch
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def guided_replay():
    """One full guided campaign (the fig10 procedure) on a fresh bench."""
    from repro.eval import Workbench

    bench = Workbench.for_library()
    pipeline = bench.make_pipeline()
    campaign = bench.make_guided_campaign(pipeline, 10)
    run = campaign.run(max_tasks=120)
    return bench, pipeline, run


class TestGuidedCampaignEquivalence:
    def test_every_batch_cell_exact(self, guided_replay):
        """The acceptance criterion: incremental == rebuild, every batch."""
        bench, pipeline, _run = guided_replay
        threshold = bench.config.tasks.obstacle_threshold
        max_range = bench.config.sfm.visibility_range_m
        site = bench.ground_truth.region_mask
        assert len(pipeline.history) > 20
        for outcome in pipeline.history:
            model = outcome.model  # filtered cloud + recovered cameras
            obstacles, visibility = scratch_maps(model, bench.spec, threshold, max_range)
            np.testing.assert_array_equal(
                outcome.maps.obstacles.data,
                obstacles.data,
                err_msg=f"obstacles diverged at iteration {outcome.iteration}",
            )
            np.testing.assert_array_equal(
                outcome.maps.visibility.data,
                visibility.data,
                err_msg=f"visibility diverged at iteration {outcome.iteration}",
            )
            covered = (obstacles.nonzero_mask() | visibility.nonzero_mask()) & site
            assert outcome.coverage_cells == int(covered.sum()), (
                f"covered-cell count diverged at iteration {outcome.iteration}"
            )

    def test_campaign_exercised_the_delta_paths(self, guided_replay):
        """Guard against a vacuous oracle: the campaign must actually hit
        reuse, SOR removal, and annotation/imprint machinery."""
        _bench, pipeline, run = guided_replay
        updates = [o.map_update for o in pipeline.history if o.map_update]
        assert updates, "pipeline did not report map updates"
        assert sum(u.cameras_reused for u in updates) > 0
        assert sum(u.points_removed for u in updates) > 0, (
            "SOR churn never removed a point — removal path untested"
        )
        assert sum(u.cameras_refreshed for u in updates) > 0
        # Late-campaign batches must be delta-sized, not model-sized.
        late = updates[-5:]
        for u in late:
            assert u.cameras_reused > u.cameras_added + u.cameras_refreshed, (
                "late-campaign batch recomputed more wedges than it reused"
            )
        # Glass-wall imprint recovery happened and went through the engine.
        assert any(
            r.task.kind == TaskKind.ANNOTATION for r in run.completed
        ), "campaign produced no annotation task"

    def test_write_off_keeps_maps_exact(self, guided_replay):
        """Targeted: drive Algorithm 1 into its `_write_off` branch and
        verify the maps emitted during it still match the oracle."""
        bench, _pipeline, _run = guided_replay
        rng = RngStream(4242, "write-off")
        pipeline = SnapTaskPipeline(
            bench.world,
            bench.config,
            bench.spec,
            bench.venue.entrance,
            rng,
            site_mask=bench.ground_truth.region_mask,
        )
        campaign = bench.make_guided_campaign(pipeline, 2)
        outcome = pipeline.process_batch(campaign.bootstrap_photos())
        assert outcome.photos_added

        # Re-sweep the already-covered entrance: no growth, good quality.
        task = outcome.new_tasks[0] if outcome.new_tasks else None
        location = bench.venue.entrance
        key = pipeline._location_key(location)
        trigger = bench.config.tasks.annotation_trigger_attempts
        pipeline._attempts[key] = trigger  # next good-quality failure escalates
        pipeline._annotated_keys[key] = (
            bench.config.tasks.max_annotations_per_location
        )  # annotation budget exhausted -> write-off
        from repro.core.tasks import TaskFactory

        factory = TaskFactory()
        retry = factory.photo_task(location, 1)
        photos = list(
            bench.capture.sweep(
                location,
                GALAXY_S7,
                bench.config.tasks.capture_step_deg,
                blur=0.02,
                start_timestamp_s=1.0,
                source="write-off-test",
            )
        )
        outcome2 = pipeline.process_batch(photos, retry)
        assert pipeline._written_off.any(), "write-off branch did not run"
        for out in pipeline.history:
            obstacles, visibility = scratch_maps(
                out.model,
                bench.spec,
                bench.config.tasks.obstacle_threshold,
                bench.config.sfm.visibility_range_m,
            )
            np.testing.assert_array_equal(out.maps.obstacles.data, obstacles.data)
            np.testing.assert_array_equal(out.maps.visibility.data, visibility.data)


# --------------------------------------------------------------------------
# Pipeline-level escape hatch on real photos
# --------------------------------------------------------------------------


class TestPipelineEscapeHatch:
    def test_full_rebuild_pipeline_matches_incremental(self, bench):
        """Two pipelines on identical RNG streams — one incremental, one
        forced from-scratch — must emit identical maps batch for batch."""
        photos = _deterministic_photos(bench)
        outcomes = {}
        for label, full_rebuild in (("inc", False), ("scratch", True)):
            pipeline = SnapTaskPipeline(
                bench.world,
                bench.config,
                bench.spec,
                bench.venue.entrance,
                RngStream(777, "escape-hatch"),
                site_mask=bench.ground_truth.region_mask,
                full_rebuild=full_rebuild,
            )
            assert pipeline.full_rebuild is full_rebuild
            chunk = 20
            outcomes[label] = [
                pipeline.process_batch(photos[i : i + chunk])
                for i in range(0, len(photos), chunk)
            ]
        for a, b in zip(outcomes["inc"], outcomes["scratch"]):
            np.testing.assert_array_equal(
                a.maps.obstacles.data, b.maps.obstacles.data
            )
            np.testing.assert_array_equal(
                a.maps.visibility.data, b.maps.visibility.data
            )
            assert a.coverage_cells == b.coverage_cells


def _deterministic_photos(bench):
    """A fixed photo batch shared by both escape-hatch pipelines."""
    pipeline = SnapTaskPipeline(
        bench.world,
        bench.config,
        bench.spec,
        bench.venue.entrance,
        RngStream(778, "photo-gen"),
        site_mask=bench.ground_truth.region_mask,
    )
    campaign = bench.make_guided_campaign(pipeline, 2)
    return campaign.bootstrap_photos()
