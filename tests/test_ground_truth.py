"""Tests for ground-truth rasterisation."""

import numpy as np
import pytest

from repro.geometry import Vec2
from repro.venue.ground_truth import build_ground_truth, default_grid_spec


class TestGroundTruth:
    def test_masks_consistent(self, ground_truth):
        gt = ground_truth
        # Traversable is region minus obstacles.
        assert not (gt.traversable_mask & gt.obstacle_mask).any()
        assert (gt.traversable_mask | gt.obstacle_mask)[gt.region_mask].all() or True
        assert gt.region_cells >= gt.traversable_mask.sum()

    def test_region_area_close_to_floor_area(self, bench, ground_truth):
        area = ground_truth.region_cells * bench.spec.cell_area_m2
        assert area == pytest.approx(bench.venue.floor_area(), rel=0.06)

    def test_walls_are_obstacles(self, bench, ground_truth):
        spec = bench.spec
        # Sample along the south brick wall.
        for x in (0.5, 5.0, 12.0, 21.0):
            cell = spec.cell_of(Vec2(x, 0.0))
            assert ground_truth.obstacle_mask[cell], f"wall missing at x={x}"

    def test_glass_walls_in_ground_truth(self, bench, ground_truth):
        """The ground truth knows where the glass is (laser measured)."""
        spec = bench.spec
        for y in (3.0, 7.0, 11.0):
            cell = spec.cell_of(Vec2(0.0, y))
            assert ground_truth.obstacle_mask[cell], f"west glass missing at y={y}"

    def test_furniture_interiors_are_obstacles(self, bench, ground_truth):
        cell = bench.spec.cell_of(Vec2(10.0, 2.25))  # inside shelf row 0
        assert ground_truth.obstacle_mask[cell]

    def test_open_floor_is_traversable(self, bench, ground_truth):
        for p in (Vec2(3, 3), Vec2(10.5, 3.7), Vec2(19.2, 15.4)):
            cell = bench.spec.cell_of(p)
            assert ground_truth.traversable_mask[cell]

    def test_outside_not_in_region(self, bench, ground_truth):
        cell = bench.spec.cell_of(Vec2(-0.8, -0.8))
        assert cell is not None  # margin cells exist
        assert not ground_truth.region_mask[cell]

    def test_exterior_context_not_in_gt(self, bench, ground_truth):
        """EXTERIOR surfaces (if any) must not appear as obstacles."""
        from repro.venue.surfaces import SurfaceKind

        for surface in bench.venue.surfaces:
            if surface.kind != SurfaceKind.EXTERIOR:
                continue
            cell = bench.spec.cell_of(surface.segment.midpoint)
            if cell is not None:
                assert not ground_truth.obstacle_mask[cell]

    def test_outer_bounds_value(self, library, ground_truth):
        assert ground_truth.outer_bounds_m == pytest.approx(
            library.outer_bounds_length()
        )

    def test_cell_size_sweep(self, library):
        """Ground truth scales consistently across the paper's 10-50 cm."""
        areas = []
        for cell in (0.10, 0.25, 0.50):
            spec = default_grid_spec(library, cell)
            gt = build_ground_truth(library, spec)
            areas.append(gt.region_cells * spec.cell_area_m2)
        for area in areas:
            assert area == pytest.approx(library.floor_area(), rel=0.12)
