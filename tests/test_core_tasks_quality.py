"""Tests for task objects, the quality check and findUnvisited."""

import numpy as np
import pytest

from repro.camera import GALAXY_S7, CameraPose
from repro.core import (
    Task,
    TaskFactory,
    TaskKind,
    TaskStatus,
    check_photo_quality,
    filter_blurry,
    find_unvisited,
    sharpest,
)
from repro.core.unvisited import unvisited_region_at
from repro.errors import TaskGenerationError
from repro.geometry import BoundingBox, Vec2
from repro.mapping import Grid2D, GridSpec


class TestTasks:
    def test_factory_ids_unique_and_ordered(self):
        factory = TaskFactory()
        a = factory.photo_task(Vec2(0, 0), iteration=1)
        b = factory.annotation_task(Vec2(1, 1), iteration=2)
        assert b.task_id == a.task_id + 1
        assert a.kind == TaskKind.PHOTO_COLLECTION
        assert b.is_annotation

    def test_status_transitions(self):
        task = TaskFactory().photo_task(Vec2(0, 0), 1)
        assert task.status == TaskStatus.PENDING
        assert task.assigned().status == TaskStatus.ASSIGNED
        assert task.completed().status == TaskStatus.COMPLETED
        assert task.failed().status == TaskStatus.FAILED

    def test_reissue_link(self):
        factory = TaskFactory()
        first = factory.photo_task(Vec2(0, 0), 1)
        again = factory.photo_task(Vec2(0, 0), 2, reissue_of=first.task_id)
        assert again.reissue_of == first.task_id


class TestQuality:
    def photos(self, bench, blurs):
        pose = CameraPose.at(10.0, 1.7, -1.57)
        return [bench.capture.take_photo(pose, GALAXY_S7, blur=b) for b in blurs]

    def test_sharp_batch_passes(self, bench, config):
        report = check_photo_quality(
            self.photos(bench, [0.02] * 5), config.tasks.low_quality_laplacian
        )
        assert not report.is_low_quality
        assert report.n_blurry == 0

    def test_blurry_batch_fails(self, bench, config):
        report = check_photo_quality(
            self.photos(bench, [0.9] * 5), config.tasks.low_quality_laplacian
        )
        assert report.is_low_quality
        assert report.blurry_fraction == 1.0

    def test_empty_batch_rejected(self, config):
        with pytest.raises(TaskGenerationError):
            check_photo_quality([], config.tasks.low_quality_laplacian)

    def test_filter_blurry(self, bench, config):
        photos = self.photos(bench, [0.02, 0.9, 0.03, 0.95])
        kept = filter_blurry(photos, config.tasks.low_quality_laplacian)
        assert len(kept) == 2

    def test_sharpest(self, bench):
        photos = self.photos(bench, [0.5, 0.05, 0.8])
        assert sharpest(photos) is photos[1]
        with pytest.raises(TaskGenerationError):
            sharpest([])


def maps_with_hole(size=12.0, cell=0.25, covered_until_x=6.0):
    """Visibility covers the left half; the right half is unvisited."""
    spec = GridSpec.from_bbox(BoundingBox(0, 0, size, size), cell, 0.0)
    obstacles, visibility = Grid2D(spec), Grid2D(spec)
    for row in range(spec.n_rows):
        for col in range(spec.n_cols):
            center = spec.center_of(row, col)
            if center.x < covered_until_x:
                visibility.data[row, col] = 5.0
    return spec, obstacles, visibility


class TestFindUnvisited:
    def test_finds_uncovered_half(self):
        spec, obstacles, visibility = maps_with_hole()
        areas = find_unvisited(
            obstacles, visibility, Vec2(1, 1), max_areas=1,
            covered_view_tolerance=3, min_area_cells=20,
        )
        assert len(areas) == 1
        assert areas[0].center_world.x > 5.5

    def test_fully_covered_returns_empty(self):
        spec, obstacles, visibility = maps_with_hole(covered_until_x=99.0)
        areas = find_unvisited(
            obstacles, visibility, Vec2(1, 1), 1, 3, 20
        )
        assert areas == []

    def test_min_area_filters_small_pockets(self):
        spec, obstacles, visibility = maps_with_hole(covered_until_x=99.0)
        # Punch a small hole of ~4 cells.
        visibility.data[10:12, 10:12] = 0.0
        areas = find_unvisited(obstacles, visibility, Vec2(1, 1), 1, 3, 20)
        assert areas == []
        areas = find_unvisited(obstacles, visibility, Vec2(1, 1), 1, 3, 4)
        assert len(areas) == 1

    def test_expansion_cap_keeps_task_near_frontier(self):
        spec, obstacles, visibility = maps_with_hole()
        capped = find_unvisited(
            obstacles, visibility, Vec2(1, 1), 1, 3, 20, expansion_cap_cells=30
        )
        uncapped = find_unvisited(
            obstacles, visibility, Vec2(1, 1), 1, 3, 20, expansion_cap_cells=10_000
        )
        assert capped[0].center_world.x <= uncapped[0].center_world.x

    def test_obstacles_block_search(self):
        spec, obstacles, visibility = maps_with_hole()
        # Wall sealing the right half completely, flush with the covered
        # region so no unvisited strip remains before it.
        col = spec.cell_of(Vec2(6.1, 0.1))[1]
        obstacles.data[:, col] = 9.0
        areas = find_unvisited(obstacles, visibility, Vec2(1, 1), 1, 3, 20)
        assert areas == []  # unreachable pocket is never found

    def test_site_mask_restricts(self):
        spec, obstacles, visibility = maps_with_hole()
        site = np.zeros(spec.shape, dtype=bool)  # nothing inside the site
        areas = find_unvisited(
            obstacles, visibility, Vec2(1, 1), 1, 3, 20, site_mask=site
        )
        assert areas == []

    def test_start_outside_grid_rejected(self):
        spec, obstacles, visibility = maps_with_hole()
        with pytest.raises(TaskGenerationError):
            find_unvisited(obstacles, visibility, Vec2(-99, -99), 1)

    def test_region_at_location(self):
        spec, obstacles, visibility = maps_with_hole()
        region = unvisited_region_at(obstacles, visibility, Vec2(9, 6), cap_cells=50)
        assert 0 < len(region) <= 50

    def test_region_at_covered_location_empty(self):
        spec, obstacles, visibility = maps_with_hole()
        region = unvisited_region_at(obstacles, visibility, Vec2(1, 1), cap_cells=50)
        assert region == []
