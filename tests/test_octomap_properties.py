"""Property-based OctoMap tests against a brute-force voxel reference.

The incremental engine trusts the octree for delta insertion, removal and
per-column re-merges, so the octree's lattice arithmetic is checked here
against an independent floor-index reference over seeded-random clouds.
The test octree (centre 0, half-extent 8, resolution 0.25) is chosen so
every node centre is exactly representable in binary floating point: the
octree's midpoint-descent partition and the reference's floor arithmetic
then agree *exactly*, including for points sitting on cell edges.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MappingError
from repro.geometry import BoundingBox
from repro.mapping import GridSpec, OctoMap

HALF = 8.0
RES = 0.25
LEAF = 0.25  # == RES exactly for this configuration (2*8 / 2**6)


def make_tree() -> OctoMap:
    return OctoMap((0.0, 0.0, 0.0), half_extent=HALF, resolution=RES)


def brute_index(v: float) -> int:
    """Reference voxel index along one axis (min corner at -HALF)."""
    return int(math.floor((v + HALF) / LEAF))


def random_cloud(seed: int, n: int) -> np.ndarray:
    """Seeded in-extent points, kept away from the ±HALF faces."""
    rng = np.random.default_rng(seed)
    return rng.uniform(-HALF + 1e-6, HALF - 1e-6, size=(n, 3))


def brute_leaves(xyz: np.ndarray) -> dict:
    counts: dict = defaultdict(int)
    for x, y, z in xyz:
        counts[(brute_index(x), brute_index(y), brute_index(z))] += 1
    return dict(counts)


def octree_leaves(tree: OctoMap) -> dict:
    counts: dict = {}
    for cx, cy, cz, count in tree.leaves():
        key = (
            int(math.floor((cx + HALF) / LEAF)),
            int(math.floor((cy + HALF) / LEAF)),
            int(math.floor((cz + HALF) / LEAF)),
        )
        assert key not in counts, "octree yielded the same leaf twice"
        counts[key] = count
    return counts


class TestInsertAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 400))
    def test_leaf_counts_match_reference(self, seed, n):
        xyz = random_cloud(seed, n)
        tree = make_tree()
        assert tree.insert_array(xyz) == n
        assert tree.n_points == n
        assert octree_leaves(tree) == brute_leaves(xyz)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 200))
    def test_count_at_matches_reference(self, seed, n):
        xyz = random_cloud(seed, n)
        tree = make_tree()
        tree.insert_array(xyz)
        ref = brute_leaves(xyz)
        for x, y, z in xyz[:20]:
            key = (brute_index(x), brute_index(y), brute_index(z))
            assert tree.count_at(x, y, z) == ref[key]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 300))
    def test_merge_columns_matches_reference(self, seed, n):
        z_min, z_max = -1.0, 2.5
        xyz = random_cloud(seed, n)
        tree = make_tree()
        tree.insert_array(xyz)

        ref: dict = defaultdict(int)
        for x, y, z in xyz:
            cz = -HALF + (brute_index(z) + 0.5) * LEAF  # leaf centre
            if z_min <= cz <= z_max:
                ref[(brute_index(x) - int(HALF / LEAF), brute_index(y) - int(HALF / LEAF))] += 1
        assert tree.merge_columns(z_min, z_max) == dict(ref)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 300))
    def test_column_count_matches_reference(self, seed, n):
        """The dirty-column re-merge query == brute per-column counts."""
        z_min, z_max = -0.5, 3.0
        xyz = random_cloud(seed, n)
        tree = make_tree()
        tree.insert_array(xyz)
        ref: dict = defaultdict(int)
        for x, y, z in xyz:
            cz = -HALF + (brute_index(z) + 0.5) * LEAF
            if z_min <= cz <= z_max:
                ref[(brute_index(x), brute_index(y))] += 1
        for (ix, iy), expected in list(ref.items())[:30]:
            x_lo = -HALF + ix * LEAF
            y_lo = -HALF + iy * LEAF
            got = tree.column_count(x_lo, x_lo + LEAF, y_lo, y_lo + LEAF, z_min, z_max)
            assert got == expected
        # An empty column reports zero.
        assert tree.column_count(100.0, 100.25, 0.0, 0.25) == 0


class TestRemoveIsInsertInverse:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(2, 200),
        k=st.integers(1, 100),
    )
    def test_remove_subset_equals_rebuild_of_remainder(self, seed, n, k):
        k = min(k, n - 1)
        xyz = random_cloud(seed, n)
        tree = make_tree()
        tree.insert_array(xyz)
        for x, y, z in xyz[:k]:
            assert tree.remove_point(x, y, z) is not None
        rebuilt = make_tree()
        rebuilt.insert_array(xyz[k:])
        assert tree.n_points == n - k
        assert octree_leaves(tree) == octree_leaves(rebuilt)
        assert tree.merge_columns() == rebuilt.merge_columns()

    def test_remove_never_inserted_raises(self):
        tree = make_tree()
        tree.insert(1.0, 1.0, 1.0)
        with pytest.raises(MappingError):
            tree.remove_point(-3.0, -3.0, -3.0)

    def test_remove_twice_raises(self):
        tree = make_tree()
        tree.insert(1.0, 1.0, 1.0)
        assert tree.remove_point(1.0, 1.0, 1.0) is not None
        with pytest.raises(MappingError):
            tree.remove_point(1.0, 1.0, 1.0)

    def test_remove_out_of_extent_is_none(self):
        tree = make_tree()
        assert tree.remove_point(50.0, 0.0, 0.0) is None


class TestBoundaryCoordinates:
    def test_points_on_cell_edges_go_to_upper_cell(self):
        """The octree's `>=` descent rule: an exact-edge point belongs to
        the cell whose minimum corner it sits on."""
        tree = make_tree()
        for b in (-0.25, 0.0, 0.25, 2.5, -4.0):
            leaf = tree.insert_point(b, b, b)
            assert leaf is not None
            cx, cy, cz = leaf
            assert cx == pytest.approx(b + LEAF / 2.0, abs=1e-12)
            assert cy == pytest.approx(b + LEAF / 2.0, abs=1e-12)
            assert cz == pytest.approx(b + LEAF / 2.0, abs=1e-12)

    def test_extent_faces(self):
        tree = make_tree()
        # The maximum face is inside (closed bounds), landing in the last leaf.
        leaf = tree.insert_point(HALF, 0.0, 0.0)
        assert leaf is not None
        assert leaf[0] == pytest.approx(HALF - LEAF / 2.0)
        assert tree.insert_point(-HALF, 0.0, 0.0) is not None

    def test_out_of_extent_points_rejected(self):
        tree = make_tree()
        assert not tree.insert(HALF + 1e-6, 0.0, 0.0)
        assert not tree.insert(0.0, -HALF - 1.0, 0.0)
        assert tree.insert_array(np.array([[9.0, 0.0, 0.0], [0.0, 0.0, 0.0]])) == 1
        assert tree.n_points == 1


class TestSpecAnchoredLattice:
    def test_for_spec_leaf_size_is_exact(self):
        spec = GridSpec.from_bbox(BoundingBox(0, 0, 21.3, 17.9), 0.15, margin_m=1.0)
        tree = OctoMap.for_spec(spec)
        assert tree.leaf_size == spec.cell_size_m  # exact, not approx

    def test_for_spec_min_corner_aligned_to_grid(self):
        spec = GridSpec.from_bbox(BoundingBox(-3.7, 2.1, 18.0, 12.0), 0.15, margin_m=1.0)
        tree = OctoMap.for_spec(spec)
        mx, my, mz = tree.min_corner
        cells_x = (spec.origin_x - mx) / tree.leaf_size
        cells_y = (spec.origin_y - my) / tree.leaf_size
        assert cells_x == pytest.approx(round(cells_x), abs=1e-9)
        assert cells_y == pytest.approx(round(cells_y), abs=1e-9)
        assert round(cells_x) >= 1 and round(cells_y) >= 1  # padding present

    def test_for_spec_covers_grid_and_z_floor(self):
        spec = GridSpec.from_bbox(BoundingBox(0, 0, 22.0, 15.0), 0.15, margin_m=1.0)
        tree = OctoMap.for_spec(spec, z_floor_m=-4.0)
        mx, my, mz = tree.min_corner
        side = 2.0 * (tree.leaf_size * (2 ** tree.max_depth)) / 2.0
        assert mx <= spec.origin_x and my <= spec.origin_y
        assert mx + side >= spec.origin_x + spec.n_cols * spec.cell_size_m
        assert my + side >= spec.origin_y + spec.n_rows * spec.cell_size_m
        assert mz <= -4.0 + 1e-9

    def test_same_lattice_regardless_of_cloud(self):
        """The point of for_spec: insertion history never moves the lattice."""
        spec = GridSpec.from_bbox(BoundingBox(0, 0, 10.0, 10.0), 0.25, margin_m=0.0)
        a = OctoMap.for_spec(spec)
        b = OctoMap.for_spec(spec)
        a.insert(1.0, 1.0, 1.0)
        b.insert_array(np.array([[9.9, 9.9, 2.0], [1.0, 1.0, 1.0]]))
        assert a.insert_point(4.4, 5.5, 0.7) == b.insert_point(4.4, 5.5, 0.7)
