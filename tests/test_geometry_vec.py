"""Unit and property tests for repro.geometry.vec."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import Vec2, Vec3, angle_difference

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
small = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)


class TestVec2:
    def test_add_sub(self):
        a, b = Vec2(1, 2), Vec2(3, -4)
        assert a + b == Vec2(4, -2)
        assert a - b == Vec2(-2, 6)

    def test_scalar_ops(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)
        assert Vec2(3, 6) / 3 == Vec2(1, 2)

    def test_division_by_zero(self):
        with pytest.raises(GeometryError):
            Vec2(1, 1) / 0

    def test_dot_and_cross(self):
        assert Vec2(1, 0).dot(Vec2(0, 1)) == 0
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1
        assert Vec2(0, 1).cross(Vec2(1, 0)) == -1

    def test_norm(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)
        assert Vec2(3, 4).norm_sq() == pytest.approx(25.0)

    def test_normalized(self):
        n = Vec2(0, 5).normalized()
        assert n == Vec2(0, 1)
        with pytest.raises(GeometryError):
            Vec2(0, 0).normalized()

    def test_perpendicular_is_ccw(self):
        p = Vec2(1, 0).perpendicular()
        assert p == Vec2(0, 1)

    def test_from_angle(self):
        v = Vec2.from_angle(math.pi / 2, 2.0)
        assert v.x == pytest.approx(0.0, abs=1e-12)
        assert v.y == pytest.approx(2.0)

    def test_lerp_endpoints(self):
        a, b = Vec2(0, 0), Vec2(10, -2)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(5, -1)

    @given(small, small, st.floats(-math.pi, math.pi))
    def test_rotation_preserves_norm(self, x, y, angle):
        v = Vec2(x, y)
        assert v.rotated(angle).norm() == pytest.approx(v.norm(), abs=1e-6)

    @given(small, small)
    def test_perpendicular_is_orthogonal(self, x, y):
        v = Vec2(x, y)
        assert abs(v.dot(v.perpendicular())) <= 1e-6 * max(1.0, v.norm_sq())

    @given(small, small, small, small)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_iteration_and_tuple(self):
        assert tuple(Vec2(1, 2)) == (1, 2)
        assert Vec2(1, 2).as_tuple() == (1, 2)


class TestVec3:
    def test_arith(self):
        assert Vec3(1, 2, 3) + Vec3(1, 1, 1) == Vec3(2, 3, 4)
        assert Vec3(1, 2, 3) - Vec3(1, 1, 1) == Vec3(0, 1, 2)
        assert Vec3(1, 2, 3) * 2 == Vec3(2, 4, 6)

    def test_norm_distance(self):
        assert Vec3(2, 3, 6).norm() == pytest.approx(7.0)
        assert Vec3(0, 0, 0).distance_to(Vec3(2, 3, 6)) == pytest.approx(7.0)

    def test_floor_projection(self):
        assert Vec3(1, 2, 3).floor() == Vec2(1, 2)
        assert Vec3.from_floor(Vec2(1, 2), 5.0) == Vec3(1, 2, 5)


class TestAngleDifference:
    def test_zero(self):
        assert angle_difference(1.0, 1.0) == pytest.approx(0.0)

    def test_wraps_across_pi(self):
        d = angle_difference(math.pi - 0.1, -math.pi + 0.1)
        assert d == pytest.approx(-0.2, abs=1e-9)

    @given(st.floats(-10, 10), st.floats(-10, 10))
    def test_result_in_range(self, a, b):
        d = angle_difference(a, b)
        assert -math.pi - 1e-9 <= d <= math.pi + 1e-9

    @given(st.floats(-3, 3), st.floats(-3, 3))
    def test_consistent_with_unit_vectors(self, a, b):
        d = angle_difference(a, b)
        expected = Vec2.from_angle(a).cross(Vec2.from_angle(b))
        # sign of cross(b->a rotation) matches the difference's sign
        assert math.sin(d) == pytest.approx(-expected, abs=1e-9)
