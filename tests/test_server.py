"""Tests for the client/server deployment layer."""

import pytest

from repro.camera import GALAXY_S7
from repro.core import TaskFactory
from repro.errors import ProtocolError
from repro.geometry import Vec2
from repro.server import (
    BackendServer,
    BackendStore,
    Deployment,
    PhotoBatch,
    TaskAssignment,
    TaskRequest,
)
from repro.simkit import Simulator


class TestBackendStore:
    def test_snapshot_versions(self, bench):
        store = BackendStore("venue")
        assert store.latest_maps() is None
        pipeline = bench.make_pipeline()
        outcome = pipeline.process_batch(
            list(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0))
        )
        snap1 = store.save_maps(1, outcome.coverage_cells, outcome.maps)
        snap2 = store.save_maps(2, outcome.coverage_cells, outcome.maps)
        assert snap1.version == 1 and snap2.version == 2
        assert store.latest_maps() is snap2
        assert len(store.snapshot_history()) == 2

    def test_task_ledger(self):
        store = BackendStore("venue")
        task = TaskFactory().photo_task(Vec2(1, 1), 1)
        store.record_task(task)
        assigned = store.assign_task(task.task_id, "client-0")
        assert store.assignee_of(task.task_id) == "client-0"
        with pytest.raises(ProtocolError):
            store.assign_task(task.task_id, "client-1")  # already assigned
        done = store.complete_task(task.task_id)
        assert done.status.value == "completed"
        assert store.tasks_by_status() == {"completed": 1}

    def test_unknown_task_rejected(self):
        store = BackendStore("venue")
        with pytest.raises(ProtocolError):
            store.task(42)
        with pytest.raises(ProtocolError):
            store.assign_task(42, "x")

    def test_counters(self):
        store = BackendStore("venue")
        assert store.counter("photos") == 0
        store.bump("photos", 5)
        store.bump("photos")
        assert store.counter("photos") == 6


class TestBackendServer:
    def make_server(self, bench):
        sim = Simulator()
        pipeline = bench.make_pipeline()
        return sim, pipeline, BackendServer(pipeline, sim, "venue")

    def test_task_request_empty_queue(self, bench):
        _sim, _pipeline, server = self.make_server(bench)
        assignment = server.handle_task_request(TaskRequest("c0"))
        assert assignment.task is None
        assert not assignment.venue_covered

    def test_batch_processing_creates_tasks(self, bench):
        sim, pipeline, server = self.make_server(bench)
        photos = tuple(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0))
        results = []
        server.handle_photo_batch(
            PhotoBatch("c0", None, photos), on_done=results.append
        )
        assert pipeline.iteration == 0  # processing is queued, not immediate
        sim.run()
        assert pipeline.iteration == 1
        assert results and results[0].photos_added
        # Growth queued a follow-up task for the next requester.
        assignment = server.handle_task_request(TaskRequest("c1"))
        assert assignment.task is not None
        assert server.store.assignee_of(assignment.task.task_id) == "c1"

    def test_empty_batch_rejected(self, bench):
        # An empty upload gets a failure reply instead of a server-side
        # exception: crashing the handler would take the backend down for
        # every other connected client.
        _sim, _pipeline, server = self.make_server(bench)
        results = []
        server.handle_photo_batch(PhotoBatch("c0", None, ()), on_done=results.append)
        assert len(results) == 1
        assert not results[0].ok
        assert not results[0].photos_added
        assert results[0].error == "empty photo batch upload"

    def test_processing_time_scales_with_batch(self, bench):
        sim, _pipeline, server = self.make_server(bench)
        photos = tuple(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0))
        server.handle_photo_batch(PhotoBatch("c0", None, photos))
        sim.run()
        from repro.server import PROCESSING_S_PER_PHOTO

        assert sim.now == pytest.approx(PROCESSING_S_PER_PHOTO * len(photos))


class TestDeployment:
    def test_short_deployment_run(self, bench):
        deployment = Deployment(bench, n_clients=2)
        report = deployment.run(until_s=3000.0)
        assert report.tasks_completed >= 1
        assert report.photos_uploaded >= 45
        assert report.total_traffic_mb > 0
        assert report.coverage_cells > 0
        assert report.events_processed > 10

    def test_deployment_deterministic(self):
        from repro.eval import Workbench

        a = Deployment(Workbench.for_library(), n_clients=2).run(until_s=2000.0)
        b = Deployment(Workbench.for_library(), n_clients=2).run(until_s=2000.0)
        assert a.photos_uploaded == b.photos_uploaded
        assert a.coverage_cells == b.coverage_cells
        assert a.events_processed == b.events_processed
