"""Property-based edge-case tests for the geometry layer.

The venue generators and fuzz scenarios feed the geometry kernel inputs
a hand-written test never would: near-degenerate polygons, collinear
walls, zero-length camera rays. These hypothesis properties pin the
kernel's contracts at exactly those edges:

* degenerate constructions (zero-length segments, <3-vertex polygons)
  raise ``GeometryError`` instead of yielding NaN geometry;
* collinear and parallel segments never report a point intersection;
* convex hulls, grid ray-marching and interval merging obey their
  invariants for every input, including the trivial ones.

``derandomize=True`` keeps the suite deterministic — the same examples
run on every machine (the DST determinism contract extends to the test
suite itself).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    Polygon,
    Segment,
    Vec2,
    angle_difference,
    convex_hull,
    merge_intervals,
    ray_march_cells,
)

DETERMINISTIC = settings(derandomize=True, max_examples=60, deadline=None)

coords = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
points = st.builds(Vec2, coords, coords)
cells = st.tuples(st.integers(-40, 40), st.integers(-40, 40))


# ----------------------------------------------------------------------
# segments
# ----------------------------------------------------------------------


class TestSegmentEdges:
    @DETERMINISTIC
    @given(points)
    def test_zero_length_segment_is_rejected(self, p):
        with pytest.raises(GeometryError):
            Segment(p, p)

    @DETERMINISTIC
    @given(points, points, st.floats(min_value=-3.0, max_value=3.0))
    def test_collinear_segments_never_point_intersect(self, a, b, shift):
        """A segment slid along its own carrier line yields no crossing."""
        assume((b - a).norm() > 1e-6)
        seg = Segment(a, b)
        offset = seg.direction * shift
        other = seg.translated(offset)
        assert seg.intersect(other) is None

    @DETERMINISTIC
    @given(points, points, st.floats(min_value=0.1, max_value=5.0))
    def test_parallel_segments_never_point_intersect(self, a, b, gap):
        assume((b - a).norm() > 1e-6)
        seg = Segment(a, b)
        other = seg.translated(seg.normal * gap)
        assert seg.intersect(other) is None

    @DETERMINISTIC
    @given(points, points, points)
    def test_closest_point_is_consistent_with_distance(self, a, b, p):
        assume((b - a).norm() > 1e-6)
        seg = Segment(a, b)
        closest = seg.closest_point(p)
        # The reported distance is the distance to the reported point...
        assert seg.distance_to_point(p) == pytest.approx((p - closest).norm())
        # ...and no sampled point on the segment beats it.
        best = min((p - seg.point_at(t / 16)).norm() for t in range(17))
        assert seg.distance_to_point(p) <= best + 1e-9

    @DETERMINISTIC
    @given(points, points)
    def test_endpoints_and_reversal(self, a, b):
        assume((b - a).norm() > 1e-6)
        seg = Segment(a, b)
        assert (seg.point_at(0.0) - a).norm() == pytest.approx(0.0)
        assert (seg.point_at(1.0) - b).norm() == pytest.approx(0.0)
        assert seg.reversed().length == pytest.approx(seg.length)


# ----------------------------------------------------------------------
# polygons
# ----------------------------------------------------------------------


class TestPolygonEdges:
    @DETERMINISTIC
    @given(points)
    def test_under_three_vertices_rejected(self, p):
        with pytest.raises(GeometryError):
            Polygon([p, p + Vec2(1.0, 0.0)])

    @DETERMINISTIC
    @given(points, st.floats(min_value=0.5, max_value=10.0))
    def test_collinear_polygon_has_zero_area(self, origin, step):
        """All vertices on one line: a valid but area-less polygon."""
        flat = Polygon(
            [origin, origin + Vec2(step, 0.0), origin + Vec2(2 * step, 0.0)]
        )
        assert flat.area() == pytest.approx(0.0)
        assert flat.perimeter() == pytest.approx(4 * step)

    @DETERMINISTIC
    @given(
        points,
        st.floats(min_value=0.5, max_value=10.0),
        st.floats(min_value=0.5, max_value=10.0),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    def test_rotation_preserves_rectangle_area(self, center, w, d, angle):
        rect = Polygon.rotated_rectangle(center, w, d, angle)
        assert rect.area() == pytest.approx(w * d, rel=1e-6)
        assert rect.contains(center)

    @DETERMINISTIC
    @given(points, st.floats(min_value=0.5, max_value=10.0))
    def test_repeated_vertex_keeps_area(self, origin, size):
        """A duplicated vertex must not corrupt the shoelace sum."""
        o = origin
        square = [o, o + Vec2(size, 0), o + Vec2(size, 0), o + Vec2(size, size),
                  o + Vec2(0, size)]
        assert Polygon(square).area() == pytest.approx(size * size, rel=1e-6)


# ----------------------------------------------------------------------
# convex hull
# ----------------------------------------------------------------------


class TestConvexHullEdges:
    @DETERMINISTIC
    @given(
        st.tuples(st.integers(-40, 40), st.integers(-40, 40)),
        st.integers(1, 5),
        st.integers(3, 10),
    )
    def test_collinear_cloud_collapses_to_endpoints(self, origin_xy, step, n):
        # Integer coordinates keep the collinearity float-exact: the hull
        # intentionally uses exact cross products (no epsilon), so points
        # that are collinear only up to rounding are NOT collapsed.
        origin = Vec2(float(origin_xy[0]), float(origin_xy[1]))
        line = [origin + Vec2(float(i * step), float(i * step)) for i in range(n)]
        hull = convex_hull(line)
        assert len(hull) == 2
        assert (hull[0] - line[0]).norm() == pytest.approx(0.0)
        assert (hull[1] - line[-1]).norm() == pytest.approx(0.0)

    @DETERMINISTIC
    @given(st.lists(points, min_size=1, max_size=30))
    def test_hull_vertices_come_from_the_input(self, pts):
        hull = convex_hull(pts)
        raw = {(p.x, p.y) for p in pts}
        assert all((h.x, h.y) in raw for h in hull)

    @DETERMINISTIC
    @given(st.lists(points, min_size=3, max_size=30))
    def test_hull_is_idempotent(self, pts):
        hull = convex_hull(pts)
        again = convex_hull(hull)
        assert [(p.x, p.y) for p in again] == [(p.x, p.y) for p in hull]


# ----------------------------------------------------------------------
# grid ray marching
# ----------------------------------------------------------------------


class TestRayMarchEdges:
    @DETERMINISTIC
    @given(cells)
    def test_zero_length_ray_is_one_cell(self, cell):
        assert ray_march_cells(cell, cell) == [cell]

    @DETERMINISTIC
    @given(cells, cells)
    def test_march_hits_both_endpoints_with_unit_steps(self, a, b):
        path = ray_march_cells(a, b)
        assert path[0] == a and path[-1] == b
        # Bresenham: exactly chebyshev+1 cells, 8-connected steps.
        assert len(path) == max(abs(b[0] - a[0]), abs(b[1] - a[1])) + 1
        for (r0, c0), (r1, c1) in zip(path, path[1:]):
            assert max(abs(r1 - r0), abs(c1 - c0)) == 1


# ----------------------------------------------------------------------
# intervals + angles
# ----------------------------------------------------------------------


class TestIntervalAndAngleEdges:
    @DETERMINISTIC
    @given(
        st.lists(
            st.tuples(coords, st.floats(min_value=0.0, max_value=5.0)),
            max_size=20,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_merge_yields_sorted_gapped_intervals(self, raw, gap):
        intervals = [(s, s + w) for s, w in raw]
        merged = merge_intervals(intervals, gap)
        for (s0, e0), (s1, e1) in zip(merged, merged[1:]):
            assert e0 <= s1  # disjoint and ordered...
            assert s1 - e0 > gap  # ...with more than `gap` between them
        # Conservation: every original endpoint still lies inside a merged span.
        for s, e in intervals:
            assert any(ms - 1e-9 <= s and e <= me + 1e-9 for ms, me in merged)

    @DETERMINISTIC
    @given(
        st.floats(min_value=-20.0, max_value=20.0),
        st.floats(min_value=-20.0, max_value=20.0),
    )
    def test_angle_difference_wraps_into_half_open_pi(self, a, b):
        diff = angle_difference(a, b)
        assert -math.pi < diff <= math.pi + 1e-12
        # a and b+diff name the same direction.
        assert math.cos(b + diff) == pytest.approx(math.cos(a), abs=1e-6)
        assert math.sin(b + diff) == pytest.approx(math.sin(a), abs=1e-6)
