"""Tests for configuration validation and paper constants."""

import dataclasses
import math

import pytest

from repro.config import (
    AnnotationConfig,
    CameraConfig,
    FaultConfig,
    GridConfig,
    NetworkConfig,
    ProtocolConfig,
    SfmConfig,
    SnapTaskConfig,
    TaskConfig,
    paper_config,
)
from repro.errors import ConfigError


class TestPaperConstants:
    """The published operating point (quoted sections in config.py)."""

    def test_cell_size_15cm(self, config):
        assert config.grid.cell_size_m == 0.15

    def test_obstacle_threshold_4(self, config):
        assert config.tasks.obstacle_threshold == 4

    def test_covered_view_tolerance_3(self, config):
        assert config.tasks.covered_view_tolerance == 3

    def test_min_area_2_25_m2(self, config):
        assert config.tasks.min_area_size_m2 == 2.25

    def test_tt_equals_2(self, config):
        assert config.tasks.annotation_trigger_attempts == 2

    def test_capture_step_8_degrees(self, config):
        assert config.tasks.capture_step_deg == 8.0

    def test_annotation_photos_t_4(self, config):
        assert config.tasks.annotation_photos_per_task == 4

    def test_bounds_merge_threshold_015(self, config):
        assert config.eval.bounds_merge_threshold_m == 0.15

    def test_photos_per_split_100(self, config):
        assert config.eval.photos_per_split == 100

    def test_positioning_error_1m(self, config):
        assert config.nav.positioning_error_m == 1.0

    def test_min_views_3(self, config):
        assert config.sfm.min_views_per_point == 3

    def test_workers_15(self, config):
        assert config.annotation.workers_per_task == 15

    def test_min_area_cells_at_15cm(self, config):
        assert config.min_area_cells == 100


class TestValidation:
    def test_paper_config_valid(self):
        paper_config().validate()

    def test_bad_cell_size(self):
        with pytest.raises(ConfigError):
            GridConfig(cell_size_m=0.0).validate()

    def test_bad_min_views(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(SfmConfig(), min_views_per_point=1).validate()

    def test_bad_detection_prob(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(SfmConfig(), base_detection_prob=0.0).validate()

    def test_bad_ranges(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(
                SfmConfig(), min_feature_range_m=10.0, max_feature_range_m=5.0
            ).validate()

    def test_bad_fov(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(CameraConfig(), hfov_deg=200.0).validate()

    def test_bad_obstacle_threshold(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(TaskConfig(), obstacle_threshold=0).validate()

    def test_kmeans_must_be_4(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(AnnotationConfig(), kmeans_clusters=3).validate()

    def test_bad_network_bandwidth(self):
        with pytest.raises(ConfigError):
            NetworkConfig(bandwidth_mbps=0.0).validate()
        with pytest.raises(ConfigError):
            NetworkConfig(bandwidth_mbps=-5.0).validate()

    def test_bad_network_latency(self):
        with pytest.raises(ConfigError):
            NetworkConfig(latency_s=-0.1).validate()

    def test_network_validates_nested_faults(self):
        bad = NetworkConfig(faults=FaultConfig(drop_probability=1.5))
        with pytest.raises(ConfigError):
            bad.validate()

    def test_bad_fault_probabilities(self):
        with pytest.raises(ConfigError):
            FaultConfig(drop_probability=-0.1).validate()
        with pytest.raises(ConfigError):
            FaultConfig(duplicate_probability=1.0).validate()
        with pytest.raises(ConfigError):
            FaultConfig(jitter_s=-1.0).validate()

    def test_bad_disconnect_window(self):
        with pytest.raises(ConfigError):
            FaultConfig(disconnect_windows=((10.0, 5.0),)).validate()
        with pytest.raises(ConfigError):
            FaultConfig(disconnect_windows=((-1.0, 5.0),)).validate()

    def test_bad_protocol_config(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(lease_duration_s=0.0).validate()
        with pytest.raises(ConfigError):
            ProtocolConfig(rto_backoff=0.5).validate()
        with pytest.raises(ConfigError):
            ProtocolConfig(max_retries=-1).validate()
        with pytest.raises(ConfigError):
            ProtocolConfig(rto_max_s=1.0, rto_initial_s=2.0).validate()

    def test_protocol_in_top_level_validate(self):
        config = dataclasses.replace(
            paper_config(), protocol=ProtocolConfig(lease_duration_s=-1.0)
        )
        with pytest.raises(ConfigError):
            config.validate()


class TestDerivedValues:
    def test_focal_from_fov(self):
        cam = CameraConfig(hfov_deg=90.0, image_width_px=2000)
        assert cam.focal_length_px == pytest.approx(1000.0)

    def test_hfov_rad(self):
        cam = CameraConfig(hfov_deg=66.0)
        assert cam.hfov_rad == pytest.approx(math.radians(66.0))

    def test_with_cell_size(self):
        cfg = paper_config().with_cell_size(0.30)
        assert cfg.grid.cell_size_m == 0.30
        assert cfg.min_area_cells == 25  # 2.25 / 0.09

    def test_with_seed(self):
        assert paper_config().with_seed(99).seed == 99
