"""Round-trip and torn-tail properties of the WAL codec.

The durability contract (DESIGN.md §10) leans on two codec facts:

* record -> bytes -> record is the **identity** for every field value a
  handler can produce (floats round-trip exactly via JSON repr, bytes
  via base64) — pinned here with hypothesis over every record type;
* a WAL cut at *any* byte (crash mid-append) decodes to a clean prefix
  of the original records and nothing else — no exception, no partial
  record, no resynchronisation past a corrupt length field.

Derandomized: DST treats the test suite itself as a pure function of
the tree, so hypothesis draws from a fixed seed.
"""

from __future__ import annotations

import struct
import zlib

from hypothesis import given, settings, strategies as st

from repro.persist import (
    CODEC_VERSION,
    AdmitRecord,
    BatchRecord,
    CodecError,
    EmptyBatchRecord,
    GrantRecord,
    LocateRecord,
    ReapRecord,
    WriteAheadLog,
    decode_wal,
    encode_record,
)
from repro.persist.codec import decode_body, iter_frames

finite = st.floats(allow_nan=False, allow_infinity=False)
opt_float = st.none() | finite
opt_text = st.none() | st.text(max_size=40)
opt_int = st.none() | st.integers(-(2**40), 2**40)
ident = st.text(max_size=20)

RECORD_STRATEGIES = st.one_of(
    st.builds(
        GrantRecord,
        t=finite,
        client_id=ident,
        request_id=opt_text,
        position_x=opt_float,
        position_y=opt_float,
    ),
    st.builds(AdmitRecord, t=finite, batch_id=opt_text, task_id=opt_int, seq=opt_int),
    st.builds(
        BatchRecord,
        arrived_t=finite,
        done_t=finite,
        client_id=ident,
        task_id=opt_int,
        batch_id=opt_text,
        photos_blob=st.binary(max_size=200),
        seq=opt_int,
        wait_s=opt_float,
        service_s=opt_float,
    ),
    st.builds(
        EmptyBatchRecord, t=finite, client_id=ident, task_id=opt_int, batch_id=opt_text
    ),
    st.builds(ReapRecord, t=finite, task_id=st.integers(0, 2**31)),
    st.builds(LocateRecord, t=finite, query_count=st.integers(0, 2**40)),
)


class TestRoundTrip:
    @settings(deadline=None, max_examples=120, derandomize=True)
    @given(RECORD_STRATEGIES)
    def test_single_record_identity(self, record):
        buf = encode_record(record)
        decoded, consumed, torn = decode_wal(buf)
        assert decoded == [record]
        assert consumed == len(buf)
        assert not torn

    @settings(deadline=None, max_examples=60, derandomize=True)
    @given(st.lists(RECORD_STRATEGIES, max_size=8))
    def test_journal_identity(self, records):
        buf = b"".join(encode_record(r) for r in records)
        decoded, consumed, torn = decode_wal(buf)
        assert decoded == records
        assert consumed == len(buf)
        assert not torn

    @settings(deadline=None, max_examples=60, derandomize=True)
    @given(st.lists(RECORD_STRATEGIES, min_size=1, max_size=6))
    def test_wal_object_round_trip(self, records):
        wal = WriteAheadLog()
        for record in records:
            wal.append(record)
        assert wal.position == len(records)
        rebuilt, report = WriteAheadLog.from_bytes(wal.to_bytes())
        assert not report
        assert not report.torn
        assert report.records == len(records)
        assert report.tear_offset is None
        assert report.dropped_records == 0
        assert report.clean_bytes == report.total_bytes == wal.size_bytes
        assert rebuilt.records() == records
        # Positions slice mid-journal.
        assert rebuilt.records(start=1) == records[1:]


class TestTornTail:
    def _journal(self):
        records = [
            GrantRecord(t=1.5, client_id="c-0", request_id="r1",
                        position_x=2.25, position_y=-3.5),
            AdmitRecord(t=2.0, batch_id="b1", task_id=7, seq=3),
            BatchRecord(arrived_t=2.0, done_t=9.5, client_id="c-0", task_id=7,
                        batch_id="b1", photos_blob=b"\x00\xffblob", seq=3,
                        wait_s=0.0, service_s=7.5),
            ReapRecord(t=700.0, task_id=7),
        ]
        return records, b"".join(encode_record(r) for r in records)

    def test_truncation_at_every_byte(self):
        """Any byte prefix decodes to a record prefix — crash anywhere."""
        records, buf = self._journal()
        boundaries = [end for end, _ in iter_frames(buf)]
        for cut in range(len(buf) + 1):
            decoded, consumed, torn = decode_wal(buf[:cut])
            n_clean = sum(1 for end in boundaries if end <= cut)
            assert decoded == records[:n_clean], cut
            assert consumed == (boundaries[n_clean - 1] if n_clean else 0)
            assert torn == (consumed != cut)

    def test_truncated_wal_accepts_new_appends(self):
        """Recovery trims the tear; the journal must stay appendable."""
        records, buf = self._journal()
        wal, report = WriteAheadLog.from_bytes(buf[:-3])
        assert report
        assert report.torn
        assert report.records == len(records) - 1
        assert report.tear_offset == report.clean_bytes < report.total_bytes == len(buf) - 3
        # The tear destroyed (at least) the final record.
        assert report.dropped_records >= 1
        assert wal.position == len(records) - 1
        wal.append(LocateRecord(t=701.0, query_count=9))
        assert wal.records() == records[:-1] + [LocateRecord(t=701.0, query_count=9)]

    def test_corrupt_body_stops_the_decode(self):
        """A CRC mismatch ends the log — nothing after it is trusted."""
        records, buf = self._journal()
        boundaries = [0] + [end for end, _ in iter_frames(buf)]
        header = struct.Struct("<2sBII")
        for i in range(len(records)):
            corrupt = bytearray(buf)
            corrupt[boundaries[i] + header.size] ^= 0x5A  # first body byte
            decoded, _, torn = decode_wal(bytes(corrupt))
            assert decoded == records[:i]
            assert torn

    def test_future_codec_version_is_the_end_of_the_log(self):
        records, buf = self._journal()
        body = b"{}"
        alien = struct.pack(
            "<2sBII", b"RW", CODEC_VERSION + 1, len(body), zlib.crc32(body)
        ) + body
        decoded, _, torn = decode_wal(buf + alien)
        assert decoded == records
        assert torn

    def test_unknown_kind_and_field_mismatch_raise(self):
        try:
            decode_body(b'{"f":{},"kind":"warp"}')
        except CodecError:
            pass
        else:  # pragma: no cover
            raise AssertionError("unknown kind accepted")
        try:
            decode_body(b'{"f":{"t":1.0},"kind":"reap"}')  # task_id missing
        except CodecError:
            pass
        else:  # pragma: no cover
            raise AssertionError("field mismatch accepted")
