"""Tests for obstacle/visibility maps, coverage and the bounds metric."""

import numpy as np
import pytest

from repro.geometry import BoundingBox, Vec2
from repro.mapping import (
    CoverageMaps,
    Grid2D,
    GridSpec,
    calculate_obstacles_map,
    calculate_visibility_map,
    camera_visible_cells,
    outer_bounds_report,
    render_ascii,
    score_against_ground_truth,
    wall_covered_length,
)
from repro.mapping.visibility import sector_information_ranges
from repro.sfm import PointCloud, SfmModel
from repro.sfm.model import RecoveredCamera
from repro.sfm.pointcloud import CloudPoint
from repro.camera import GALAXY_S7, CameraPose
from repro.geometry import Segment


def small_spec(cell=0.25, size=10.0):
    return GridSpec.from_bbox(BoundingBox(0, 0, size, size), cell, margin_m=0.0)


def wall_cloud(x=5.0, y0=2.0, y1=8.0, step=0.05, per_column=6):
    """A dense synthetic 'wall' of points along x=const."""
    points = []
    fid = 0
    ys = np.arange(y0, y1, step)
    for y in ys:
        for k in range(per_column):
            points.append(CloudPoint(fid, x, float(y), 0.3 + 0.4 * k, 3))
            fid += 1
    return PointCloud(points)


class TestObstaclesMap:
    def test_wall_becomes_obstacles(self):
        spec = small_spec()
        grid = calculate_obstacles_map(wall_cloud(), spec, obstacle_threshold=4)
        assert grid.nonzero_count() > 10
        # Obstacle cells hug the x=5 line.
        rows, cols = np.nonzero(grid.nonzero_mask())
        xs = spec.origin_x + (cols + 0.5) * spec.cell_size_m
        assert np.all(np.abs(xs - 5.0) < 0.5)

    def test_threshold_suppresses_sparse_noise(self):
        spec = small_spec()
        sparse = PointCloud([CloudPoint(i, 1.0 + i, 1.0, 1.0, 3) for i in range(5)])
        grid = calculate_obstacles_map(sparse, spec, obstacle_threshold=4)
        assert grid.nonzero_count() == 0

    def test_z_band_filters_floor_and_ceiling(self):
        spec = small_spec()
        floor = PointCloud([CloudPoint(i, 5.0, 5.0, 0.01, 3) for i in range(20)])
        grid = calculate_obstacles_map(floor, spec, obstacle_threshold=4)
        assert grid.nonzero_count() == 0

    def test_empty_cloud(self):
        grid = calculate_obstacles_map(PointCloud.empty(), small_spec(), 4)
        assert grid.nonzero_count() == 0


def make_camera(photo_id, x, y, yaw, observed=None):
    return RecoveredCamera(
        photo_id=photo_id,
        pose=CameraPose.at(x, y, yaw),
        intrinsics=GALAXY_S7,
        n_inliers=100,
        observed_feature_ids=observed,
    )


class TestVisibilityMap:
    def test_wedge_blocked_by_obstacle(self):
        spec = small_spec()
        obstacles = Grid2D(spec)
        # A wall band at x=5.
        for row in range(spec.n_rows):
            obstacles.data[row, spec.cell_of(Vec2(5.0, 0.1))[1]] = 5.0
        mask = camera_visible_cells(
            spec, obstacles.nonzero_mask(), 2.0, 5.0, 0.0, 1.2, 6.0
        )
        # Cells before the wall visible; cells beyond it are not.
        before = spec.cell_of(Vec2(4.0, 5.0))
        beyond = spec.cell_of(Vec2(7.0, 5.0))
        assert mask[before]
        assert not mask[beyond]

    def test_ray_range_limits(self):
        spec = small_spec()
        empty = np.zeros(spec.shape, dtype=bool)
        mask = camera_visible_cells(spec, empty, 2.0, 5.0, 0.0, 1.2, 2.0)
        far = spec.cell_of(Vec2(6.0, 5.0))
        assert not mask[far]

    def test_counts_accumulate_per_camera(self):
        spec = small_spec()
        obstacles = Grid2D(spec)
        cameras = [make_camera(i, 2.0, 5.0, 0.0) for i in range(3)]
        model = SfmModel(PointCloud.empty(), cameras)
        grid = calculate_visibility_map(model, obstacles, 4.0, information_clipping=False)
        assert grid.data.max() == 3.0

    def test_information_clipping_limits_wedge(self):
        spec = small_spec()
        obstacles = Grid2D(spec)
        # One triangulated point 2 m ahead; camera observed it.
        cloud = PointCloud([CloudPoint(42, 4.0, 5.0, 1.0, 3)])
        camera = make_camera(1, 2.0, 5.0, 0.0, observed=np.array([42]))
        model = SfmModel(cloud, [camera])
        grid = calculate_visibility_map(model, obstacles, 6.0)
        near = spec.cell_of(Vec2(3.0, 5.0))
        far = spec.cell_of(Vec2(7.5, 5.0))  # beyond point + margin
        assert grid.data[near] > 0
        assert grid.data[far] == 0

    def test_no_observations_minimal_wedge(self):
        spec = small_spec()
        obstacles = Grid2D(spec)
        camera = make_camera(1, 2.0, 5.0, 0.0, observed=np.zeros(0, dtype=int))
        model = SfmModel(PointCloud.empty(), [camera])
        grid = calculate_visibility_map(model, obstacles, 6.0)
        assert grid.nonzero_count() <= 12  # just the immediate vicinity

    def test_sector_ranges(self):
        cloud_ids = np.array([1, 2])
        cloud_xy = np.array([[4.0, 5.0], [2.5, 6.0]])
        camera = make_camera(1, 2.0, 5.0, 0.0, observed=np.array([1, 2, 99]))
        ranges = sector_information_ranges(camera, cloud_ids, cloud_xy, 6.0)
        assert ranges.max() > 2.0
        assert ranges.min() >= 0.3


class TestCoverage:
    def test_union_and_score(self):
        spec = small_spec()
        obstacles, visibility = Grid2D(spec), Grid2D(spec)
        obstacles.data[0, 0] = 5
        visibility.data[1, 1] = 2
        visibility.data[0, 0] = 1
        maps = CoverageMaps(obstacles, visibility)
        assert maps.covered_cells() == 2

        region = np.ones(spec.shape, dtype=bool)
        gt_obstacles = np.zeros(spec.shape, dtype=bool)
        gt_obstacles[0, 0] = True
        score = score_against_ground_truth(maps, region, gt_obstacles)
        assert score.covered_in_region == 2
        assert score.obstacle_recall == 1.0

    def test_region_mask_excludes_outside(self):
        spec = small_spec()
        obstacles, visibility = Grid2D(spec), Grid2D(spec)
        visibility.data[:, :] = 1.0
        maps = CoverageMaps(obstacles, visibility)
        region = np.zeros(spec.shape, dtype=bool)
        region[0, 0] = True
        score = score_against_ground_truth(maps, region, np.zeros(spec.shape, bool))
        assert score.covered_in_region == 1
        assert score.coverage_percent == 100.0

    def test_mismatched_specs_rejected(self):
        from repro.errors import MappingError

        a = Grid2D(GridSpec(0, 0, 0.5, 4, 4))
        b = Grid2D(GridSpec(0, 0, 0.25, 4, 4))
        with pytest.raises(MappingError):
            CoverageMaps(a, b)


class TestBounds:
    def test_full_wall_coverage(self):
        wall = Segment(Vec2(0, 0), Vec2(10, 0))
        xy = np.array([[x, 0.05] for x in np.arange(0.1, 10.0, 0.1)])
        length = wall_covered_length(wall, xy, 0.15, 0.3, 0.15)
        assert length == pytest.approx(10.0, abs=0.2)

    def test_gap_larger_than_threshold_splits(self):
        wall = Segment(Vec2(0, 0), Vec2(10, 0))
        xy = np.array([[x, 0.0] for x in list(np.arange(0, 3, 0.1)) + list(np.arange(7, 10, 0.1))])
        length = wall_covered_length(wall, xy, 0.15, 0.3, 0.15)
        assert length < 7.0

    def test_far_points_ignored(self):
        wall = Segment(Vec2(0, 0), Vec2(10, 0))
        xy = np.array([[5.0, 2.0]])
        assert wall_covered_length(wall, xy, 0.15, 0.3, 0.15) == 0.0

    def test_outer_bounds_report(self, bench, library):
        # A synthetic obstacles grid tracing the full south wall.
        spec = bench.spec
        grid = Grid2D(spec)
        for x in np.arange(0.0, 22.0, 0.05):
            cell = spec.cell_of(Vec2(float(x), 0.0))
            if cell:
                grid.data[cell] = 5.0
        report = outer_bounds_report(library, grid)
        south = [w for w in report.per_wall if "south" in w[0]]
        assert all(got == pytest.approx(total, abs=0.3) for _l, got, total in south)
        assert 0 < report.percent < 100


class TestRenderAscii:
    def test_renders_layers(self):
        spec = small_spec(0.5)
        obstacles, visibility = Grid2D(spec), Grid2D(spec)
        obstacles.data[10, 10] = 5
        visibility.data[5, 5] = 2
        art = render_ascii(CoverageMaps(obstacles, visibility))
        assert "#" in art
        assert "." in art
