"""Tests for intrinsics, poses, photos and the capture simulator."""

import math

import numpy as np
import pytest

from repro.camera import (
    DEVICE_PRESETS,
    GALAXY_S7,
    CameraPose,
    ExifMetadata,
    Intrinsics,
    sweep_poses,
)
from repro.errors import CaptureError
from repro.geometry import Vec2


class TestIntrinsics:
    def test_fov_roundtrip(self):
        intr = Intrinsics("test", focal_length_px=2000.0, image_width_px=4000, image_height_px=3000)
        assert intr.hfov_deg == pytest.approx(2 * math.degrees(math.atan(1.0)))

    def test_presets_have_sane_fov(self):
        for device in DEVICE_PRESETS.values():
            assert 50.0 <= device.hfov_deg <= 80.0

    def test_validation(self):
        with pytest.raises(CaptureError):
            Intrinsics("bad", focal_length_px=-1, image_width_px=100, image_height_px=100)

    def test_exif_recovers_intrinsics(self):
        exif = ExifMetadata(
            device_model=GALAXY_S7.device_model,
            focal_length_px=GALAXY_S7.focal_length_px,
            image_width_px=GALAXY_S7.image_width_px,
            image_height_px=GALAXY_S7.image_height_px,
            timestamp_s=0.0,
            venue_id="test",
        )
        assert exif.intrinsics().hfov_rad == pytest.approx(GALAXY_S7.hfov_rad)


class TestCameraPose:
    def test_facing(self):
        pose = CameraPose.at(0, 0).facing(Vec2(0, 5))
        assert pose.yaw_rad == pytest.approx(math.pi / 2)

    def test_bearing(self):
        pose = CameraPose.at(0, 0, yaw_rad=0.0)
        assert pose.bearing_to(Vec2(1, 1)) == pytest.approx(math.pi / 4)

    def test_rotation_wraps(self):
        pose = CameraPose.at(0, 0, yaw_rad=math.pi - 0.1).rotated(0.3)
        assert -math.pi < pose.yaw_rad <= math.pi

    def test_sweep_poses_count_and_step(self):
        poses = sweep_poses(Vec2(1, 1), 8.0)
        assert len(poses) == 45  # 360 / 8
        diffs = {round(math.degrees(poses[1].yaw_rad - poses[0].yaw_rad), 3)}
        assert diffs == {8.0}

    def test_sweep_poses_bad_step(self):
        with pytest.raises(ValueError):
            sweep_poses(Vec2(0, 0), 0.0)


class TestCaptureSimulator:
    def test_photo_has_exif_venue_id(self, bench):
        photo = bench.capture.take_photo(CameraPose.at(3, 3), GALAXY_S7)
        assert photo.exif.venue_id == bench.venue.name
        assert photo.exif.device_model == GALAXY_S7.device_model

    def test_facing_texture_yields_features(self, bench):
        # Facing the south brick wall from ~1.7 m away.
        pose = CameraPose.at(10.0, 1.7, yaw_rad=-math.pi / 2)
        photo = bench.capture.take_photo(pose, GALAXY_S7, blur=0.0)
        assert photo.n_features > 50

    def test_facing_bare_glass_yields_few(self, bench):
        # Hugging the west glass, facing it: almost nothing to detect.
        pose = CameraPose.at(0.5, 7.0, yaw_rad=math.pi)
        photo = bench.capture.take_photo(pose, GALAXY_S7, blur=0.0)
        assert photo.n_features < 35

    def test_exposure_compensation_helps_at_glass(self, bench):
        pose = CameraPose.at(2.6, 7.0, yaw_rad=math.pi)
        normal = bench.capture.take_photo(pose, GALAXY_S7, blur=0.0)
        compensated = bench.capture.take_photo(
            pose, GALAXY_S7, blur=0.0, exposure_compensated=True
        )
        assert compensated.n_features >= normal.n_features

    def test_blur_reduces_features(self, bench):
        pose = CameraPose.at(10.0, 1.7, yaw_rad=-math.pi / 2)
        sharp = bench.capture.take_photo(pose, GALAXY_S7, blur=0.0)
        blurry = bench.capture.take_photo(pose, GALAXY_S7, blur=0.85)
        assert blurry.n_features < sharp.n_features / 2

    def test_blur_out_of_range(self, bench):
        with pytest.raises(CaptureError):
            bench.capture.take_photo(CameraPose.at(3, 3), GALAXY_S7, blur=1.5)

    def test_occlusion_by_bookshelf(self, bench):
        """Features behind a shelf row must not be observed."""
        # Camera south of shelf-row-0 looking north: features of row 1's
        # south face (y=4.8) are hidden behind row 0 (y 2.0-2.5, h 2.0).
        pose = CameraPose.at(10.0, 1.0, yaw_rad=math.pi / 2)
        photo = bench.capture.take_photo(pose, GALAXY_S7, blur=0.0)
        positions = bench.world.positions
        ids = set(int(f) for f in photo.feature_ids)
        for idx, fid in enumerate(bench.world.ids):
            if int(fid) in ids:
                x, y, z = positions[idx]
                # Nothing from strictly behind the first shelf row band at
                # a height the shelf blocks.
                if 9.0 < x < 11.0 and 2.6 < y < 4.7 and z < 1.2:
                    raise AssertionError(f"saw hidden feature at {x},{y},{z}")

    def test_photo_ids_unique(self, bench):
        a = bench.capture.take_photo(CameraPose.at(3, 3), GALAXY_S7)
        b = bench.capture.take_photo(CameraPose.at(3, 3), GALAXY_S7)
        assert a.photo_id != b.photo_id

    def test_photo_pixel_lookup(self, bench):
        pose = CameraPose.at(10.0, 1.7, yaw_rad=-math.pi / 2)
        photo = bench.capture.take_photo(pose, GALAXY_S7, blur=0.0)
        fid = int(photo.feature_ids[0])
        u, v = photo.pixel_of(fid)
        assert 0 <= u < GALAXY_S7.image_width_px + 10
        with pytest.raises(CaptureError):
            photo.pixel_of(-12345)

    def test_with_extra_observations(self, bench):
        photo = bench.capture.take_photo(CameraPose.at(3, 3), GALAXY_S7)
        n = photo.n_features
        extended = photo.with_extra_observations(
            np.array([10_000_000, 10_000_001]),
            np.array([[1.0, 2.0], [3.0, 4.0]]),
            suffix="imprint",
        )
        assert extended.n_features == n + 2
        assert extended.photo_id == photo.photo_id
        assert "imprint" in extended.source

    def test_sweep_yields_45_photos(self, bench):
        photos = list(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0))
        assert len(photos) == 45
        assert len({p.photo_id for p in photos}) == 45
