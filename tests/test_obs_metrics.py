"""Metrics registry: counters, gauges, log-bucketed histogram edges."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    NullCounter,
    NullHistogram,
)


class TestCounter:
    def test_increments(self):
        c = Counter("repro.test.c")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_float_increments(self):
        c = Counter("repro.test.mb")
        c.inc(2.5)
        c.inc(0.25)
        assert c.value == pytest.approx(2.75)

    def test_snapshot(self):
        c = Counter("repro.test.c")
        c.inc(7)
        assert c.snapshot() == {"type": "counter", "value": 7}


class TestGauge:
    def test_set_and_watermark(self):
        g = Gauge("repro.test.depth")
        g.set(5)
        g.set(2)
        assert g.value == 2
        assert g.max_value == 5

    def test_inc_dec(self):
        g = Gauge("repro.test.depth")
        g.inc(3)
        g.dec()
        assert g.value == 2
        assert g.max_value == 3


class TestHistogramBuckets:
    """Bucket k is (edge(k-1), edge(k)] with edge(k) = base * growth**k."""

    def test_zeros_bucket(self):
        h = Histogram("repro.test.h")
        assert h.bucket_index(0.0) == -1
        assert h.bucket_index(-1.0) == -1
        h.record(0.0)
        assert h.zeros == 1 and h.count == 1

    def test_bucket_zero_is_zero_to_base(self):
        h = Histogram("repro.test.h", base=1e-4, growth=2.0)
        assert h.bucket_index(1e-9) == 0
        assert h.bucket_index(1e-4) == 0  # exactly the edge: inclusive

    def test_edges_are_exact_across_all_buckets(self):
        h = Histogram("repro.test.h", base=1e-4, growth=2.0, max_buckets=64)
        for k in range(0, 50):
            edge = h.bucket_edge(k)
            # A value exactly at the edge belongs to bucket k...
            assert h.bucket_index(edge) == k, f"edge({k}) landed wrong"
            # ...and the next representable value above it to bucket k+1.
            above = edge * (1.0 + 1e-12)
            expect = min(k + 1, h.max_buckets - 1)
            assert h.bucket_index(above) == expect

    def test_overflow_clamps_to_last_bucket(self):
        h = Histogram("repro.test.h", base=1.0, growth=2.0, max_buckets=4)
        assert h.bucket_index(1e9) == 3
        h.record(1e9)
        assert h.bucket_counts() == [(h.bucket_edge(3), 1)]

    def test_growth_other_than_two(self):
        h = Histogram("repro.test.h", base=0.5, growth=3.0, max_buckets=32)
        for k in range(0, 20):
            assert h.bucket_index(h.bucket_edge(k)) == k

    def test_invalid_parameters_raise(self):
        with pytest.raises(ObservabilityError):
            Histogram("repro.test.h", base=0.0)
        with pytest.raises(ObservabilityError):
            Histogram("repro.test.h", growth=1.0)
        with pytest.raises(ObservabilityError):
            Histogram("repro.test.h", max_buckets=0)


class TestHistogramStats:
    def test_count_total_min_max_mean(self):
        h = Histogram("repro.test.h", base=1.0, growth=2.0)
        for v in (1.0, 2.0, 4.0, 9.0):
            h.record(v)
        assert h.count == 4
        assert h.total == pytest.approx(16.0)
        assert h.mean == pytest.approx(4.0)
        assert h.min == 1.0 and h.max == 9.0

    def test_quantile_bucket_upper_edges(self):
        h = Histogram("repro.test.h", base=1.0, growth=2.0)
        for v in (0.5, 0.6, 3.0, 100.0):
            h.record(v)
        # p50 falls in bucket 0 (two of four values <= 1.0).
        assert h.quantile(0.5) == pytest.approx(1.0)
        # p100 is the exact observed max, not a bucket edge.
        assert h.quantile(1.0) == pytest.approx(100.0)
        assert h.quantile(0.0) == pytest.approx(0.5)
        with pytest.raises(ObservabilityError):
            h.quantile(1.5)

    def test_quantile_clamped_to_observed_max(self):
        h = Histogram("repro.test.h", base=1.0, growth=2.0)
        h.record(5.0)  # bucket edge is 8.0
        assert h.quantile(0.5) == pytest.approx(5.0)

    def test_snapshot_shape(self):
        h = Histogram("repro.test.h", base=1.0, growth=2.0)
        h.record(0.0)
        h.record(3.0)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        assert snap["count"] == 2 and snap["zeros"] == 1
        assert snap["buckets"] == [{"le": 4.0, "count": 1}]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("repro.a.x") is reg.counter("repro.a.x")
        assert reg.histogram("repro.a.h") is reg.histogram("repro.a.h")

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro.a.x")
        with pytest.raises(ObservabilityError):
            reg.gauge("repro.a.x")

    def test_name_convention_enforced(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("Repro.Bad.Name")
        with pytest.raises(ObservabilityError):
            reg.counter("has space")

    def test_snapshot_sorted_and_flat(self):
        reg = MetricsRegistry()
        reg.counter("repro.b.x").inc()
        reg.gauge("repro.a.y").set(2)
        snap = reg.snapshot()
        assert list(snap) == ["repro.a.y", "repro.b.x"]
        assert snap["repro.b.x"]["value"] == 1

    def test_names_and_get(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro.pipeline.phase.total")
        assert reg.names() == ["repro.pipeline.phase.total"]
        assert reg.get("repro.pipeline.phase.total") is h
        assert reg.get("missing") is None


class TestNullRegistry:
    def test_shared_noop_singletons(self):
        c1 = NULL_REGISTRY.counter("repro.a.x")
        c2 = NULL_REGISTRY.counter("repro.b.y")
        assert c1 is c2
        assert isinstance(c1, NullCounter)
        c1.inc(100)
        assert c1.value == 0

    def test_histogram_accepts_config_args(self):
        h = NULL_REGISTRY.histogram("repro.a.h", base=1.0, growth=2.0)
        assert isinstance(h, NullHistogram)
        h.record(5.0)
        assert h.count == 0 and h.snapshot()["count"] == 0

    def test_disabled_flag_and_empty_views(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry.enabled is True
        assert NULL_REGISTRY.names() == []
        assert NULL_REGISTRY.snapshot() == {}
