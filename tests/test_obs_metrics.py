"""Metrics registry: counters, gauges, log-bucketed histogram edges."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    NullCounter,
    NullHistogram,
)


class TestCounter:
    def test_increments(self):
        c = Counter("repro.test.c")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_float_increments(self):
        c = Counter("repro.test.mb")
        c.inc(2.5)
        c.inc(0.25)
        assert c.value == pytest.approx(2.75)

    def test_snapshot(self):
        c = Counter("repro.test.c")
        c.inc(7)
        assert c.snapshot() == {"type": "counter", "value": 7}


class TestGauge:
    def test_set_and_watermark(self):
        g = Gauge("repro.test.depth")
        g.set(5)
        g.set(2)
        assert g.value == 2
        assert g.max_value == 5

    def test_inc_dec(self):
        g = Gauge("repro.test.depth")
        g.inc(3)
        g.dec()
        assert g.value == 2
        assert g.max_value == 3


class TestHistogramBuckets:
    """Bucket k is (edge(k-1), edge(k)] with edge(k) = base * growth**k."""

    def test_zeros_bucket(self):
        h = Histogram("repro.test.h")
        assert h.bucket_index(0.0) == -1
        assert h.bucket_index(-1.0) == -1
        h.record(0.0)
        assert h.zeros == 1 and h.count == 1

    def test_bucket_zero_is_zero_to_base(self):
        h = Histogram("repro.test.h", base=1e-4, growth=2.0)
        assert h.bucket_index(1e-9) == 0
        assert h.bucket_index(1e-4) == 0  # exactly the edge: inclusive

    def test_edges_are_exact_across_all_buckets(self):
        h = Histogram("repro.test.h", base=1e-4, growth=2.0, max_buckets=64)
        for k in range(0, 50):
            edge = h.bucket_edge(k)
            # A value exactly at the edge belongs to bucket k...
            assert h.bucket_index(edge) == k, f"edge({k}) landed wrong"
            # ...and the next representable value above it to bucket k+1.
            above = edge * (1.0 + 1e-12)
            expect = min(k + 1, h.max_buckets - 1)
            assert h.bucket_index(above) == expect

    def test_overflow_clamps_to_last_bucket(self):
        h = Histogram("repro.test.h", base=1.0, growth=2.0, max_buckets=4)
        assert h.bucket_index(1e9) == 3
        h.record(1e9)
        assert h.bucket_counts() == [(h.bucket_edge(3), 1)]

    def test_growth_other_than_two(self):
        h = Histogram("repro.test.h", base=0.5, growth=3.0, max_buckets=32)
        for k in range(0, 20):
            assert h.bucket_index(h.bucket_edge(k)) == k

    def test_invalid_parameters_raise(self):
        with pytest.raises(ObservabilityError):
            Histogram("repro.test.h", base=0.0)
        with pytest.raises(ObservabilityError):
            Histogram("repro.test.h", growth=1.0)
        with pytest.raises(ObservabilityError):
            Histogram("repro.test.h", max_buckets=0)


class TestHistogramStats:
    def test_count_total_min_max_mean(self):
        h = Histogram("repro.test.h", base=1.0, growth=2.0)
        for v in (1.0, 2.0, 4.0, 9.0):
            h.record(v)
        assert h.count == 4
        assert h.total == pytest.approx(16.0)
        assert h.mean == pytest.approx(4.0)
        assert h.min == 1.0 and h.max == 9.0

    def test_quantile_bucket_upper_edges(self):
        h = Histogram("repro.test.h", base=1.0, growth=2.0)
        for v in (0.5, 0.6, 3.0, 100.0):
            h.record(v)
        # p50 falls in bucket 0 (two of four values <= 1.0).
        assert h.quantile(0.5) == pytest.approx(1.0)
        # p100 is the exact observed max, not a bucket edge.
        assert h.quantile(1.0) == pytest.approx(100.0)
        assert h.quantile(0.0) == pytest.approx(0.5)
        with pytest.raises(ObservabilityError):
            h.quantile(1.5)

    def test_quantile_clamped_to_observed_max(self):
        h = Histogram("repro.test.h", base=1.0, growth=2.0)
        h.record(5.0)  # bucket edge is 8.0
        assert h.quantile(0.5) == pytest.approx(5.0)

    def test_snapshot_shape(self):
        h = Histogram("repro.test.h", base=1.0, growth=2.0)
        h.record(0.0)
        h.record(3.0)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        assert snap["count"] == 2 and snap["zeros"] == 1
        assert snap["buckets"] == [{"le": 4.0, "count": 1}]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("repro.a.x") is reg.counter("repro.a.x")
        assert reg.histogram("repro.a.h") is reg.histogram("repro.a.h")

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro.a.x")
        with pytest.raises(ObservabilityError):
            reg.gauge("repro.a.x")

    def test_name_convention_enforced(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("Repro.Bad.Name")
        with pytest.raises(ObservabilityError):
            reg.counter("has space")

    def test_snapshot_sorted_and_flat(self):
        reg = MetricsRegistry()
        reg.counter("repro.b.x").inc()
        reg.gauge("repro.a.y").set(2)
        snap = reg.snapshot()
        assert list(snap) == ["repro.a.y", "repro.b.x"]
        assert snap["repro.b.x"]["value"] == 1

    def test_names_and_get(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro.pipeline.phase.total")
        assert reg.names() == ["repro.pipeline.phase.total"]
        assert reg.get("repro.pipeline.phase.total") is h
        assert reg.get("missing") is None


class TestNullRegistry:
    def test_shared_noop_singletons(self):
        c1 = NULL_REGISTRY.counter("repro.a.x")
        c2 = NULL_REGISTRY.counter("repro.b.y")
        assert c1 is c2
        assert isinstance(c1, NullCounter)
        c1.inc(100)
        assert c1.value == 0

    def test_histogram_accepts_config_args(self):
        h = NULL_REGISTRY.histogram("repro.a.h", base=1.0, growth=2.0)
        assert isinstance(h, NullHistogram)
        h.record(5.0)
        assert h.count == 0 and h.snapshot()["count"] == 0

    def test_disabled_flag_and_empty_views(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry.enabled is True
        assert NULL_REGISTRY.names() == []
        assert NULL_REGISTRY.snapshot() == {}


class TestRegistryMerge:
    """Merging per-worker registries back into the parent (executor)."""

    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro.m.c").inc(3)
        b.counter("repro.m.c").inc(4.5)
        a.merge(b)
        assert a.counter("repro.m.c").value == pytest.approx(7.5)

    def test_gauges_last_by_index_and_peak(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("repro.m.depth").set(9)
        a.gauge("repro.m.depth").set(2)
        b.gauge("repro.m.depth").set(5)
        a.merge(b)  # b holds the later shard: its value wins
        g = a.gauge("repro.m.depth")
        assert g.value == 5
        assert g.max_value == 9  # watermark keeps the overall peak

    def test_histograms_merge_bucket_wise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ha = a.histogram("repro.m.h", base=1.0, growth=2.0)
        hb = b.histogram("repro.m.h", base=1.0, growth=2.0)
        for v in (0.0, 0.5, 3.0):
            ha.record(v)
        for v in (0.5, 16.0):
            hb.record(v)
        a.merge(b)
        assert ha.count == 5
        assert ha.zeros == 1
        assert ha.total == pytest.approx(20.0)
        assert ha.min == 0.0 and ha.max == 16.0
        # bucket 0 is (0, 1]: one 0.5 from each side
        assert dict(ha.bucket_counts())[1.0] == 2

    def test_histogram_config_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("repro.m.h", base=1.0, growth=2.0)
        b.histogram("repro.m.h", base=2.0, growth=2.0)
        with pytest.raises(ObservabilityError, match="cannot merge"):
            a.merge(b)

    def test_empty_and_disjoint_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.merge(b)  # empty into empty: no-op
        assert a.names() == []
        a.counter("repro.m.a").inc(1)
        b.counter("repro.m.b").inc(2)
        b.histogram("repro.m.h").record(0.25)
        a.merge(b)  # disjoint names are created on the target
        assert a.counter("repro.m.a").value == 1
        assert a.counter("repro.m.b").value == 2
        assert a.histogram("repro.m.h").count == 1
        # merging never mutates the source
        assert b.names() == ["repro.m.b", "repro.m.h"]

    def test_merge_accepts_a_dump_dict_round_tripped_through_json(self):
        import json

        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("repro.m.c").inc(2)
        b.gauge("repro.m.g").set(3)
        b.histogram("repro.m.h", base=0.01, growth=2.0).record(0.02)
        state = json.loads(json.dumps(b.dump()))  # the pipe crossing
        a.merge(state)
        assert a.snapshot().keys() == b.snapshot().keys()
        assert a.histogram("repro.m.h", base=0.01, growth=2.0).count == 1

    def test_merge_is_associative_across_workers(self):
        parts = []
        for inc in (1, 2, 3):
            reg = MetricsRegistry()
            reg.counter("repro.m.c").inc(inc)
            reg.histogram("repro.m.h").record(float(inc))
            parts.append(reg)
        left = MetricsRegistry()
        for reg in parts:
            left.merge(reg)
        right = MetricsRegistry()
        right.merge(parts[1])
        right.merge(parts[2])
        right.merge(parts[0])
        assert left.counter("repro.m.c").value == right.counter("repro.m.c").value
        assert left.histogram("repro.m.h").quantile(0.5) == right.histogram(
            "repro.m.h"
        ).quantile(0.5)

    def test_unknown_instrument_type_raises(self):
        a = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="unknown type"):
            a.merge({"repro.m.x": {"type": "meter", "value": 1}})

    def test_null_registry_merge_is_a_noop(self):
        b = MetricsRegistry()
        b.counter("repro.m.c").inc(5)
        NULL_REGISTRY.merge(b)
        assert NULL_REGISTRY.dump() == {}
