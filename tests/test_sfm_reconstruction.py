"""Tests for incremental SfM: registration, triangulation, rigs, noise."""

import numpy as np
import pytest

from repro.camera import GALAXY_S7
from repro.errors import ReconstructionError
from repro.geometry import Vec2, Vec3
from repro.sfm import IncrementalSfm, SfmModel
from repro.simkit import RngStream
from repro.venue.features import ARTIFICIAL_FEATURE_BASE


@pytest.fixture()
def engine(bench):
    return IncrementalSfm(bench.world, bench.config.sfm, RngStream(99, "sfm-test"))


def sweep(bench, x, y):
    return list(bench.capture.sweep(Vec2(x, y), GALAXY_S7, 8.0, blur=0.0))


class TestRegistration:
    def test_bootstrap_from_dense_batch(self, bench, engine):
        report = engine.add_photos(sweep(bench, 3, 3))
        assert report.newly_registered > 10
        assert report.total_points > 200

    def test_isolated_batch_stays_pending(self, bench, engine):
        engine.add_photos(sweep(bench, 3, 3))
        # The annex room is visually isolated from the entrance area.
        report = engine.add_photos(sweep(bench, 19.2, 15.4))
        assert report.newly_registered == 0
        assert report.still_pending >= 40

    def test_pending_retry_after_bridge(self, bench, engine):
        engine.add_photos(sweep(bench, 3, 3))
        far = engine.add_photos(sweep(bench, 10.5, 6.4))
        pending_before = far.still_pending
        # A bridging sweep connects the entrance area to the far batch.
        bridge = engine.add_photos(sweep(bench, 6.0, 4.5))
        assert bridge.still_pending < pending_before + 45

    def test_duplicate_photo_rejected(self, bench, engine):
        photos = sweep(bench, 3, 3)
        engine.add_photos(photos)
        with pytest.raises(ReconstructionError):
            engine.add_photos([photos[0]])

    def test_chained_registration_grows_monotonically(self, bench, engine):
        total = 0
        for center in [(3, 3), (5, 5), (8, 3.7)]:
            report = engine.add_photos(sweep(bench, *center))
            assert report.total_cameras >= total
            total = report.total_cameras


class TestTriangulation:
    def test_three_view_rule(self, bench, engine):
        """Points require >= min_views_per_point registered observations."""
        engine.add_photos(sweep(bench, 3, 3))
        model = engine.model()
        assert (model.cloud.view_counts >= bench.config.sfm.min_views_per_point).all()

    def test_positions_near_truth(self, bench, engine):
        engine.add_photos(sweep(bench, 3, 3))
        model = engine.model()
        world = bench.world
        errors = []
        for point in list(model.cloud.points)[:200]:
            if point.is_reflection or point.is_artificial:
                continue
            truth = world.feature(point.feature_id).position
            errors.append(
                np.hypot(point.x - truth.x, point.y - truth.y)
            )
        assert np.mean(errors) < 0.2

    def test_recovered_poses_near_truth(self, bench, engine):
        photos = sweep(bench, 3, 3)
        engine.add_photos(photos)
        model = engine.model()
        by_id = {p.photo_id: p for p in photos}
        for camera in model.cameras:
            true = by_id[camera.photo_id].true_pose
            assert camera.pose.position.distance_to(true.position) < 0.5

    def test_rebuild_is_stable(self, bench):
        """Same inputs -> identical point positions (noise is cached)."""
        a = IncrementalSfm(bench.world, bench.config.sfm, RngStream(5, "stab"))
        b = IncrementalSfm(bench.world, bench.config.sfm, RngStream(5, "stab"))
        # Same photo stream via a fresh deterministic capture run each time
        # is not possible (photo ids advance), so reuse one photo list.
        photos = sweep(bench, 5, 5)
        ra = a.add_photos(photos)
        with pytest.raises(ReconstructionError):
            a.add_photos(photos)  # sanity: cannot double-add to one engine
        rb = b.add_photos(photos)
        assert ra.total_points == rb.total_points
        pa = a.model().cloud.xyz
        pb = b.model().cloud.xyz
        assert np.allclose(pa, pb)


class TestArtificialFeatures:
    def test_register_and_triangulate(self, bench, engine):
        photos = sweep(bench, 3, 3)
        engine.add_photos(photos)
        registered = [p for p in photos if engine.is_registered(p.photo_id)][:4]
        assert len(registered) >= 3

        fid = ARTIFICIAL_FEATURE_BASE + 7
        engine.register_artificial_features([fid], [Vec3(3.5, 4.5, 1.0)])
        imprinted = [
            p.with_extra_observations(np.array([fid]), np.array([[100.0, 100.0]]), "t")
            for p in sweep(bench, 3.2, 3.2)
        ]
        engine.add_photos(imprinted)
        model = engine.model()
        match = [p for p in model.cloud.points if p.feature_id == fid]
        assert match and match[0].is_artificial
        assert abs(match[0].x - 3.5) < 0.3

    def test_world_id_space_rejected(self, engine):
        with pytest.raises(ReconstructionError):
            engine.register_artificial_features([5], [Vec3(0, 0, 0)])


class TestViewpointCompatibility:
    def test_opposite_side_views_do_not_match(self, bench, engine):
        """Photos of the same shelf from opposite sides share feature ids
        only at ends; viewpoint buckets must block cross-side matching."""
        engine.add_photos(sweep(bench, 3, 3))
        overlap_same = engine._compatible_overlap(  # noqa: SLF001
            bench.capture.take_photo(
                __import__("repro.camera", fromlist=["CameraPose"]).CameraPose.at(3.1, 3.1, 0.3),
                GALAXY_S7,
                blur=0.0,
            )
        )
        assert overlap_same > 20


class TestSfmModel:
    def test_empty_model(self):
        model = SfmModel.empty()
        assert model.n_points == 0
        assert model.mean_camera_position() is None

    def test_camera_lookup(self, bench, engine):
        engine.add_photos(sweep(bench, 3, 3))
        model = engine.model()
        first = model.cameras[0]
        assert model.camera(first.photo_id) is first
        with pytest.raises(ReconstructionError):
            model.camera(-1)

    def test_mean_camera_position(self, bench, engine):
        engine.add_photos(sweep(bench, 3, 3))
        mean = engine.model().mean_camera_position()
        assert mean is not None
        assert abs(mean[0] - 3.0) < 1.0 and abs(mean[1] - 3.0) < 1.0
