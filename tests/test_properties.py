"""Cross-module property-based tests on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.annotation import dbscan, kmeans, order_corners
from repro.geometry import (
    BoundingBox,
    Polygon,
    Segment,
    SegmentSoup,
    Vec2,
    merge_intervals,
    total_interval_length,
)
from repro.mapping import Grid2D, GridSpec, OctoMap
from repro.simkit import RngStream, Simulator

coord = st.floats(-20, 20, allow_nan=False, allow_infinity=False)


class TestOcclusionProperties:
    @settings(deadline=None, max_examples=40)
    @given(
        st.lists(
            st.tuples(coord, coord, coord, coord).filter(
                lambda q: math.hypot(q[2] - q[0], q[3] - q[1]) > 0.1
            ),
            min_size=0,
            max_size=8,
        ),
        st.tuples(coord, coord),
    )
    def test_soup_matches_bruteforce(self, quads, target):
        """Vectorised visibility equals per-segment brute force."""
        segments = [Segment(Vec2(a, b), Vec2(c, d)) for a, b, c, d in quads]
        soup = SegmentSoup(segments)
        origin = Vec2(25.0, 25.0)  # outside the coordinate range
        targets = np.array([[target[0], target[1]]])
        fast = bool(soup.visible(origin, targets)[0])
        ray = Segment(origin, Vec2(*target)) if origin.distance_to(Vec2(*target)) > 1e-9 else None
        if ray is None:
            return
        hits = [ray.intersect(seg) for seg in segments]
        # The implementation's target margin is parametric (1e-6 of the
        # ray length); this oracle's is absolute (1 mm). A hit landing
        # between the two is a legitimate tie — both verdicts defensible
        # — so the property only asserts outside that ambiguity band.
        band_lo = 1e-6 * origin.distance_to(Vec2(*target))
        if any(
            hit is not None
            and band_lo < hit.distance_to(Vec2(*target)) <= 1e-3
            for hit in hits
        ):
            return
        slow = not any(
            hit is not None
            and hit.distance_to(Vec2(*target)) > 1e-3
            and hit.distance_to(origin) > 1e-6
            for hit in hits
        )
        assert fast == slow

    @settings(deadline=None, max_examples=30)
    @given(st.floats(0.5, 10.0), st.floats(-math.pi, math.pi))
    def test_first_hit_distance_is_true_distance(self, distance, angle):
        direction = Vec2.from_angle(angle)
        midpoint = direction * distance
        perp = direction.perpendicular()
        wall = Segment(midpoint + perp * 2.0, midpoint - perp * 2.0)
        soup = SegmentSoup([wall])
        hit = soup.first_hit(Vec2(0, 0), direction, 20.0)
        assert hit is not None
        assert hit[0] == pytest.approx(distance, abs=1e-6)


class TestGridProperties:
    @settings(deadline=None, max_examples=30)
    @given(
        st.floats(0.05, 0.5),
        st.lists(st.tuples(st.floats(0, 10), st.floats(0, 10)), max_size=40),
    )
    def test_cells_of_agrees_with_cell_of(self, cell, points):
        spec = GridSpec.from_bbox(BoundingBox(0, 0, 10, 10), cell, 0.0)
        xy = np.array(points).reshape(-1, 2) if points else np.zeros((0, 2))
        batch = spec.cells_of(xy)
        for (x, y), (row, col) in zip(points, batch):
            single = spec.cell_of(Vec2(x, y))
            if single is None:
                assert row == -1 or col == -1
            else:
                assert (row, col) == single

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.tuples(st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5)), max_size=60))
    def test_octomap_count_conservation(self, points):
        tree = OctoMap((0, 0, 0), half_extent=6.0, resolution=0.4)
        inserted = tree.insert_array(np.array(points).reshape(-1, 3))
        assert inserted == len(points)
        assert sum(count for *_c, count in tree.leaves()) == inserted


class TestIntervalProperties:
    @settings(deadline=None, max_examples=50)
    @given(
        st.lists(
            st.tuples(st.floats(0, 50), st.floats(0.01, 5)).map(lambda p: (p[0], p[0] + p[1])),
            min_size=1,
            max_size=25,
        ),
        st.floats(0.0, 2.0),
    )
    def test_merge_idempotent(self, intervals, gap):
        once = merge_intervals(intervals, gap)
        twice = merge_intervals(once, gap)
        assert once == twice

    @settings(deadline=None, max_examples=50)
    @given(
        st.lists(
            st.tuples(st.floats(0, 50), st.floats(0.01, 5)).map(lambda p: (p[0], p[0] + p[1])),
            min_size=1,
            max_size=25,
        ),
        st.floats(0.0, 2.0),
    )
    def test_merge_never_shrinks_total(self, intervals, gap):
        merged_len = total_interval_length(merge_intervals(intervals, gap))
        unmerged_upper = total_interval_length(merge_intervals(intervals, 0.0))
        assert merged_len >= unmerged_upper - 1e-9


class TestClusteringProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 200), st.floats(0.2, 3.0), st.integers(1, 6))
    def test_dbscan_labels_well_formed(self, n, eps, min_samples):
        rng = np.random.default_rng(n)
        points = rng.uniform(0, 10, size=(n, 2))
        labels = dbscan(points, eps, min_samples)
        assert labels.shape == (n,)
        if n:
            # Labels are contiguous from 0 (ignoring noise).
            positive = sorted(set(labels[labels >= 0]))
            assert positive == list(range(len(positive)))

    @settings(deadline=None, max_examples=25)
    @given(st.integers(4, 80), st.integers(1, 4))
    def test_kmeans_partitions_everything(self, n, k):
        rng = np.random.default_rng(n * 7 + k)
        points = rng.uniform(0, 100, size=(n, 2))
        result = kmeans(points, k, RngStream(n, "prop-km"))
        assert result.labels.shape == (n,)
        assert set(result.labels) <= set(range(k))

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.tuples(st.floats(0, 1000), st.floats(0, 1000)), min_size=4, max_size=4))
    def test_order_corners_is_permutation(self, corners):
        arr = np.array(corners)
        ordered = order_corners(arr)
        # Same multiset of points.
        assert sorted(map(tuple, ordered.tolist())) == sorted(map(tuple, arr.tolist()))


class TestSimulatorProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    def test_events_execute_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestRngProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 2**31), st.text(min_size=1, max_size=12))
    def test_streams_reproducible(self, seed, name):
        a = RngStream(seed, name)
        b = RngStream(seed, name)
        assert [a.uniform() for _ in range(3)] == [b.uniform() for _ in range(3)]

    @settings(deadline=None, max_examples=30)
    @given(st.floats(0.0, 1.0))
    def test_sample_mask_rate(self, probability):
        rng = RngStream(1, "mask-prop")
        mask = rng.sample_mask(4000, probability)
        assert abs(mask.mean() - probability) < 0.06
