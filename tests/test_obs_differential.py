"""Telemetry inertness: tracing on vs off is byte-for-byte identical.

The observability layer promises it never schedules events, never draws
RNG, and never touches simulated time. This differential pins that
promise on the full client/server deployment: two runs from the same
seed, one with a live Telemetry bundle and one with the shared null
bundle, must produce *identical* DeploymentReports — including the
event count, which would differ if instrumentation enqueued anything.
"""

import dataclasses

import pytest

from repro.config import paper_config
from repro.eval import Workbench
from repro.obs import Telemetry
from repro.server import Deployment

UNTIL_S = 2000.0

#: The PR-2 deployment fingerprint (same constants as
#: tests/test_fault_tolerance.py); the obs layer must not move it.
PINNED = {
    "sim_time_s": 2000.0,
    "events_processed": 885,
    "venue_covered": False,
    "tasks_completed": 18,
    "photos_uploaded": 820,
    "total_traffic_mb": 2050.415,
    "coverage_cells": 9213,
}


def _run(telemetry):
    bench = Workbench.for_library(paper_config())
    deployment = Deployment(bench, n_clients=2, telemetry=telemetry)
    return deployment, deployment.run(until_s=UNTIL_S)


class TestTracingDifferential:
    @pytest.fixture(scope="class")
    def runs(self):
        telemetry = Telemetry.enable()
        dep_off, report_off = _run(None)
        dep_on, report_on = _run(telemetry)
        return telemetry, dep_off, report_off, dep_on, report_on

    def test_reports_identical_on_vs_off(self, runs):
        _telemetry, _dep_off, report_off, _dep_on, report_on = runs
        assert dataclasses.asdict(report_on) == dataclasses.asdict(report_off)

    def test_pinned_baseline(self, runs):
        _telemetry, _dep_off, report_off, _dep_on, _report_on = runs
        assert report_off.sim_time_s == PINNED["sim_time_s"]
        assert report_off.events_processed == PINNED["events_processed"]
        assert report_off.venue_covered == PINNED["venue_covered"]
        assert report_off.tasks_completed == PINNED["tasks_completed"]
        assert report_off.photos_uploaded == PINNED["photos_uploaded"]
        assert report_off.total_traffic_mb == pytest.approx(
            PINNED["total_traffic_mb"], abs=1e-9
        )
        assert report_off.coverage_cells == PINNED["coverage_cells"]

    def test_traced_run_actually_observed_things(self, runs):
        telemetry, _dep_off, _report_off, _dep_on, report_on = runs
        tracer = telemetry.tracer
        assert tracer.finished_count > 0
        categories = {s.category for s in tracer.spans()}
        assert {"sim.event", "net", "server", "client", "pipeline"} <= categories
        # Metrics agree with the report where they count the same thing.
        metrics = telemetry.metrics
        assert (
            metrics.get("repro.client.photos_uploaded").value
            == report_on.photos_uploaded
        )
        assert (
            metrics.get("repro.sim.events.dispatched").value
            == report_on.events_processed
        )
        assert metrics.get("repro.net.dropped").value == 0
        # Every Algorithm-1 phase histogram saw every processed batch.
        counts = {
            name: metrics.get(f"repro.pipeline.phase.{name}").count
            for name in ("registration", "map_merge", "task_gen", "total")
        }
        assert len(set(counts.values())) == 1 and counts["total"] > 0

    def test_lease_and_exchange_spans_closed(self, runs):
        telemetry, *_ = runs
        for name in ("server.task_lease", "client.upload", "client.request"):
            spans = telemetry.tracer.spans(name=name)
            assert spans, f"no {name!r} spans recorded"
            assert all(s.finished for s in spans)

    def test_exported_trace_is_schema_valid(self, runs, tmp_path):
        from repro.obs.bench import load_and_validate, write_bench_pipeline
        from repro.obs.export import validate_chrome_trace, write_chrome_trace

        telemetry, *_ = runs
        import json

        path = write_chrome_trace(telemetry.tracer, tmp_path / "trace.json")
        assert validate_chrome_trace(json.loads(path.read_text())) == []
        bench_path = write_bench_pipeline(
            tmp_path / "BENCH_pipeline.json", telemetry.metrics
        )
        doc = load_and_validate(bench_path)
        assert doc["phases"]["total"]["count"] > 0
