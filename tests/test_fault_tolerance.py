"""Fault-tolerant crowd protocol: leases, idempotent uploads, fault injection.

Covers the four contract points of the fault-tolerance layer:

1. seeded network fault injection (drop / duplicate / jitter / disconnect);
2. task leases — an abandoned assignment is reaped and requeued, never lost;
3. idempotent exchanges — duplicated requests and uploads are deduplicated,
   retransmissions follow the exponential-backoff schedule;
4. the differential guarantee — with a zero-fault config the deployment is
   byte-for-byte identical to the pre-lease lossless protocol.
"""

import dataclasses

import pytest

from repro.camera import GALAXY_S7
from repro.config import FaultConfig, NetworkConfig, ProtocolConfig
from repro.core import TaskFactory
from repro.errors import ReconstructionError, SimulationError
from repro.geometry import Vec2
from repro.server import (
    BackendServer,
    Deployment,
    PhotoBatch,
    TaskRequest,
)
from repro.simkit import Channel, DuplexLink, RngStream, Simulator


def faulty_network(**fault_kwargs) -> NetworkConfig:
    return NetworkConfig(
        latency_s=0.1,
        bandwidth_mbps=8.0,
        photo_size_mb=2.0,
        faults=FaultConfig(**fault_kwargs),
    )


class TestFaultInjection:
    def setup_method(self):
        self.sim = Simulator()
        self.rng = RngStream(7, "faults")

    def test_zero_fault_config_is_disabled(self):
        assert not FaultConfig().enabled
        assert FaultConfig(drop_probability=0.1).enabled
        assert FaultConfig(disconnect_windows=((0.0, 1.0),)).enabled

    def test_enabled_faults_require_rng(self):
        with pytest.raises(SimulationError):
            Channel(self.sim, faulty_network(drop_probability=0.5))

    def test_certain_drop_loses_everything(self):
        channel = Channel(
            self.sim, faulty_network(drop_probability=0.999999), rng=self.rng
        )
        got = []
        for _ in range(20):
            channel.send("x", got.append, size_mb=1.0)
        self.sim.run()
        assert got == []
        assert channel.fault_stats.dropped == 20
        # Lost messages still consumed airtime: traffic is accounted.
        assert channel.total_bytes_mb() == pytest.approx(20.0)
        statuses = {d.status for d in channel.deliveries}
        assert statuses == {"dropped"}

    def test_certain_duplicate_delivers_twice(self):
        channel = Channel(
            self.sim, faulty_network(duplicate_probability=0.999999), rng=self.rng
        )
        got = []
        channel.send("x", got.append, size_mb=1.0)
        self.sim.run()
        assert got == ["x", "x"]
        assert channel.fault_stats.duplicated == 1
        # The duplicate copy crossed the network too.
        assert channel.total_bytes_mb() == pytest.approx(2.0)

    def test_jitter_delays_within_bound(self):
        channel = Channel(self.sim, faulty_network(jitter_s=2.0), rng=self.rng)
        times = []
        channel.send("x", lambda _: times.append(self.sim.now), size_mb=1.0)
        self.sim.run()
        base = 0.1 + 1.0  # latency + 1 MB over 8 Mbps
        assert base <= times[0] <= base + 2.0

    def test_disconnect_window_drops_messages(self):
        channel = Channel(
            self.sim,
            faulty_network(disconnect_windows=((5.0, 10.0),)),
            rng=self.rng,
        )
        got = []
        channel.send("early", got.append)
        self.sim.schedule(6.0, lambda: channel.send("inside", got.append))
        self.sim.schedule(11.0, lambda: channel.send("late", got.append))
        self.sim.run()
        assert got == ["early", "late"]
        assert channel.fault_stats.dropped_disconnect == 1

    def test_fault_pattern_is_deterministic(self):
        def run(seed: int):
            sim = Simulator()
            channel = Channel(
                sim,
                faulty_network(drop_probability=0.3, duplicate_probability=0.2, jitter_s=1.0),
                rng=RngStream(seed, "net"),
            )
            seen = []
            for i in range(40):
                channel.send(i, seen.append, size_mb=0.5)
            sim.run()
            return seen, dataclasses.asdict(channel.fault_stats)

        a = run(11)
        b = run(11)
        c = run(12)
        assert a == b
        assert a != c  # different seed, different fault pattern

    def test_zero_bandwidth_raises_simulation_error(self):
        config = NetworkConfig(bandwidth_mbps=0.0)  # unvalidated on purpose
        channel = Channel(self.sim, config)
        with pytest.raises(SimulationError):
            channel.transfer_time(1.0)
        negative = Channel(self.sim, NetworkConfig(bandwidth_mbps=-4.0))
        with pytest.raises(SimulationError):
            negative.send("x", lambda _: None, size_mb=1.0)

    def test_duplex_link_fault_accounting(self):
        link = DuplexLink(
            self.sim,
            faulty_network(drop_probability=0.999999),
            rng=RngStream(3, "link"),
        )
        link.uplink.send("a", lambda _: None, size_mb=1.0)
        link.downlink.send("b", lambda _: None, size_mb=1.0)
        self.sim.run()
        assert link.messages_lost == 2
        assert link.messages_duplicated == 0


class TestRetryBackoff:
    def test_exponential_schedule_with_cap(self):
        protocol = ProtocolConfig(rto_initial_s=4.0, rto_backoff=2.0, rto_max_s=60.0)
        schedule = [protocol.timeout_for(attempt) for attempt in range(7)]
        assert schedule == [4.0, 8.0, 16.0, 32.0, 60.0, 60.0, 60.0]

    def test_floor_covers_ack_estimate(self):
        protocol = ProtocolConfig(rto_initial_s=4.0, rto_backoff=2.0, rto_max_s=60.0)
        assert protocol.timeout_for(0, floor_s=45.0) == pytest.approx(49.0)
        assert protocol.timeout_for(3, floor_s=45.0) == pytest.approx(77.0)

    def test_negative_attempt_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ProtocolConfig().timeout_for(-1)


class TestTaskLeases:
    def make_server(self, bench, protocol=None):
        sim = Simulator()
        pipeline = bench.make_pipeline()
        server = BackendServer(pipeline, sim, "venue", protocol=protocol)
        return sim, pipeline, server

    def test_assignment_carries_lease(self, bench):
        protocol = ProtocolConfig(lease_duration_s=120.0)
        sim, _pipeline, server = self.make_server(bench, protocol)
        server.enqueue_task(TaskFactory().photo_task(Vec2(1, 1), 1))
        assignment = server.handle_task_request(TaskRequest("c0", request_id="c0:req-1"))
        assert assignment.task is not None
        assert assignment.lease_expires_at == pytest.approx(120.0)
        lease = server.store.lease_of(assignment.task.task_id)
        assert lease is not None and lease.client_id == "c0"

    def test_expired_lease_is_reaped_and_requeued(self, bench):
        protocol = ProtocolConfig(lease_duration_s=60.0)
        sim, _pipeline, server = self.make_server(bench, protocol)
        server.enqueue_task(TaskFactory().photo_task(Vec2(1, 1), 1))
        assignment = server.handle_task_request(TaskRequest("c0", request_id="c0:req-1"))
        task_id = assignment.task.task_id
        # The client never uploads; the reaper fires at the lease expiry.
        sim.run(until=61.0)
        assert server.store.lease_of(task_id) is None
        assert server.store.task(task_id).status.value == "pending"
        assert server.store.counter("tasks_requeued") == 1
        # The task is reassignable to another client.
        again = server.handle_task_request(TaskRequest("c1", request_id="c1:req-1"))
        assert again.task is not None and again.task.task_id == task_id
        assert server.store.assignee_of(task_id) == "c1"

    def test_completed_upload_cancels_the_reaper(self, bench):
        protocol = ProtocolConfig(lease_duration_s=60.0)
        sim, pipeline, server = self.make_server(bench, protocol)
        server.enqueue_task(TaskFactory().photo_task(Vec2(3, 3), 1))
        assignment = server.handle_task_request(TaskRequest("c0", request_id="c0:req-1"))
        task_id = assignment.task.task_id
        photos = tuple(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0))
        server.handle_photo_batch(
            PhotoBatch("c0", task_id, photos, batch_id="c0:batch-1")
        )
        sim.run(until=500.0)
        assert server.store.task(task_id).status.value == "completed"
        # No spurious requeue after the lease horizon passed.
        assert server.store.counter("tasks_requeued") == 0
        assert server.store.counter("leases_expired") == 0

    def test_manual_reap_sweep(self, bench):
        protocol = ProtocolConfig(lease_duration_s=60.0)
        sim, _pipeline, server = self.make_server(bench, protocol)
        factory = TaskFactory()
        server.enqueue_task(factory.photo_task(Vec2(1, 1), 1))
        server.enqueue_task(factory.photo_task(Vec2(2, 2), 1))
        a = server.handle_task_request(TaskRequest("c0", request_id="c0:r1"))
        b = server.handle_task_request(TaskRequest("c1", request_id="c1:r1"))
        assert a.task is not None and b.task is not None
        # Jump past expiry without draining the queue (manual sweep form).
        sim.schedule(70.0, lambda: None)
        while sim.now < 70.0 and sim.step():
            pass
        assert server.reap_expired() == 0  # event-driven reaper already ran
        assert server.store.counter("tasks_requeued") == 2

    def test_duplicate_request_does_not_leak_a_second_lease(self, bench):
        sim, _pipeline, server = self.make_server(bench)
        server.enqueue_task(TaskFactory().photo_task(Vec2(1, 1), 1))
        first = server.handle_task_request(TaskRequest("c0", request_id="c0:req-1"))
        replay = server.handle_task_request(TaskRequest("c0", request_id="c0:req-1"))
        assert replay is first  # served from the request ledger
        assert server.store.counter("requests_deduped") == 1
        assert len(server.store.active_leases()) == 1


class TestIdempotentUploads:
    def make_server(self, bench):
        sim = Simulator()
        pipeline = bench.make_pipeline()
        return sim, pipeline, BackendServer(pipeline, sim, "venue")

    def test_duplicate_in_flight_batch_processed_once(self, bench):
        sim, pipeline, server = self.make_server(bench)
        photos = tuple(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0))
        batch = PhotoBatch("c0", None, photos, batch_id="c0:batch-1")
        results = []
        server.handle_photo_batch(batch, on_done=results.append)
        server.handle_photo_batch(batch, on_done=results.append)  # network dup
        sim.run()
        assert pipeline.iteration == 1  # processed exactly once
        assert len(results) == 1
        assert server.store.counter("batches_deduped") == 1

    def test_late_duplicate_replays_the_ack(self, bench):
        sim, pipeline, server = self.make_server(bench)
        photos = tuple(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0))
        batch = PhotoBatch("c0", None, photos, batch_id="c0:batch-1")
        results = []
        server.handle_photo_batch(batch, on_done=results.append)
        sim.run()
        assert len(results) == 1
        # A retransmission arriving after processing is re-ACKed, not reprocessed.
        server.handle_photo_batch(batch, on_done=results.append)
        assert pipeline.iteration == 1
        assert len(results) == 2
        assert results[0] is results[1]

    def test_unidentified_batches_keep_legacy_semantics(self, bench):
        """No ``batch_id`` means no dedup — the pre-PR duplicate hazard.

        Both copies are scheduled for processing and the second crashes
        the SfM pipeline on duplicate photo ids: exactly the failure mode
        that batch identifiers eliminate.
        """
        sim, pipeline, server = self.make_server(bench)
        photos = tuple(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0))
        server.handle_photo_batch(PhotoBatch("c0", None, photos))
        server.handle_photo_batch(PhotoBatch("c0", None, photos))
        assert server.store.counter("batches_deduped") == 0
        with pytest.raises(ReconstructionError, match="already added"):
            sim.run()
        # Both copies entered the pipeline; only the first registered photos.
        assert pipeline.iteration == 2

    def test_empty_batch_gets_failure_reply_not_crash(self, bench):
        sim, _pipeline, server = self.make_server(bench)
        results = []
        server.handle_photo_batch(
            PhotoBatch("c0", None, (), batch_id="c0:batch-1"), on_done=results.append
        )
        assert len(results) == 1
        assert not results[0].ok
        assert results[0].error == "empty photo batch upload"
        assert server.store.counter("empty_batches_rejected") == 1

    def test_empty_batch_requeues_the_leased_task(self, bench):
        sim, _pipeline, server = self.make_server(bench)
        server.enqueue_task(TaskFactory().photo_task(Vec2(1, 1), 1))
        assignment = server.handle_task_request(TaskRequest("c0", request_id="c0:r1"))
        task_id = assignment.task.task_id
        server.handle_photo_batch(PhotoBatch("c0", task_id, (), batch_id="c0:b1"))
        assert server.store.task(task_id).status.value == "pending"
        assert server.store.counter("tasks_requeued") == 1
        again = server.handle_task_request(TaskRequest("c1", request_id="c1:r1"))
        assert again.task is not None and again.task.task_id == task_id


#: Pre-PR DeploymentReport for ``Deployment(Workbench.for_library(),
#: n_clients=2).run(until_s=2000.0)``, recorded at commit 51f70b0 before the
#: fault-tolerance layer landed. The zero-fault protocol must reproduce it
#: byte-for-byte. Re-pin only when campaign dynamics change *deliberately*.
PRE_PR_BASELINE = {
    "sim_time_s": 2000.0,
    "events_processed": 885,
    "venue_covered": False,
    "tasks_completed": 18,
    "photos_uploaded": 820,
    "total_traffic_mb": 2050.415,
    "coverage_cells": 9213,
}


class TestZeroFaultDifferential:
    def test_zero_fault_reproduces_pre_pr_deployment(self):
        from repro.eval import Workbench

        report = Deployment(Workbench.for_library(), n_clients=2).run(until_s=2000.0)
        assert report.sim_time_s == PRE_PR_BASELINE["sim_time_s"]
        assert report.events_processed == PRE_PR_BASELINE["events_processed"]
        assert report.venue_covered == PRE_PR_BASELINE["venue_covered"]
        assert report.tasks_completed == PRE_PR_BASELINE["tasks_completed"]
        assert report.photos_uploaded == PRE_PR_BASELINE["photos_uploaded"]
        assert report.total_traffic_mb == pytest.approx(
            PRE_PR_BASELINE["total_traffic_mb"], abs=1e-9
        )
        assert report.coverage_cells == PRE_PR_BASELINE["coverage_cells"]
        # The whole fault machinery stayed silent.
        assert report.messages_lost == 0
        assert report.messages_duplicated == 0
        assert report.client_retries == 0
        assert report.uploads_abandoned == 0
        assert report.batches_deduped == 0
        assert report.requests_deduped == 0
        assert report.tasks_requeued == 0
        assert report.leases_expired == 0
        assert report.dropouts == 0


class TestFaultCampaign:
    """Acceptance scenario: 15% loss, 5% duplication, one mid-task dropout."""

    def test_campaign_survives_faults_and_dropout(self):
        from repro.eval import Workbench

        deployment = Deployment(
            Workbench.for_library(),
            n_clients=3,
            faults=FaultConfig(drop_probability=0.15, duplicate_probability=0.05),
            # client-1 holds a freshly granted lease at t=1000 (task granted
            # ~977s in); dropping it mid-task strands the lease for the reaper.
            dropouts={"client-1": 1000.0},
        )
        report = deployment.run(until_s=60000.0)
        store = deployment.server.store

        # The campaign still reaches full coverage.
        assert report.venue_covered
        assert report.dropouts == 1

        # The faults actually fired, and the protocol absorbed them.
        assert report.messages_lost > 0
        assert report.messages_duplicated > 0
        assert report.client_retries > 0

        # The abandoned lease was reaped and its task reissued.
        assert report.leases_expired >= 1
        assert report.tasks_requeued >= 1

        # No task is permanently lost: every issued task is accounted for by
        # a terminal or live status, nothing is stuck in a dead lease.
        statuses = store.tasks_by_status()
        assert sum(statuses.values()) == store.recorded_task_count()
        assert statuses.get("assigned", 0) == len(store.active_leases())
        assert deployment.server.queued_tasks == 0  # drained by coverage

        # No photo batch was double-processed: one pipeline result per
        # distinct batch id, duplicates answered from the ledger.
        batch_ids = [r.batch_id for r in deployment.server.results if r.batch_id]
        assert len(batch_ids) == len(set(batch_ids))

    def test_fault_runs_are_deterministic(self):
        from repro.eval import Workbench

        def run():
            return Deployment(
                Workbench.for_library(),
                n_clients=2,
                faults=FaultConfig(
                    drop_probability=0.2, duplicate_probability=0.1, jitter_s=0.5
                ),
            ).run(until_s=1500.0)

        a = run()
        b = run()
        assert a == b


class TestClientDropout:
    def test_scheduled_dropout_stops_the_client(self):
        from repro.eval import Workbench

        deployment = Deployment(
            Workbench.for_library(), n_clients=2, dropouts={"client-1": 50.0}
        )
        report = deployment.run(until_s=1200.0)
        dropped = deployment.client("client-1")
        assert dropped.stats.dropped_out
        assert not dropped.active
        assert report.dropouts == 1
        # The survivor keeps the campaign moving.
        assert deployment.client("client-0").stats.tasks_completed > 0

    def test_unknown_dropout_client_rejected(self):
        from repro.errors import ProtocolError
        from repro.eval import Workbench

        with pytest.raises(ProtocolError):
            Deployment(
                Workbench.for_library(), n_clients=2, dropouts={"client-9": 1.0}
            )

    def test_unreliable_participants_cohort(self):
        from repro.crowd import unreliable_participants

        cohort = unreliable_participants(4, RngStream(5, "cohort"), dropout_hazard=0.2)
        assert len(cohort) == 4
        assert all(p.dropout_hazard == 0.2 for p in cohort)
        with pytest.raises(ValueError):
            unreliable_participants(2, RngStream(5, "x"), dropout_hazard=1.5)
