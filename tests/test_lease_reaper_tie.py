"""Pin the lease-expiry == upload-completion tie to one deterministic winner.

The discrete-event simulator dispatches equal-timestamp events FIFO, so
when a lease's reap event and a batch's process-completion event land on
exactly the same tick, the reap event runs *first*. Naively that would
expire a lease whose photos made it to the server in time — the client
did its job, another client would redo the work, and worse, the winner
would depend on event insertion order (a determinism hazard under
refactoring).

The pinned resolution: the reaper defers to in-flight uploads. A lease
whose task has a batch in simulated SfM processing is never reaped; the
upload outcome (complete / fail) resolves the assignment. These tests
construct the exact tie — lease expiry at ``arrival + 0.35 * photos`` —
and pin the completion-wins contract plus the accounting counter that
makes the deferral observable (``lease_reaps_deferred``).
"""

import pytest

from repro.camera import GALAXY_S7
from repro.config import ProtocolConfig
from repro.core import TaskFactory
from repro.geometry import Vec2
from repro.server import BackendServer, PhotoBatch, TaskRequest
from repro.server.backend import PROCESSING_S_PER_PHOTO
from repro.simkit import Simulator


def make_server(bench, lease_duration_s):
    sim = Simulator()
    pipeline = bench.make_pipeline()
    server = BackendServer(
        pipeline,
        sim,
        "venue",
        protocol=ProtocolConfig(lease_duration_s=lease_duration_s),
    )
    return sim, pipeline, server


def capture_photos(bench, n):
    photos = tuple(bench.capture.sweep(Vec2(3, 3), GALAXY_S7, 8.0, blur=0.0))
    assert len(photos) >= n
    return photos[:n]


def assign_one_task(server, client="c0"):
    server.enqueue_task(TaskFactory().photo_task(Vec2(1, 1), 1))
    assignment = server.handle_task_request(
        TaskRequest(client, request_id=f"{client}:req-1")
    )
    assert assignment.task is not None
    return assignment.task.task_id


class TestReaperTie:
    def test_completion_wins_the_exact_tie(self, bench):
        """Processing ends on the same tick the lease expires: task completes."""
        n_photos = 8
        lease_s = PROCESSING_S_PER_PHOTO * n_photos  # expiry == completion tick
        sim, pipeline, server = make_server(bench, lease_s)
        task_id = assign_one_task(server)
        results = []
        # The batch arrives at t=0; processing completes at exactly
        # lease expiry. FIFO dispatch runs the reap event first.
        server.handle_photo_batch(
            PhotoBatch("c0", task_id, capture_photos(bench, n_photos),
                       batch_id="c0:batch-1"),
            on_done=results.append,
        )
        sim.run()
        assert sim.now == pytest.approx(lease_s)
        # Completion won: the upload that arrived in time resolves the task.
        assert len(results) == 1 and results[0].photos_added
        assert server.store.task(task_id).status.value == "completed"
        assert server.store.lease_of(task_id) is None
        # The reaper deferred instead of expiring; nothing was requeued.
        assert server.store.counter("lease_reaps_deferred") == 1
        assert server.store.counter("leases_expired") == 0
        assert server.store.counter("tasks_requeued") == 0

    def test_expiry_one_tick_before_arrival_still_reaps(self, bench):
        """Photos arriving *after* expiry must not resurrect the lease."""
        lease_s = 1.0
        sim, pipeline, server = make_server(bench, lease_s)
        task_id = assign_one_task(server)
        results = []
        # Upload arrives after the lease has already been reaped.
        sim.schedule(
            2.0,
            lambda: server.handle_photo_batch(
                PhotoBatch("c0", task_id, capture_photos(bench, 4),
                           batch_id="c0:batch-1"),
                on_done=results.append,
            ),
            label="late-upload",
        )
        sim.run()
        assert server.store.counter("leases_expired") == 1
        assert server.store.counter("tasks_requeued") == 1
        assert server.store.counter("lease_reaps_deferred") == 0
        # The late batch still processed (its photos are useful), but the
        # requeued task is back in the queue for someone else.
        assert len(results) == 1

    def test_deferral_is_not_an_extension(self, bench):
        """A failed in-flight upload releases the lease; no silent renewal."""
        n_photos = 8
        lease_s = PROCESSING_S_PER_PHOTO * n_photos
        sim, pipeline, server = make_server(bench, lease_s)
        task_id = assign_one_task(server)
        results = []
        # An upload whose photos register nothing (all-black frames are
        # impossible to fabricate here, so use photos captured for a
        # different venue location — far outside the camera range they
        # register zero features) — the processing outcome *fails* the
        # task rather than completing it.
        server.handle_photo_batch(
            PhotoBatch("c0", task_id, (), batch_id="c0:batch-1"),
            on_done=results.append,
        )
        # Empty batches are rejected synchronously (no in-flight window),
        # so the lease was released and the task requeued immediately.
        assert server.store.lease_of(task_id) is None
        assert server.store.task(task_id).status.value == "pending"
        sim.run()
        assert server.store.counter("lease_reaps_deferred") == 0
