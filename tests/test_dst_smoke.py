"""Smoke tests for the DST harness: fuzz, catch, shrink, replay.

The full fuzz campaign (``repro fuzz --campaigns 50``) runs in CI's
nightly job; tier-1 runs this bounded batch instead. It exercises every
layer of the testkit once:

* a real sampled-campaign batch under the live invariant registry with
  the same-seed determinism double-run enabled;
* a planted bug (mutation) being *caught* by the expected invariant,
  *shrunk* to a minimal scenario, written as a replayable artifact, and
  *reproduced* from that artifact;
* scenario serialisation round-tripping through JSON exactly;
* the campaign-seed derivation staying stable across refactors (pinned
  values — artifacts in flight reference these seeds).
"""

from __future__ import annotations

import json

import pytest

from repro.testkit import (
    MUTATIONS,
    Scenario,
    load_artifact,
    mutation_probe,
    replay_artifact,
    run_fuzz,
    run_scenario,
)
from repro.testkit.fuzzer import campaign_seed


@pytest.fixture(scope="module")
def probe_result():
    """One checked run of the crafted probe scenario (shared, it's ~3 s)."""
    return run_scenario(mutation_probe(), check_determinism=True)


class TestCampaignBatch:
    def test_bounded_fuzz_batch_passes(self):
        summary = run_fuzz(
            campaigns=2,
            master_seed=0,
            shrink=False,
            check_determinism=False,
        )
        assert summary.ok, [f.result.label for f in summary.failures]
        assert summary.passed == 2
        # The registry actually ran: per-event checks and oracle checkpoints.
        assert summary.checks_run > 0
        assert summary.checkpoints_run > 0

    def test_probe_scenario_is_clean_and_deterministic(self, probe_result):
        assert probe_result.ok, probe_result.label
        assert probe_result.checks_run > 0
        assert probe_result.checkpoints_run > 0
        # Digests exist for every projection the determinism check compares.
        assert set(probe_result.digests) == {"report", "metrics", "trace"}

    def test_same_scenario_reproduces_identical_digests(self, probe_result):
        again = run_scenario(mutation_probe(), check_determinism=False)
        assert again.ok
        assert again.digests == probe_result.digests


class TestMutationLoop:
    def test_planted_bug_is_caught_shrunk_and_replayable(self, tmp_path):
        mutation = "skip-batch-dedupe"
        expected = f"invariant:{MUTATIONS[mutation].expected_invariant}"
        summary = run_fuzz(
            campaigns=1,
            master_seed=0,
            mutation=mutation,
            shrink=True,
            shrink_budget=16,
            check_determinism=False,
            artifact_dir=tmp_path,
        )
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert failure.result.label == expected
        # The shrinker simplified the scenario (fewer obstacles / shorter run)
        # without changing the failure.
        assert failure.shrink_steps
        assert failure.result.scenario != failure.original
        # The artifact on disk replays to the same failure.
        assert failure.artifact_path is not None
        doc = load_artifact(failure.artifact_path)
        assert doc["failure"] == expected
        replayed = replay_artifact(doc, check_determinism=False)
        assert replayed.label == expected


class TestScenarioSerialisation:
    def test_json_roundtrip_is_exact(self):
        scenario = Scenario.sample(123)
        wire = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(wire) == scenario

    def test_unknown_schema_is_rejected(self):
        doc = Scenario.sample(7).to_dict()
        doc["schema"] = "repro.testkit.scenario/v999"
        with pytest.raises(ValueError):
            Scenario.from_dict(doc)

    def test_campaign_seed_derivation_is_pinned(self):
        # Artifacts reference campaign seeds; a silent change to the
        # derivation would orphan every recorded failing seed.
        assert [campaign_seed(0, i) for i in range(3)] == [
            28697041,
            173833828,
            1529914845,
        ]
