"""Tests for deterministic named RNG streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simkit import RngRegistry, RngStream


class TestDeterminism:
    def test_same_name_same_sequence(self):
        a = RngStream(42, "mobility")
        b = RngStream(42, "mobility")
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_names_differ(self):
        a = RngStream(42, "mobility")
        b = RngStream(42, "capture")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStream(1, "x")
        b = RngStream(2, "x")
        assert a.uniform() != b.uniform()

    def test_child_streams_independent_of_order(self):
        parent = RngStream(42, "root")
        # Drawing from the parent must not perturb children.
        child_before = parent.child("a").uniform()
        parent2 = RngStream(42, "root")
        parent2.uniform()
        parent2.uniform()
        child_after = parent2.child("a").uniform()
        assert child_before == child_after

    def test_nested_children(self):
        a = RngStream(7, "root").child("x").child("y")
        b = RngStream(7, "root/x/y")
        assert a.uniform() == b.uniform()


class TestDraws:
    def test_uniform_range(self, rng):
        values = [rng.uniform(2.0, 3.0) for _ in range(100)]
        assert all(2.0 <= v < 3.0 for v in values)

    def test_integers_range(self, rng):
        values = [rng.integers(0, 5) for _ in range(100)]
        assert set(values) <= {0, 1, 2, 3, 4}

    def test_chance_extremes(self, rng):
        assert not any(rng.chance(0.0) for _ in range(50))
        assert all(rng.chance(1.0) for _ in range(50))

    def test_choice(self, rng):
        assert rng.choice(["a"]) == "a"
        with pytest.raises(ValueError):
            rng.choice([])

    def test_weighted_choice_validates(self, rng):
        with pytest.raises(ValueError):
            rng.weighted_choice(["a", "b"], [1.0])
        with pytest.raises(ValueError):
            rng.weighted_choice(["a", "b"], [0.0, 0.0])

    def test_weighted_choice_respects_weights(self, rng):
        counts = {"common": 0, "rare": 0}
        for _ in range(500):
            counts[rng.weighted_choice(["common", "rare"], [50.0, 1.0])] += 1
        assert counts["common"] > counts["rare"] * 5

    def test_sample_mask_shape(self, rng):
        mask = rng.sample_mask(100, 0.5)
        assert mask.shape == (100,)
        assert mask.dtype == bool

    def test_normal_array(self, rng):
        arr = rng.normal_array((4, 5), 0.0, 1.0)
        assert arr.shape == (4, 5)

    def test_permutation(self, rng):
        perm = rng.permutation(10)
        assert sorted(perm.tolist()) == list(range(10))

    def test_shuffle_in_place(self, rng):
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))


class TestRegistry:
    def test_registry_tracks_names(self):
        registry = RngRegistry(11)
        registry.stream("b")
        registry.stream("a")
        assert list(registry.stream_names()) == ["a", "b"]

    def test_registry_streams_deterministic(self):
        r1, r2 = RngRegistry(11), RngRegistry(11)
        assert r1.stream("x").uniform() == r2.stream("x").uniform()
