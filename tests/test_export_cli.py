"""Tests for floor-plan export and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.errors import MappingError
from repro.geometry import BoundingBox
from repro.mapping import (
    CoverageMaps,
    Grid2D,
    GridSpec,
    floorplan_to_csv,
    floorplan_to_json,
    floorplan_to_pgm,
    read_pgm,
    spec_metadata,
)


@pytest.fixture()
def small_maps():
    spec = GridSpec.from_bbox(BoundingBox(0, 0, 3, 3), 0.5, 0.0)
    obstacles, visibility = Grid2D(spec), Grid2D(spec)
    obstacles.data[1, 1] = 5
    visibility.data[2:4, 2:4] = 2
    return CoverageMaps(obstacles, visibility)


class TestExport:
    def test_pgm_roundtrip(self, small_maps, tmp_path):
        path = floorplan_to_pgm(small_maps, tmp_path / "plan.pgm")
        image = read_pgm(path)
        assert image.shape == small_maps.spec.shape
        # Obstacle pixel is black; note the vertical flip (north up).
        flipped_row = small_maps.spec.n_rows - 1 - 1
        assert image[flipped_row, 1] == 0
        assert (image == 180).sum() == 4  # the 2x2 visible block

    def test_pgm_with_region_mask(self, small_maps, tmp_path):
        region = np.zeros(small_maps.spec.shape, dtype=bool)
        region[0:3, 0:3] = True
        path = floorplan_to_pgm(small_maps, tmp_path / "plan.pgm", region)
        image = read_pgm(path)
        assert (image == 220).any()  # outside marker present

    def test_pgm_region_shape_check(self, small_maps, tmp_path):
        with pytest.raises(MappingError):
            floorplan_to_pgm(small_maps, tmp_path / "x.pgm", np.zeros((2, 2), bool))

    def test_read_pgm_rejects_other_formats(self, tmp_path):
        bad = tmp_path / "bad.pgm"
        bad.write_bytes(b"P2\n1 1\n255\n0\n")
        with pytest.raises(MappingError):
            read_pgm(bad)

    def test_csv_export(self, small_maps, tmp_path):
        path = floorplan_to_csv(small_maps, tmp_path / "plan.csv")
        matrix = np.loadtxt(path, delimiter=",")
        assert matrix.shape == small_maps.spec.shape
        assert matrix.max() == 2

    def test_json_export(self, small_maps, tmp_path):
        path = floorplan_to_json(small_maps, tmp_path / "plan.json", venue_name="v")
        document = json.loads(path.read_text())
        assert document["venue"] == "v"
        assert document["grid"]["cell_size_m"] == 0.5
        assert document["covered_cells"] == small_maps.covered_cells()
        assert len(document["layers"]) == small_maps.spec.n_rows

    def test_spec_metadata(self, small_maps):
        meta = spec_metadata(small_maps.spec)
        assert meta["n_rows"] == small_maps.spec.n_rows


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("info", "guided", "compare", "deploy", "export"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "aalto-library-replica" in out
        assert "outer bounds" in out

    def test_guided_short_run(self, capsys):
        assert main(["guided", "--max-tasks", "2", "--map"]) == 0
        out = capsys.readouterr().out
        assert "SnapTask:" in out
        assert "photo" in out

    def test_export_writes_files(self, tmp_path, capsys):
        out_dir = tmp_path / "plan"
        assert main(["export", "--max-tasks", "2", "--output", str(out_dir)]) == 0
        assert (out_dir / "floorplan.pgm").exists()
        assert (out_dir / "floorplan.json").exists()
