"""Tests for the discrete-event simulator and the network channel."""

import pytest

from repro.config import NetworkConfig
from repro.errors import SimulationError
from repro.simkit import Channel, DuplexLink, Simulator


class TestSimulator:
    def test_time_advances(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]
        assert sim.now == 5.0

    def test_fifo_at_same_time(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_ordering_across_times(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        token = sim.schedule(1.0, lambda: fired.append(1))
        token.cancel()
        sim.run()
        assert fired == []
        assert token.cancelled

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(2.0, lambda: fired.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 3.0)]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()

    def test_tracing(self):
        sim = Simulator()
        sim.enable_tracing()
        sim.schedule(1.0, lambda: None, label="tick")
        sim.run()
        assert sim.trace == ["1.000000:tick"]

    def test_pending_counts_live_events(self):
        sim = Simulator()
        t1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        t1.cancel()
        assert sim.pending() == 1

    def test_token_lifecycle_flags(self):
        sim = Simulator()
        token = sim.schedule(1.0, lambda: None)
        assert token.active and not token.executed
        sim.run()
        assert token.executed and not token.active
        stale = sim.schedule(1.0, lambda: None)
        stale.cancel()
        assert not stale.active and not stale.executed

    def test_run_until_advances_past_trailing_cancelled_events(self):
        # A queue holding only cancelled events (e.g. retry timers ACKed
        # before firing) must not stop the clock short of ``until``.
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        ghost = sim.schedule(5.0, lambda: None)
        ghost.cancel()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_cancelled_events_not_counted_as_processed(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None).cancel()
        sim.run()
        assert sim.processed_events == 1


class TestChannel:
    def setup_method(self):
        self.sim = Simulator()
        self.config = NetworkConfig(latency_s=0.1, bandwidth_mbps=8.0, photo_size_mb=2.0)

    def test_latency_plus_transfer(self):
        channel = Channel(self.sim, self.config)
        got = []
        # 2 MB at 8 Mbps = 2 s transfer + 0.1 s latency.
        channel.send("photo", got.append, size_mb=2.0)
        self.sim.run()
        assert got == ["photo"]
        assert self.sim.now == pytest.approx(2.1)

    def test_fifo_serialisation(self):
        channel = Channel(self.sim, self.config)
        times = []
        channel.send("a", lambda _: times.append(self.sim.now), size_mb=2.0)
        channel.send("b", lambda _: times.append(self.sim.now), size_mb=2.0)
        self.sim.run()
        # Second message starts after the first finishes.
        assert times[0] == pytest.approx(2.1)
        assert times[1] == pytest.approx(4.2)

    def test_zero_size_message(self):
        channel = Channel(self.sim, self.config)
        got = []
        channel.send("ping", got.append)
        self.sim.run()
        assert got == ["ping"]
        assert self.sim.now == pytest.approx(0.1)

    def test_negative_size_rejected(self):
        channel = Channel(self.sim, self.config)
        with pytest.raises(SimulationError):
            channel.send("x", lambda _: None, size_mb=-1.0)

    def test_traffic_accounting(self):
        link = DuplexLink(self.sim, self.config)
        link.uplink.send("up", lambda _: None, size_mb=3.0)
        link.downlink.send("down", lambda _: None, size_mb=1.0)
        self.sim.run()
        assert link.total_traffic_mb() == pytest.approx(4.0)

    def test_delivery_records(self):
        channel = Channel(self.sim, self.config)
        record = channel.send("x", lambda _: None, size_mb=2.0, label="batch")
        self.sim.run()
        assert record.label == "batch"
        assert record.transfer_time_s == pytest.approx(2.1)
