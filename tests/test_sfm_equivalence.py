"""Differential oracle: the columnar SfM wavefront vs the from-scratch path.

The columnar engine (dense feature interning, registration wavefront,
dirty-feature triangulation, O(delta) snapshots) and the incremental SOR
filter replace per-batch O(model) scans in the pipeline. Their correctness
contract is *bit-exactness* against the preserved from-scratch
implementations — not "close enough". This suite enforces it:

* hypothesis drives random batch partitions of a real photo pool through
  both engine strategies and pins registration order, reports and cloud
  arrays identical;
* a targeted scenario pins the rig-registration count (`newly_registered`
  used to report at most 1 when `_register_rigs` registered several);
* the vectorized view-compat bucket computation is pinned against the
  original scalar formula;
* `IncrementalSorFilter` masks are pinned bit-identical to `sor_mask` on
  grown clouds *and* on contract-violating inputs (moved/removed points);
* vectorized `PointCloud.subset` / `merged_with` are pinned against a
  per-point reference implementation;
* two full pipelines (incremental vs ``full_rebuild=True``) must emit
  byte-identical filtered clouds, reports and coverage, batch for batch.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.annotation.textures import FEATURES_PER_TEXTURE
from repro.camera import GALAXY_S7
from repro.core.pipeline import SnapTaskPipeline
from repro.geometry import Vec2, Vec3
from repro.sfm import (
    IncrementalSfm,
    IncrementalSorFilter,
    PointCloud,
    sor_filter,
    sor_filter_incremental,
    sor_mask,
)
from repro.sfm.pointcloud import CloudPoint
from repro.simkit import RngStream
from repro.venue.features import ARTIFICIAL_FEATURE_BASE


def sweep(bench, x, y, step=8.0):
    return list(bench.capture.sweep(Vec2(x, y), GALAXY_S7, step, blur=0.0))


@pytest.fixture(scope="module")
def photo_pool(bench):
    """A fixed, registration-rich photo pool spanning several rooms."""
    photos = []
    for x, y in [(3, 3), (5, 5), (8, 3.7), (10.5, 6.4), (6.0, 4.5), (12.0, 5.0)]:
        photos.extend(sweep(bench, x, y))
    return photos


def run_engine(bench, batches, full_rebuild):
    engine = IncrementalSfm(
        bench.world,
        bench.config.sfm,
        RngStream(4242, "sfm-equiv"),
        full_rebuild=full_rebuild,
    )
    reports = [engine.add_photos(batch) for batch in batches]
    return engine, reports


def assert_engines_identical(bench, batches):
    inc, inc_reports = run_engine(bench, batches, full_rebuild=False)
    scr, scr_reports = run_engine(bench, batches, full_rebuild=True)
    assert inc.full_rebuild is False and scr.full_rebuild is True
    # Same photos registered, in the same order.
    assert inc.registration_log() == scr.registration_log()
    assert inc.registered_ids() == scr.registered_ids()
    assert inc.pending_ids() == scr.pending_ids()
    # Per-batch reports (deltas included) identical.
    for a, b in zip(inc_reports, scr_reports):
        assert a == b
    # Clouds bit-identical: ids, positions, view counts, camera poses.
    m_inc, m_scr = inc.model(), scr.model()
    np.testing.assert_array_equal(m_inc.cloud.feature_ids, m_scr.cloud.feature_ids)
    np.testing.assert_array_equal(m_inc.cloud.xyz, m_scr.cloud.xyz)
    np.testing.assert_array_equal(m_inc.cloud.view_counts, m_scr.cloud.view_counts)
    assert [c.photo_id for c in m_inc.cameras] == [c.photo_id for c in m_scr.cameras]
    for ca, cb in zip(m_inc.cameras, m_scr.cameras):
        assert ca.pose == cb.pose
        assert ca.n_inliers == cb.n_inliers
        np.testing.assert_array_equal(ca.observed_feature_ids, cb.observed_feature_ids)
    return inc, scr


class TestWavefrontEquivalence:
    """Wavefront vs full-rescan fixpoint on real photos."""

    def test_single_batch(self, bench, photo_pool):
        assert_engines_identical(bench, [photo_pool])

    def test_photo_at_a_time(self, bench, photo_pool):
        # Worst case for the wavefront bookkeeping: 1-photo batches force
        # maximal pending-retry traffic.
        subset = photo_pool[:40]
        assert_engines_identical(bench, [[p] for p in subset])

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_random_batch_partitions(self, bench, photo_pool, data):
        """Any partition of the pool registers the same photos in the same
        order as the from-scratch fixpoint — the wavefront invariant."""
        photos = list(photo_pool)
        batches = []
        i = 0
        while i < len(photos):
            n = data.draw(st.integers(1, 25), label="batch-size")
            batches.append(photos[i : i + n])
            i += n
        inc, _scr = assert_engines_identical(bench, batches)
        assert inc.n_registered > 20, "vacuous: pool failed to register"

    def test_artificial_features_requeue_triangulation(self, bench, photo_pool):
        """Oracle positions arriving *after* the observers registered must
        re-trigger triangulation identically on both paths."""
        fid = ARTIFICIAL_FEATURE_BASE + 3
        base = sweep(bench, 3, 3)
        imprinted = [
            p.with_extra_observations(np.array([fid]), np.array([[50.0, 50.0]]), "t")
            for p in sweep(bench, 3.2, 3.2)
        ]
        followup = sweep(bench, 3.4, 3.4)

        def run(full_rebuild):
            engine = IncrementalSfm(
                bench.world,
                bench.config.sfm,
                RngStream(77, "late-oracle"),
                full_rebuild=full_rebuild,
            )
            engine.add_photos(base)
            engine.add_photos(imprinted)  # observers register, no position yet
            engine.register_artificial_features([fid], [Vec3(3.4, 3.3, 1.1)])
            report = engine.add_photos(followup)
            return engine, report

        inc, r_inc = run(False)
        scr, r_scr = run(True)
        assert r_inc == r_scr
        assert fid in set(int(f) for f in inc.model().cloud.feature_ids)
        np.testing.assert_array_equal(
            inc.model().cloud.xyz, scr.model().cloud.xyz
        )


class TestRigRegistrationCount:
    """Pin the rig-undercount fix: `newly_registered` counts every photo
    `_register_rigs` registered, not just one."""

    def _rig_batch(self, bench, engine, base):
        """Two pending photos registrable only jointly, as a texture rig."""
        cfg = bench.config.sfm
        model_photo = next(p for p in base if engine.is_registered(p.photo_id))
        anchors = [int(f) for f in model_photo.feature_ids]
        n_each = cfg.min_rig_anchor_matches // 2 + 1
        assert len(anchors) >= 2 * n_each
        block0 = ARTIFICIAL_FEATURE_BASE  # texture block 0
        texture_ids = np.arange(block0, block0 + cfg.rig_texture_matches)
        # The annex room is visually isolated — neither photo overlaps the
        # model on its own detections.
        isolated = sweep(bench, 19.2, 15.4)[:2]
        rig = []
        for i, photo in enumerate(isolated):
            extra = np.concatenate(
                [texture_ids, np.asarray(anchors[i * n_each : (i + 1) * n_each])]
            )
            uv = np.tile([60.0, 60.0], (extra.shape[0], 1))
            rig.append(photo.with_extra_observations(extra, uv, "rig"))
        return rig

    @pytest.mark.parametrize("full_rebuild", [False, True])
    def test_rig_registrations_all_counted(self, bench, full_rebuild):
        engine = IncrementalSfm(
            bench.world,
            bench.config.sfm,
            RngStream(11, "rig-count"),
            full_rebuild=full_rebuild,
        )
        base = sweep(bench, 3, 3)
        engine.add_photos(base)
        rig = self._rig_batch(bench, engine, base)
        before = engine.n_registered
        report = engine.add_photos(rig)
        for photo in rig:
            assert engine.is_registered(photo.photo_id), "rig did not register"
        assert engine.n_registered == before + len(rig)
        # The pinned bug: this used to report fewer than len(rig).
        assert report.newly_registered == len(rig)
        assert tuple(sorted(report.new_camera_ids)) == tuple(
            sorted(p.photo_id for p in rig)
        )


class TestBucketVectorization:
    """The vectorized arctan2/truncation bucket formula must reproduce the
    original scalar loop bit-for-bit on real photos."""

    def test_buckets_match_scalar_reference(self, bench, photo_pool):
        engine = IncrementalSfm(
            bench.world, bench.config.sfm, RngStream(5, "buckets")
        )
        n = bench.config.sfm.view_compat_buckets
        for photo in photo_pool[:25]:
            vec = engine._buckets_for(photo)
            cx = photo.true_pose.position.x
            cy = photo.true_pose.position.y
            for j, fid in enumerate(photo.feature_ids):
                fid = int(fid)
                if ARTIFICIAL_FEATURE_BASE <= fid:
                    continue  # pool photos carry no artificial features
                feature = bench.world.feature(fid)
                angle = math.atan2(
                    cy - feature.position.y, cx - feature.position.x
                )
                expected = int((angle + math.pi) / (2.0 * math.pi) * n) % n
                assert int(vec[j]) == expected


# ---------------------------------------------------------------------------
# Incremental SOR vs the from-scratch oracle
# ---------------------------------------------------------------------------


def _cloud_from_xyz(ids, xyz):
    return PointCloud.from_columns(
        np.asarray(ids, dtype=int),
        np.asarray(xyz, dtype=float),
        np.full(len(ids), 3, dtype=int),
    )


class TestIncrementalSorEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_base=st.integers(0, 120),
        growth=st.lists(st.integers(0, 60), min_size=1, max_size=6),
        k=st.integers(2, 10),
    )
    def test_grown_clouds_bit_identical(self, seed, n_base, growth, k):
        """Masks match `sor_mask` exactly on every step of a growing,
        id-sorted cloud — the zero-staleness bound."""
        rng = np.random.default_rng(seed)
        state = IncrementalSorFilter(n_neighbors=k, std_ratio=2.0)
        total = n_base + sum(growth)
        # Pre-draw ids/positions, then reveal prefixes (id-sorted growth).
        all_ids = np.sort(
            rng.choice(10 * max(1, total), size=max(1, total), replace=False)
        )
        all_xyz = np.where(
            rng.random((max(1, total), 3)) < 0.15,
            rng.normal(0.0, 40.0, (max(1, total), 3)),  # sprinkle outliers
            rng.normal(0.0, 1.0, (max(1, total), 3)),
        )
        sizes = np.cumsum([n_base] + growth)
        for size in sizes:
            size = int(size)
            cloud = _cloud_from_xyz(all_ids[:size], all_xyz[:size])
            expected = (
                sor_mask(cloud.xyz, k, 2.0)
                if size
                else np.ones(0, dtype=bool)
            )
            np.testing.assert_array_equal(state.mask(cloud), expected)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_contract_violations_fall_back_exactly(self, seed):
        """Moved, removed and reordered points are served by a transparent
        full recompute — still bit-identical to the oracle."""
        rng = np.random.default_rng(seed)
        state = IncrementalSorFilter(n_neighbors=4)
        ids = np.arange(0, 160, 2)
        xyz = rng.normal(0.0, 1.0, (80, 3))
        first = _cloud_from_xyz(ids, xyz)
        np.testing.assert_array_equal(state.mask(first), sor_mask(xyz, 4, 2.0))
        # Move one point.
        moved = xyz.copy()
        moved[rng.integers(0, 80)] += 5.0
        cloud = _cloud_from_xyz(ids, moved)
        np.testing.assert_array_equal(state.mask(cloud), sor_mask(moved, 4, 2.0))
        # Remove a third of the points.
        keep = rng.random(80) > 0.33
        cloud = _cloud_from_xyz(ids[keep], moved[keep])
        np.testing.assert_array_equal(
            state.mask(cloud), sor_mask(moved[keep], 4, 2.0)
        )
        # Shrink below k: all-inlier short-circuit.
        tiny = _cloud_from_xyz(ids[:3], moved[:3])
        assert state.mask(tiny).all()

    def test_amortized_rebuild_still_exact(self):
        """Grow far past the rebuild threshold; every mask stays exact and
        the main tree is eventually rebuilt."""
        rng = np.random.default_rng(3)
        state = IncrementalSorFilter(n_neighbors=6, rebuild_fraction=0.1)
        n_total = 900
        ids = np.arange(n_total)
        xyz = rng.normal(0.0, 2.0, (n_total, 3))
        for size in range(50, n_total + 1, 50):
            cloud = _cloud_from_xyz(ids[:size], xyz[:size])
            np.testing.assert_array_equal(
                state.mask(cloud), sor_mask(xyz[:size], 6, 2.0)
            )

    def test_filter_function_matches_sor_filter(self):
        rng = np.random.default_rng(9)
        xyz = rng.normal(0.0, 1.0, (120, 3))
        cloud = _cloud_from_xyz(np.arange(120), xyz)
        state = IncrementalSorFilter()
        got = sor_filter_incremental(cloud, state)
        want = sor_filter(cloud)
        np.testing.assert_array_equal(got.feature_ids, want.feature_ids)
        np.testing.assert_array_equal(got.xyz, want.xyz)
        # Second call reuses the cache but must stay identical.
        again = sor_filter_incremental(cloud, state)
        np.testing.assert_array_equal(again.feature_ids, want.feature_ids)


# ---------------------------------------------------------------------------
# Vectorized PointCloud ops vs per-point reference semantics
# ---------------------------------------------------------------------------


def reference_merge(a: PointCloud, b: PointCloud) -> list:
    """The original per-point dict merge: b wins on id collision, result
    sorted by feature id."""
    by_id = {p.feature_id: p for p in a.points}
    by_id.update({p.feature_id: p for p in b.points})
    return [by_id[k] for k in sorted(by_id)]


cloud_strategy = st.lists(
    st.tuples(
        st.integers(0, 50),
        st.floats(-100, 100, allow_nan=False),
        st.floats(-100, 100, allow_nan=False),
        st.floats(-100, 100, allow_nan=False),
        st.integers(3, 9),
    ),
    max_size=40,
).map(
    lambda rows: PointCloud(
        [
            CloudPoint(fid, x, y, z, v)
            for fid, (_, x, y, z, v) in (
                # unique, sorted ids as the engine guarantees
                (lambda d: sorted(d.items()))(
                    {r[0]: r for r in rows}
                )
            )
        ]
    )
)


class TestPointCloudVectorized:
    @settings(max_examples=60, deadline=None)
    @given(cloud=cloud_strategy, seed=st.integers(0, 1000))
    def test_subset_matches_reference(self, cloud, seed):
        mask = np.random.default_rng(seed).random(len(cloud)) < 0.5
        got = cloud.subset(mask)
        want = [p for p, m in zip(cloud.points, mask) if m]
        assert list(got.points) == want
        np.testing.assert_array_equal(got.xyz, cloud.xyz[mask])

    @settings(max_examples=60, deadline=None)
    @given(a=cloud_strategy, b=cloud_strategy)
    def test_merged_with_matches_reference(self, a, b):
        got = a.merged_with(b)
        want = reference_merge(a, b)
        assert list(got.points) == want

    def test_merge_empty_cases(self):
        a = PointCloud([CloudPoint(1, 0.0, 0.0, 0.0, 3)])
        e = PointCloud.empty()
        assert list(e.merged_with(e).points) == []
        assert list(a.merged_with(e).points) == list(a.points)
        assert list(e.merged_with(a).points) == list(a.points)

    def test_other_wins_on_collision(self):
        a = PointCloud([CloudPoint(7, 0.0, 0.0, 0.0, 3)])
        b = PointCloud([CloudPoint(7, 9.0, 9.0, 9.0, 5)])
        merged = a.merged_with(b)
        assert merged.points[0] == CloudPoint(7, 9.0, 9.0, 9.0, 5)


# ---------------------------------------------------------------------------
# Full pipeline: incremental vs full_rebuild, byte for byte
# ---------------------------------------------------------------------------


class TestPipelineDifferential:
    def test_pipelines_bit_identical(self, bench):
        """Algorithm 1 end-to-end: the columnar engine + incremental SOR
        must leave no trace — clouds, reports, tasks and coverage match the
        from-scratch pipeline on every batch."""
        photos = self._photos(bench)
        outcomes = {}
        for label, full_rebuild in (("inc", False), ("scratch", True)):
            pipeline = SnapTaskPipeline(
                bench.world,
                bench.config,
                bench.spec,
                bench.venue.entrance,
                RngStream(1234, "sfm-pipe-equiv"),
                site_mask=bench.ground_truth.region_mask,
                full_rebuild=full_rebuild,
            )
            chunk = 25
            outcomes[label] = [
                pipeline.process_batch(photos[i : i + chunk])
                for i in range(0, len(photos), chunk)
            ]
        assert len(outcomes["inc"]) > 2
        for a, b in zip(outcomes["inc"], outcomes["scratch"]):
            assert a.report == b.report
            # The *filtered* cloud: pins IncrementalSorFilter == sor_filter
            # on the live reconstruction, and the O(delta) snapshots.
            np.testing.assert_array_equal(
                a.model.cloud.feature_ids, b.model.cloud.feature_ids
            )
            np.testing.assert_array_equal(a.model.cloud.xyz, b.model.cloud.xyz)
            np.testing.assert_array_equal(
                a.model.cloud.view_counts, b.model.cloud.view_counts
            )
            assert [c.photo_id for c in a.model.cameras] == [
                c.photo_id for c in b.model.cameras
            ]
            assert a.coverage_cells == b.coverage_cells
            assert len(a.new_tasks) == len(b.new_tasks)

    @staticmethod
    def _photos(bench):
        pipeline = SnapTaskPipeline(
            bench.world,
            bench.config,
            bench.spec,
            bench.venue.entrance,
            RngStream(1235, "sfm-pipe-photos"),
            site_mask=bench.ground_truth.region_mask,
        )
        campaign = bench.make_guided_campaign(pipeline, 2)
        return campaign.bootstrap_photos()
