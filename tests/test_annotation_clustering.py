"""Tests for from-scratch DBSCAN and k-means."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.annotation import (
    NOISE,
    cluster_centroids,
    dbscan,
    kmeans,
    largest_cluster_centroid,
)
from repro.errors import AnnotationError
from repro.simkit import RngStream


def blobs(centers, n_per=20, sigma=0.3, seed=0):
    rng = np.random.default_rng(seed)
    parts = [rng.normal(c, sigma, size=(n_per, len(c))) for c in centers]
    return np.vstack(parts)


class TestDbscan:
    def test_two_blobs(self):
        points = blobs([(0, 0), (10, 10)])
        labels = dbscan(points, eps=1.5, min_samples=4)
        assert set(labels) == {0, 1}
        # Points of the same blob share a label.
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1

    def test_noise_points(self):
        points = np.vstack([blobs([(0, 0)]), [[50.0, 50.0]]])
        labels = dbscan(points, eps=1.5, min_samples=4)
        assert labels[-1] == NOISE

    def test_min_samples_gate(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])
        labels = dbscan(points, eps=0.5, min_samples=5)
        assert (labels == NOISE).all()

    def test_empty(self):
        assert dbscan(np.zeros((0, 2)), 1.0, 3).shape == (0,)

    def test_validation(self):
        with pytest.raises(AnnotationError):
            dbscan(np.zeros((3, 2)), eps=0.0, min_samples=3)
        with pytest.raises(AnnotationError):
            dbscan(np.zeros(3), eps=1.0, min_samples=3)

    def test_border_point_adoption(self):
        # A chain where the end point is within eps of a core point but is
        # not core itself.
        points = np.array([[0, 0], [0.4, 0], [0.8, 0], [1.2, 0], [1.6, 0]])
        labels = dbscan(points, eps=0.5, min_samples=3)
        assert (labels == 0).all()

    @settings(deadline=None, max_examples=25)
    @given(st.integers(1, 4), st.integers(2, 6))
    def test_all_labels_valid(self, n_blobs, min_samples):
        centers = [(8.0 * i, 0.0) for i in range(n_blobs)]
        points = blobs(centers, n_per=12, sigma=0.2, seed=n_blobs)
        labels = dbscan(points, eps=1.0, min_samples=min_samples)
        assert labels.shape == (points.shape[0],)
        assert labels.min() >= NOISE

    def test_cluster_centroids(self):
        points = blobs([(0, 0), (10, 10)])
        labels = dbscan(points, eps=1.5, min_samples=4)
        centroids = cluster_centroids(points, labels)
        assert len(centroids) == 2
        distances = [min(np.linalg.norm(c - np.array(t)) for c in centroids) for t in [(0, 0), (10, 10)]]
        assert max(distances) < 1.0

    def test_largest_cluster_centroid(self):
        points = np.vstack([blobs([(0, 0)], n_per=30), blobs([(10, 10)], n_per=5, seed=1)])
        centroid = largest_cluster_centroid(points, eps=1.5, min_samples=4)
        assert centroid is not None
        assert np.linalg.norm(centroid) < 1.0

    def test_largest_cluster_all_noise(self):
        points = np.array([[0.0, 0.0], [50.0, 50.0]])
        assert largest_cluster_centroid(points, eps=1.0, min_samples=3) is None


class TestKmeans:
    def test_four_corners(self):
        corners = [(0, 0), (10, 0), (10, 10), (0, 10)]
        points = blobs(corners, n_per=15, sigma=0.4)
        result = kmeans(points, 4, RngStream(3, "km"))
        assert result.centroids.shape == (4, 2)
        for corner in corners:
            nearest = np.min(np.linalg.norm(result.centroids - np.array(corner), axis=1))
            assert nearest < 1.0

    def test_labels_partition(self):
        points = blobs([(0, 0), (10, 10)], n_per=10)
        result = kmeans(points, 2, RngStream(3, "km"))
        assert result.labels.shape == (20,)
        assert set(result.labels) == {0, 1}

    def test_too_few_points(self):
        with pytest.raises(AnnotationError):
            kmeans(np.zeros((2, 2)), 4, RngStream(3, "km"))

    def test_deterministic(self):
        points = blobs([(0, 0), (5, 5)], n_per=10)
        a = kmeans(points, 2, RngStream(3, "km"))
        b = kmeans(points, 2, RngStream(3, "km"))
        assert np.allclose(a.centroids, b.centroids)

    def test_inertia_nonnegative_and_converges(self):
        points = blobs([(0, 0), (5, 5)], n_per=10)
        result = kmeans(points, 2, RngStream(3, "km"))
        assert result.inertia >= 0
        assert result.iterations <= 60
