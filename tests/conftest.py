"""Shared fixtures: a library workbench and cheap sub-objects.

The workbench is session-scoped — building the feature world once keeps
the suite fast. Tests that mutate state (pipelines, engines) always build
their own instances from the shared immutable substrates.
"""

from __future__ import annotations

import os
import zlib

import pytest

from repro.camera import GALAXY_S7, CaptureSimulator
from repro.config import paper_config
from repro.eval import Workbench
from repro.simkit import RngStream
from repro.venue import OfficeSpec, build_feature_world, build_library, generate_office


def pytest_collection_modifyitems(config, items):
    """Optional stable-hash sharding: ``REPRO_TEST_SHARD=i/n`` keeps only
    the items whose crc32(nodeid) lands in shard ``i`` (1-based) of ``n``.

    crc32 is stable across processes and Python versions (unlike
    ``hash()``), so the shards partition the suite identically on every
    CI runner — no test is run twice or dropped.
    """
    spec = os.environ.get("REPRO_TEST_SHARD")
    if not spec:
        return
    index, total = (int(part) for part in spec.split("/"))
    if not 1 <= index <= total:
        raise ValueError(f"REPRO_TEST_SHARD={spec!r}: want 1<=i<=n")
    keep = []
    drop = []
    for item in items:
        bucket = zlib.crc32(item.nodeid.encode()) % total
        (keep if bucket == index - 1 else drop).append(item)
    if drop:
        config.hook.pytest_deselected(items=drop)
        items[:] = keep


@pytest.fixture(scope="session")
def config():
    return paper_config()


@pytest.fixture(scope="session")
def library():
    return build_library()


@pytest.fixture(scope="session")
def bench():
    """Shared library workbench (immutable substrates only)."""
    return Workbench.for_library()


@pytest.fixture(scope="session")
def world(bench):
    return bench.world


@pytest.fixture(scope="session")
def capture(bench):
    return bench.capture


@pytest.fixture(scope="session")
def ground_truth(bench):
    return bench.ground_truth


@pytest.fixture(scope="session")
def office():
    spec = OfficeSpec(width_m=14.0, depth_m=10.0, glass_walls=1, n_furniture=5)
    return generate_office(spec, RngStream(7, "office"))


@pytest.fixture()
def rng():
    return RngStream(123, "test")
