"""Determinism lint: no ambient randomness or wall clocks in ``src/``.

The whole DST premise — same seed, byte-identical deployment — holds
only while every source of nondeterminism stays behind two sanctioned
doors:

* ``repro.simkit.rng`` — all randomness flows through named
  :class:`RngStream` draws derived from the master seed;
* ``repro.obs.wallclock`` — the only module allowed to read the host
  clock, for telemetry that the digest layer explicitly excludes.

This test AST-walks every module under ``src/`` and fails on `import
random`, `time.time()`/`perf_counter()`-style clock reads,
`datetime.now()`/`utcnow()`, or direct `numpy.random` use anywhere
else. An alias (``from time import perf_counter as pc``) is caught at
the import, so call-site renaming cannot sneak past the lint.

Ambient *filesystem* access is banned the same way: a simulation that
reads or writes host files mid-run is coupled to machine state the
seed does not control (and a crash-recovery replay could observe a
file a previous run left behind). ``open()`` and the ``pathlib``
read/write/mutate methods are confined to the declared I/O edges —
the CLI, the exporters, artifact files, the durability media
(``persist/``) and telemetry dumps (``obs/``).
"""

from __future__ import annotations

import ast
import pathlib

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules allowed to touch the named nondeterminism source.
ALLOWED = {
    "random": set(),  # the stdlib PRNG is banned outright
    "time": {"obs/wallclock.py"},
    "datetime-now": {"obs/wallclock.py"},
    "numpy-random": {"simkit/rng.py"},
    # Host parallelism: worker scheduling is OS-timing-dependent, so
    # process/thread pools are confined to the one module built to merge
    # results back deterministically (in campaign-index order).
    "parallelism": {"testkit/executor.py"},
}

#: The declared I/O edges: the only places allowed to touch the host
#: filesystem. Everything else must stay a pure function of the seed.
FS_ALLOWED_FILES = {"cli.py", "mapping/export.py", "testkit/artifact.py"}
FS_ALLOWED_PREFIXES = ("persist/", "obs/")

#: Method names that read or mutate the filesystem when called.
FS_METHODS = {
    "write_text",
    "write_bytes",
    "read_text",
    "read_bytes",
    "mkdir",
    "unlink",
    "rmdir",
}

#: ``time`` module members that read a clock (importing them is the offence).
CLOCK_MEMBERS = {
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "time_ns",
    "clock_gettime",
}


def _module_findings(path: pathlib.Path, tree: ast.AST):
    rel = path.relative_to(SRC_ROOT).as_posix()
    findings = []
    fs_allowed = rel in FS_ALLOWED_FILES or rel.startswith(FS_ALLOWED_PREFIXES)

    def offend(kind: str, node: ast.AST, what: str) -> None:
        if rel not in ALLOWED[kind]:
            findings.append(f"{rel}:{node.lineno}: {what}")

    def offend_fs(node: ast.AST, what: str) -> None:
        if not fs_allowed:
            findings.append(f"{rel}:{node.lineno}: {what}")

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "random":
                    offend("random", node, "imports stdlib `random`")
                elif root == "time":
                    offend("time", node, "imports `time` (wall clock)")
                elif root in ("multiprocessing", "concurrent", "threading"):
                    offend(
                        "parallelism",
                        node,
                        f"imports `{root}` (ambient parallelism)",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root == "random":
                offend("random", node, "imports from stdlib `random`")
            elif root in ("multiprocessing", "concurrent", "threading"):
                offend(
                    "parallelism",
                    node,
                    f"imports from `{root}` (ambient parallelism)",
                )
            elif root == "time":
                names = {alias.name for alias in node.names}
                clocks = sorted(names & CLOCK_MEMBERS)
                if clocks:
                    offend("time", node, f"imports clock(s) {clocks} from `time`")
            elif root == "numpy":
                sub = (node.module or "").split(".")
                if "random" in sub[1:]:
                    offend("numpy-random", node, "imports from `numpy.random`")
                for alias in node.names:
                    if alias.name == "random" or alias.name == "default_rng":
                        offend(
                            "numpy-random", node, f"imports numpy `{alias.name}`"
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                offend_fs(node, "calls builtin `open()` (ambient filesystem)")
            elif isinstance(func, ast.Attribute) and func.attr in FS_METHODS:
                offend_fs(
                    node, f"filesystem access via `.{func.attr}()`"
                )
        elif isinstance(node, ast.Attribute):
            # np.random.* / numpy.random.* access
            if node.attr == "random" and isinstance(node.value, ast.Name):
                if node.value.id in ("np", "numpy"):
                    offend("numpy-random", node, "uses `numpy.random` directly")
            # os.fork() — process creation outside the executor.
            if node.attr in ("fork", "forkpty") and isinstance(
                node.value, ast.Name
            ):
                if node.value.id == "os":
                    offend(
                        "parallelism", node, f"forks via `os.{node.attr}`"
                    )
            # datetime.now() / utcnow() — a wall-clock read even without
            # importing `time`.
            if node.attr in ("now", "utcnow", "today"):
                target = node.value
                names = set()
                while isinstance(target, ast.Attribute):
                    names.add(target.attr)
                    target = target.value
                if isinstance(target, ast.Name):
                    names.add(target.id)
                if names & {"datetime", "date"}:
                    offend(
                        "datetime-now",
                        node,
                        f"reads the wall clock via `datetime.{node.attr}()`",
                    )
    return findings


def test_no_ambient_nondeterminism_in_src():
    assert SRC_ROOT.is_dir(), SRC_ROOT
    findings = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        findings.extend(_module_findings(path, tree))
    assert not findings, (
        "nondeterminism sources outside the sanctioned modules "
        "(route randomness through simkit.rng, clocks through obs.wallclock):\n"
        + "\n".join(findings)
    )


def test_lint_catches_a_planted_offence():
    """The linter itself must flag each banned pattern (no dead lint)."""
    bad = (
        "import random\n"
        "from time import perf_counter as pc\n"
        "import numpy as np\n"
        "x = np.random.rand()\n"
        "import datetime\n"
        "t = datetime.datetime.now()\n"
        "fh = open('sneaky.txt')\n"
        "out.write_text('state')\n"
        "import multiprocessing\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "import os\n"
        "pid = os.fork()\n"
    )
    tree = ast.parse(bad)
    fake = SRC_ROOT / "core" / "planted.py"
    findings = _module_findings(fake, tree)
    kinds = "\n".join(findings)
    assert "stdlib `random`" in kinds
    assert "clock(s) ['perf_counter']" in kinds
    assert "`numpy.random` directly" in kinds
    assert "datetime.now()" in kinds
    assert "builtin `open()`" in kinds
    assert ".write_text()" in kinds
    assert "imports `multiprocessing` (ambient parallelism)" in kinds
    assert "imports from `concurrent` (ambient parallelism)" in kinds
    assert "forks via `os.fork`" in kinds


def test_parallelism_lint_allows_only_the_executor():
    """Process pools are legal in testkit/executor.py and nowhere else."""
    code = (
        "import multiprocessing\n"
        "from multiprocessing.connection import wait\n"
    )
    tree = ast.parse(code)
    assert not _module_findings(SRC_ROOT / "testkit" / "executor.py", tree)
    offences = _module_findings(SRC_ROOT / "testkit" / "fuzzer.py", tree)
    assert len(offences) == 2


def test_filesystem_lint_respects_the_io_edges():
    """The same I/O is legal at a declared edge (e.g. the WAL media)."""
    code = "fh = open('wal.bin', 'wb')\npath.write_bytes(frame)\n"
    tree = ast.parse(code)
    for rel in ("persist/wal.py", "obs/export.py", "testkit/artifact.py", "cli.py"):
        assert not _module_findings(SRC_ROOT / rel, tree), rel
    offences = _module_findings(SRC_ROOT / "server" / "backend.py", tree)
    assert len(offences) == 2
