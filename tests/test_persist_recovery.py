"""Crash-restart recovery: behavioural equivalence end to end.

DESIGN.md §10's recovered-state contract, pinned at deployment scale:

* persistence on, zero crashes — the campaign is *identical* to the
  persistence-off baseline (the durable host must be a pure observer);
* a crashed-and-recovered campaign converges to exactly the final
  coverage / task outcomes of its crash-free same-seed twin;
* every recovery's double-restore digest audit matches;
* a crash landing exactly at a lease-expiry instant neither loses nor
  double-fires the reap (the simulator timer fencing satellite);
* ``IncrementalMapEngine`` snapshots preserve the flat/2-D grid view
  aliasing (the deepcopy regression that silently corrupted coverage
  after every restore).
"""

from __future__ import annotations

import copy
from dataclasses import replace

import numpy as np

from repro.mapping import GridSpec
from repro.mapping.incremental import IncrementalMapEngine
from repro.persist import AdmitRecord, BatchRecord, ReapRecord, RecoveryManager
from repro.testkit import Scenario, run_scenario

#: The quiet single-client deployment every test derives from.
BASE = Scenario(seed=11, n_clients=1)

CONVERGED_FIELDS = (
    "venue_covered",
    "coverage_cells",
    "tasks_completed",
    "tasks_failed",
    "photos_uploaded",
)


def _run(scenario):
    deployment = scenario.make_deployment()
    report = deployment.run(
        until_s=scenario.until_s, max_events=scenario.max_events
    )
    return deployment, report


class TestPersistenceIsAPureObserver:
    def test_zero_crash_run_equals_the_baseline(self):
        """WAL + snapshots on, no crash: nothing observable may change."""
        _, baseline = _run(BASE)
        _, persisted = _run(replace(BASE, persist=True, snapshot_every=2))
        assert baseline.venue_covered
        for name in CONVERGED_FIELDS + ("events_processed", "sim_time_s"):
            assert getattr(persisted, name) == getattr(baseline, name), name
        assert persisted.wal_records > 0
        assert persisted.snapshots_taken > 0
        assert baseline.wal_records == 0  # persistence-off graph untouched


class TestCrashRecovery:
    CRASHED = replace(
        BASE,
        persist=True,
        snapshot_every=2,
        backend_crashes=((900.0, 45.0), (2400.0, 70.0)),
    )

    def test_recovered_campaign_converges_like_the_twin(self):
        """The harness's crash-twin diff must hold for a real schedule."""
        assert self.CRASHED.crash_twin_eligible
        result = run_scenario(self.CRASHED, check_determinism=False)
        assert result.ok, result.determinism_detail or result.label
        report = result.report
        assert report.venue_covered
        assert report.backend_crashes == 2
        assert report.backend_recoveries == 2
        # The explicit diff the harness ran implicitly: field-for-field.
        _, twin = _run(replace(self.CRASHED, backend_crashes=(), persist=False))
        for name in CONVERGED_FIELDS:
            assert getattr(report, name) == getattr(twin, name), name

    def test_every_recovery_audit_matches(self):
        """audit_recovery restores twice per crash; digests must agree."""
        deployment, report = _run(self.CRASHED)
        host = deployment.host
        assert len(host.recovery_audits) == report.backend_recoveries > 0
        for rec in host.recovery_audits:
            assert rec.audit_ok, (rec.digest, rec.audit_digest)
            assert rec.dropped_remnants == 0  # clean in-memory media

    def test_admit_seq_watermark_survives_recovery(self):
        """Bounded-lane admission seqs stay strictly increasing across a
        restart — the recovered watermark resumes above every seq issued."""
        scenario = replace(
            BASE,
            n_clients=2,
            persist=True,
            sfm_workers=1,
            backend_crashes=((900.0, 45.0),),
        )
        deployment, report = _run(scenario)
        assert report.backend_recoveries == 1
        seqs = [
            r.seq
            for r in deployment.host.wal.records()
            if isinstance(r, AdmitRecord) and r.seq is not None
        ]
        assert seqs, "bounded lane issued no admission seqs"
        assert seqs == sorted(set(seqs))


class TestReplayServiceAccounting:
    def test_replay_does_not_duplicate_service_accounting(self):
        """The seed-0/campaign-26 fuzz finding, pinned structurally.

        A bounded-lane batch can *start service* before a checkpoint and
        *commit* after it: the snapshot then already holds its seq in
        ``_service_order`` (plus its wait/service totals), while its
        BatchRecord sits in the replayed WAL suffix. Replay must detect
        that and not re-apply the service-start accounting — the
        original bug duplicated the seq and double-counted the totals,
        which the admission-bound invariant's FIFO audit caught.
        """
        # The de-faulted shape of the original finding (fuzz master seed
        # 0, campaign 26): a crowd on a two-worker zero-queue lane with
        # a parallel task stream keeps batches in service across other
        # batches' commits, so per-commit checkpoints straddle often.
        scenario = Scenario(
            seed=131778450,
            venue_seed=1065893155,
            venue_width_m=10.0,
            venue_depth_m=10.0,
            glass_walls=2,
            n_hotspots=3,
            n_furniture=0,
            n_clients=4,
            persist=True,
            snapshot_every=1,
            snapshot_retain=999,  # keep every generation for the scan
            rto_initial_s=2.0,
            upload_subbatch=30,
            sfm_workers=2,
            sfm_queue_limit=0,
            max_tasks=3,
            until_s=3_000.0,
        )
        deployment, report = _run(scenario)
        assert report.venue_covered
        host = deployment.host
        live_order = deployment.server.sfm_service_order()
        assert live_order == sorted(set(live_order))  # healthy baseline
        # Find every checkpoint that straddles an in-service batch: its
        # snapshot already contains the seq, and the commit's
        # BatchRecord is in the WAL suffix past the snapshot.
        straddling = []
        for snap in host.snapshotter.generations():
            captured = set(snap.state["_service_order"])
            suffix_seqs = {
                r.seq
                for r in host.wal.records(snap.wal_position)
                if isinstance(r, BatchRecord) and r.seq is not None
            }
            if captured & suffix_seqs:
                straddling.append(snap)
        assert straddling, (
            "scenario produced no checkpoint straddling an in-service "
            "batch — the regression's trigger condition never occurred"
        )
        # Recover from a spread of straddling generations (newest,
        # oldest, and two between — each full recovery replays a WAL
        # suffix, so recovering from all ~18 would dominate the suite):
        # the replayed suffix re-delivers the already-captured commit,
        # and the recovered service-start audit log must still be
        # exactly the live one.
        picked = {0, len(straddling) // 3, (2 * len(straddling)) // 3,
                  len(straddling) - 1}
        for snap in (straddling[i] for i in sorted(picked)):
            result = RecoveryManager(host.wal, snap).recover(deployment.simulator)
            recovered = result.server.sfm_service_order()
            assert recovered == live_order, snap.seq
            assert recovered == sorted(set(recovered)), snap.seq
            assert result.server.sfm_queue_wait_total_s == (
                deployment.server.sfm_queue_wait_total_s
            ), snap.seq
            assert result.server.sfm_service_time_total_s == (
                deployment.server.sfm_service_time_total_s
            ), snap.seq
            result.server.fence()  # never let the probe server act


class TestCrashAtLeaseExpiry:
    def test_crash_landing_on_the_reap_instant(self):
        """Kill the backend at the exact sim-time the lease reaper fires.

        The reaper timer dies with the fence; recovery re-arms the lease
        at ``max(expires_at, now)`` so the expiry still happens exactly
        once. The run must stay invariant-clean, deterministic, and
        complete the campaign.
        """
        # A client abandoning mid-task forces a real lease expiry; the
        # ReapRecord in the WAL gives us its exact instant.
        reaping = Scenario(
            seed=11,
            n_clients=2,
            persist=True,
            snapshot_every=2,
            dropouts=(("client-0", 5.0),),
            lease_duration_s=200.0,
        )
        deployment, report = _run(reaping)
        assert report.venue_covered
        reaps = [
            r for r in deployment.host.wal.records() if isinstance(r, ReapRecord)
        ]
        assert reaps, "dropout produced no lease expiry"
        pinned = replace(reaping, backend_crashes=((reaps[0].t, 30.0),))
        result = run_scenario(pinned, check_determinism=True)
        assert result.ok, result.determinism_detail or result.label
        assert result.report.venue_covered
        assert result.report.backend_recoveries == 1


class TestSnapshotAliasing:
    def test_deepcopy_preserves_flat_grid_views(self):
        """The snapshot regression: deepcopy must keep ``_vis_flat`` et
        al. as *views* of their 2-D grids, not decoupled copies."""
        engine = IncrementalMapEngine(GridSpec(0.0, 0.0, 0.5, 6, 8))
        clone = copy.deepcopy(engine)
        for flat, grid in (
            (clone._obst_flat, clone._obst),
            (clone._vis_flat, clone._vis),
            (clone._covered_flat, clone._covered),
        ):
            assert flat.base is grid, "deepcopy severed the ravel() view"
            before = grid.flat[3]
            flat[3] = 1  # _covered is boolean; 1 is valid for every dtype
            assert grid.flat[3] == flat[3] == 1  # writes reach the 2-D grid
            flat[3] = before
        # And the clone is a copy, not an alias of the original.
        clone._vis_flat[0] = 99
        assert engine._vis.flat[0] != 99
