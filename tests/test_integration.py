"""Integration tests: short end-to-end runs across subsystems.

These exercise the same paths the benchmark harness uses, but bounded to
a few tasks so the suite stays fast.
"""

import pytest

from repro.camera import GALAXY_S7
from repro.core import TaskKind
from repro.eval import Workbench, run_guided_experiment
from repro.geometry import Vec2
from repro.mapping import render_ascii
from repro.venue import OfficeSpec, generate_office
from repro.simkit import RngStream


@pytest.fixture(scope="module")
def short_guided():
    bench = Workbench.for_library()
    result = run_guided_experiment(bench, max_tasks=8)
    return bench, result


class TestGuidedShortRun:
    def test_coverage_grows_from_bootstrap(self, short_guided):
        _bench, result = short_guided
        series = result.series
        assert len(series.samples) >= 3
        assert series.coverage_percents()[-1] > series.coverage_percents()[0]

    def test_task_locations_inside_site(self, short_guided):
        bench, result = short_guided
        for _kind, x, y in result.task_locations:
            # Tasks stay within the site bbox + small tolerance.
            assert -1.0 <= x <= 23.0
            assert -1.0 <= y <= 21.0

    def test_outcome_maps_renderable(self, short_guided):
        bench, result = short_guided
        art = render_ascii(result.final_maps, bench.ground_truth.region_mask)
        assert "#" in art and "." in art

    def test_photo_tasks_capture_45(self, short_guided):
        _bench, result = short_guided
        for record in result.run.photo_tasks:
            assert record.n_photos == 45

    def test_series_bounds_monotone_trend(self, short_guided):
        _bench, result = short_guided
        bounds = result.series.bounds_percents()
        assert bounds[-1] >= bounds[0] - 1.0


class TestCrossVenue:
    """The algorithms must work on venues they were not tuned for."""

    def test_pipeline_on_generated_office(self):
        office = generate_office(
            OfficeSpec(width_m=12.0, depth_m=9.0, glass_walls=1, n_furniture=4),
            RngStream(21, "office-int"),
        )
        bench = Workbench(office)
        pipeline = bench.make_pipeline()
        outcome = pipeline.process_batch(
            list(bench.capture.sweep(office.entrance + Vec2(0, 1.0), GALAXY_S7, 8.0, blur=0.0))
        )
        assert outcome.photos_added
        assert outcome.coverage_cells > 100
        assert len(outcome.new_tasks) <= 1

    def test_guided_campaign_on_office(self):
        office = generate_office(
            OfficeSpec(width_m=12.0, depth_m=9.0, glass_walls=1, n_furniture=4),
            RngStream(22, "office-int-2"),
        )
        bench = Workbench(office)
        pipeline = bench.make_pipeline()
        campaign = bench.make_guided_campaign(pipeline, n_participants=2)
        result = campaign.run(max_tasks=6)
        assert len(result.completed) >= 1
        # Coverage after the campaign beats the bootstrap alone.
        assert pipeline.coverage_cells >= result.bootstrap_outcome.coverage_cells


class TestDeterminism:
    def test_guided_run_reproducible(self):
        a = run_guided_experiment(Workbench.for_library(), max_tasks=4)
        b = run_guided_experiment(Workbench.for_library(), max_tasks=4)
        assert a.series.coverage_percents() == b.series.coverage_percents()
        assert a.task_locations == b.task_locations

    def test_different_seed_differs(self):
        from repro.config import paper_config

        a = run_guided_experiment(Workbench.for_library(), max_tasks=4)
        b = run_guided_experiment(
            Workbench.for_library(paper_config(seed=777)), max_tasks=4
        )
        assert a.task_locations != b.task_locations
