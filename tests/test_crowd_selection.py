"""Tests for participant selection and incentives (the paper's future work)."""

import pytest

from repro.camera import GALAXY_S7
from repro.crowd import Participant
from repro.crowd.selection import (
    BudgetGreedyPolicy,
    IncentiveLedger,
    NearestIdlePolicy,
    ParticipantSelector,
    RoundRobinPolicy,
    replay_task_locations,
)
from repro.errors import SimulationError
from repro.geometry import Vec2
from repro.simkit import RngStream


def cohort(n=3):
    return [Participant(f"p{i}", GALAXY_S7, steadiness=0.9) for i in range(n)]


def selector(policy, positions=None, budget=None, rates=(0.1, 0.1)):
    people = cohort(len(positions) if positions else 3)
    positions = positions or [Vec2(0, 0), Vec2(10, 0), Vec2(20, 0)]
    return ParticipantSelector(
        people,
        positions,
        policy,
        IncentiveLedger(base_reward=1.0, budget=budget),
        rng=None,
        rate_range=rates,
    )


class TestLedger:
    def test_quote_includes_travel(self):
        sel = selector(NearestIdlePolicy())
        state = sel.states[0]
        quote = sel.ledger.quote(state, Vec2(0, 10))
        assert quote == pytest.approx(1.0 + 0.1 * 10)

    def test_budget_enforced(self):
        sel = selector(NearestIdlePolicy(), budget=1.5)
        assigned = sel.assign(1, Vec2(0, 2))  # quote 1.2 <= 1.5
        assert assigned is not None
        sel.release(assigned)
        second = sel.assign(2, Vec2(0, 4))  # remaining 0.3 < any quote
        assert second is None
        report = sel.report()
        assert report.unassigned == 1

    def test_negative_reward_rejected(self):
        with pytest.raises(SimulationError):
            IncentiveLedger(base_reward=-1.0)


class TestPolicies:
    def test_nearest_picks_closest(self):
        sel = selector(NearestIdlePolicy())
        state = sel.assign(1, Vec2(19, 0))
        assert state is not None and state.name == "p2"

    def test_round_robin_cycles(self):
        sel = selector(RoundRobinPolicy())
        names = []
        for i in range(3):
            state = sel.assign(i, Vec2(5, 5))
            names.append(state.name)
            sel.release(state)
        assert names == ["p0", "p1", "p2"]

    def test_budget_greedy_picks_cheapest(self):
        people = cohort(2)
        positions = [Vec2(0, 0), Vec2(6, 0)]
        ledger = IncentiveLedger(base_reward=1.0)
        sel = ParticipantSelector(
            people, positions, BudgetGreedyPolicy(), ledger,
            rng=RngStream(4, "rates"), rate_range=(0.05, 0.4),
        )
        task = Vec2(3, 0)  # equidistant: the cheaper rate wins
        state = sel.assign(1, task)
        rates = {s.name: s.rate_per_meter for s in sel.states}
        assert state.name == min(rates, key=rates.get)

    def test_busy_participants_skipped(self):
        sel = selector(NearestIdlePolicy())
        first = sel.assign(1, Vec2(0, 1))
        second = sel.assign(2, Vec2(0, 1))  # p0 busy -> next closest
        assert first.name != second.name

    def test_all_busy_returns_none(self):
        sel = selector(NearestIdlePolicy(), positions=[Vec2(0, 0)])
        assert sel.assign(1, Vec2(1, 1)) is not None
        assert sel.assign(2, Vec2(1, 1)) is None


class TestReplay:
    def locations(self):
        return [Vec2(2, 2), Vec2(18, 1), Vec2(3, 8), Vec2(19, 9), Vec2(10, 5)]

    def test_nearest_beats_round_robin_on_distance(self):
        people = cohort(3)
        starts = [Vec2(0, 0), Vec2(10, 5), Vec2(20, 0)]
        rr = replay_task_locations(self.locations(), people, starts, RoundRobinPolicy())
        nearest = replay_task_locations(
            self.locations(), people, starts, NearestIdlePolicy()
        )
        assert nearest.total_distance_m < rr.total_distance_m
        assert nearest.assignments == rr.assignments == 5

    def test_budget_greedy_minimises_payment(self):
        people = cohort(3)
        starts = [Vec2(0, 0), Vec2(10, 5), Vec2(20, 0)]
        rng = RngStream(5, "rates")
        greedy = replay_task_locations(
            self.locations(), people, starts, BudgetGreedyPolicy(), rng=rng
        )
        rr = replay_task_locations(
            self.locations(), people, starts, RoundRobinPolicy(),
            rng=RngStream(5, "rates"),
        )
        assert greedy.total_paid <= rr.total_paid + 1e-9

    def test_report_accounting(self):
        people = cohort(2)
        starts = [Vec2(0, 0), Vec2(20, 0)]
        report = replay_task_locations(
            self.locations(), people, starts, NearestIdlePolicy()
        )
        assert sum(report.per_participant_tasks.values()) == report.assignments
        assert report.mean_distance_m > 0


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(SimulationError):
            ParticipantSelector(
                cohort(2), [Vec2(0, 0)], NearestIdlePolicy(), IncentiveLedger()
            )

    def test_empty_cohort(self):
        with pytest.raises(SimulationError):
            ParticipantSelector([], [], NearestIdlePolicy(), IncentiveLedger())
