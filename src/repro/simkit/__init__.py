"""Deterministic simulation substrate: RNG streams, event loop, network."""

from ..config import FaultConfig
from .events import EventToken, Simulator
from .network import Channel, Delivery, DuplexLink, FaultStats
from .rng import RngRegistry, RngStream

__all__ = [
    "Channel",
    "Delivery",
    "DuplexLink",
    "EventToken",
    "FaultConfig",
    "FaultStats",
    "RngRegistry",
    "RngStream",
    "Simulator",
]
