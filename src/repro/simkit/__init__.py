"""Deterministic simulation substrate: RNG streams, event loop, network."""

from .events import EventToken, Simulator
from .network import Channel, Delivery, DuplexLink
from .rng import RngRegistry, RngStream

__all__ = [
    "Channel",
    "Delivery",
    "DuplexLink",
    "EventToken",
    "RngRegistry",
    "RngStream",
    "Simulator",
]
