"""Deterministic random-number streams.

Reproducibility rule: every stochastic component (participant mobility,
feature detection, annotation noise, positioning error, ...) draws from its
own named child stream of one master seed. Adding a new component or
reordering calls inside one component never perturbs the draws seen by the
others, so experiment results are stable across refactors.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def _digest_seed(master_seed: int, name: str) -> int:
    """Stable 64-bit seed derived from (master_seed, name)."""
    payload = f"{master_seed}:{name}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class RngStream:
    """A named random stream backed by :class:`numpy.random.Generator`."""

    def __init__(self, master_seed: int, name: str):
        self._master_seed = master_seed
        self._name = name
        self._gen = np.random.default_rng(_digest_seed(master_seed, name))

    @property
    def name(self) -> str:
        return self._name

    def child(self, suffix: str) -> "RngStream":
        """Derive an independent sub-stream, e.g. per participant or task."""
        return RngStream(self._master_seed, f"{self._name}/{suffix}")

    # -- draws ------------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def normal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        return float(self._gen.normal(mean, sigma))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in [low, high)."""
        return int(self._gen.integers(low, high))

    def chance(self, probability: float) -> bool:
        """Bernoulli draw."""
        return bool(self._gen.random() < probability)

    def choice(self, options: Sequence[T]) -> T:
        if not options:
            raise ValueError("choice from empty sequence")
        return options[int(self._gen.integers(0, len(options)))]

    def weighted_choice(self, options: Sequence[T], weights: Sequence[float]) -> T:
        if len(options) != len(weights):
            raise ValueError("options and weights must align")
        w = np.asarray(weights, dtype=float)
        if w.sum() <= 0:
            raise ValueError("weights must sum to a positive value")
        idx = int(self._gen.choice(len(options), p=w / w.sum()))
        return options[idx]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._gen.shuffle(items)

    def sample_mask(self, n: int, probability: float) -> np.ndarray:
        """Boolean mask of length ``n`` with iid Bernoulli(probability)."""
        return self._gen.random(n) < probability

    def normal_array(self, shape, mean: float = 0.0, sigma: float = 1.0) -> np.ndarray:
        return self._gen.normal(mean, sigma, size=shape)

    def uniform_array(self, shape, low: float = 0.0, high: float = 1.0) -> np.ndarray:
        return self._gen.uniform(low, high, size=shape)

    def permutation(self, n: int) -> np.ndarray:
        return self._gen.permutation(n)


class RngRegistry:
    """Factory handing out named top-level streams for one master seed."""

    def __init__(self, master_seed: int):
        self._master_seed = master_seed
        self._handed_out: set = set()

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> RngStream:
        """Create the stream ``name``; names are tracked for diagnostics."""
        self._handed_out.add(name)
        return RngStream(self._master_seed, name)

    def stream_names(self) -> Iterator[str]:
        return iter(sorted(self._handed_out))
