"""Simulated network channel between mobile clients and the backend.

Models the two costs the paper's deployment pays when "the phone
simultaneously sends the captured images to a cloud server": a fixed
per-message latency and a bandwidth-limited transfer time proportional to
payload size. Delivery order on one channel is FIFO, matching TCP streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..config import NetworkConfig
from ..errors import SimulationError
from .events import Simulator

MessageHandler = Callable[[Any], None]


@dataclass(frozen=True)
class Delivery:
    """Bookkeeping record for one delivered message."""

    sent_at: float
    delivered_at: float
    size_mb: float
    label: str

    @property
    def transfer_time_s(self) -> float:
        return self.delivered_at - self.sent_at


class Channel:
    """One-directional FIFO channel with latency + bandwidth delays."""

    def __init__(
        self,
        simulator: Simulator,
        config: NetworkConfig,
        name: str = "channel",
    ):
        self._sim = simulator
        self._config = config
        self._name = name
        self._busy_until = 0.0
        self._deliveries: list = []

    @property
    def name(self) -> str:
        return self._name

    @property
    def deliveries(self) -> list:
        return list(self._deliveries)

    def transfer_time(self, size_mb: float) -> float:
        """Seconds to push ``size_mb`` through the configured bandwidth."""
        if size_mb < 0:
            raise SimulationError("negative payload size")
        return (size_mb * 8.0) / self._config.bandwidth_mbps

    def send(
        self,
        payload: Any,
        handler: MessageHandler,
        size_mb: float = 0.0,
        label: str = "msg",
    ) -> Delivery:
        """Send ``payload``; ``handler`` fires when delivery completes.

        Transfers are serialised: a message starts only after the channel
        finishes the previous one (FIFO), then takes latency + size/bw.
        """
        sent_at = self._sim.now
        start = max(sent_at, self._busy_until)
        delivered_at = start + self._config.latency_s + self.transfer_time(size_mb)
        self._busy_until = delivered_at
        record = Delivery(sent_at=sent_at, delivered_at=delivered_at, size_mb=size_mb, label=label)
        self._deliveries.append(record)
        self._sim.schedule_at(
            delivered_at, lambda: handler(payload), label=f"{self._name}:{label}"
        )
        return record

    def total_bytes_mb(self) -> float:
        return sum(d.size_mb for d in self._deliveries)


class DuplexLink:
    """A pair of channels modelling a client <-> server connection."""

    def __init__(self, simulator: Simulator, config: NetworkConfig, name: str = "link"):
        self.uplink = Channel(simulator, config, name=f"{name}:up")
        self.downlink = Channel(simulator, config, name=f"{name}:down")

    def total_traffic_mb(self) -> float:
        return self.uplink.total_bytes_mb() + self.downlink.total_bytes_mb()
