"""Simulated network channel between mobile clients and the backend.

Models the two costs the paper's deployment pays when "the phone
simultaneously sends the captured images to a cloud server": a fixed
per-message latency and a bandwidth-limited transfer time proportional to
payload size. Delivery order on one channel is FIFO, matching TCP streams.

On top of the lossless model, a :class:`~repro.config.FaultConfig` turns
the channel into the network the paper actually deployed on (phones over
Wi-Fi, Sec. III): messages can be dropped, duplicated, delayed by jitter,
or lost wholesale during client disconnect windows. All fault draws come
from a seeded :class:`~repro.simkit.rng.RngStream`, so fault patterns are
deterministic, and a disabled ``FaultConfig`` leaves the channel
byte-for-byte identical to the lossless model (no RNG draws, no extra
events). Jitter is applied after the airtime model, so heavily jittered
messages may arrive out of order — the protocol layer above must (and
does) tolerate reordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..config import FaultConfig, NetworkConfig
from ..errors import SimulationError
from .events import Simulator
from .rng import RngStream

MessageHandler = Callable[[Any], None]

#: Delivery status labels.
DELIVERED = "delivered"
DROPPED = "dropped"
DROPPED_DISCONNECT = "dropped-disconnect"
DUPLICATE = "duplicate"


@dataclass(frozen=True)
class Delivery:
    """Bookkeeping record for one transmitted message (or copy of one)."""

    sent_at: float
    delivered_at: float
    size_mb: float
    label: str
    status: str = DELIVERED

    @property
    def transfer_time_s(self) -> float:
        return self.delivered_at - self.sent_at

    @property
    def delivered(self) -> bool:
        return self.status in (DELIVERED, DUPLICATE)


@dataclass
class FaultStats:
    """Per-channel fault-injection counters."""

    dropped: int = 0
    dropped_disconnect: int = 0
    duplicated: int = 0
    jittered: int = 0

    @property
    def total_lost(self) -> int:
        return self.dropped + self.dropped_disconnect


class Channel:
    """One-directional FIFO channel with latency + bandwidth delays.

    With ``config.faults`` enabled the channel additionally injects
    seeded faults; ``rng`` is then mandatory so runs stay reproducible.
    """

    def __init__(
        self,
        simulator: Simulator,
        config: NetworkConfig,
        name: str = "channel",
        rng: Optional[RngStream] = None,
    ):
        self._sim = simulator
        self._config = config
        self._faults: FaultConfig = config.faults
        if self._faults.enabled and rng is None:
            raise SimulationError(
                f"channel {name!r} has fault injection enabled but no RNG stream"
            )
        self._rng = rng
        self._name = name
        self._busy_until = 0.0
        self._deliveries: List[Delivery] = []
        self.fault_stats = FaultStats()
        # Telemetry rides on the simulator's bundle; handles resolved once.
        obs = simulator.telemetry
        self._tracer = obs.tracer
        metrics = obs.metrics
        self._m_messages = metrics.counter("repro.net.messages")
        self._m_traffic = metrics.counter("repro.net.traffic_mb")
        self._m_dropped = metrics.counter("repro.net.dropped")
        self._m_dropped_disconnect = metrics.counter("repro.net.dropped_disconnect")
        self._m_duplicated = metrics.counter("repro.net.duplicated")
        self._m_jittered = metrics.counter("repro.net.jittered")
        self._h_transfer = metrics.histogram("repro.net.transfer_s")

    def _trace_transfer(
        self, label: str, sent_at: float, delivered_at: float, size_mb: float, status: str
    ) -> None:
        """One ``net`` span per copy on the air (sim interval = airtime)."""
        if self._tracer.enabled:
            self._tracer.record(
                f"net.{label}",
                sent_at,
                delivered_at,
                category="net",
                channel=self._name,
                size_mb=size_mb,
                status=status,
            )

    @property
    def name(self) -> str:
        return self._name

    @property
    def deliveries(self) -> List[Delivery]:
        return list(self._deliveries)

    def transfer_time(self, size_mb: float) -> float:
        """Seconds to push ``size_mb`` through the configured bandwidth."""
        if size_mb < 0:
            raise SimulationError("negative payload size")
        if self._config.bandwidth_mbps <= 0:
            raise SimulationError(
                f"channel {self._name!r} has non-positive bandwidth "
                f"({self._config.bandwidth_mbps} Mbps)"
            )
        return (size_mb * 8.0) / self._config.bandwidth_mbps

    def send(
        self,
        payload: Any,
        handler: MessageHandler,
        size_mb: float = 0.0,
        label: str = "msg",
    ) -> Delivery:
        """Send ``payload``; ``handler`` fires when delivery completes.

        Transfers are serialised: a message starts only after the channel
        finishes the previous one (FIFO), then takes latency + size/bw.
        Under fault injection the message may instead be lost (recorded
        with a ``dropped`` status, handler never fires), duplicated
        (handler fires twice), or delayed by jitter.
        """
        sent_at = self._sim.now
        transfer = self.transfer_time(size_mb)
        self._m_messages.inc()
        self._m_traffic.inc(size_mb)

        if self._faults.enabled:
            return self._send_with_faults(payload, handler, size_mb, label, sent_at, transfer)

        start = max(sent_at, self._busy_until)
        delivered_at = start + self._config.latency_s + transfer
        self._busy_until = delivered_at
        record = Delivery(sent_at=sent_at, delivered_at=delivered_at, size_mb=size_mb, label=label)
        self._deliveries.append(record)
        self._h_transfer.record(delivered_at - sent_at)
        self._trace_transfer(label, sent_at, delivered_at, size_mb, DELIVERED)
        self._sim.schedule_at(
            delivered_at, lambda: handler(payload), label=f"{self._name}:{label}"
        )
        return record

    # -- fault injection ----------------------------------------------------------

    def _send_with_faults(
        self,
        payload: Any,
        handler: MessageHandler,
        size_mb: float,
        label: str,
        sent_at: float,
        transfer: float,
    ) -> Delivery:
        faults = self._faults
        rng = self._rng
        assert rng is not None  # enforced in __init__

        if faults.in_disconnect(sent_at):
            # The radio is off: the message never makes it onto the air.
            self.fault_stats.dropped_disconnect += 1
            self._m_dropped_disconnect.inc()
            record = Delivery(
                sent_at=sent_at,
                delivered_at=sent_at,
                size_mb=size_mb,
                label=label,
                status=DROPPED_DISCONNECT,
            )
            self._deliveries.append(record)
            self._trace_transfer(label, sent_at, sent_at, size_mb, DROPPED_DISCONNECT)
            return record

        # Airtime is consumed whether or not the network then loses the
        # message: the sender transmitted the bytes either way.
        start = max(sent_at, self._busy_until)
        arrival = start + self._config.latency_s + transfer
        self._busy_until = arrival

        if faults.drop_probability > 0 and rng.chance(faults.drop_probability):
            self.fault_stats.dropped += 1
            self._m_dropped.inc()
            record = Delivery(
                sent_at=sent_at,
                delivered_at=arrival,
                size_mb=size_mb,
                label=label,
                status=DROPPED,
            )
            self._deliveries.append(record)
            self._trace_transfer(label, sent_at, arrival, size_mb, DROPPED)
            return record

        jitter = 0.0
        if faults.jitter_s > 0:
            jitter = rng.uniform(0.0, faults.jitter_s)
            if jitter > 0:
                self.fault_stats.jittered += 1
                self._m_jittered.inc()
        delivered_at = arrival + jitter
        record = Delivery(
            sent_at=sent_at, delivered_at=delivered_at, size_mb=size_mb, label=label
        )
        self._deliveries.append(record)
        self._h_transfer.record(delivered_at - sent_at)
        self._trace_transfer(label, sent_at, delivered_at, size_mb, DELIVERED)
        self._sim.schedule_at(
            delivered_at, lambda: handler(payload), label=f"{self._name}:{label}"
        )

        if faults.duplicate_probability > 0 and rng.chance(faults.duplicate_probability):
            # A lower layer retransmitted: a second copy arrives after an
            # extra latency (+ independent jitter) — and consumes traffic.
            self.fault_stats.duplicated += 1
            self._m_duplicated.inc()
            self._m_traffic.inc(size_mb)
            extra = self._config.latency_s
            if faults.jitter_s > 0:
                extra += rng.uniform(0.0, faults.jitter_s)
            dup_at = delivered_at + extra
            dup_record = Delivery(
                sent_at=sent_at,
                delivered_at=dup_at,
                size_mb=size_mb,
                label=label,
                status=DUPLICATE,
            )
            self._deliveries.append(dup_record)
            self._trace_transfer(label, sent_at, dup_at, size_mb, DUPLICATE)
            self._sim.schedule_at(
                dup_at, lambda: handler(payload), label=f"{self._name}:{label}:dup"
            )
        return record

    def total_bytes_mb(self) -> float:
        """All bytes that crossed the air, including lost and duplicate copies."""
        return sum(d.size_mb for d in self._deliveries)


class DuplexLink:
    """A pair of channels modelling a client <-> server connection."""

    def __init__(
        self,
        simulator: Simulator,
        config: NetworkConfig,
        name: str = "link",
        rng: Optional[RngStream] = None,
    ):
        up_rng = rng.child("up") if rng is not None else None
        down_rng = rng.child("down") if rng is not None else None
        self.uplink = Channel(simulator, config, name=f"{name}:up", rng=up_rng)
        self.downlink = Channel(simulator, config, name=f"{name}:down", rng=down_rng)

    def total_traffic_mb(self) -> float:
        return self.uplink.total_bytes_mb() + self.downlink.total_bytes_mb()

    @property
    def messages_lost(self) -> int:
        return self.uplink.fault_stats.total_lost + self.downlink.fault_stats.total_lost

    @property
    def messages_duplicated(self) -> int:
        return self.uplink.fault_stats.duplicated + self.downlink.fault_stats.duplicated
