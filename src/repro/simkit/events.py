"""A small discrete-event simulation kernel.

SnapTask is a distributed system: mobile clients upload photo batches over
a network, the backend processes them and issues new tasks. The kernel here
gives those interactions explicit simulated time — upload durations,
processing delays and task round-trips are all events on one queue — so the
server/client layer can be tested deterministically and the benchmarks can
report end-to-end latencies.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..errors import SimulationError

EventHandler = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    label: str = field(compare=False)
    handler: EventHandler = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)


class EventToken:
    """Handle to a scheduled event allowing cancellation."""

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def executed(self) -> bool:
        return self._event.executed

    @property
    def active(self) -> bool:
        """True while the event is still pending (not run, not cancelled).

        Retry timers use this to distinguish "the timeout is still armed"
        from "it already fired / was ACK-cancelled" without extra state.
        """
        return not self._event.cancelled and not self._event.executed

    def cancel(self) -> None:
        self._event.cancelled = True


class Simulator:
    """Single-threaded discrete-event loop with deterministic ordering.

    Events at equal timestamps run in scheduling order (FIFO), which keeps
    runs reproducible without relying on handler side effects.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._trace: List[str] = []
        self._tracing = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    def enable_tracing(self) -> None:
        """Record executed event labels (for tests and debugging)."""
        self._tracing = True

    @property
    def trace(self) -> List[str]:
        return list(self._trace)

    def schedule(self, delay: float, handler: EventHandler, label: str = "") -> EventToken:
        """Schedule ``handler`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _ScheduledEvent(
            time=self._now + delay,
            sequence=next(self._sequence),
            label=label,
            handler=handler,
        )
        heapq.heappush(self._queue, event)
        return EventToken(event)

    def schedule_at(self, time: float, handler: EventHandler, label: str = "") -> EventToken:
        """Schedule ``handler`` at an absolute simulated time."""
        return self.schedule(time - self._now, handler, label)

    def step(self) -> bool:
        """Run the next pending event. Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now - 1e-12:
                raise SimulationError("event queue time went backwards")
            self._now = event.time
            self._processed += 1
            event.executed = True
            if self._tracing:
                self._trace.append(f"{event.time:.6f}:{event.label}")
            event.handler()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        ``max_events`` guards against accidental infinite event loops.
        """
        executed = 0
        while self._queue:
            next_time = self._peek_time()
            if until is not None and next_time is not None and next_time > until:
                self._now = until
                return
            if not self.step():
                # The queue held only cancelled events; fall through so the
                # clock still advances to ``until`` like a normal drain.
                break
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"simulation exceeded max_events={max_events}; likely an event loop"
                )
        if until is not None and until > self._now:
            self._now = until

    def _peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)
