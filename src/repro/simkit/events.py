"""A small discrete-event simulation kernel.

SnapTask is a distributed system: mobile clients upload photo batches over
a network, the backend processes them and issues new tasks. The kernel here
gives those interactions explicit simulated time — upload durations,
processing delays and task round-trips are all events on one queue — so the
server/client layer can be tested deterministically and the benchmarks can
report end-to-end latencies.

Observability (DESIGN.md "Observability"): a :class:`~repro.obs.Telemetry`
bundle passed at construction instruments the kernel itself —

* every dispatched event becomes a ``sim.event`` span keyed by simulated
  time (ring-buffered, bounded);
* **span context propagates across event-queue hops**: :meth:`schedule`
  captures the ambient span, :meth:`step` re-activates it around the
  handler, so spans opened inside a handler parent correctly even when
  the work continues several events later;
* counters ``repro.sim.events.dispatched`` / ``repro.sim.events.cancelled``
  and the ``repro.sim.queue.depth`` gauge account for every event — a
  cancelled event is counted, never silently skipped.

Telemetry is inert: it schedules no events, draws no RNG, and never
changes ``now``/``processed_events`` — campaign outputs are byte-for-byte
identical with tracing on or off (pinned by the differential test).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SimulationError
from ..obs import NULL_TELEMETRY, Telemetry
from ..obs.tracing import Tracer

EventHandler = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    label: str = field(compare=False)
    handler: EventHandler = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)
    #: Span context captured at schedule time (cross-hop propagation).
    ctx: Optional[int] = field(default=None, compare=False)


class EventToken:
    """Handle to a scheduled event allowing cancellation."""

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def executed(self) -> bool:
        return self._event.executed

    @property
    def active(self) -> bool:
        """True while the event is still pending (not run, not cancelled).

        Retry timers use this to distinguish "the timeout is still armed"
        from "it already fired / was ACK-cancelled" without extra state.
        """
        return not self._event.cancelled and not self._event.executed

    def cancel(self) -> None:
        self._event.cancelled = True


#: Default ring capacity for the legacy ``enable_tracing`` shim.
LEGACY_TRACE_CAPACITY = 4096


class Simulator:
    """Single-threaded discrete-event loop with deterministic ordering.

    Events at equal timestamps run in scheduling order (FIFO), which keeps
    runs reproducible without relying on handler side effects.
    """

    def __init__(self, start_time: float = 0.0, telemetry: Optional[Telemetry] = None):
        self._now = start_time
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._obs = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Post-dispatch probes (DST invariant checking). Probes run
        #: synchronously after every executed event; they must be pure
        #: observers — never schedule events, draw RNG, or mutate sim
        #: state — so an attached probe cannot perturb the run it checks.
        self._probes: List[Callable[[EventToken], None]] = []
        self._bind_telemetry()

    def _bind_telemetry(self) -> None:
        self._tracer = self._obs.tracer
        if self._tracer.enabled:
            self._tracer.bind_clock(lambda: self._now)
        metrics = self._obs.metrics
        self._m_dispatched = metrics.counter("repro.sim.events.dispatched")
        self._m_cancelled = metrics.counter("repro.sim.events.cancelled")
        self._g_depth = metrics.gauge("repro.sim.queue.depth")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def telemetry(self) -> Telemetry:
        """The telemetry bundle shared by everything on this event loop."""
        return self._obs

    @property
    def tracer(self):
        return self._obs.tracer

    @property
    def metrics(self):
        return self._obs.metrics

    def enable_tracing(self, capacity: int = LEGACY_TRACE_CAPACITY) -> None:
        """Record executed event labels (deprecated shim).

        .. deprecated:: PR 3
            Construct the simulator with ``Telemetry.enable()`` and read
            structured ``sim.event`` spans from ``sim.tracer`` instead.
            This shim installs a real tracer whose span ring is bounded
            at ``capacity`` (the old ``List[str]`` grew without bound).
        """
        if not self._tracer.enabled:
            self._obs = Telemetry(
                tracer=Tracer(capacity=capacity), metrics=self._obs.metrics
            )
            self._bind_telemetry()

    @property
    def trace(self) -> List[str]:
        """Executed event labels, ``"<time>:<label>"`` (deprecated shim).

        Formats the structured ``sim.event`` spans the tracer ring still
        holds; prefer ``sim.tracer.spans(category="sim.event")``.
        """
        return [
            f"{span.start_sim_s:.6f}:{span.name}"
            for span in self._tracer.spans(category="sim.event")
        ]

    def add_probe(self, probe: Callable[[EventToken], None]) -> None:
        """Attach a post-dispatch observer (see ``_probes`` contract).

        The probe receives the :class:`EventToken` of the event that just
        ran. Probes are the simulation-testing hook: the DST invariant
        registry (``repro.testkit``) attaches one to check system
        invariants *during* the run, between events, when every subsystem
        is in a quiescent state.
        """
        self._probes.append(probe)

    def remove_probe(self, probe: Callable[[EventToken], None]) -> None:
        """Detach a previously added probe (no-op if absent)."""
        if probe in self._probes:
            self._probes.remove(probe)

    def schedule(self, delay: float, handler: EventHandler, label: str = "") -> EventToken:
        """Schedule ``handler`` to run ``delay`` seconds from now.

        When tracing is enabled the ambient span context is captured into
        the event, so spans created by ``handler`` parent to the span
        that was active *here*, across the queue hop.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _ScheduledEvent(
            time=self._now + delay,
            sequence=next(self._sequence),
            label=label,
            handler=handler,
            ctx=self._tracer.capture() if self._tracer.enabled else None,
        )
        heapq.heappush(self._queue, event)
        return EventToken(event)

    def schedule_at(self, time: float, handler: EventHandler, label: str = "") -> EventToken:
        """Schedule ``handler`` at an absolute simulated time."""
        return self.schedule(time - self._now, handler, label)

    def step(self) -> bool:
        """Run the next pending event. Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                # Visible, not silent: cancelled events are accounted.
                self._m_cancelled.inc()
                continue
            if event.time < self._now - 1e-12:
                raise SimulationError("event queue time went backwards")
            self._now = event.time
            self._processed += 1
            event.executed = True
            self._m_dispatched.inc()
            self._g_depth.set(len(self._queue))
            tracer = self._tracer
            if tracer.enabled:
                tracer.counter("repro.sim.queue.depth", len(self._queue))
                span = tracer.begin(event.label, category="sim.event", parent=event.ctx)
                with tracer.activate(span.span_id):
                    event.handler()
                span.end()
            else:
                event.handler()
            if self._probes:
                token = EventToken(event)
                for probe in self._probes:
                    probe(token)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        ``max_events`` guards against accidental infinite event loops.
        """
        executed = 0
        while self._queue:
            next_time = self._peek_time()
            if until is not None and next_time is not None and next_time > until:
                self._now = until
                return
            if not self.step():
                # The queue held only cancelled events; fall through so the
                # clock still advances to ``until`` like a normal drain.
                break
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"simulation exceeded max_events={max_events}; likely an event loop"
                )
        if until is not None and until > self._now:
            self._now = until

    def _peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._m_cancelled.inc()
        return self._queue[0].time if self._queue else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)
