"""Indoor positioning and navigation substrate."""

from .localization import ImageLocalizer, PositionFix
from .navigation import DEFAULT_WALK_SPEED, NavigationOutcome, Navigator
from .pathfinding import PathPlanner

__all__ = [
    "DEFAULT_WALK_SPEED",
    "ImageLocalizer",
    "NavigationOutcome",
    "Navigator",
    "PathPlanner",
    "PositionFix",
]
