"""AR navigation to task locations.

"If the participant confirms the task, the mobile client will receive
navigation instructions from the backend server, and will guide the
participant to the destination in an Augmented Reality (AR) mode"
(Sec. III). The simulator plans the walk with A* and applies the
positioning error model at arrival; the walk itself is returned as a
timed trajectory so the client/server layer can simulate travel time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import SimulationError
from ..geometry import Vec2
from ..simkit.rng import RngStream
from ..venue.model import Venue
from .localization import ImageLocalizer
from .pathfinding import PathPlanner

#: Typical indoor walking speed, m/s.
DEFAULT_WALK_SPEED = 1.2


@dataclass(frozen=True)
class NavigationOutcome:
    """Result of navigating one participant to a task location."""

    requested: Vec2
    arrived: Vec2
    path: Tuple[Vec2, ...]
    walk_time_s: float

    @property
    def arrival_error_m(self) -> float:
        return self.requested.distance_to(self.arrived)

    @property
    def path_length_m(self) -> float:
        return PathPlanner.path_length(list(self.path))


class Navigator:
    """Plans walks and applies arrival positioning error."""

    def __init__(
        self,
        venue: Venue,
        planner: PathPlanner,
        localizer: ImageLocalizer,
        rng: RngStream,
        walk_speed_mps: float = DEFAULT_WALK_SPEED,
    ):
        self._venue = venue
        self._planner = planner
        self._localizer = localizer
        self._rng = rng
        self._walk_speed = walk_speed_mps
        self._trip_count = 0

    def navigate(self, start: Vec2, destination: Vec2) -> NavigationOutcome:
        """Walk from ``start`` towards ``destination``.

        The destination may be non-traversable (the task generator may
        place it "inside an actual undiscovered obstacle"); the participant
        then stops as close as possible. Arrival adds the localization
        error, re-projected to traversable space.
        """
        self._trip_count += 1
        target = self._venue.nearest_traversable(destination)
        perturbed = self._localizer.perturb_destination(target, f"trip-{self._trip_count}")
        arrived = self._venue.nearest_traversable(perturbed)

        path = self._planner.plan(start, arrived)
        if path is None:
            raise SimulationError(
                f"no walkable path from {start} to {arrived} in {self._venue.name}"
            )
        walk_time = PathPlanner.path_length(path) / self._walk_speed
        return NavigationOutcome(
            requested=destination,
            arrived=arrived,
            path=tuple(path),
            walk_time_s=walk_time,
        )
