"""Grid A* pathfinding for simulated participants.

Participants walk real corridors: opportunistic walkers follow their daily
routes, guided participants follow the AR navigation of the paper's SeeNav
module to reach task locations. Both need collision-free paths through the
venue, which this module plans on the ground-truth traversability grid.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..geometry import Vec2
from ..mapping.grid import GridSpec

# 8-connected moves with costs.
_MOVES = (
    (1, 0, 1.0),
    (-1, 0, 1.0),
    (0, 1, 1.0),
    (0, -1, 1.0),
    (1, 1, math.sqrt(2)),
    (1, -1, math.sqrt(2)),
    (-1, 1, math.sqrt(2)),
    (-1, -1, math.sqrt(2)),
)


class PathPlanner:
    """A* over a boolean traversability grid."""

    def __init__(self, spec: GridSpec, traversable: np.ndarray):
        if traversable.shape != spec.shape:
            raise SimulationError("traversability mask does not match grid spec")
        self._spec = spec
        self._traversable = traversable

    @property
    def spec(self) -> GridSpec:
        return self._spec

    def is_traversable_cell(self, row: int, col: int) -> bool:
        return self._spec.in_bounds(row, col) and bool(self._traversable[row, col])

    def nearest_traversable_cell(
        self, p: Vec2, max_radius_cells: int = 40
    ) -> Optional[Tuple[int, int]]:
        """Closest traversable cell to a world point (ring search)."""
        start = self._spec.cell_of(p)
        if start is None:
            start = (
                min(max(0, int((p.y - self._spec.origin_y) / self._spec.cell_size_m)), self._spec.n_rows - 1),
                min(max(0, int((p.x - self._spec.origin_x) / self._spec.cell_size_m)), self._spec.n_cols - 1),
            )
        if self.is_traversable_cell(*start):
            return start
        for radius in range(1, max_radius_cells + 1):
            for dr in range(-radius, radius + 1):
                for dc in (-radius, radius):
                    for cell in ((start[0] + dr, start[1] + dc), (start[0] + dc, start[1] + dr)):
                        if self.is_traversable_cell(*cell):
                            return cell
        return None

    def plan_cells(
        self, start: Tuple[int, int], goal: Tuple[int, int]
    ) -> Optional[List[Tuple[int, int]]]:
        """A* path between two traversable cells (inclusive), or None."""
        if not self.is_traversable_cell(*start) or not self.is_traversable_cell(*goal):
            return None
        if start == goal:
            return [start]

        def heuristic(cell: Tuple[int, int]) -> float:
            return math.hypot(cell[0] - goal[0], cell[1] - goal[1])

        open_heap: List[Tuple[float, int, Tuple[int, int]]] = []
        heapq.heappush(open_heap, (heuristic(start), 0, start))
        g_score: Dict[Tuple[int, int], float] = {start: 0.0}
        came_from: Dict[Tuple[int, int], Tuple[int, int]] = {}
        counter = 1
        closed = set()
        while open_heap:
            _f, _c, current = heapq.heappop(open_heap)
            if current in closed:
                continue
            if current == goal:
                return self._rebuild(came_from, current)
            closed.add(current)
            for dr, dc, cost in _MOVES:
                neighbour = (current[0] + dr, current[1] + dc)
                if not self.is_traversable_cell(*neighbour):
                    continue
                # Forbid diagonal corner cutting.
                if dr and dc:
                    if not (
                        self.is_traversable_cell(current[0] + dr, current[1])
                        and self.is_traversable_cell(current[0], current[1] + dc)
                    ):
                        continue
                tentative = g_score[current] + cost
                if tentative < g_score.get(neighbour, math.inf):
                    g_score[neighbour] = tentative
                    came_from[neighbour] = current
                    heapq.heappush(
                        open_heap, (tentative + heuristic(neighbour), counter, neighbour)
                    )
                    counter += 1
        return None

    def plan(self, start: Vec2, goal: Vec2) -> Optional[List[Vec2]]:
        """World-coordinate path between two points (snapped to cells)."""
        start_cell = self.nearest_traversable_cell(start)
        goal_cell = self.nearest_traversable_cell(goal)
        if start_cell is None or goal_cell is None:
            return None
        cells = self.plan_cells(start_cell, goal_cell)
        if cells is None:
            return None
        return [self._spec.center_of(*cell) for cell in cells]

    @staticmethod
    def path_length(path: List[Vec2]) -> float:
        return sum(path[i].distance_to(path[i + 1]) for i in range(len(path) - 1))

    @staticmethod
    def _rebuild(
        came_from: Dict[Tuple[int, int], Tuple[int, int]], current: Tuple[int, int]
    ) -> List[Tuple[int, int]]:
        path = [current]
        while current in came_from:
            current = came_from[current]
            path.append(current)
        path.reverse()
        return path
