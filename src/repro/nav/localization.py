"""Image-based indoor positioning (error model).

"With SfM-based 3D models, the system can identify user's current position
based on an image taken from where the user is. The localization is
implemented based on image feature matching" (Sec. III, reusing the
authors' iMoon/SeeNav work) — and crucially for the evaluation, "the user
reaches task location using our indoor positioning system that has up to
1 meter positioning error" (Sec. V-B3).

The simulator models the *outcome*: a position fix succeeds when the query
photo shares enough features with the current model, and carries a bounded
error. Fix error is uniform in a disc of the configured radius, matching
the paper's "up to 1 meter" phrasing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set

from ..camera.photo import Photo
from ..config import NavigationConfig
from ..geometry import Vec2
from ..simkit.rng import RngStream


@dataclass(frozen=True)
class PositionFix:
    """One localization answer."""

    position: Vec2
    error_m: float
    n_matches: int


class ImageLocalizer:
    """Feature-matching localization against the current SfM model."""

    def __init__(self, config: NavigationConfig, rng: RngStream):
        self._config = config
        self._rng = rng
        self._query_count = 0

    @property
    def query_count(self) -> int:
        return self._query_count

    def restore_query_count(self, count: int) -> None:
        """Reset the query counter during WAL replay.

        The error draws are keyed by absolute query count (the stream
        itself never advances), so the counter is the localizer's entire
        durable state — restoring it makes replayed fixes identical.
        """
        self._query_count = int(count)

    def locate(self, photo: Photo, model_feature_ids: Set[int]) -> Optional[PositionFix]:
        """Localize a query photo; None when too few features match.

        ``model_feature_ids`` is the id set of points in the current model
        (what real feature matching would match against).
        """
        self._query_count += 1
        matches = sum(1 for fid in photo.feature_id_set() if fid in model_feature_ids)
        if matches < self._config.localization_min_matches:
            return None
        error_pos = self._error_offset(f"fix-{self._query_count}")
        return PositionFix(
            position=photo.true_pose.position + error_pos,
            error_m=error_pos.norm(),
            n_matches=matches,
        )

    def perturb_destination(self, destination: Vec2, key: str) -> Vec2:
        """Where a participant actually ends up when walking to a target.

        Applies the same bounded positioning error without requiring a
        query photo — used by the guided collector for task navigation.
        """
        return destination + self._error_offset(key)

    def _error_offset(self, key: str) -> Vec2:
        rng = self._rng.child(key)
        radius = self._config.positioning_error_m * math.sqrt(rng.uniform(0.0, 1.0))
        angle = rng.uniform(0.0, 2.0 * math.pi)
        return Vec2.from_angle(angle, radius)
