"""Small, explicit 2-D / 3-D vector types.

The mapping and SfM simulators do most heavy lifting in numpy, but the
venue/camera layers are far more readable with named vector types. These
are intentionally tiny immutable dataclasses with only the operations the
library needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import GeometryError


@dataclass(frozen=True)
class Vec2:
    """Immutable 2-D vector / point in venue floor coordinates (metres)."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        if scalar == 0:
            raise GeometryError("division of Vec2 by zero")
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def dot(self, other: "Vec2") -> float:
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        n = self.norm()
        if n == 0:
            raise GeometryError("cannot normalize the zero vector")
        return Vec2(self.x / n, self.y / n)

    def perpendicular(self) -> "Vec2":
        """Counter-clockwise perpendicular."""
        return Vec2(-self.y, self.x)

    def angle(self) -> float:
        """Angle from the +x axis, in radians, in (-pi, pi]."""
        return math.atan2(self.y, self.x)

    def rotated(self, angle_rad: float) -> "Vec2":
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        return Vec2(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)

    @staticmethod
    def from_angle(angle_rad: float, length: float = 1.0) -> "Vec2":
        return Vec2(math.cos(angle_rad) * length, math.sin(angle_rad) * length)


@dataclass(frozen=True)
class Vec3:
    """Immutable 3-D vector / point. z is height above the floor (metres)."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def norm(self) -> float:
        return math.sqrt(self.dot(self))

    def distance_to(self, other: "Vec3") -> float:
        return (self - other).norm()

    def floor(self) -> Vec2:
        """Projection onto the floor plane (drop z)."""
        return Vec2(self.x, self.y)

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.x, self.y, self.z)

    @staticmethod
    def from_floor(p: Vec2, z: float = 0.0) -> "Vec3":
        return Vec3(p.x, p.y, z)


def angle_difference(a: float, b: float) -> float:
    """Smallest signed difference a-b wrapped into (-pi, pi]."""
    d = (a - b) % (2.0 * math.pi)
    if d > math.pi:
        d -= 2.0 * math.pi
    return d
