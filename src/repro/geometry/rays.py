"""Raycasting against collections of 2-D segments.

Occlusion is the performance-critical geometric query: every simulated
photo must test hundreds of candidate feature points against all opaque
surfaces. :class:`SegmentSoup` stores segments in numpy arrays and answers
batched visibility queries with broadcasting instead of per-segment Python
loops.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from .segments import Segment
from .vec import Vec2

_EPS = 1e-9


class SegmentSoup:
    """An immutable batch of segments supporting vectorised ray queries.

    Segments may carry a vertical extent (``heights`` = (base_z, top_z)
    pairs): a sight line then only counts as blocked when it crosses the
    segment *within* that extent — a camera looks over a 0.75 m table but
    not over a 2.7 m wall. Without heights, segments block at any height.
    """

    def __init__(
        self,
        segments: Sequence[Segment],
        heights: Optional[Sequence[Tuple[float, float]]] = None,
    ):
        self._segments: Tuple[Segment, ...] = tuple(segments)
        n = len(self._segments)
        self._ax = np.array([s.a.x for s in self._segments], dtype=float)
        self._ay = np.array([s.a.y for s in self._segments], dtype=float)
        self._dx = np.array([s.b.x - s.a.x for s in self._segments], dtype=float)
        self._dy = np.array([s.b.y - s.a.y for s in self._segments], dtype=float)
        self._n = n
        if heights is not None:
            if len(heights) != n:
                raise GeometryError("heights must align with segments")
            self._base_z = np.array([h[0] for h in heights], dtype=float)
            self._top_z = np.array([h[1] for h in heights], dtype=float)
        else:
            self._base_z = np.full(n, -np.inf)
            self._top_z = np.full(n, np.inf)

    def __len__(self) -> int:
        return self._n

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return self._segments

    def visible(
        self,
        origin: Vec2,
        targets: np.ndarray,
        target_margin: float = 1e-6,
        origin_z: Optional[float] = None,
        target_z: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Boolean mask: which ``targets`` are visible from ``origin``.

        ``targets`` is an (N, 2) array of floor points. A target is visible
        when no segment in the soup intersects the open ray strictly between
        origin and the target. ``target_margin`` shrinks the ray slightly at
        the target end so a point lying *on* a surface is not occluded by
        its own surface.

        When ``origin_z`` and ``target_z`` (shape (N,)) are given, the
        sight line is treated as 3-D: a crossing only blocks if the line's
        height at the crossing lies within the segment's vertical extent.
        """
        targets = np.asarray(targets, dtype=float)
        if targets.ndim != 2 or targets.shape[1] != 2:
            raise GeometryError("targets must be an (N, 2) array")
        n_targets = targets.shape[0]
        if n_targets == 0:
            return np.zeros(0, dtype=bool)
        if self._n == 0:
            return np.ones(n_targets, dtype=bool)

        ox, oy = origin.x, origin.y
        rx = targets[:, 0] - ox  # (N,)
        ry = targets[:, 1] - oy

        # Ray: origin + t * r, t in [0, 1). Segment j: a_j + u * d_j, u in [0, 1].
        # Solve r x d != 0 case with broadcasting: shape (N, M).
        denom = rx[:, None] * self._dy[None, :] - ry[:, None] * self._dx[None, :]
        qpx = self._ax[None, :] - ox
        qpy = self._ay[None, :] - oy
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (qpx * self._dy[None, :] - qpy * self._dx[None, :]) / denom
            u = (qpx * ry[:, None] - qpy * rx[:, None]) / denom

        dist = np.hypot(rx, ry)
        # Stop slightly before the target so surface-mounted points survive.
        t_max = np.where(dist > 0, 1.0 - np.maximum(target_margin / np.maximum(dist, _EPS), _EPS), 0.0)
        hits = (
            (np.abs(denom) > _EPS)
            & (t > _EPS)
            & (t < t_max[:, None])
            & (u >= -_EPS)
            & (u <= 1.0 + _EPS)
        )
        if origin_z is not None and target_z is not None:
            target_z = np.asarray(target_z, dtype=float)
            if target_z.shape[0] != n_targets:
                raise GeometryError("target_z must align with targets")
            # Height of the sight line at each crossing: (N, M).
            z_at = origin_z + (target_z[:, None] - origin_z) * t
            in_extent = (z_at >= self._base_z[None, :]) & (z_at <= self._top_z[None, :])
            hits &= in_extent
        return ~hits.any(axis=1)

    def first_hit(self, origin: Vec2, direction: Vec2, max_range: float) -> Optional[Tuple[float, int]]:
        """Closest segment hit by the ray, as (distance, segment index).

        Returns None if nothing is hit within ``max_range``.
        """
        d = direction.normalized()
        rx, ry = d.x, d.y
        denom = rx * self._dy - ry * self._dx
        qpx = self._ax - origin.x
        qpy = self._ay - origin.y
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (qpx * self._dy - qpy * self._dx) / denom
            u = (qpx * ry - qpy * rx) / denom
        valid = (np.abs(denom) > _EPS) & (t > _EPS) & (t <= max_range) & (u >= -_EPS) & (u <= 1.0 + _EPS)
        if not valid.any():
            return None
        t_valid = np.where(valid, t, np.inf)
        idx = int(np.argmin(t_valid))
        return float(t_valid[idx]), idx

    def segments_within(self, center: Vec2, radius: float) -> List[int]:
        """Indices of segments whose closest point is within ``radius``."""
        return [
            i
            for i, seg in enumerate(self._segments)
            if seg.distance_to_point(center) <= radius
        ]


def ray_march_cells(
    origin_cell: Tuple[int, int],
    target_cell: Tuple[int, int],
) -> List[Tuple[int, int]]:
    """Integer Bresenham line between two grid cells, inclusive.

    Used by the grid-level visibility raster to walk cells along a view ray.
    """
    (x0, y0), (x1, y1) = origin_cell, target_cell
    cells: List[Tuple[int, int]] = []
    dx = abs(x1 - x0)
    dy = -abs(y1 - y0)
    sx = 1 if x0 < x1 else -1
    sy = 1 if y0 < y1 else -1
    err = dx + dy
    x, y = x0, y0
    while True:
        cells.append((x, y))
        if x == x1 and y == y1:
            break
        e2 = 2 * err
        if e2 >= dy:
            err += dy
            x += sx
        if e2 <= dx:
            err += dx
            y += sy
    return cells
