"""Line segments on the venue floor plane.

Wall panels, furniture faces and glass panes are all modelled as 2-D
segments (with a height attribute added at the venue layer). This module
provides the segment primitives the occlusion raycaster and the boundary
metrics build on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..errors import GeometryError
from .vec import Vec2

_EPS = 1e-9


@dataclass(frozen=True)
class Segment:
    """A non-degenerate 2-D line segment from ``a`` to ``b``."""

    a: Vec2
    b: Vec2

    def __post_init__(self) -> None:
        if self.a.distance_to(self.b) < _EPS:
            raise GeometryError(f"degenerate segment at {self.a}")

    @property
    def length(self) -> float:
        return self.a.distance_to(self.b)

    @property
    def direction(self) -> Vec2:
        return (self.b - self.a).normalized()

    @property
    def normal(self) -> Vec2:
        """Unit normal (counter-clockwise perpendicular of the direction)."""
        return self.direction.perpendicular()

    @property
    def midpoint(self) -> Vec2:
        return self.a.lerp(self.b, 0.5)

    def point_at(self, t: float) -> Vec2:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        return self.a.lerp(self.b, t)

    def sample_points(self, spacing: float) -> List[Vec2]:
        """Evenly spaced points along the segment, inclusive of endpoints.

        ``spacing`` is a target distance; actual spacing is adjusted so the
        samples cover the full length exactly.
        """
        if spacing <= 0:
            raise GeometryError("sample spacing must be positive")
        n = max(1, int(math.ceil(self.length / spacing)))
        return [self.point_at(i / n) for i in range(n + 1)]

    def distance_to_point(self, p: Vec2) -> float:
        """Euclidean distance from ``p`` to the closest point on the segment."""
        return p.distance_to(self.closest_point(p))

    def closest_point(self, p: Vec2) -> Vec2:
        d = self.b - self.a
        t = (p - self.a).dot(d) / d.norm_sq()
        t = min(1.0, max(0.0, t))
        return self.point_at(t)

    def project_parameter(self, p: Vec2) -> float:
        """Parameter of the orthogonal projection of ``p`` (unclamped)."""
        d = self.b - self.a
        return (p - self.a).dot(d) / d.norm_sq()

    def intersect(self, other: "Segment") -> Optional[Vec2]:
        """Intersection point of two segments, or None if they do not cross."""
        r = self.b - self.a
        s = other.b - other.a
        denom = r.cross(s)
        qp = other.a - self.a
        if abs(denom) < _EPS:
            return None  # parallel (collinear overlap treated as no crossing)
        t = qp.cross(s) / denom
        u = qp.cross(r) / denom
        if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
            return self.point_at(min(1.0, max(0.0, t)))
        return None

    def reversed(self) -> "Segment":
        return Segment(self.b, self.a)

    def translated(self, offset: Vec2) -> "Segment":
        return Segment(self.a + offset, self.b + offset)

    def subsegment(self, t0: float, t1: float) -> "Segment":
        """Portion of the segment between parameters t0 < t1."""
        if not (0.0 <= t0 < t1 <= 1.0):
            raise GeometryError(f"invalid subsegment parameters ({t0}, {t1})")
        return Segment(self.point_at(t0), self.point_at(t1))


def merge_intervals(
    intervals: List[Tuple[float, float]], gap: float
) -> List[Tuple[float, float]]:
    """Merge 1-D intervals whose gaps are below ``gap``.

    Used for the outer-bounds length metric: "two segments of the bounds
    will be considered as one, if a distance between them is less than T"
    (paper Sec. V-C1, T = 0.15 m).
    """
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [list(ordered[0])]
    for lo, hi in ordered[1:]:
        if lo - merged[-1][1] <= gap:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return [(lo, hi) for lo, hi in merged]


def total_interval_length(intervals: List[Tuple[float, float]]) -> float:
    """Sum of interval lengths (intervals assumed non-overlapping)."""
    return sum(hi - lo for lo, hi in intervals)


def polyline_length(points: List[Vec2]) -> float:
    """Total length of the polyline through ``points``."""
    return sum(points[i].distance_to(points[i + 1]) for i in range(len(points) - 1))


def iter_polygon_edges(points: List[Vec2]) -> Iterator[Segment]:
    """Edges of the closed polygon through ``points`` (last joins first)."""
    n = len(points)
    if n < 3:
        raise GeometryError("polygon needs at least 3 vertices")
    for i in range(n):
        a, b = points[i], points[(i + 1) % n]
        if a.distance_to(b) >= _EPS:
            yield Segment(a, b)
