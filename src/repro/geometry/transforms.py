"""Camera projection between world and image coordinates.

The annotation pipeline (Algorithms 5 & 6) works in *pixel* space: workers
mark 4 corner pixels, DBSCAN/k-means fuse pixels, and the fused pixels are
back-projected onto the surface plane. This module implements the pin-hole
projection both ways for the upright smartphone camera model used
throughout the reproduction (camera at fixed height, optical axis parallel
to the floor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import GeometryError
from .segments import Segment
from .vec import Vec2, Vec3, angle_difference


@dataclass(frozen=True)
class PinholeProjection:
    """Projection for a camera at ``position`` looking along ``yaw_rad``.

    The camera is upright (no roll/pitch), at height ``position.z``;
    ``focal_px`` applies to both axes, and the principal point is the image
    centre.
    """

    position: Vec3
    yaw_rad: float
    focal_px: float
    image_width_px: int
    image_height_px: int

    @property
    def forward(self) -> Vec2:
        return Vec2.from_angle(self.yaw_rad)

    @property
    def half_width(self) -> float:
        return self.image_width_px / 2.0

    @property
    def half_height(self) -> float:
        return self.image_height_px / 2.0

    def world_to_camera(self, p: Vec3) -> Vec3:
        """World point -> camera frame (x right, y down, z forward)."""
        rel = Vec2(p.x - self.position.x, p.y - self.position.y)
        c, s = math.cos(-self.yaw_rad), math.sin(-self.yaw_rad)
        forward = c * rel.x - s * rel.y
        right = s * rel.x + c * rel.y
        down = self.position.z - p.z
        return Vec3(right, down, forward)

    def project(self, p: Vec3) -> Optional[Vec2]:
        """Project a world point to pixel coordinates.

        Returns None if the point is behind the camera or outside the image.
        """
        cam = self.world_to_camera(p)
        if cam.z <= 1e-9:
            return None
        u = self.half_width + self.focal_px * cam.x / cam.z
        v = self.half_height + self.focal_px * cam.y / cam.z
        if not (0.0 <= u < self.image_width_px and 0.0 <= v < self.image_height_px):
            return None
        return Vec2(u, v)

    def project_unclamped(self, p: Vec3) -> Optional[Vec2]:
        """Project a world point to (possibly out-of-frame) pixel coords.

        Returns None only when the point is behind the camera. Used by the
        annotation workers, who clamp off-frame corners to the image border
        (the paper's recall loss when "a featureless surface ... stretched
        through a whole image width").
        """
        cam = self.world_to_camera(p)
        if cam.z <= 1e-9:
            return None
        u = self.half_width + self.focal_px * cam.x / cam.z
        v = self.half_height + self.focal_px * cam.y / cam.z
        return Vec2(u, v)

    def clamp_pixel(self, pixel: Vec2) -> Vec2:
        """Clamp a pixel to the image bounds."""
        return Vec2(
            min(max(pixel.x, 0.0), self.image_width_px - 1.0),
            min(max(pixel.y, 0.0), self.image_height_px - 1.0),
        )

    def pixel_ray(self, pixel: Vec2) -> Tuple[Vec3, Vec3]:
        """Ray (origin, unit direction) in world space through ``pixel``."""
        x_cam = (pixel.x - self.half_width) / self.focal_px
        y_cam = (pixel.y - self.half_height) / self.focal_px
        # Camera-frame direction (right, down, forward) = (x_cam, y_cam, 1).
        # The world axis matching world_to_camera's "right" component is
        # (-sin yaw, cos yaw); "down" maps to -z in world space.
        c, s = math.cos(self.yaw_rad), math.sin(self.yaw_rad)
        fwd = Vec2(c, s)
        right = Vec2(-s, c)
        dx = fwd.x + right.x * x_cam
        dy = fwd.y + right.y * x_cam
        dz = -y_cam
        norm = math.sqrt(dx * dx + dy * dy + dz * dz)
        if norm < 1e-12:
            raise GeometryError("degenerate pixel ray")
        return self.position, Vec3(dx / norm, dy / norm, dz / norm)

    def intersect_pixel_with_wall(
        self, pixel: Vec2, wall: Segment, extend_frac: float = 0.0
    ) -> Optional[Vec3]:
        """World point where the pixel ray meets the vertical plane of ``wall``.

        The wall is treated as an infinite-height vertical plane through the
        segment; returns None if the ray is parallel to the plane or hits
        outside the segment extent. ``extend_frac`` tolerates hits slightly
        beyond the segment ends (as a fraction of its length) — noisy
        annotation corners may legitimately overshoot a pane's edge.
        """
        origin, direction = self.pixel_ray(pixel)
        # Solve in the floor plane first.
        d2 = Vec2(direction.x, direction.y)
        seg_dir = wall.b - wall.a
        denom = d2.cross(seg_dir)
        if abs(denom) < 1e-12:
            return None
        rel = wall.a - Vec2(origin.x, origin.y)
        t = rel.cross(seg_dir) / denom
        if t <= 1e-9:
            return None
        u = rel.cross(d2) / denom
        if not -extend_frac - 1e-9 <= u <= 1.0 + extend_frac + 1e-9:
            return None
        hit_floor = Vec2(origin.x + d2.x * t, origin.y + d2.y * t)
        hit_z = origin.z + direction.z * t
        return Vec3(hit_floor.x, hit_floor.y, hit_z)

    def bearing_to(self, p: Vec2) -> float:
        """Signed horizontal angle from the optical axis to floor point ``p``."""
        rel = p - Vec2(self.position.x, self.position.y)
        return angle_difference(rel.angle(), self.yaw_rad)
