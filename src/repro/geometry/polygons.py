"""Simple polygons on the venue floor plane.

The venue outer wall and furniture footprints are polygons; this module
provides containment tests, area, bounding boxes and rasterisation-friendly
iteration used by the ground-truth map builder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import GeometryError
from .segments import Segment, iter_polygon_edges
from .vec import Vec2


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError("inverted bounding box")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> Vec2:
        return Vec2((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, p: Vec2) -> bool:
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def expanded(self, margin: float) -> "BoundingBox":
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    @staticmethod
    def of_points(points: Sequence[Vec2]) -> "BoundingBox":
        if not points:
            raise GeometryError("bounding box of empty point set")
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))


class Polygon:
    """A simple (non self-intersecting) polygon given by its vertices."""

    def __init__(self, vertices: Sequence[Vec2]):
        if len(vertices) < 3:
            raise GeometryError("polygon needs at least 3 vertices")
        self._vertices: Tuple[Vec2, ...] = tuple(vertices)
        self._bbox = BoundingBox.of_points(list(vertices))

    @property
    def vertices(self) -> Tuple[Vec2, ...]:
        return self._vertices

    @property
    def bbox(self) -> BoundingBox:
        return self._bbox

    def edges(self) -> List[Segment]:
        return list(iter_polygon_edges(list(self._vertices)))

    def area(self) -> float:
        """Unsigned polygon area via the shoelace formula."""
        acc = 0.0
        verts = self._vertices
        for i in range(len(verts)):
            a, b = verts[i], verts[(i + 1) % len(verts)]
            acc += a.cross(b)
        return abs(acc) / 2.0

    def perimeter(self) -> float:
        return sum(e.length for e in self.edges())

    def contains(self, p: Vec2) -> bool:
        """Even-odd rule point-in-polygon test (boundary counts as inside)."""
        if not self._bbox.contains(p):
            return False
        inside = False
        verts = self._vertices
        n = len(verts)
        j = n - 1
        for i in range(n):
            vi, vj = verts[i], verts[j]
            # On-edge check for robustness at boundaries.
            if _on_segment(vi, vj, p):
                return True
            if (vi.y > p.y) != (vj.y > p.y):
                x_cross = vi.x + (p.y - vi.y) * (vj.x - vi.x) / (vj.y - vi.y)
                if p.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def centroid(self) -> Vec2:
        """Area centroid of the polygon."""
        verts = self._vertices
        acc_x = acc_y = acc_a = 0.0
        for i in range(len(verts)):
            a, b = verts[i], verts[(i + 1) % len(verts)]
            cross = a.cross(b)
            acc_a += cross
            acc_x += (a.x + b.x) * cross
            acc_y += (a.y + b.y) * cross
        if abs(acc_a) < 1e-12:
            raise GeometryError("degenerate polygon has no centroid")
        return Vec2(acc_x / (3.0 * acc_a), acc_y / (3.0 * acc_a))

    @staticmethod
    def rectangle(min_x: float, min_y: float, max_x: float, max_y: float) -> "Polygon":
        """Axis-aligned rectangle polygon (counter-clockwise)."""
        if min_x >= max_x or min_y >= max_y:
            raise GeometryError("rectangle must have positive extent")
        return Polygon(
            [
                Vec2(min_x, min_y),
                Vec2(max_x, min_y),
                Vec2(max_x, max_y),
                Vec2(min_x, max_y),
            ]
        )

    @staticmethod
    def rotated_rectangle(
        center: Vec2, width: float, depth: float, angle_rad: float
    ) -> "Polygon":
        """Rectangle of ``width`` x ``depth`` centred at ``center``, rotated."""
        hw, hd = width / 2.0, depth / 2.0
        corners = [Vec2(-hw, -hd), Vec2(hw, -hd), Vec2(hw, hd), Vec2(-hw, hd)]
        return Polygon([center + c.rotated(angle_rad) for c in corners])


def _on_segment(a: Vec2, b: Vec2, p: Vec2, tol: float = 1e-9) -> bool:
    """True if ``p`` lies on segment ab within ``tol``."""
    cross = (b - a).cross(p - a)
    if abs(cross) > tol * max(1.0, a.distance_to(b)):
        return False
    dot = (p - a).dot(b - a)
    return -tol <= dot <= (b - a).norm_sq() + tol


def convex_hull(points: Sequence[Vec2]) -> List[Vec2]:
    """Andrew's monotone-chain convex hull, counter-clockwise order."""
    pts = sorted(set((p.x, p.y) for p in points))
    if len(pts) < 3:
        return [Vec2(x, y) for x, y in pts]

    def half_hull(seq):
        hull: List[Tuple[float, float]] = []
        for x, y in seq:
            while len(hull) >= 2:
                ox, oy = hull[-2]
                ax, ay = hull[-1]
                if (ax - ox) * (y - oy) - (ay - oy) * (x - ox) <= 0:
                    hull.pop()
                else:
                    break
            hull.append((x, y))
        return hull

    lower = half_hull(pts)
    upper = half_hull(reversed(pts))
    hull = lower[:-1] + upper[:-1]
    return [Vec2(x, y) for x, y in hull]
