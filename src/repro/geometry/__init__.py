"""Geometric primitives used throughout the SnapTask reproduction."""

from .polygons import BoundingBox, Polygon, convex_hull
from .rays import SegmentSoup, ray_march_cells
from .segments import (
    Segment,
    iter_polygon_edges,
    merge_intervals,
    polyline_length,
    total_interval_length,
)
from .transforms import PinholeProjection
from .vec import Vec2, Vec3, angle_difference

__all__ = [
    "BoundingBox",
    "PinholeProjection",
    "Polygon",
    "Segment",
    "SegmentSoup",
    "Vec2",
    "Vec3",
    "angle_difference",
    "convex_hull",
    "iter_polygon_edges",
    "merge_intervals",
    "polyline_length",
    "ray_march_cells",
    "total_interval_length",
]
