"""The venue model: geometry, surfaces, hotspots and traversability.

A :class:`Venue` is the simulated physical world. It is consumed by three
layers:

* the **capture simulator** asks which surfaces occlude a view and which
  world features a camera can see;
* the **crowd simulators** ask where people can walk and which hotspots
  attract them;
* the **ground-truth builder** rasterises it into the reference maps the
  evaluation compares against (the paper's laser-range-finder measurements).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import VenueError
from ..geometry import BoundingBox, Polygon, SegmentSoup, Vec2
from .materials import Material
from .surfaces import Surface, SurfaceKind


@dataclass(frozen=True)
class Hotspot:
    """A place people gravitate to (paper Sec. I: "public hotspots")."""

    position: Vec2
    weight: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise VenueError(f"hotspot {self.label!r}: weight must be positive")


class Venue:
    """An indoor space: outer shell, surfaces, obstacles and hotspots."""

    def __init__(
        self,
        name: str,
        outer: Polygon,
        surfaces: Sequence[Surface],
        furniture_footprints: Sequence[Polygon],
        entrance: Vec2,
        hotspots: Sequence[Hotspot],
        inner_wall_footprints: Sequence[Polygon] = (),
    ):
        if not surfaces:
            raise VenueError("venue has no surfaces")
        ids = [s.surface_id for s in surfaces]
        if len(set(ids)) != len(ids):
            raise VenueError("duplicate surface ids")
        if not outer.contains(entrance):
            raise VenueError("entrance must lie inside the outer polygon")
        if not hotspots:
            raise VenueError("venue needs at least one hotspot")

        self._name = name
        self._outer = outer
        self._surfaces: Tuple[Surface, ...] = tuple(surfaces)
        self._by_id: Dict[int, Surface] = {s.surface_id: s for s in surfaces}
        self._furniture = tuple(furniture_footprints)
        self._inner_walls = tuple(inner_wall_footprints)
        self._entrance = entrance
        self._hotspots = tuple(hotspots)

        opaque = [
            s for s in self._surfaces if s.opaque and s.kind != SurfaceKind.DECOR
        ]
        self._opaque_soup = SegmentSoup(
            [s.segment for s in opaque],
            heights=[(s.base_z, s.top_z) for s in opaque],
        )
        self._all_soup = SegmentSoup(
            [s.segment for s in self._surfaces],
            heights=[(s.base_z, s.top_z) for s in self._surfaces],
        )

    def __deepcopy__(self, memo: dict) -> "Venue":
        # Write-once after __init__: durability snapshots share the venue
        # structurally instead of copying its geometry soups.
        return self

    # -- identity and geometry --------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def outer(self) -> Polygon:
        return self._outer

    @property
    def bbox(self) -> BoundingBox:
        return self._outer.bbox

    @property
    def entrance(self) -> Vec2:
        return self._entrance

    @property
    def surfaces(self) -> Tuple[Surface, ...]:
        return self._surfaces

    @property
    def hotspots(self) -> Tuple[Hotspot, ...]:
        return self._hotspots

    @property
    def furniture_footprints(self) -> Tuple[Polygon, ...]:
        return self._furniture

    @property
    def inner_wall_footprints(self) -> Tuple[Polygon, ...]:
        return self._inner_walls

    def surface(self, surface_id: int) -> Surface:
        try:
            return self._by_id[surface_id]
        except KeyError:
            raise VenueError(f"no surface with id {surface_id}") from None

    @property
    def opaque_soup(self) -> SegmentSoup:
        """Occluders: opaque, non-decor surfaces (glass is see-through)."""
        return self._opaque_soup

    @property
    def all_soup(self) -> SegmentSoup:
        return self._all_soup

    # -- classification -----------------------------------------------------

    def outer_wall_surfaces(self) -> List[Surface]:
        return [s for s in self._surfaces if s.kind == SurfaceKind.OUTER_WALL]

    def featureless_surfaces(self) -> List[Surface]:
        return [
            s
            for s in self._surfaces
            if s.featureless
            and s.kind not in (SurfaceKind.DECOR, SurfaceKind.EXTERIOR)
        ]

    def outer_bounds_length(self) -> float:
        """Ground-truth outer bound length (entrance already excluded:
        the entrance is a gap between outer-wall surfaces, mirroring the
        paper's "we have excluded the length of the entrance")."""
        return sum(s.segment.length for s in self.outer_wall_surfaces())

    def floor_area(self) -> float:
        return self._outer.area()

    # -- traversability ------------------------------------------------------

    def contains(self, p: Vec2) -> bool:
        return self._outer.contains(p)

    def is_traversable(self, p: Vec2) -> bool:
        """True when a person can stand at ``p``."""
        if not self._outer.contains(p):
            return False
        for footprint in self._furniture:
            if footprint.contains(p):
                return False
        for footprint in self._inner_walls:
            if footprint.contains(p):
                return False
        return True

    def is_obstructed(self, p: Vec2) -> bool:
        """True when ``p`` lies inside a furniture or inner-wall footprint."""
        return self._outer.contains(p) and not self.is_traversable(p)

    def nearest_traversable(self, p: Vec2, step: float = 0.25, max_radius: float = 8.0) -> Vec2:
        """Closest traversable point to ``p`` (spiral grid search).

        Mirrors the paper's worker behaviour: "In case a location is inside
        an obstacle, human workers then simply start a task as close to
        that place as possible."
        """
        if self.is_traversable(p):
            return p
        radius = step
        while radius <= max_radius:
            n = max(8, int(2 * math.pi * radius / step))
            for i in range(n):
                angle = 2 * math.pi * i / n
                candidate = p + Vec2.from_angle(angle, radius)
                if self.is_traversable(candidate):
                    return candidate
            radius += step
        raise VenueError(f"no traversable point within {max_radius} m of {p}")

    def nearest_featureless_surface(self, p: Vec2) -> Surface:
        """Closest featureless (glass/plaster) surface to floor point ``p``."""
        surface = self.find_featureless_surface(p)
        if surface is None:
            raise VenueError("venue has no featureless surfaces")
        return surface

    def find_featureless_surface(self, p: Vec2) -> Optional[Surface]:
        """Like :meth:`nearest_featureless_surface`, but ``None`` when the
        venue has no featureless surfaces at all (generated venues may not)."""
        candidates = self.featureless_surfaces()
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.segment.distance_to_point(p))

    def featureless_surfaces_near(self, p: Vec2, radius: float) -> List[Surface]:
        return [
            s
            for s in self.featureless_surfaces()
            if s.segment.distance_to_point(p) <= radius
        ]

    def describe(self) -> str:
        """Human-readable inventory summary."""
        kinds: Dict[str, int] = {}
        for s in self._surfaces:
            kinds[s.kind.value] = kinds.get(s.kind.value, 0) + 1
        parts = ", ".join(f"{v} {k}" for k, v in sorted(kinds.items()))
        return (
            f"Venue {self._name!r}: {self.floor_area():.0f} m^2, "
            f"{len(self._surfaces)} surfaces ({parts}), "
            f"outer bounds {self.outer_bounds_length():.2f} m, "
            f"{len(self._hotspots)} hotspots"
        )
