"""Surface materials and their visual-feature properties.

The whole SnapTask story hinges on one physical fact: SfM feature
extractors fire on textured surfaces and stay silent on featureless ones
(glass, mirrors, bare plaster). A :class:`Material` therefore carries the
two properties the capture and SfM simulators need:

* ``feature_density`` — expected SfM-detectable features per square metre
  of surface. Zero for glass.
* ``opaque`` — whether the surface occludes the view behind it. Glass is
  transparent: cameras (and the visibility raster) see through it, which is
  exactly why unannotated glass leaves holes in the obstacles map while the
  space behind it still appears "covered".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import VenueError


@dataclass(frozen=True)
class Material:
    """Physical surface type as seen by a camera."""

    name: str
    feature_density: float  # features / m^2
    opaque: bool = True
    reflective: bool = False

    def __post_init__(self) -> None:
        if self.feature_density < 0:
            raise VenueError(f"material {self.name}: negative feature density")

    @property
    def featureless(self) -> bool:
        """True when conventional SfM cannot reconstruct this surface.

        The paper treats any surface below usable texture as featureless;
        we use a small threshold rather than exactly zero so that sparse
        plaster walls also qualify (the paper's annotation task 2 targets
        "a featureless wall of a meeting room").
        """
        return self.feature_density < 6.0


# --- Presets used by the venue builders ------------------------------------

BRICK = Material("brick", feature_density=34.0)
BOOKSHELF = Material("bookshelf", feature_density=58.0)
WOOD = Material("wood", feature_density=26.0)
FABRIC = Material("fabric", feature_density=22.0)
DESK = Material("desk", feature_density=24.0)
SPARSE_TABLE = Material("sparse_table", feature_density=7.0)
POSTER = Material("poster", feature_density=85.0)
PLASTER = Material("plaster", feature_density=5.0)
GLASS = Material("glass", feature_density=0.0, opaque=False, reflective=True)
MIRROR = Material("mirror", feature_density=0.0, opaque=True, reflective=True)
WHITEBOARD = Material("whiteboard", feature_density=1.0)
FACADE = Material("facade", feature_density=15.0)

_PRESETS = {
    m.name: m
    for m in (
        BRICK,
        BOOKSHELF,
        WOOD,
        FABRIC,
        DESK,
        SPARSE_TABLE,
        POSTER,
        PLASTER,
        GLASS,
        MIRROR,
        WHITEBOARD,
    )
}


def material_by_name(name: str) -> Material:
    """Look up a preset material; raises :class:`VenueError` if unknown."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise VenueError(f"unknown material {name!r}") from None


def preset_names() -> list:
    return sorted(_PRESETS)
