"""Parametric venue generators for tests, examples and ablations.

The library replica in :mod:`repro.venue.library` reproduces the paper's
field-test site; these generators create *other* venues so the algorithms
can be exercised on floor plans they were not tuned for (property tests,
the custom-venue example, robustness checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import VenueError
from ..geometry import Polygon, Vec2
from ..simkit.rng import RngStream
from .materials import BOOKSHELF, BRICK, DESK, FABRIC, GLASS, WOOD
from .model import Hotspot, Venue
from .surfaces import SurfaceKind
from .library import _Builder


@dataclass(frozen=True)
class OfficeSpec:
    """Parameters for :func:`generate_office`."""

    width_m: float = 18.0
    depth_m: float = 12.0
    glass_walls: int = 1  # number of outer walls made of glass (0..4)
    n_furniture: int = 8
    n_hotspots: int = 5
    wall_height_m: float = 2.7

    def validate(self) -> None:
        if self.width_m < 6.0 or self.depth_m < 6.0:
            raise VenueError("office must be at least 6x6 m")
        if not 0 <= self.glass_walls <= 4:
            raise VenueError("glass_walls must be in 0..4")
        if self.n_furniture < 0 or self.n_hotspots < 1:
            raise VenueError("invalid furniture/hotspot counts")


def generate_office(spec: OfficeSpec, rng: RngStream) -> Venue:
    """Random rectangular office with furniture islands and hotspots.

    Deterministic for a given (spec, rng stream). The entrance is always in
    the south wall; glass walls are assigned starting from the north side
    (farthest from the entrance, like the paper's library).
    """
    spec.validate()
    b = _Builder()
    w, d, h = spec.width_m, spec.depth_m, spec.wall_height_m

    entrance_x = w * 0.25
    gap = 1.8
    # Wall order: north, west, east, south -> glass assigned in this order.
    glass = set(range(spec.glass_walls))
    mat = lambda i: GLASS if i in glass else BRICK  # noqa: E731

    b.wall(Vec2(w, d), Vec2(0, d), mat(0), SurfaceKind.OUTER_WALL, h, "north", panel_width=2.0 if 0 in glass else 0.0)
    b.wall(Vec2(0, d), Vec2(0, 0), mat(1), SurfaceKind.OUTER_WALL, h, "west", panel_width=2.0 if 1 in glass else 0.0)
    b.wall(Vec2(w, 0), Vec2(w, d), mat(2), SurfaceKind.OUTER_WALL, h, "east", panel_width=2.0 if 2 in glass else 0.0)
    b.wall(Vec2(0, 0), Vec2(entrance_x - gap / 2, 0), BRICK, SurfaceKind.OUTER_WALL, h, "south-a")
    b.wall(Vec2(entrance_x + gap / 2, 0), Vec2(w, 0), BRICK, SurfaceKind.OUTER_WALL, h, "south-b")

    furniture_mats = [BOOKSHELF, DESK, FABRIC, WOOD]
    placed = 0
    attempts = 0
    while placed < spec.n_furniture and attempts < spec.n_furniture * 30:
        attempts += 1
        fw = rng.uniform(0.8, 3.5)
        fd = rng.uniform(0.6, 1.6)
        x0 = rng.uniform(1.0, w - fw - 1.0)
        y0 = rng.uniform(1.5, d - fd - 1.0)
        candidate = Polygon.rectangle(x0, y0, x0 + fw, y0 + fd)
        if any(_boxes_close(candidate, existing, 0.8) for existing in b.furniture):
            continue
        if candidate.contains(Vec2(entrance_x, 1.0)):
            continue
        material = rng.choice(furniture_mats)
        height = rng.uniform(0.8, 2.0)
        b.furniture_box(x0, y0, x0 + fw, y0 + fd, material, height, f"furniture-{placed}")
        placed += 1

    hotspots: List[Hotspot] = [Hotspot(Vec2(entrance_x, 1.2), 2.5, "entrance")]
    venue_probe = Venue(
        name="probe",
        outer=Polygon.rectangle(0, 0, w, d),
        surfaces=b.surfaces,
        furniture_footprints=b.furniture,
        entrance=Vec2(entrance_x, 1.0),
        hotspots=hotspots,
        inner_wall_footprints=b.inner_walls,
    )
    for i in range(spec.n_hotspots - 1):
        for _attempt in range(50):
            p = Vec2(rng.uniform(1.0, w - 1.0), rng.uniform(1.0, d - 1.0))
            if venue_probe.is_traversable(p):
                hotspots.append(Hotspot(p, rng.uniform(0.3, 2.0), f"hotspot-{i}"))
                break

    return Venue(
        name=f"office-{spec.width_m:.0f}x{spec.depth_m:.0f}",
        outer=Polygon.rectangle(0, 0, w, d),
        surfaces=b.surfaces,
        furniture_footprints=b.furniture,
        entrance=Vec2(entrance_x, 1.0),
        hotspots=hotspots,
        inner_wall_footprints=b.inner_walls,
    )


def _boxes_close(a: Polygon, b: Polygon, margin: float) -> bool:
    """True if the bounding boxes of two polygons are within ``margin``."""
    ab, bb = a.bbox, b.bbox
    return not (
        ab.max_x + margin < bb.min_x
        or bb.max_x + margin < ab.min_x
        or ab.max_y + margin < bb.min_y
        or bb.max_y + margin < ab.min_y
    )
