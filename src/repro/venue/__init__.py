"""Venue substrate: materials, surfaces, world features, replica venues."""

from .features import (
    ARTIFICIAL_FEATURE_BASE,
    REFLECTION_FEATURE_BASE,
    FeatureWorld,
    WorldFeature,
    build_feature_world,
)
from .generators import OfficeSpec, generate_office
from .library import build_library
from .materials import (
    BOOKSHELF,
    BRICK,
    DESK,
    FABRIC,
    GLASS,
    MIRROR,
    PLASTER,
    POSTER,
    SPARSE_TABLE,
    WHITEBOARD,
    WOOD,
    Material,
    material_by_name,
    preset_names,
)
from .model import Hotspot, Venue
from .surfaces import Surface, SurfaceKind, box_surfaces

__all__ = [
    "ARTIFICIAL_FEATURE_BASE",
    "REFLECTION_FEATURE_BASE",
    "FeatureWorld",
    "Hotspot",
    "Material",
    "OfficeSpec",
    "Surface",
    "SurfaceKind",
    "Venue",
    "WorldFeature",
    "box_surfaces",
    "build_feature_world",
    "build_library",
    "generate_office",
    "material_by_name",
    "preset_names",
    "BRICK",
    "BOOKSHELF",
    "DESK",
    "FABRIC",
    "GLASS",
    "MIRROR",
    "PLASTER",
    "POSTER",
    "SPARSE_TABLE",
    "WHITEBOARD",
    "WOOD",
]
