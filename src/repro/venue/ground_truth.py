"""Ground-truth maps derived from venue geometry.

The paper "used a laser range finder to obtain ground truth measurements
inside the library", producing a ground-truth obstacles/visibility map
(Fig. 12d) and the outer-bounds length (98.89 m, entrance excluded). The
simulation replaces measurement with exact rasterisation of the venue
geometry onto the same grid spec the model maps use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..geometry import BoundingBox, Vec2
from ..mapping.grid import Grid2D, GridSpec
from .model import Venue
from .surfaces import SurfaceKind


@dataclass(frozen=True)
class GroundTruth:
    """Reference maps for one venue on one grid spec."""

    venue_name: str
    spec: GridSpec
    obstacle_mask: np.ndarray  # walls + furniture + inner walls
    region_mask: np.ndarray  # cells inside the outer polygon
    traversable_mask: np.ndarray  # region minus obstacles
    outer_bounds_m: float

    @property
    def region_cells(self) -> int:
        return int(self.region_mask.sum())

    @property
    def obstacle_cells(self) -> int:
        return int(self.obstacle_mask.sum())

    def obstacles_grid(self) -> Grid2D:
        grid = Grid2D(self.spec)
        grid.data[self.obstacle_mask] = 1.0
        return grid


def default_grid_spec(venue: Venue, cell_size_m: float, margin_m: float = 1.0) -> GridSpec:
    """The grid spec every map of this venue should be built on."""
    return GridSpec.from_bbox(venue.bbox, cell_size_m, margin_m)


def build_ground_truth(
    venue: Venue, spec: GridSpec, wall_sample_step_frac: float = 0.4
) -> GroundTruth:
    """Rasterise venue geometry into ground-truth masks on ``spec``."""
    obstacle = np.zeros(spec.shape, dtype=bool)
    step = spec.cell_size_m * wall_sample_step_frac

    # Walls (including glass: the ground truth knows where the glass is).
    for surface in venue.surfaces:
        if surface.kind in (SurfaceKind.DECOR, SurfaceKind.EXTERIOR):
            continue
        for p in surface.segment.sample_points(step):
            cell = spec.cell_of(p)
            if cell is not None:
                obstacle[cell] = True

    # Solid footprints: furniture and inner-wall bodies.
    region = np.zeros(spec.shape, dtype=bool)
    footprints = list(venue.furniture_footprints) + list(venue.inner_wall_footprints)
    for row in range(spec.n_rows):
        for col in range(spec.n_cols):
            center = spec.center_of(row, col)
            if venue.outer.contains(center):
                region[row, col] = True
                if any(fp.contains(center) for fp in footprints):
                    obstacle[row, col] = True

    # Wall cells on the boundary count as part of the venue region.
    region |= obstacle & _boundary_band(venue, spec)

    traversable = region & ~obstacle
    return GroundTruth(
        venue_name=venue.name,
        spec=spec,
        obstacle_mask=obstacle,
        region_mask=region,
        traversable_mask=traversable,
        outer_bounds_m=venue.outer_bounds_length(),
    )


def _boundary_band(venue: Venue, spec: GridSpec) -> np.ndarray:
    """Cells within one cell of the outer polygon edges."""
    band = np.zeros(spec.shape, dtype=bool)
    step = spec.cell_size_m * 0.4
    for edge in venue.outer.edges():
        for p in edge.sample_points(step):
            cell = spec.cell_of(p)
            if cell is not None:
                band[cell] = True
    return band
