"""Vertical surfaces: walls, furniture faces, glass panes, posters.

A surface is a vertical rectangle: a floor-plane segment extruded from
``base_z`` to ``base_z + height``. This 2.5-D model is sufficient for
everything the paper's algorithms consume — occlusion and the obstacle /
visibility maps are all computed on the floor plane, while feature points
and annotation corners live in 3-D.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import VenueError
from ..geometry import Segment, Vec2, Vec3
from .materials import Material


class SurfaceKind(enum.Enum):
    """Role of a surface in the venue, used by metrics and ground truth."""

    OUTER_WALL = "outer_wall"
    INNER_WALL = "inner_wall"
    FURNITURE = "furniture"
    DECOR = "decor"  # posters/signs mounted on other surfaces
    EXTERIOR = "exterior"  # scenery visible through glass, outside the venue


@dataclass(frozen=True)
class Surface:
    """One vertical rectangular surface in the venue."""

    surface_id: int
    segment: Segment
    material: Material
    kind: SurfaceKind
    height: float = 2.7
    base_z: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.height <= 0:
            raise VenueError(f"surface {self.surface_id}: non-positive height")
        if self.base_z < 0:
            raise VenueError(f"surface {self.surface_id}: negative base_z")

    @property
    def top_z(self) -> float:
        return self.base_z + self.height

    @property
    def area(self) -> float:
        return self.segment.length * self.height

    @property
    def featureless(self) -> bool:
        return self.material.featureless

    @property
    def opaque(self) -> bool:
        return self.material.opaque

    def corners(self) -> Tuple[Vec3, Vec3, Vec3, Vec3]:
        """3-D corners in order: bottom-a, bottom-b, top-b, top-a."""
        a, b = self.segment.a, self.segment.b
        return (
            Vec3(a.x, a.y, self.base_z),
            Vec3(b.x, b.y, self.base_z),
            Vec3(b.x, b.y, self.top_z),
            Vec3(a.x, a.y, self.top_z),
        )

    def point_at(self, t: float, z_frac: float) -> Vec3:
        """Point on the surface at length-parameter ``t``, height fraction."""
        p = self.segment.point_at(t)
        return Vec3(p.x, p.y, self.base_z + z_frac * self.height)

    def facing_point(self, distance: float, t: float = 0.5) -> Vec2:
        """Floor point at ``distance`` in front of the surface (normal side)."""
        mid = self.segment.point_at(t)
        return mid + self.segment.normal * distance

    def describe(self) -> str:
        return (
            f"Surface#{self.surface_id}[{self.label or self.kind.value}] "
            f"{self.material.name} len={self.segment.length:.2f}m h={self.height:.2f}m"
        )


def box_surfaces(
    next_id: int,
    min_x: float,
    min_y: float,
    max_x: float,
    max_y: float,
    material: Material,
    height: float,
    kind: SurfaceKind = SurfaceKind.FURNITURE,
    label: str = "",
) -> List[Surface]:
    """Four side surfaces of an axis-aligned box footprint.

    Returns surfaces with consecutive ids starting at ``next_id``.
    """
    if min_x >= max_x or min_y >= max_y:
        raise VenueError(f"box {label!r}: empty footprint")
    corners = [
        Vec2(min_x, min_y),
        Vec2(max_x, min_y),
        Vec2(max_x, max_y),
        Vec2(min_x, max_y),
    ]
    sides = []
    for i in range(4):
        seg = Segment(corners[i], corners[(i + 1) % 4])
        sides.append(
            Surface(
                surface_id=next_id + i,
                segment=seg,
                material=material,
                kind=kind,
                height=height,
                label=f"{label}:side{i}" if label else "",
            )
        )
    return sides
