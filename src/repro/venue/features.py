"""World feature points: the "texture" SfM can latch onto.

Each textured surface is populated with a deterministic set of 3-D feature
points whose surface density follows the material's ``feature_density``.
Feature identities are stable: when two photos observe the same world
feature they record the same ``feature_id``, which is what makes ID-based
matching in the SfM simulator equivalent to descriptor matching in a real
pipeline (minus descriptor noise, which the capture layer re-introduces as
detection dropout).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import VenueError
from ..geometry import Vec2, Vec3
from ..simkit.rng import RngStream
from .model import Venue
from .surfaces import Surface, SurfaceKind

# Feature ids at or above this value are artificial-texture features created
# by the annotation pipeline (Algorithm 6), never world features.
ARTIFICIAL_FEATURE_BASE = 10_000_000
# Feature ids at or above this value are spurious reflection features
# (textured geometry mirrored in glass panes).
REFLECTION_FEATURE_BASE = 20_000_000


@dataclass(frozen=True)
class WorldFeature:
    """One SfM-detectable point on a surface."""

    feature_id: int
    position: Vec3
    surface_id: int
    strength: float  # detection strength multiplier in (0, 1]
    is_reflection: bool = False


class FeatureWorld:
    """All world features of a venue, with numpy views for fast queries."""

    def __init__(self, venue: Venue, features: Sequence[WorldFeature]):
        self._venue = venue
        self._features: Tuple[WorldFeature, ...] = tuple(features)
        n = len(self._features)
        self._positions = np.zeros((n, 3), dtype=float)
        self._strengths = np.zeros(n, dtype=float)
        self._surface_ids = np.zeros(n, dtype=int)
        self._ids = np.zeros(n, dtype=int)
        self._reflections = np.zeros(n, dtype=bool)
        for i, f in enumerate(self._features):
            self._positions[i] = f.position.as_tuple()
            self._strengths[i] = f.strength
            self._surface_ids[i] = f.surface_id
            self._ids[i] = f.feature_id
            self._reflections[i] = f.is_reflection
        self._by_id: Dict[int, WorldFeature] = {f.feature_id: f for f in self._features}
        # Per-feature floor-plane surface normal, for incidence-angle culling.
        normal_by_surface = {
            s.surface_id: s.segment.normal.as_tuple() for s in venue.surfaces
        }
        self._normals = np.array(
            [normal_by_surface[int(sid)] for sid in self._surface_ids], dtype=float
        ).reshape(n, 2)

    def __deepcopy__(self, memo: dict) -> "FeatureWorld":
        # Write-once after __init__: durability snapshots share the world
        # (positions/normals arrays and feature tuple) structurally.
        return self

    @property
    def venue(self) -> Venue:
        return self._venue

    @property
    def features(self) -> Tuple[WorldFeature, ...]:
        return self._features

    def __len__(self) -> int:
        return len(self._features)

    @property
    def positions(self) -> np.ndarray:
        """(N, 3) float array of feature positions (read-only view)."""
        return self._positions

    @property
    def strengths(self) -> np.ndarray:
        return self._strengths

    @property
    def surface_ids(self) -> np.ndarray:
        return self._surface_ids

    @property
    def ids(self) -> np.ndarray:
        return self._ids

    @property
    def reflections(self) -> np.ndarray:
        """Boolean mask of spurious reflection features."""
        return self._reflections

    @property
    def normals(self) -> np.ndarray:
        """(N, 2) floor-plane unit normals of each feature's surface."""
        return self._normals

    def feature(self, feature_id: int) -> WorldFeature:
        try:
            return self._by_id[feature_id]
        except KeyError:
            raise VenueError(f"no world feature with id {feature_id}") from None

    def features_on_surface(self, surface_id: int) -> List[WorldFeature]:
        return [f for f in self._features if f.surface_id == surface_id]

    def surface_feature_count(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for sid in self._surface_ids:
            counts[int(sid)] = counts.get(int(sid), 0) + 1
        return counts


def _sample_surface(
    surface: Surface, rng: RngStream, start_id: int
) -> List[WorldFeature]:
    """Jittered-grid sampling of one surface at its material density."""
    density = surface.material.feature_density
    if density <= 0:
        return []
    expected = density * surface.area
    if expected < 0.5:
        return []
    # Grid spacing so that one cell holds one expected feature.
    spacing = 1.0 / math.sqrt(density)
    n_len = max(1, int(round(surface.segment.length / spacing)))
    n_ht = max(1, int(round(surface.height / spacing)))
    features: List[WorldFeature] = []
    fid = start_id
    for i in range(n_len):
        for j in range(n_ht):
            t = (i + rng.uniform(0.15, 0.85)) / n_len
            z_frac = (j + rng.uniform(0.15, 0.85)) / n_ht
            pos = surface.point_at(t, z_frac)
            strength = rng.uniform(0.55, 1.0)
            features.append(
                WorldFeature(
                    feature_id=fid,
                    position=pos,
                    surface_id=surface.surface_id,
                    strength=strength,
                )
            )
            fid += 1
    return features


def _mirror_reflections(
    venue: Venue,
    features: List[WorldFeature],
    rng: RngStream,
    sample_rate: float,
    max_source_distance: float,
) -> List[WorldFeature]:
    """Spurious reflection features: textured geometry mirrored in glass.

    The paper notes that "the photos may contain reflective surfaces and the
    reflections are seen as blurry objects". We model this as weak features
    at positions mirrored across each reflective pane's plane; when a video
    sequence observes the same reflection three times, the SfM simulator
    triangulates an outlier point (usually outside the venue) that the
    statistical outlier filter then has to remove.
    """
    reflective = [
        s for s in venue.surfaces if s.material.reflective and s.kind != SurfaceKind.DECOR
    ]
    out: List[WorldFeature] = []
    fid = REFLECTION_FEATURE_BASE
    for pane in sorted(reflective, key=lambda s: s.surface_id):
        pane_rng = rng.child(f"reflection-{pane.surface_id}")
        anchor = pane.segment.a
        normal = pane.segment.normal
        for f in features:
            if f.is_reflection:
                continue
            rel = Vec2(f.position.x - anchor.x, f.position.y - anchor.y)
            dist = rel.dot(normal)
            if abs(dist) > max_source_distance:
                continue
            # Only mirror features whose mirror image lies behind the pane
            # extent (projection onto the segment must fall inside it).
            t = pane.segment.project_parameter(Vec2(f.position.x, f.position.y))
            if not 0.0 <= t <= 1.0:
                continue
            if not pane_rng.chance(sample_rate):
                continue
            mirrored = Vec2(f.position.x, f.position.y) - normal * (2.0 * dist)
            out.append(
                WorldFeature(
                    feature_id=fid,
                    position=Vec3(mirrored.x, mirrored.y, f.position.z),
                    surface_id=pane.surface_id,
                    strength=pane_rng.uniform(0.08, 0.2),
                    is_reflection=True,
                )
            )
            fid += 1
    return out


def build_feature_world(
    venue: Venue,
    rng: RngStream,
    reflection_sample_rate: float = 0.04,
    reflection_source_distance: float = 4.0,
) -> FeatureWorld:
    """Populate every surface of ``venue`` with world features.

    Deterministic for a given (venue, rng stream): surfaces are processed
    in id order, each with its own child stream. Reflective panes also get
    weak mirrored "reflection" features (see :func:`_mirror_reflections`).
    """
    features: List[WorldFeature] = []
    next_id = 0
    for surface in sorted(venue.surfaces, key=lambda s: s.surface_id):
        surface_rng = rng.child(f"surface-{surface.surface_id}")
        sampled = _sample_surface(surface, surface_rng, next_id)
        features.extend(sampled)
        next_id += len(sampled)
    if next_id >= ARTIFICIAL_FEATURE_BASE:
        raise VenueError("world feature count collides with artificial id space")
    if reflection_sample_rate > 0:
        features.extend(
            _mirror_reflections(
                venue, features, rng, reflection_sample_rate, reflection_source_distance
            )
        )
    return FeatureWorld(venue, features)
