"""Replica of the paper's evaluation venue.

The field test ran in a ~350 m^2 Aalto University library: "an arbitrarily
shaped space that includes bookshelves, computer workstations, sofas, etc.
Two outer walls of the library are made of bricks, while the other two are
made of large transparent glass panels" (Sec. V-A). The paper also
describes a meeting room with a featureless wall (annotation task 2) and
"a room in a top right corner ... visited by very few participants".

This module builds a venue with the same qualitative structure: an
L-shaped ~344 m^2 floor; brick south and east outer walls; glass west and
north walls (panelised) meeting in a long bare glass corner — exactly the
region Fig. 12d shows the baselines missing; four bookshelf rows; computer
workstations; sofas; reading tables; a plaster-walled meeting room against
the east wall; and a seldom-visited annex room in the top-right corner
behind glass.
"""

from __future__ import annotations

from typing import List, Tuple

from ..geometry import Polygon, Segment, Vec2
from .materials import (
    BOOKSHELF,
    FACADE,
    BRICK,
    DESK,
    FABRIC,
    GLASS,
    PLASTER,
    POSTER,
    SPARSE_TABLE,
    WOOD,
)
from .model import Hotspot, Venue
from .surfaces import Surface, SurfaceKind, box_surfaces

# Floor-plan landmarks (metres).
MAIN_W, MAIN_H = 22.0, 14.0
ANNEX_MIN_X, ANNEX_MAX_Y = 16.0, 20.0
ENTRANCE_GAP = (1.5, 3.3)  # south-wall x-range left open as the entrance
WALL_HEIGHT = 2.7
GLASS_PANEL_WIDTH = 4.0


class _Builder:
    """Accumulates surfaces/footprints with consecutive surface ids."""

    def __init__(self) -> None:
        self.surfaces: List[Surface] = []
        self.furniture: List[Polygon] = []
        self.inner_walls: List[Polygon] = []
        self._next_id = 0

    def wall(
        self,
        a: Vec2,
        b: Vec2,
        material,
        kind: SurfaceKind,
        height: float = WALL_HEIGHT,
        label: str = "",
        panel_width: float = 0.0,
    ) -> None:
        """Add a wall, optionally split into panels of ``panel_width``."""
        seg = Segment(a, b)
        if panel_width and seg.length > panel_width * 1.5:
            n = max(1, int(round(seg.length / panel_width)))
            for i in range(n):
                sub = seg.subsegment(i / n, (i + 1) / n)
                self._add(sub, material, kind, height, 0.0, f"{label}:p{i}")
        else:
            self._add(seg, material, kind, height, 0.0, label)

    def decor(self, a: Vec2, b: Vec2, base_z: float, height: float, label: str) -> None:
        self._add(Segment(a, b), POSTER, SurfaceKind.DECOR, height, base_z, label)

    def _add(self, seg: Segment, material, kind, height, base_z, label) -> None:
        self.surfaces.append(
            Surface(
                surface_id=self._next_id,
                segment=seg,
                material=material,
                kind=kind,
                height=height,
                base_z=base_z,
                label=label,
            )
        )
        self._next_id += 1

    def furniture_box(
        self, min_x: float, min_y: float, max_x: float, max_y: float, material, height: float, label: str
    ) -> None:
        sides = box_surfaces(
            self._next_id, min_x, min_y, max_x, max_y, material, height, SurfaceKind.FURNITURE, label
        )
        self.surfaces.extend(sides)
        self._next_id += len(sides)
        self.furniture.append(Polygon.rectangle(min_x, min_y, max_x, max_y))

    def inner_wall(self, a: Vec2, b: Vec2, material, label: str, thickness: float = 0.12) -> None:
        """A thin interior wall: one surface plus a blocking footprint."""
        self.wall(a, b, material, SurfaceKind.INNER_WALL, label=label)
        seg = Segment(a, b)
        n = seg.normal * (thickness / 2.0)
        self.inner_walls.append(Polygon([a + n, b + n, b - n, a - n]))


def build_library() -> Venue:
    """Construct the library replica (deterministic, no RNG involved)."""
    b = _Builder()

    # --- Outer shell -------------------------------------------------------
    # South wall (brick) with the entrance gap.
    b.wall(Vec2(0, 0), Vec2(ENTRANCE_GAP[0], 0), BRICK, SurfaceKind.OUTER_WALL, label="south-brick-a")
    b.wall(Vec2(ENTRANCE_GAP[1], 0), Vec2(MAIN_W, 0), BRICK, SurfaceKind.OUTER_WALL, label="south-brick-b")
    # East wall (brick), full height of the L.
    b.wall(Vec2(MAIN_W, 0), Vec2(MAIN_W, ANNEX_MAX_Y), BRICK, SurfaceKind.OUTER_WALL, label="east-brick")
    # Annex north wall (glass panels).
    b.wall(
        Vec2(MAIN_W, ANNEX_MAX_Y), Vec2(ANNEX_MIN_X, ANNEX_MAX_Y), GLASS,
        SurfaceKind.OUTER_WALL, label="annex-north-glass", panel_width=GLASS_PANEL_WIDTH,
    )
    # Annex west wall (glass panels, faces outdoors).
    b.wall(
        Vec2(ANNEX_MIN_X, ANNEX_MAX_Y), Vec2(ANNEX_MIN_X, MAIN_H), GLASS,
        SurfaceKind.OUTER_WALL, label="annex-west-glass", panel_width=GLASS_PANEL_WIDTH,
    )
    # Main north wall (glass panels) — one of the two big glass walls.
    b.wall(
        Vec2(ANNEX_MIN_X, MAIN_H), Vec2(0, MAIN_H), GLASS,
        SurfaceKind.OUTER_WALL, label="north-glass", panel_width=GLASS_PANEL_WIDTH,
    )
    # West wall (glass panels) — the second glass wall; it meets the north
    # glass in a long bare glass corner, the region baselines miss.
    b.wall(
        Vec2(0, MAIN_H), Vec2(0, 0), GLASS,
        SurfaceKind.OUTER_WALL, label="west-glass", panel_width=GLASS_PANEL_WIDTH,
    )

    # A lone sign on the north glass near the annex: "bounds along some of
    # the glass wall panels were reconstructed, because they either had
    # posters, signs or pieces of furniture close to them".
    b.decor(Vec2(14.6, MAIN_H), Vec2(15.6, MAIN_H), base_z=1.2, height=1.0, label="glass-sign")

    # --- Annex partition (wood shelving wall with a door gap) --------------
    b.inner_wall(Vec2(ANNEX_MIN_X, MAIN_H), Vec2(17.0, MAIN_H), WOOD, label="annex-partition-a")
    b.inner_wall(Vec2(18.2, MAIN_H), Vec2(MAIN_W, MAIN_H), WOOD, label="annex-partition-b")

    # --- Meeting room against the east brick wall (plaster = featureless;
    # door gap on the west side) ---------------------------------------------
    b.inner_wall(Vec2(18.5, 9.0), Vec2(MAIN_W, 9.0), PLASTER, label="meeting-south")
    b.inner_wall(Vec2(18.5, 12.5), Vec2(MAIN_W, 12.5), PLASTER, label="meeting-north")
    b.inner_wall(Vec2(18.5, 9.0), Vec2(18.5, 10.2), PLASTER, label="meeting-west-a")
    b.inner_wall(Vec2(18.5, 11.4), Vec2(18.5, 12.5), PLASTER, label="meeting-west-b")
    # Posters + a table inside the meeting room so photos taken inside can
    # register into the model (real meeting rooms are not empty boxes).
    b.decor(Vec2(19.2, 12.45), Vec2(20.8, 12.45), base_z=1.1, height=1.1, label="meeting-poster")
    b.furniture_box(19.6, 10.0, 21.2, 11.2, WOOD, height=0.75, label="meeting-table")

    # --- Bookshelf rows (0.5 m deep; interiors are unobservable, giving the
    # paper's "white empty areas ... sparse points inside a few obstacles") --
    for i, y in enumerate((2.0, 4.8, 7.6, 10.4)):
        b.furniture_box(6.5, y, 14.5, y + 0.5, BOOKSHELF, height=2.0, label=f"shelf-row-{i}")

    # --- Computer workstations along the east wall ---------------------------
    for i, y in enumerate((1.5, 4.0, 6.5)):
        b.furniture_box(19.8, y, 21.6, y + 1.5, DESK, height=1.1, label=f"workstation-{i}")

    # --- Lounge: sofas and the info desk -------------------------------------
    b.furniture_box(2.5, 1.8, 4.7, 2.8, FABRIC, height=0.9, label="sofa-a")
    b.furniture_box(1.8, 4.0, 2.8, 6.2, FABRIC, height=0.9, label="sofa-b")
    b.furniture_box(5.5, 0.8, 7.5, 1.6, WOOD, height=1.1, label="info-desk")

    # --- Reading tables (sparse tops -> the paper's "featureless parts of a
    # table" white spots); kept clear of the glass walls ----------------------
    b.furniture_box(9.8, 11.0, 11.2, 12.2, SPARSE_TABLE, height=0.75, label="table-north")
    b.furniture_box(3.4, 7.5, 4.8, 8.7, SPARSE_TABLE, height=0.75, label="table-west")
    b.furniture_box(18.5, 16.5, 20.0, 18.0, SPARSE_TABLE, height=0.75, label="table-annex")

    # --- Study corner in the open northwest area ------------------------------
    b.furniture_box(3.2, 11.0, 4.6, 12.2, WOOD, height=0.75, label="table-nw")

    # --- Window-side seating and a structural pillar (about 1 m clear of the
    # glass: visible in annotation photo sets, but off the wall line so they
    # do not stand in for the missing glass bounds) ----------------------------
    b.furniture_box(1.2, 9.4, 2.0, 10.2, FABRIC, height=0.9, label="armchair-w")
    b.furniture_box(1.3, 12.3, 1.9, 12.9, WOOD, height=1.6, label="plant-w")
    b.furniture_box(5.6, 12.3, 6.4, 13.1, FABRIC, height=0.9, label="armchair-n")
    b.furniture_box(12.6, 12.4, 13.2, 13.0, BRICK, height=2.7, label="pillar-n")

    # --- Annex interior ---------------------------------------------------------
    b.furniture_box(20.5, 14.8, 21.7, 16.2, DESK, height=1.1, label="annex-desk")

    outer = Polygon(
        [
            Vec2(0, 0),
            Vec2(MAIN_W, 0),
            Vec2(MAIN_W, ANNEX_MAX_Y),
            Vec2(ANNEX_MIN_X, ANNEX_MAX_Y),
            Vec2(ANNEX_MIN_X, MAIN_H),
            Vec2(0, MAIN_H),
        ]
    )

    hotspots = (
        Hotspot(Vec2(2.4, 1.2), 3.0, "entrance"),
        Hotspot(Vec2(3.6, 3.4), 2.0, "lounge"),
        Hotspot(Vec2(6.0, 2.4), 1.5, "info-desk"),
        Hotspot(Vec2(18.8, 4.7), 2.5, "workstations"),
        Hotspot(Vec2(10.5, 3.7), 1.5, "aisle-a"),
        Hotspot(Vec2(10.5, 6.4), 1.2, "aisle-b"),
        Hotspot(Vec2(17.9, 10.8), 1.0, "meeting-door"),
        Hotspot(Vec2(20.4, 9.6), 0.8, "meeting-room"),
        Hotspot(Vec2(10.5, 12.8), 1.0, "reading-tables"),
        Hotspot(Vec2(4.3, 9.6), 0.6, "west-corridor"),
        Hotspot(Vec2(19.2, 15.4), 0.15, "annex-room"),
    )

    return Venue(
        name="aalto-library-replica",
        outer=outer,
        surfaces=b.surfaces,
        furniture_footprints=b.furniture,
        entrance=Vec2(2.4, 0.9),
        hotspots=hotspots,
        inner_wall_footprints=b.inner_walls,
    )
