"""The capture simulator: what a smartphone photo records of the world.

Given a camera pose, the simulator computes which world features end up as
detectable SfM features in the image. The physics it models, in order:

1. **Range** — features too close or too far yield no stable detections.
2. **Field of view** — full pin-hole projection; features above/below the
   frame are culled by the projection itself.
3. **Incidence angle** — surfaces viewed at grazing angles produce no
   features (the mobile client asks users to face premises "at a
   perpendicular angle", Sec. III).
4. **Occlusion** — raycast against opaque surfaces. Glass is transparent,
   so cameras see *through* glass walls (and may record reflections).
5. **Detection dropout** — Bernoulli per feature with probability shaped
   by feature strength, distance and motion blur.

All per-photo work is vectorised over the whole feature world.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, Optional

import numpy as np

from ..config import CameraConfig, SfmConfig
from ..errors import CaptureError
from ..geometry import Vec2
from ..simkit.rng import RngStream
from ..venue.features import FeatureWorld
from .blur import detection_factor, render_patch
from .intrinsics import ExifMetadata, Intrinsics
from .photo import Photo
from .pose import CameraPose

#: Soft cap on detections per image, like a real detector's keypoint budget.
MAX_OBSERVATIONS_PER_PHOTO = 2400

#: Std-dev of keypoint localisation noise, in pixels.
PIXEL_NOISE_STD = 1.2


class CaptureSimulator:
    """Produces :class:`Photo` objects from camera poses in one venue."""

    def __init__(
        self,
        world: FeatureWorld,
        sfm_config: SfmConfig,
        camera_config: CameraConfig,
        rng: RngStream,
        venue_id: Optional[str] = None,
    ):
        self._world = world
        self._sfm = sfm_config
        self._camera = camera_config
        self._rng = rng
        self._venue_id = venue_id or world.venue.name
        self._photo_ids = itertools.count(1)
        self._soup = world.venue.opaque_soup
        self._cos_max_incidence = math.cos(math.radians(sfm_config.max_incidence_deg))
        # Transparent (glass) panes for the backlight exposure model.
        from ..geometry import SegmentSoup
        from ..venue.surfaces import SurfaceKind

        glass = [
            s
            for s in world.venue.surfaces
            if not s.material.opaque and s.kind != SurfaceKind.DECOR
        ]
        self._glass_soup = SegmentSoup([s.segment for s in glass])
        # Eye-level backlight blockers: opaque surfaces tall enough to
        # shield the camera from a window behind them.
        tall = [
            s
            for s in world.venue.surfaces
            if s.material.opaque
            and s.kind != SurfaceKind.DECOR
            and s.top_z >= 1.4
        ]
        self._tall_soup = SegmentSoup([s.segment for s in tall])

    @property
    def world(self) -> FeatureWorld:
        return self._world

    @property
    def venue_id(self) -> str:
        return self._venue_id

    def take_photo(
        self,
        pose: CameraPose,
        intrinsics: Intrinsics,
        blur: float = 0.05,
        timestamp_s: float = 0.0,
        source: str = "unknown",
        exposure_compensated: bool = False,
    ) -> Photo:
        """Capture one photo at ``pose`` with the given motion ``blur``.

        ``exposure_compensated`` disables the backlight penalty — a
        deliberate capture where the photographer meters on the subject
        (tap-to-expose), as annotation participants do when photographing
        glass surfaces.
        """
        if not 0.0 <= blur <= 1.0:
            raise CaptureError(f"blur must be in [0, 1], got {blur}")
        photo_id = next(self._photo_ids)
        photo_rng = self._rng.child(f"photo-{photo_id}")

        feature_idx, pixels = self._visible_features(
            pose, intrinsics, blur, photo_rng, exposure_compensated
        )
        exif = ExifMetadata(
            device_model=intrinsics.device_model,
            focal_length_px=intrinsics.focal_length_px,
            image_width_px=intrinsics.image_width_px,
            image_height_px=intrinsics.image_height_px,
            timestamp_s=timestamp_s,
            venue_id=self._venue_id,
        )
        patch = render_patch(blur, photo_rng.child("patch"), self._camera.patch_size_px)
        return Photo(
            photo_id=photo_id,
            exif=exif,
            true_pose=pose,
            feature_ids=self._world.ids[feature_idx],
            pixels_uv=pixels,
            patch=patch,
            source=source,
        )

    # -- internals ------------------------------------------------------------

    def _visible_features(
        self,
        pose: CameraPose,
        intrinsics: Intrinsics,
        blur: float,
        photo_rng: RngStream,
        exposure_compensated: bool = False,
    ):
        """Indices of detected features plus their noisy pixel coordinates."""
        pos = self._world.positions
        cx, cy, ch = pose.position.x, pose.position.y, pose.height_m
        dx = pos[:, 0] - cx
        dy = pos[:, 1] - cy
        dist = np.hypot(dx, dy)

        mask = (dist >= self._sfm.min_feature_range_m) & (dist <= self._sfm.max_feature_range_m)
        if not mask.any():
            return np.zeros(0, dtype=int), np.zeros((0, 2))

        # Pin-hole projection (matches geometry.transforms.PinholeProjection).
        cos_y, sin_y = math.cos(pose.yaw_rad), math.sin(pose.yaw_rad)
        z_fwd = dx * cos_y + dy * sin_y
        x_right = -dx * sin_y + dy * cos_y
        down = ch - pos[:, 2]
        mask &= z_fwd > 0.15
        with np.errstate(divide="ignore", invalid="ignore"):
            u = intrinsics.image_width_px / 2.0 + intrinsics.focal_length_px * x_right / z_fwd
            v = intrinsics.image_height_px / 2.0 + intrinsics.focal_length_px * down / z_fwd
        mask &= (u >= 0) & (u < intrinsics.image_width_px)
        mask &= (v >= 0) & (v < intrinsics.image_height_px)

        # Incidence-angle culling on the floor plane.
        with np.errstate(divide="ignore", invalid="ignore"):
            view_x = dx / np.maximum(dist, 1e-9)
            view_y = dy / np.maximum(dist, 1e-9)
        normals = self._world.normals
        cos_inc = np.abs(view_x * normals[:, 0] + view_y * normals[:, 1])
        mask &= cos_inc >= self._min_cos_incidence()

        candidates = np.nonzero(mask)[0]
        if candidates.size == 0:
            return np.zeros(0, dtype=int), np.zeros((0, 2))

        # Detection dropout before the (more expensive) occlusion raycast.
        exposure = 1.0 if exposure_compensated else self._exposure_factor(pose)
        p = (
            self._sfm.base_detection_prob
            * self._world.strengths[candidates]
            * np.exp(-self._sfm.range_falloff * np.maximum(dist[candidates] - 1.0, 0.0))
            * detection_factor(blur)
            * exposure
        )
        detected = candidates[photo_rng.child("detect").uniform_array(candidates.size) < p]
        if detected.size == 0:
            return np.zeros(0, dtype=int), np.zeros((0, 2))

        visible_mask = self._soup.visible(
            Vec2(cx, cy),
            pos[detected, :2],
            target_margin=5e-3,
            origin_z=ch,
            target_z=pos[detected, 2],
        )
        visible = detected[visible_mask]
        if visible.size > MAX_OBSERVATIONS_PER_PHOTO:
            keep = photo_rng.child("cap").permutation(visible.size)[:MAX_OBSERVATIONS_PER_PHOTO]
            visible = visible[np.sort(keep)]

        noise = photo_rng.child("pixel").normal_array((visible.size, 2), 0.0, PIXEL_NOISE_STD)
        pixels = np.stack([u[visible], v[visible]], axis=1) + noise
        return visible, pixels

    def _min_cos_incidence(self) -> float:
        return math.cos(math.radians(self._sfm.max_incidence_deg))

    def _exposure_factor(self, pose: CameraPose) -> float:
        """Backlight penalty: glass-dominated frames lose contrast.

        Daylight behind "large transparent glass panels" overwhelms a
        phone camera's exposure; the darkened interior yields far fewer
        features. The penalty grows with the fraction of the FOV whose
        first surface hit is a transparent pane.
        """
        strength = self._sfm.backlight_strength
        if strength <= 0 or len(self._glass_soup) == 0:
            return 1.0
        n_rays = 13
        half = self._camera.hfov_rad / 2.0
        glassy = 0
        for i in range(n_rays):
            bearing = pose.yaw_rad - half + (2.0 * half) * i / (n_rays - 1)
            direction = Vec2.from_angle(bearing)
            glass_hit = self._glass_soup.first_hit(
                pose.position, direction, self._sfm.max_feature_range_m
            )
            if glass_hit is None:
                continue
            opaque_hit = self._tall_soup.first_hit(
                pose.position, direction, self._sfm.max_feature_range_m
            )
            if opaque_hit is None or glass_hit[0] < opaque_hit[0]:
                glassy += 1
        fraction = glassy / n_rays
        return 1.0 - strength * fraction ** 1.5

    def sweep(
        self,
        center: Vec2,
        intrinsics: Intrinsics,
        step_deg: float,
        blur: float = 0.04,
        start_timestamp_s: float = 0.0,
        interval_s: float = 1.0,
        source: str = "guided",
        height_m: float = 1.5,
        start_deg: float = 0.0,
    ) -> Iterator[Photo]:
        """The guided 360° capture: one photo every ``step_deg`` degrees."""
        from .pose import sweep_poses

        for i, pose in enumerate(sweep_poses(center, step_deg, height_m, start_deg)):
            yield self.take_photo(
                pose,
                intrinsics,
                blur=blur,
                timestamp_s=start_timestamp_s + i * interval_s,
                source=source,
            )
