"""Motion blur and the variation-of-the-Laplacian sharpness measure.

The backend "uses variation of the Laplacian to calculate the blurriness
of the photos, as blurry photos cannot be used for 3D reconstruction"
(Sec. IV-A, citing Pech-Pacheco et al.). The same measure drives the
opportunistic pipeline's sliding-window sharpest-frame extraction
(Sec. V-B1).

Simulated photos carry a small rendered grayscale patch: a fixed-contrast
synthetic scene convolved with a motion-blur kernel whose width grows with
the camera's motion during exposure. Variance-of-Laplacian is computed on
that patch with a real 3x3 Laplacian convolution, so the quality check
operates on actual pixels, not on privileged simulator state.
"""

from __future__ import annotations

import numpy as np

from ..errors import CaptureError
from ..simkit.rng import RngStream

#: 3x3 discrete Laplacian kernel (4-neighbour).
LAPLACIAN_KERNEL = np.array([[0.0, 1.0, 0.0], [1.0, -4.0, 1.0], [0.0, 1.0, 0.0]])


def convolve2d_same(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Plain 'same'-size 2-D convolution with edge-replicate padding (no scipy)."""
    image = np.asarray(image, dtype=float)
    kernel = np.asarray(kernel, dtype=float)
    kh, kw = kernel.shape
    ph, pw = kh // 2, kw // 2
    padded = np.pad(image, ((ph, ph), (pw, pw)), mode="edge")
    out = np.zeros_like(image)
    for i in range(kh):
        for j in range(kw):
            out += kernel[i, j] * padded[i : i + image.shape[0], j : j + image.shape[1]]
    return out


def variance_of_laplacian(image: np.ndarray) -> float:
    """Blurriness score: higher = sharper (Pech-Pacheco et al., 2000)."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2 or min(image.shape) < 3:
        raise CaptureError("variance_of_laplacian needs a 2-D image >= 3x3")
    return float(convolve2d_same(image, LAPLACIAN_KERNEL).var())


def motion_blur_kernel(blur: float, max_width: int = 9) -> np.ndarray:
    """Horizontal box kernel whose width grows with ``blur`` in [0, 1]."""
    if not 0.0 <= blur <= 1.0:
        raise CaptureError(f"blur must be in [0, 1], got {blur}")
    width = 1 + int(round(blur * (max_width - 1)))
    kernel = np.zeros((1, width))
    kernel[0, :] = 1.0 / width
    return kernel


def render_patch(blur: float, rng: RngStream, size: int = 24) -> np.ndarray:
    """Render the photo's sharpness patch.

    The underlying scene has fixed contrast (a random high-frequency
    texture); only motion blur degrades it. This mirrors reality: a photo
    of a glass wall is still *sharp* — its problem is lack of SfM features,
    which is a separate failure mode handled by the annotation path, not by
    the photo-quality check.
    """
    if size < 3:
        raise CaptureError("patch size must be >= 3")
    scene = rng.uniform_array((size, size), 0.0, 1.0)
    blurred = convolve2d_same(scene, motion_blur_kernel(blur))
    # Mild sensor noise so identical blur levels do not yield identical scores.
    noisy = blurred + rng.normal_array((size, size), 0.0, 0.004)
    return np.clip(noisy, 0.0, 1.0)


def detection_factor(blur: float) -> float:
    """Fraction of features a detector still finds at a given blur level.

    Quadratic falloff: light shake barely matters, heavy motion blur kills
    feature extraction.
    """
    if not 0.0 <= blur <= 1.0:
        raise CaptureError(f"blur must be in [0, 1], got {blur}")
    return (1.0 - blur) ** 2
