"""Camera intrinsics and EXIF-style metadata.

The paper relies on photo EXIF data: "To calculate camera's field-of-view
and its visibility coverage, a camera pose information is typically
combined with a focal length from the photo EXIF metadata" (Sec. II-A),
and Algorithm 1 requires that "each photo is expected to contain regular
EXIF metadata as well as a venue identifier". The simulated photos carry
the same metadata so the backend computes FOV from EXIF rather than from
privileged simulator state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import CameraConfig
from ..errors import CaptureError


@dataclass(frozen=True)
class Intrinsics:
    """Pin-hole intrinsics of one device model."""

    device_model: str
    focal_length_px: float
    image_width_px: int
    image_height_px: int

    def __post_init__(self) -> None:
        if self.focal_length_px <= 0:
            raise CaptureError("focal length must be positive")
        if self.image_width_px <= 0 or self.image_height_px <= 0:
            raise CaptureError("image dimensions must be positive")

    @property
    def hfov_rad(self) -> float:
        """Horizontal field of view implied by focal length and width."""
        return 2.0 * math.atan((self.image_width_px / 2.0) / self.focal_length_px)

    @property
    def hfov_deg(self) -> float:
        return math.degrees(self.hfov_rad)

    @property
    def vfov_rad(self) -> float:
        return 2.0 * math.atan((self.image_height_px / 2.0) / self.focal_length_px)

    @staticmethod
    def from_config(config: CameraConfig, device_model: str = "sim-phone") -> "Intrinsics":
        return Intrinsics(
            device_model=device_model,
            focal_length_px=config.focal_length_px,
            image_width_px=config.image_width_px,
            image_height_px=config.image_height_px,
        )


@dataclass(frozen=True)
class ExifMetadata:
    """The subset of EXIF the SnapTask backend consumes."""

    device_model: str
    focal_length_px: float
    image_width_px: int
    image_height_px: int
    timestamp_s: float
    venue_id: str

    def intrinsics(self) -> Intrinsics:
        """Recover intrinsics from the metadata (what the backend does)."""
        return Intrinsics(
            device_model=self.device_model,
            focal_length_px=self.focal_length_px,
            image_width_px=self.image_width_px,
            image_height_px=self.image_height_px,
        )


# The paper's experiment devices (Sec. V-B): values are representative
# smartphone main-camera parameters, not manufacturer data.
GALAXY_S7 = Intrinsics("Samsung Galaxy S7", focal_length_px=3080.0, image_width_px=4032, image_height_px=3024)
IPHONE_7 = Intrinsics("Apple iPhone 7", focal_length_px=3180.0, image_width_px=4032, image_height_px=3024)
NEXUS_5 = Intrinsics("LG Nexus 5", focal_length_px=2620.0, image_width_px=3264, image_height_px=2448)

DEVICE_PRESETS = {d.device_model: d for d in (GALAXY_S7, IPHONE_7, NEXUS_5)}
