"""Camera substrate: intrinsics/EXIF, poses, blur model, capture simulator."""

from .blur import (
    LAPLACIAN_KERNEL,
    convolve2d_same,
    detection_factor,
    motion_blur_kernel,
    render_patch,
    variance_of_laplacian,
)
from .capture import MAX_OBSERVATIONS_PER_PHOTO, PIXEL_NOISE_STD, CaptureSimulator
from .intrinsics import (
    DEVICE_PRESETS,
    GALAXY_S7,
    IPHONE_7,
    NEXUS_5,
    ExifMetadata,
    Intrinsics,
)
from .photo import Observation, Photo
from .pose import CameraPose, sweep_poses

__all__ = [
    "CameraPose",
    "CaptureSimulator",
    "DEVICE_PRESETS",
    "ExifMetadata",
    "GALAXY_S7",
    "IPHONE_7",
    "Intrinsics",
    "LAPLACIAN_KERNEL",
    "MAX_OBSERVATIONS_PER_PHOTO",
    "NEXUS_5",
    "Observation",
    "PIXEL_NOISE_STD",
    "Photo",
    "convolve2d_same",
    "detection_factor",
    "motion_blur_kernel",
    "render_patch",
    "sweep_poses",
    "variance_of_laplacian",
]
