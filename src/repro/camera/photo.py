"""The Photo artifact exchanged between clients and the backend.

A photo bundles exactly what a real uploaded JPEG would give the SnapTask
backend after feature extraction: per-feature observations (stable feature
ids + pixel coordinates), EXIF metadata, and enough pixels to score
sharpness. The true camera pose is carried for simulation bookkeeping but
is *not* consumed by the reconstruction path — the SfM simulator recovers
poses with noise, like a real pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import CaptureError
from .blur import variance_of_laplacian
from .intrinsics import ExifMetadata
from .pose import CameraPose


@dataclass(frozen=True)
class Observation:
    """One detected feature in one photo."""

    feature_id: int
    pixel_u: float
    pixel_v: float


class Photo:
    """An uploaded photo, as seen by the backend."""

    def __init__(
        self,
        photo_id: int,
        exif: ExifMetadata,
        true_pose: CameraPose,
        feature_ids: np.ndarray,
        pixels_uv: np.ndarray,
        patch: np.ndarray,
        source: str = "unknown",
    ):
        if feature_ids.shape[0] != pixels_uv.shape[0]:
            raise CaptureError("feature ids and pixel coordinates must align")
        self._photo_id = photo_id
        self._exif = exif
        self._true_pose = true_pose
        self._feature_ids = np.asarray(feature_ids, dtype=int)
        self._pixels_uv = np.asarray(pixels_uv, dtype=float).reshape(-1, 2)
        self._patch = patch
        self._source = source
        self._sharpness: Optional[float] = None

    # -- identity -----------------------------------------------------------

    @property
    def photo_id(self) -> int:
        return self._photo_id

    def __hash__(self) -> int:
        return hash(self._photo_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Photo) and other._photo_id == self._photo_id

    def __repr__(self) -> str:
        return (
            f"Photo(id={self._photo_id}, source={self._source!r}, "
            f"features={len(self._feature_ids)})"
        )

    # -- payload --------------------------------------------------------------

    @property
    def exif(self) -> ExifMetadata:
        return self._exif

    @property
    def true_pose(self) -> CameraPose:
        """Simulation ground truth; not used by the reconstruction path."""
        return self._true_pose

    @property
    def feature_ids(self) -> np.ndarray:
        return self._feature_ids

    @property
    def pixels_uv(self) -> np.ndarray:
        return self._pixels_uv

    @property
    def patch(self) -> np.ndarray:
        return self._patch

    @property
    def source(self) -> str:
        return self._source

    @property
    def n_features(self) -> int:
        return int(self._feature_ids.shape[0])

    def feature_id_set(self) -> frozenset:
        return frozenset(int(f) for f in self._feature_ids)

    def pixel_of(self, feature_id: int) -> Tuple[float, float]:
        """Pixel coordinates of a feature observed in this photo."""
        idx = np.nonzero(self._feature_ids == feature_id)[0]
        if idx.size == 0:
            raise CaptureError(f"feature {feature_id} not observed in photo {self._photo_id}")
        u, v = self._pixels_uv[int(idx[0])]
        return float(u), float(v)

    def sharpness(self) -> float:
        """Variance-of-Laplacian of the rendered patch (cached)."""
        if self._sharpness is None:
            self._sharpness = variance_of_laplacian(self._patch)
        return self._sharpness

    def with_extra_observations(
        self, feature_ids: np.ndarray, pixels_uv: np.ndarray, suffix: str
    ) -> "Photo":
        """A copy with additional observations (Algorithm 6 texture imprint).

        The copy keeps the same photo id: imprinting textures modifies the
        image in place in the paper's pipeline ("we use imagemagick to
        project a generated 2D image on each marked photo").
        """
        combined_ids = np.concatenate([self._feature_ids, np.asarray(feature_ids, dtype=int)])
        combined_uv = np.vstack([self._pixels_uv, np.asarray(pixels_uv, dtype=float).reshape(-1, 2)])
        photo = Photo(
            photo_id=self._photo_id,
            exif=self._exif,
            true_pose=self._true_pose,
            feature_ids=combined_ids,
            pixels_uv=combined_uv,
            patch=self._patch,
            source=f"{self._source}+{suffix}",
        )
        return photo
