"""Camera poses.

"The camera pose refers to a position and facing direction of a camera
that took the photo" (Sec. II-A). Poses are upright (no roll/pitch) at a
fixed capture height, which matches hand-held phone capture and keeps the
occlusion model on the floor plane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..geometry import PinholeProjection, Vec2, Vec3, angle_difference
from .intrinsics import Intrinsics


@dataclass(frozen=True)
class CameraPose:
    """Position + facing direction of one capture."""

    position: Vec2
    yaw_rad: float
    height_m: float = 1.5

    @property
    def position3(self) -> Vec3:
        return Vec3(self.position.x, self.position.y, self.height_m)

    @property
    def forward(self) -> Vec2:
        return Vec2.from_angle(self.yaw_rad)

    def facing(self, target: Vec2) -> "CameraPose":
        """Same position, rotated to face ``target``."""
        rel = target - self.position
        return replace(self, yaw_rad=rel.angle())

    def rotated(self, delta_rad: float) -> "CameraPose":
        return replace(self, yaw_rad=_wrap_angle(self.yaw_rad + delta_rad))

    def translated(self, offset: Vec2) -> "CameraPose":
        return replace(self, position=self.position + offset)

    def bearing_to(self, p: Vec2) -> float:
        """Signed angle from the optical axis to floor point ``p``."""
        return angle_difference((p - self.position).angle(), self.yaw_rad)

    def distance_to(self, p: Vec2) -> float:
        return self.position.distance_to(p)

    def projection(self, intrinsics: Intrinsics) -> PinholeProjection:
        return PinholeProjection(
            position=self.position3,
            yaw_rad=self.yaw_rad,
            focal_px=intrinsics.focal_length_px,
            image_width_px=intrinsics.image_width_px,
            image_height_px=intrinsics.image_height_px,
        )

    @staticmethod
    def at(x: float, y: float, yaw_rad: float = 0.0, height_m: float = 1.5) -> "CameraPose":
        return CameraPose(Vec2(x, y), _wrap_angle(yaw_rad), height_m)


def _wrap_angle(angle: float) -> float:
    """Wrap to (-pi, pi]."""
    wrapped = angle % (2.0 * math.pi)
    if wrapped > math.pi:
        wrapped -= 2.0 * math.pi
    return wrapped


def sweep_poses(
    center: Vec2,
    step_deg: float,
    height_m: float = 1.5,
    start_deg: float = 0.0,
) -> list:
    """Poses for the guided 360° capture.

    "The user is asked to slowly move around 360 degrees. Every 8 degrees
    the phone automatically captures an image" (Sec. III).
    """
    if step_deg <= 0:
        raise ValueError("step_deg must be positive")
    n = int(round(360.0 / step_deg))
    return [
        CameraPose(center, _wrap_angle(math.radians(start_deg + i * step_deg)), height_m)
        for i in range(n)
    ]
