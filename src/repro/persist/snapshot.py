"""Checkpointing: periodic deep-copy snapshots of backend state.

A checkpoint is one :func:`~.fastcopy.fast_deepcopy` of the backend's
``export_state()`` dict — a single memo pass with deepcopy semantics,
so objects shared inside the live graph (e.g. a Task sitting in both
the dispatch queue and the store ledger) stay shared in the copy. The
copy is cheap by construction: the heavyweight leaves all opt out
structurally —

* telemetry instruments and the tracer copy as themselves (live
  process-lifetime handles, see ``obs.metrics`` / ``obs.tracing``),
* the venue and feature world copy as themselves (write-once geometry),
* the columnar SfM store's append arrays memcpy via numpy,
* pipeline batch history is trimmed to its last entry for the copy's
  duration (``SnapTaskPipeline.compact_history``).

Snapshot cadence is counted in *committed batches* (the unit of real
state growth), not sim seconds, so an idle backend takes no
checkpoints.

The store is **multi-generation**: the newest ``retain`` checkpoints
plus the genesis image (generation 0, WAL position 0) are kept, each
carrying a *seal* — a CRC-framed canonical-JSON projection of its state
(see :mod:`repro.persist.digest`). Recovery verifies generations newest
first, quarantining any whose seal is unreadable or whose state graph
no longer matches it, and falls back to the next older generation with
a longer WAL-suffix replay; keeping genesis guarantees the deepest rung
of that ladder is a full WAL-only replay.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..obs.metrics import NULL_REGISTRY
from ..obs.wallclock import wall_now_s
from .codec import decode_seal, encode_seal
from .digest import canonical_state_bytes
from .fastcopy import fast_deepcopy

__all__ = ["Snapshot", "Snapshotter", "verify_snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """One checkpoint: a state image, its WAL position, and its seal."""

    seq: int
    sim_time: float
    wal_position: int
    state: Dict[str, object] = field(repr=False)
    seal: bytes = field(repr=False, default=b"")

    @property
    def digest(self) -> str:
        """SHA-256 of the seal bytes (stable id for reports)."""
        return hashlib.sha256(self.seal).hexdigest()


def verify_snapshot(snapshot: Snapshot) -> Optional[str]:
    """Damage reason for a snapshot generation, or ``None`` when clean.

    Two rungs: (a) structural — the seal frame must decode (catches
    truncation and byte flips via length + CRC); (b) semantic — the
    canonical projection recomputed from the stored state graph must
    equal the seal body byte-for-byte (catches tampering of the object
    graph itself, which no frame checksum over the seal can see).
    """
    body = decode_seal(snapshot.seal)
    if body is None:
        return "seal unreadable (truncated or corrupt frame)"
    try:
        current = canonical_state_bytes(snapshot.state)
    except Exception as exc:  # projection walks the whole graph
        return f"state graph undigestable: {exc!r}"
    if current != body:
        return "state/seal digest mismatch"
    return None


def structural_size(state: Dict[str, object]) -> int:
    """Deterministic entry-count proxy for a snapshot's size.

    Counts the growing collections of the state graph (tasks, results,
    ledgers, GC queue, archive, service order). Sim-deterministic, so it
    may feed a digested histogram — byte sizes would depend on host
    pointer widths and allocator behaviour.
    """
    store = state["_store"]
    size = store.recorded_task_count() + store.archived_batch_count()
    size += len(state["_task_queue"])
    size += len(state["_result_log"])
    size += len(state["_request_ledger"]) + len(state["_batch_ledger"])
    size += len(state["_gc_queue"]) + len(state["_service_order"])
    return size


class Snapshotter:
    """Takes and retains backend checkpoints on a commit cadence."""

    def __init__(
        self, wal, every_batches: int = 8, metrics=NULL_REGISTRY, retain: int = 3
    ):
        if every_batches < 1:
            raise ValueError("snapshot cadence must be >= 1 committed batch")
        if retain < 1:
            raise ValueError("snapshot retention must keep >= 1 generation")
        self._wal = wal
        self._every = every_batches
        self._retain = retain
        self._commits_since = 0
        self._next_seq = 0
        self._snapshots: List[Snapshot] = []
        self._m_snapshots = metrics.counter("repro.persist.snapshots")
        self._m_pruned = metrics.counter("repro.persist.snapshots_pruned")
        self._h_size = metrics.histogram(
            "repro.persist.snapshot.size", base=8.0, growth=2.0
        )
        self._h_wall = metrics.histogram(
            "repro.persist.wall.snapshot_s", base=0.001, growth=2.0
        )

    @property
    def latest(self) -> Optional[Snapshot]:
        return self._snapshots[-1] if self._snapshots else None

    @property
    def count(self) -> int:
        """Number of generations currently retained."""
        return len(self._snapshots)

    @property
    def taken(self) -> int:
        """Total checkpoints ever taken (pruning does not rewind this)."""
        return self._next_seq

    @property
    def every_batches(self) -> int:
        return self._every

    @property
    def retain(self) -> int:
        return self._retain

    def generations(self) -> List[Snapshot]:
        """Retained generations, newest first (the recovery ladder order)."""
        return list(reversed(self._snapshots))

    def get(self, seq: int) -> Optional[Snapshot]:
        for snap in self._snapshots:
            if snap.seq == seq:
                return snap
        return None

    def replace_generation(self, seq: int, snapshot: Snapshot) -> None:
        """Swap one retained generation in place (crash injection)."""
        for i, snap in enumerate(self._snapshots):
            if snap.seq == seq:
                self._snapshots[i] = snapshot
                return
        raise KeyError(f"no retained snapshot generation {seq}")

    def quarantine(self, seq: int) -> int:
        """Drop a damaged generation; returns its seal bytes quarantined."""
        for i, snap in enumerate(self._snapshots):
            if snap.seq == seq:
                del self._snapshots[i]
                return len(snap.seal)
        return 0

    def damage_seal(self, seq: int, new_seal: bytes) -> None:
        """Corrupt a generation's seal bytes (crash injection)."""
        snap = self.get(seq)
        if snap is None:
            raise KeyError(f"no retained snapshot generation {seq}")
        self.replace_generation(seq, replace(snap, seal=new_seal))

    def note_commit(self, server, sim_time: float) -> Optional[Snapshot]:
        """Count one committed batch; checkpoint when the cadence is due."""
        self._commits_since += 1
        if self._commits_since < self._every:
            return None
        return self.checkpoint(server, sim_time)

    def checkpoint(self, server, sim_time: float) -> Snapshot:
        """Capture one sealed snapshot of ``server`` at the WAL position."""
        t0 = wall_now_s()
        with server.pipeline.compact_history():
            state = fast_deepcopy(server.export_state())
        snapshot = Snapshot(
            seq=self._next_seq,
            sim_time=sim_time,
            wal_position=self._wal.position,
            state=state,
            seal=encode_seal(canonical_state_bytes(state)),
        )
        self._next_seq += 1
        self._snapshots.append(snapshot)
        self._commits_since = 0
        self._m_snapshots.inc()
        self._h_size.record(structural_size(state))
        self._h_wall.record(wall_now_s() - t0)
        self._prune()
        return snapshot

    def _prune(self) -> None:
        """Keep genesis (generation 0) plus the newest ``retain`` images."""
        if len(self._snapshots) <= self._retain:
            return
        keep_tail = self._snapshots[-self._retain:]
        genesis = [
            s for s in self._snapshots[: -self._retain] if s.seq == 0
        ]
        pruned = len(self._snapshots) - len(genesis) - len(keep_tail)
        if pruned > 0:
            self._m_pruned.inc(pruned)
        self._snapshots = genesis + keep_tail
