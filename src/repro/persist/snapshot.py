"""Checkpointing: periodic deep-copy snapshots of backend state.

A checkpoint is one :func:`~.fastcopy.fast_deepcopy` of the backend's
``export_state()`` dict — a single memo pass with deepcopy semantics,
so objects shared inside the live graph (e.g. a Task sitting in both
the dispatch queue and the store ledger) stay shared in the copy. The
copy is cheap by construction: the heavyweight leaves all opt out
structurally —

* telemetry instruments and the tracer copy as themselves (live
  process-lifetime handles, see ``obs.metrics`` / ``obs.tracing``),
* the venue and feature world copy as themselves (write-once geometry),
* the columnar SfM store's append arrays memcpy via numpy,
* pipeline batch history is trimmed to its last entry for the copy's
  duration (``SnapTaskPipeline.compact_history``).

Snapshot cadence is counted in *committed batches* (the unit of real
state growth), not sim seconds, so an idle backend takes no
checkpoints. Recovery pairs the latest snapshot with the WAL suffix
past its ``wal_position``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs.metrics import NULL_REGISTRY
from ..obs.wallclock import wall_now_s
from .fastcopy import fast_deepcopy

__all__ = ["Snapshot", "Snapshotter"]


@dataclass(frozen=True)
class Snapshot:
    """One checkpoint: a state image and the WAL position it covers."""

    seq: int
    sim_time: float
    wal_position: int
    state: Dict[str, object] = field(repr=False)


def structural_size(state: Dict[str, object]) -> int:
    """Deterministic entry-count proxy for a snapshot's size.

    Counts the growing collections of the state graph (tasks, results,
    ledgers, GC queue, archive, service order). Sim-deterministic, so it
    may feed a digested histogram — byte sizes would depend on host
    pointer widths and allocator behaviour.
    """
    store = state["_store"]
    size = store.recorded_task_count() + store.archived_batch_count()
    size += len(state["_task_queue"])
    size += len(state["_result_log"])
    size += len(state["_request_ledger"]) + len(state["_batch_ledger"])
    size += len(state["_gc_queue"]) + len(state["_service_order"])
    return size


class Snapshotter:
    """Takes and retains backend checkpoints on a commit cadence."""

    def __init__(self, wal, every_batches: int = 8, metrics=NULL_REGISTRY):
        if every_batches < 1:
            raise ValueError("snapshot cadence must be >= 1 committed batch")
        self._wal = wal
        self._every = every_batches
        self._commits_since = 0
        self._snapshots: List[Snapshot] = []
        self._m_snapshots = metrics.counter("repro.persist.snapshots")
        self._h_size = metrics.histogram(
            "repro.persist.snapshot.size", base=8.0, growth=2.0
        )
        self._h_wall = metrics.histogram(
            "repro.persist.wall.snapshot_s", base=0.001, growth=2.0
        )

    @property
    def latest(self) -> Optional[Snapshot]:
        return self._snapshots[-1] if self._snapshots else None

    @property
    def count(self) -> int:
        return len(self._snapshots)

    @property
    def every_batches(self) -> int:
        return self._every

    def note_commit(self, server, sim_time: float) -> Optional[Snapshot]:
        """Count one committed batch; checkpoint when the cadence is due."""
        self._commits_since += 1
        if self._commits_since < self._every:
            return None
        return self.checkpoint(server, sim_time)

    def checkpoint(self, server, sim_time: float) -> Snapshot:
        """Capture one snapshot of ``server`` at the current WAL position."""
        t0 = wall_now_s()
        with server.pipeline.compact_history():
            state = fast_deepcopy(server.export_state())
        snapshot = Snapshot(
            seq=len(self._snapshots),
            sim_time=sim_time,
            wal_position=self._wal.position,
            state=state,
        )
        self._snapshots.append(snapshot)
        self._commits_since = 0
        self._m_snapshots.inc()
        self._h_size.record(structural_size(state))
        self._h_wall.record(wall_now_s() - t0)
        return snapshot
