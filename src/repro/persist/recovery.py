"""Recovery: verified snapshot + WAL replay -> a fresh, live backend.

Recovery is a **verify-then-fallback ladder** over the retained
snapshot generations (DESIGN §10), newest first:

1. Verify the generation's seal — structural (frame CRC/length) and
   semantic (recompute the canonical state projection, compare to the
   seal body byte-for-byte).
2. On damage: quarantine the generation (drop it from the store, count
   its bytes) and step down to the next older generation — which costs
   a longer WAL-suffix replay, nothing more.
3. The genesis image (generation 0, WAL position 0) is the deepest
   rung: recovering from it is a full WAL-only replay.
4. If *every* generation is damaged, recovery fails closed with a
   structured :class:`~repro.errors.UnrecoverableStateError` carrying
   the quarantine report — never a silently wrong state.

Restoring one generation (unchanged from the happy path):

1. Deep-copy the snapshot image (the stored image stays pristine, which
   is what makes recovery re-runnable — and auditable).
2. Construct a fresh :class:`BackendServer` on the live simulator and
   install the copied state graph.
3. Replay the WAL suffix past the snapshot's position through
   ``replay_record`` — the real handlers, replay clock pinned to each
   record's commit time, persistence detached (no re-logging).
4. Drop in-flight remnants (admitted-but-uncommitted batches died with
   the process; clients retransmit them).
5. Re-arm one lease-reap timer per surviving lease at
   ``max(expires_at, now)``.

The optional audit performs steps 1–4 a second time into a throwaway
server (never armed, never attached to the simulator's future) and
compares logical digests — the recovered-state *idempotency* half of
the equivalence invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import PersistenceError, UnrecoverableStateError
from ..obs.metrics import NULL_REGISTRY
from ..obs.wallclock import wall_now_s
from .digest import state_digest
from .fastcopy import fast_deepcopy
from .snapshot import Snapshot, Snapshotter, verify_snapshot

__all__ = ["RecoveryManager", "RecoveryResult"]


@dataclass(frozen=True)
class RecoveryResult:
    """What one recovery did, for reports and invariant checks."""

    server: object
    snapshot_seq: int
    replayed_records: int
    dropped_remnants: int
    armed_leases: int
    digest: str
    audit_digest: Optional[str] = None
    #: Ladder bookkeeping: generations examined (1 = newest was clean),
    #: the damaged generation seqs quarantined on the way down with the
    #: reasons verification gave, and their seal bytes quarantined.
    generations_tried: int = 1
    quarantined_seqs: Tuple[int, ...] = ()
    quarantine_reasons: Tuple[str, ...] = ()
    quarantined_bytes: int = 0

    @property
    def audit_ok(self) -> bool:
        """True when no audit ran or the audit digest matched."""
        return self.audit_digest is None or self.audit_digest == self.digest

    @property
    def fallback(self) -> bool:
        """True when the newest generation was rejected."""
        return self.generations_tried > 1


class RecoveryManager:
    """Restores a backend from a (snapshot store, WAL) media pair."""

    def __init__(self, wal, snapshots, metrics=NULL_REGISTRY):
        if snapshots is None:
            raise PersistenceError("cannot recover without a snapshot (genesis missing)")
        if isinstance(snapshots, Snapshot):
            # Single-image convenience: wrap it as a one-rung ladder.
            self._generations: List[Snapshot] = [snapshots]
            self._store: Optional[Snapshotter] = None
        else:
            self._generations = snapshots.generations()
            self._store = snapshots
        if not self._generations:
            raise PersistenceError("cannot recover without a snapshot (genesis missing)")
        self._wal = wal
        self._h_replay = metrics.histogram(
            "repro.persist.recovery.replay_records", base=1.0, growth=2.0
        )
        self._h_wall = metrics.histogram(
            "repro.persist.wall.recovery_s", base=0.001, growth=2.0
        )
        self._h_generations = metrics.histogram(
            "repro.persist.recovery.generations_tried", base=1.0, growth=2.0
        )
        self._m_quarantined = metrics.counter(
            "repro.persist.recovery.quarantined_snapshots"
        )
        self._m_quarantined_bytes = metrics.counter(
            "repro.persist.recovery.quarantined_bytes"
        )
        self._m_fallbacks = metrics.counter("repro.persist.recovery.fallbacks")
        self._m_failed_closed = metrics.counter("repro.persist.recovery.failed_closed")

    def _verify(self, snapshot: Snapshot) -> Optional[str]:
        """Damage reason or None. (The skip-digest-verify mutation's
        patch point: bypassing this must be caught by the DST
        recovery-integrity invariant.)"""
        return verify_snapshot(snapshot)

    def recover(self, simulator, audit: bool = False) -> RecoveryResult:
        """Ladder-restore onto ``simulator``; optionally audit.

        Raises :class:`UnrecoverableStateError` (with the quarantine
        report attached) when every retained generation fails
        verification.
        """
        t0 = wall_now_s()
        quarantined: List[Tuple[int, str, int]] = []
        chosen: Optional[Snapshot] = None
        for snapshot in self._generations:
            reason = self._verify(snapshot)
            if reason is None:
                chosen = snapshot
                break
            quarantined.append((snapshot.seq, reason, len(snapshot.seal)))
        q_seqs = tuple(seq for seq, _, _ in quarantined)
        q_reasons = tuple(reason for _, reason, _ in quarantined)
        q_bytes = sum(n for _, _, n in quarantined)
        if quarantined:
            self._m_quarantined.inc(len(quarantined))
            self._m_quarantined_bytes.inc(q_bytes)
        if chosen is None:
            self._m_failed_closed.inc()
            raise UnrecoverableStateError(
                "every snapshot generation failed verification; refusing to "
                "restore a state that cannot be trusted",
                report={
                    "quarantined": [
                        {"seq": seq, "reason": reason, "seal_bytes": n}
                        for seq, reason, n in quarantined
                    ],
                    "generations": len(self._generations),
                    "quarantined_bytes": q_bytes,
                    "wal_records": self._wal.position,
                    "wal_bytes": self._wal.size_bytes,
                },
            )
        if quarantined:
            self._m_fallbacks.inc()
            if self._store is not None:
                # Drop damaged generations from the store so the next
                # crash's ladder never re-examines known-bad media.
                for seq, _, _ in quarantined:
                    self._store.quarantine(seq)
        records = self._wal.records(chosen.wal_position)
        server, dropped = self._restore(simulator, chosen, records)
        digest = state_digest(server)
        audit_digest = None
        if audit:
            twin, _ = self._restore(simulator, chosen, records)
            audit_digest = state_digest(twin)
            # The twin exists only to be digested; fence it so nothing
            # (not even a misrouted call) can ever act through it.
            twin.fence()
        armed = server.arm_recovered_leases()
        self._h_replay.record(len(records))
        self._h_generations.record(len(quarantined) + 1)
        self._h_wall.record(wall_now_s() - t0)
        return RecoveryResult(
            server=server,
            snapshot_seq=chosen.seq,
            replayed_records=len(records),
            dropped_remnants=dropped,
            armed_leases=armed,
            digest=digest,
            audit_digest=audit_digest,
            generations_tried=len(quarantined) + 1,
            quarantined_seqs=q_seqs,
            quarantine_reasons=q_reasons,
            quarantined_bytes=q_bytes,
        )

    def _restore(self, simulator, snapshot: Snapshot, records):
        """Steps 1–4: fresh server, installed image, replayed suffix."""
        from ..server.backend import BackendServer  # lazy: avoids import cycle

        state = fast_deepcopy(snapshot.state)
        server = BackendServer(
            pipeline=state["_pipeline"],
            simulator=simulator,
            venue_id=state["_store"].venue_id,
            localizer=state["_localizer"],
            annotation_processor=state["_annotation"],
            protocol=state["_protocol"],
            backend=state["_backend"],
        )
        server.install_state(state)
        for record in records:
            server.replay_record(record)
        server.end_replay()
        dropped = server.drop_inflight_remnants()
        return server, dropped
