"""Recovery: latest snapshot + WAL replay -> a fresh, live backend.

Recovery ordering (DESIGN §10):

1. Deep-copy the snapshot image (the stored image stays pristine, which
   is what makes recovery re-runnable — and auditable).
2. Construct a fresh :class:`BackendServer` on the live simulator and
   install the copied state graph.
3. Replay the WAL suffix past the snapshot's position through
   ``replay_record`` — the real handlers, replay clock pinned to each
   record's commit time, persistence detached (no re-logging).
4. Drop in-flight remnants (admitted-but-uncommitted batches died with
   the process; clients retransmit them).
5. Re-arm one lease-reap timer per surviving lease at
   ``max(expires_at, now)``.

The optional audit performs steps 1–4 a second time into a throwaway
server (never armed, never attached to the simulator's future) and
compares logical digests — the recovered-state *idempotency* half of
the equivalence invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import PersistenceError
from ..obs.metrics import NULL_REGISTRY
from ..obs.wallclock import wall_now_s
from .digest import state_digest
from .fastcopy import fast_deepcopy

__all__ = ["RecoveryManager", "RecoveryResult"]


@dataclass(frozen=True)
class RecoveryResult:
    """What one recovery did, for reports and invariant checks."""

    server: object
    snapshot_seq: int
    replayed_records: int
    dropped_remnants: int
    armed_leases: int
    digest: str
    audit_digest: Optional[str] = None

    @property
    def audit_ok(self) -> bool:
        """True when no audit ran or the audit digest matched."""
        return self.audit_digest is None or self.audit_digest == self.digest


class RecoveryManager:
    """Restores a backend from a (snapshot, WAL) media pair."""

    def __init__(self, wal, snapshot, metrics=NULL_REGISTRY):
        if snapshot is None:
            raise PersistenceError("cannot recover without a snapshot (genesis missing)")
        self._wal = wal
        self._snapshot = snapshot
        self._h_replay = metrics.histogram(
            "repro.persist.recovery.replay_records", base=1.0, growth=2.0
        )
        self._h_wall = metrics.histogram(
            "repro.persist.wall.recovery_s", base=0.001, growth=2.0
        )

    def recover(self, simulator, audit: bool = False) -> RecoveryResult:
        """Restore-and-replay onto ``simulator``; optionally audit."""
        t0 = wall_now_s()
        records = self._wal.records(self._snapshot.wal_position)
        server, dropped = self._restore(simulator, records)
        digest = state_digest(server)
        audit_digest = None
        if audit:
            twin, _ = self._restore(simulator, records)
            audit_digest = state_digest(twin)
            # The twin exists only to be digested; fence it so nothing
            # (not even a misrouted call) can ever act through it.
            twin.fence()
        armed = server.arm_recovered_leases()
        self._h_replay.record(len(records))
        self._h_wall.record(wall_now_s() - t0)
        return RecoveryResult(
            server=server,
            snapshot_seq=self._snapshot.seq,
            replayed_records=len(records),
            dropped_remnants=dropped,
            armed_leases=armed,
            digest=digest,
            audit_digest=audit_digest,
        )

    def _restore(self, simulator, records):
        """Steps 1–4: fresh server, installed image, replayed suffix."""
        from ..server.backend import BackendServer  # lazy: avoids import cycle

        state = fast_deepcopy(self._snapshot.state)
        server = BackendServer(
            pipeline=state["_pipeline"],
            simulator=simulator,
            venue_id=state["_store"].venue_id,
            localizer=state["_localizer"],
            annotation_processor=state["_annotation"],
            protocol=state["_protocol"],
            backend=state["_backend"],
        )
        server.install_state(state)
        for record in records:
            server.replay_record(record)
        server.end_replay()
        dropped = server.drop_inflight_remnants()
        return server, dropped
