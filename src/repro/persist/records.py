"""WAL record types: one frozen dataclass per logged commit point.

The write-ahead log is a *command log*: each record captures the inputs
of one state-mutating backend handler invocation at its commit point,
plus the sim-time it ran at. Recovery replays records by re-invoking the
real handlers with a pinned replay clock, so there is exactly one code
path that mutates backend state — the handlers themselves — and the
recovered state cannot drift from what a crash-free run would hold.

Records carry only primitives (str/int/float/bytes/None) so the codec
round-trips them exactly; photo payloads travel as an opaque pickled
blob (``BatchRecord.photos_blob``) because photos are the one input the
backend cannot re-derive.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple, Type

__all__ = [
    "GrantRecord",
    "AdmitRecord",
    "BatchRecord",
    "EmptyBatchRecord",
    "ReapRecord",
    "LocateRecord",
    "RECORD_KINDS",
    "record_kind",
]


@dataclass(frozen=True)
class GrantRecord:
    """One ``handle_task_request`` arrival (grants *and* dedupes).

    Every invocation is logged — including retransmissions answered from
    the request ledger — so replay reproduces the ledger, the GC queue
    and the dedupe counters exactly.
    """

    t: float
    client_id: str
    request_id: Optional[str]
    position_x: Optional[float]
    position_y: Optional[float]


@dataclass(frozen=True)
class AdmitRecord:
    """A photo batch was admitted to the SfM lane (ledgered, in flight).

    Replay restores the in-flight bookkeeping — the ``None`` ledger
    entry and the per-task in-flight count — so a later ``ReapRecord``
    replays as the same *deferral* it was live, and the admission-seq
    watermark resumes strictly above every seq ever issued. Batches
    still in flight at the crash are dropped after replay (their
    ``BatchRecord`` never committed); clients retransmit them.
    """

    t: float
    batch_id: Optional[str]
    task_id: Optional[int]
    seq: Optional[int]


@dataclass(frozen=True)
class BatchRecord:
    """A photo batch *committed* (``_process`` ran to completion).

    ``photos_blob`` is the pickled photo tuple; ``seq``/``wait_s``/
    ``service_s`` reproduce the bounded-lane accounting for the batch
    (``None`` under the infinite-server model).
    """

    arrived_t: float
    done_t: float
    client_id: str
    task_id: Optional[int]
    batch_id: Optional[str]
    photos_blob: bytes
    seq: Optional[int]
    wait_s: Optional[float]
    service_s: Optional[float]


@dataclass(frozen=True)
class EmptyBatchRecord:
    """An empty batch committed synchronously in ``handle_photo_batch``."""

    t: float
    client_id: str
    task_id: Optional[int]
    batch_id: Optional[str]


@dataclass(frozen=True)
class ReapRecord:
    """The lease reaper fired for ``task_id`` (expiry *or* deferral).

    Replay re-invokes ``_reap_lease`` at the pinned time; whether that
    expires the lease or defers on in-flight uploads is decided by the
    recovered state, exactly as it was live.
    """

    t: float
    task_id: int


@dataclass(frozen=True)
class LocateRecord:
    """A localization query advanced the localizer's query counter.

    The localizer's error draws are keyed by absolute query count (its
    RNG never advances state), so the absolute count is the whole
    durable state — which also makes this record idempotent.
    """

    t: float
    query_count: int


#: kind-tag -> record class; the codec's dispatch table. Tags are part
#: of the on-disk format: never reuse or renumber, only append.
RECORD_KINDS: Dict[str, Type] = {
    "grant": GrantRecord,
    "admit": AdmitRecord,
    "batch": BatchRecord,
    "empty": EmptyBatchRecord,
    "reap": ReapRecord,
    "locate": LocateRecord,
}

_KIND_BY_CLASS = {cls: kind for kind, cls in RECORD_KINDS.items()}


def record_kind(record: object) -> str:
    """The wire kind-tag for a record instance."""
    try:
        return _KIND_BY_CLASS[type(record)]
    except KeyError:
        raise TypeError(f"not a WAL record: {type(record).__name__}") from None


def record_fields(cls: Type) -> Tuple[str, ...]:
    """Field names of a record class, in declaration order."""
    return tuple(f.name for f in fields(cls))
