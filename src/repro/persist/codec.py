"""Versioned binary codec for WAL records, with torn-tail detection.

Frame layout (little-endian)::

    +------+---------+----------+----------+------------+
    | "RW" | version | body_len | crc32    | body bytes |
    | 2 B  | 1 B     | u32      | u32      | body_len B |
    +------+---------+----------+----------+------------+

The body is canonical JSON (sorted keys, no whitespace) of
``{"kind": <tag>, "f": {<field>: <value>, ...}}``; ``bytes`` values are
tagged base64 objects. JSON floats round-trip exactly in Python (repr
based), so record -> bytes -> record is the identity — pinned by the
hypothesis properties in ``tests/test_persist_codec.py``.

A WAL that died mid-append ends in a *torn tail*: a final frame with a
short header, a short body, or a CRC that does not match. Decoding
stops at the first such frame and reports how many clean bytes were
consumed — everything before the tear is trusted, everything after is
discarded (a frame boundary cannot be re-found past a corrupt length
field).
"""

from __future__ import annotations

import base64
import json
import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from ..errors import PersistenceError
from .records import RECORD_KINDS, record_fields, record_kind

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "encode_record",
    "decode_body",
    "iter_frames",
    "decode_wal",
    "estimate_torn_records",
    "encode_seal",
    "decode_seal",
]

#: On-disk format version. Bump on any incompatible body/frame change;
#: decoders reject versions they do not understand.
CODEC_VERSION = 1

_MAGIC = b"RW"
_SEAL_MAGIC = b"RS"
_HEADER = struct.Struct("<2sBII")  # magic, version, body_len, crc32


class CodecError(PersistenceError):
    """A frame or body that cannot be decoded (corruption, bad version)."""


def _encode_value(value: object) -> object:
    if isinstance(value, bytes):
        return {"__b64__": base64.b64encode(value).decode("ascii")}
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, dict) and set(value) == {"__b64__"}:
        return base64.b64decode(value["__b64__"])
    return value


def encode_record(record: object) -> bytes:
    """Encode one record as a framed, CRC-protected byte string."""
    kind = record_kind(record)
    payload = {
        "kind": kind,
        "f": {
            name: _encode_value(getattr(record, name))
            for name in record_fields(type(record))
        },
    }
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    header = _HEADER.pack(_MAGIC, CODEC_VERSION, len(body), zlib.crc32(body))
    return header + body


def decode_body(body: bytes) -> object:
    """Decode one frame body back into its record dataclass."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable WAL body: {exc}") from exc
    kind = payload.get("kind")
    cls = RECORD_KINDS.get(kind)
    if cls is None:
        raise CodecError(f"unknown WAL record kind {kind!r}")
    raw = payload.get("f", {})
    expected = record_fields(cls)
    if set(raw) != set(expected):
        raise CodecError(f"field mismatch for {kind!r}: got {sorted(raw)}")
    return cls(**{name: _decode_value(raw[name]) for name in expected})


def iter_frames(buf: bytes) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(end_offset, body)`` for each clean frame; stop at a tear.

    ``end_offset`` is the offset just past the yielded frame — i.e. the
    prefix of ``buf`` that is known-good once this frame is consumed.
    Stops (without raising) on a short header, short body, bad magic,
    unsupported version, or CRC mismatch: WAL semantics treat the first
    unreadable frame as the durable end of the log.
    """
    offset = 0
    total = len(buf)
    while offset + _HEADER.size <= total:
        magic, version, body_len, crc = _HEADER.unpack_from(buf, offset)
        if magic != _MAGIC or version != CODEC_VERSION:
            return
        start = offset + _HEADER.size
        end = start + body_len
        if end > total:
            return  # torn tail: body truncated mid-write
        body = bytes(buf[start:end])
        if zlib.crc32(body) != crc:
            return  # torn tail: body corrupted
        yield end, body
        offset = end


def decode_wal(buf: bytes) -> Tuple[List[object], int, bool]:
    """Decode a whole WAL buffer tolerantly.

    Returns ``(records, clean_bytes, torn)``: every record before the
    first tear, the byte length of the clean prefix, and whether a tear
    (any trailing garbage) was detected.
    """
    records: List[object] = []
    consumed = 0
    for end, body in iter_frames(buf):
        records.append(decode_body(body))
        consumed = end
    return records, consumed, consumed != len(buf)


def estimate_torn_records(buf: bytes, clean_bytes: int) -> int:
    """Lower-bound estimate of records lost in a torn tail.

    A frame boundary cannot be re-found authoritatively past a corrupt
    length field, so this scans the garbage region for plausible frame
    headers (magic + supported version) and counts them — at least one
    record was in flight if any garbage exists at all. Reporting only:
    never used for correctness, only for quarantine reports and the
    ``repro.persist.wal.torn_records`` counter.
    """
    if clean_bytes >= len(buf):
        return 0
    count = 0
    offset = buf.find(_MAGIC, clean_bytes)
    while offset != -1 and offset + _HEADER.size <= len(buf):
        _, version, _, _ = _HEADER.unpack_from(buf, offset)
        if version == CODEC_VERSION:
            count += 1
        offset = buf.find(_MAGIC, offset + 1)
    return max(count, 1)


def encode_seal(body: bytes) -> bytes:
    """Frame a snapshot seal body (CRC-protected, distinct magic)."""
    header = _HEADER.pack(_SEAL_MAGIC, CODEC_VERSION, len(body), zlib.crc32(body))
    return header + body


def decode_seal(buf: bytes) -> Optional[bytes]:
    """Decode a seal frame; ``None`` if damaged in any way.

    Unlike WAL frames there is exactly one frame and no tolerance: a
    short header, short body, trailing garbage, bad magic/version, or a
    CRC mismatch all mean the seal (and hence the snapshot generation it
    guards) cannot be trusted.
    """
    if len(buf) < _HEADER.size:
        return None
    magic, version, body_len, crc = _HEADER.unpack_from(buf, 0)
    if magic != _SEAL_MAGIC or version != CODEC_VERSION:
        return None
    if _HEADER.size + body_len != len(buf):
        return None
    body = bytes(buf[_HEADER.size:])
    if zlib.crc32(body) != crc:
        return None
    return body
