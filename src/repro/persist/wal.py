"""The write-ahead log: an append-only byte journal of commit records.

The WAL is the durable half of the durability subsystem's media pair
(the other being :mod:`repro.persist.snapshot` checkpoints). Appends are
framed through the versioned codec and counted as *flushed* — the
in-memory journal models frame-granular durability, so crash injection
can expose any byte prefix of it (including a torn final frame) as what
"survived" the crash.

Positions are **record counts**, not byte offsets: a snapshot remembers
how many records preceded it, and recovery replays ``records(start)``
from there. Decoding always goes back through the codec bytes — every
recovery therefore exercises the full encode/decode round-trip that the
hypothesis properties pin.

Loading a journal returns a :class:`WalLoadReport` alongside the WAL:
whether the tail was torn, where the tear sits, and a lower-bound
estimate of the records lost past it (counted on the
``repro.persist.wal.torn_records`` counter). The report is truthy
exactly when the tail was torn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..obs.metrics import NULL_REGISTRY
from .codec import decode_wal, encode_record, estimate_torn_records, iter_frames

__all__ = ["WalLoadReport", "WriteAheadLog"]


@dataclass(frozen=True)
class WalLoadReport:
    """What loading a journal found: clean prefix, tear, loss estimate.

    ``dropped_records`` is exact when the damage was applied in-process
    (crash injection knows what it cut) and a lower-bound header-scan
    estimate when the bytes arrived from outside (``from_bytes``/
    ``load``) — a corrupt length field makes exact re-framing of the
    garbage region impossible.
    """

    torn: bool
    clean_bytes: int
    total_bytes: int
    records: int
    tear_offset: Optional[int] = None
    dropped_records: int = 0

    def __bool__(self) -> bool:
        return self.torn


class WriteAheadLog:
    """Append-only record journal over the versioned codec."""

    def __init__(self, metrics=NULL_REGISTRY):
        self._buf = bytearray()
        self._count = 0
        self._m_appends = metrics.counter("repro.persist.wal.appends")
        self._m_bytes = metrics.counter("repro.persist.wal.bytes")
        #: fsync-equivalent: every framed append is made durable before
        #: the handler's ACK leaves (group commit would batch these).
        self._m_flushes = metrics.counter("repro.persist.wal.flushes")
        #: records lost to torn tails / dropped flushes (load + injection).
        self._m_torn = metrics.counter("repro.persist.wal.torn_records")

    @property
    def position(self) -> int:
        """Number of records appended so far (the next record's index)."""
        return self._count

    @property
    def size_bytes(self) -> int:
        return len(self._buf)

    def append(self, record: object) -> int:
        """Append one record; returns its position (pre-append count)."""
        frame = encode_record(record)
        position = self._count
        self._buf.extend(frame)
        self._count += 1
        self._m_appends.inc()
        self._m_bytes.inc(len(frame))
        self._m_flushes.inc()
        return position

    def records(self, start: int = 0) -> List[object]:
        """Decode records ``start..`` from the journal bytes.

        Decoding from bytes (rather than keeping the record objects) is
        deliberate: recovery consumes exactly what a process restart
        would read back, codec and all.
        """
        decoded, _, torn = decode_wal(bytes(self._buf))
        if torn:
            # Appends are atomic in-process; a torn own-buffer means a
            # caller handed us corrupt bytes via from_bytes and then
            # appended — records() still honours the clean prefix.
            pass
        return decoded[start:]

    def frame_boundaries(self) -> List[int]:
        """End offset of each clean frame (for crash-injection cuts)."""
        return [end for end, _ in iter_frames(bytes(self._buf))]

    def to_bytes(self) -> bytes:
        """The raw journal (what a crash leaves on the durable medium)."""
        return bytes(self._buf)

    # -- crash injection ----------------------------------------------------

    def damage_truncate(self, cut_bytes: int) -> int:
        """Expose only the first ``cut_bytes`` of the journal (torn tail).

        Keeps the clean frame prefix of the cut buffer; returns the
        exact number of whole records lost. Models a crash that caught
        the medium mid-write.
        """
        buf = bytes(self._buf[:cut_bytes])
        records, clean, _ = decode_wal(buf)
        dropped = self._count - len(records)
        self._buf = bytearray(buf[:clean])
        self._count = len(records)
        if dropped > 0:
            self._m_torn.inc(dropped)
        return dropped

    def damage_drop_records(self, n: int) -> int:
        """Drop the last ``n`` whole records (lost flushes, clean cut).

        The nastier failure mode: the journal still decodes cleanly, so
        only digest/ledger machinery above can notice anything is gone.
        Returns the number of records actually dropped.
        """
        keep = max(0, self._count - n)
        if keep == self._count:
            return 0
        boundaries = self.frame_boundaries()
        cut = boundaries[keep - 1] if keep else 0
        dropped = self._count - keep
        self._buf = bytearray(self._buf[:cut])
        self._count = keep
        self._m_torn.inc(dropped)
        return dropped

    # -- serialisation ------------------------------------------------------

    @classmethod
    def from_bytes(
        cls, buf: bytes, metrics=NULL_REGISTRY
    ) -> Tuple["WriteAheadLog", WalLoadReport]:
        """Rebuild a WAL from raw bytes, dropping any torn tail.

        Returns ``(wal, report)``; the rebuilt journal holds only the
        clean prefix, so subsequent appends extend a valid log. The
        report (truthy iff torn) carries the tear offset and a
        lower-bound estimate of the records lost past it.
        """
        records, clean, torn = decode_wal(buf)
        wal = cls(metrics=metrics)
        wal._buf.extend(buf[:clean])
        wal._count = len(records)
        dropped = estimate_torn_records(buf, clean) if torn else 0
        if dropped > 0:
            wal._m_torn.inc(dropped)
        report = WalLoadReport(
            torn=torn,
            clean_bytes=clean,
            total_bytes=len(buf),
            records=len(records),
            tear_offset=clean if torn else None,
            dropped_records=dropped,
        )
        return wal, report

    def save(self, path) -> int:
        """Write the journal to ``path``; returns bytes written."""
        data = self.to_bytes()
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)

    @classmethod
    def load(
        cls, path, metrics=NULL_REGISTRY
    ) -> Tuple["WriteAheadLog", WalLoadReport]:
        """Read a journal file back (torn-tail tolerant)."""
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read(), metrics=metrics)
