"""The write-ahead log: an append-only byte journal of commit records.

The WAL is the durable half of the durability subsystem's media pair
(the other being :mod:`repro.persist.snapshot` checkpoints). Appends are
framed through the versioned codec and counted as *flushed* — the
in-memory journal models frame-granular durability, so crash injection
can expose any byte prefix of it (including a torn final frame) as what
"survived" the crash.

Positions are **record counts**, not byte offsets: a snapshot remembers
how many records preceded it, and recovery replays ``records(start)``
from there. Decoding always goes back through the codec bytes — every
recovery therefore exercises the full encode/decode round-trip that the
hypothesis properties pin.
"""

from __future__ import annotations

from typing import List, Tuple

from ..obs.metrics import NULL_REGISTRY
from .codec import decode_wal, encode_record

__all__ = ["WriteAheadLog"]


class WriteAheadLog:
    """Append-only record journal over the versioned codec."""

    def __init__(self, metrics=NULL_REGISTRY):
        self._buf = bytearray()
        self._count = 0
        self._m_appends = metrics.counter("repro.persist.wal.appends")
        self._m_bytes = metrics.counter("repro.persist.wal.bytes")
        #: fsync-equivalent: every framed append is made durable before
        #: the handler's ACK leaves (group commit would batch these).
        self._m_flushes = metrics.counter("repro.persist.wal.flushes")

    @property
    def position(self) -> int:
        """Number of records appended so far (the next record's index)."""
        return self._count

    @property
    def size_bytes(self) -> int:
        return len(self._buf)

    def append(self, record: object) -> int:
        """Append one record; returns its position (pre-append count)."""
        frame = encode_record(record)
        position = self._count
        self._buf.extend(frame)
        self._count += 1
        self._m_appends.inc()
        self._m_bytes.inc(len(frame))
        self._m_flushes.inc()
        return position

    def records(self, start: int = 0) -> List[object]:
        """Decode records ``start..`` from the journal bytes.

        Decoding from bytes (rather than keeping the record objects) is
        deliberate: recovery consumes exactly what a process restart
        would read back, codec and all.
        """
        decoded, _, torn = decode_wal(bytes(self._buf))
        if torn:
            # Appends are atomic in-process; a torn own-buffer means a
            # caller handed us corrupt bytes via from_bytes and then
            # appended — records() still honours the clean prefix.
            pass
        return decoded[start:]

    def to_bytes(self) -> bytes:
        """The raw journal (what a crash leaves on the durable medium)."""
        return bytes(self._buf)

    @classmethod
    def from_bytes(cls, buf: bytes, metrics=NULL_REGISTRY) -> Tuple["WriteAheadLog", bool]:
        """Rebuild a WAL from raw bytes, dropping any torn tail.

        Returns ``(wal, torn)``; the rebuilt journal holds only the
        clean prefix, so subsequent appends extend a valid log.
        """
        records, clean, torn = decode_wal(buf)
        wal = cls(metrics=metrics)
        wal._buf.extend(buf[:clean])
        wal._count = len(records)
        return wal, torn

    def save(self, path) -> int:
        """Write the journal to ``path``; returns bytes written."""
        data = self.to_bytes()
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)

    @classmethod
    def load(cls, path, metrics=NULL_REGISTRY) -> Tuple["WriteAheadLog", bool]:
        """Read a journal file back (torn-tail tolerant)."""
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read(), metrics=metrics)
