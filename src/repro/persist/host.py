"""The durable backend host: WAL hookup, crash fencing, restart glue.

:class:`BackendHost` stands between the deployment and the
:class:`~repro.server.backend.BackendServer` when persistence is
enabled. It owns the durable media (WAL + multi-generation snapshot
store), injects crashes (fence the live server, schedule a restart
after the configured downtime) and performs recovery through
:class:`~repro.persist.recovery.RecoveryManager`'s verify-then-fallback
ladder. Attribute access forwards to the *current* server instance, so
clients keep calling the same object across restarts — exactly like
reconnecting to a respawned process at the same address.

When a :class:`~repro.persist.faults.StorageFaultConfig` is supplied,
each crash additionally damages the durable media through the seeded
injector *at the crash instant* (that is when real media tear), and the
exact damage is recorded in ``storage_fault_reports`` — one report per
crash, index-aligned with ``recovery_audits`` — so the DST
recovery-integrity invariant can audit the ladder's quarantine calls.

During downtime the current server is the fenced pre-crash instance:
every handler call raises ``BackendUnavailableError``, the message is
lost, and the client's existing retransmission machinery retries it —
no special client-side crash handling exists or is needed.
"""

from __future__ import annotations

from typing import List, Optional

from .faults import StorageFaultInjector, StorageFaultReport
from .hooks import PersistenceLog
from .recovery import RecoveryManager, RecoveryResult
from .snapshot import Snapshotter
from .wal import WriteAheadLog

__all__ = ["BackendHost"]


class BackendHost:
    """Owns the durable media and the (replaceable) live server."""

    def __init__(self, server, simulator, persist_config, storage_rng=None):
        self._sim = simulator
        self._config = persist_config
        obs = simulator.telemetry
        self._tracer = obs.tracer
        metrics = obs.metrics
        self._metrics = metrics
        self._wal = WriteAheadLog(metrics=metrics)
        self._snapshotter = Snapshotter(
            self._wal,
            every_batches=persist_config.snapshot_every_batches,
            metrics=metrics,
            retain=persist_config.snapshot_retain,
        )
        self._log = PersistenceLog(self._wal, self._snapshotter)
        self._injector: Optional[StorageFaultInjector] = None
        faults = persist_config.storage_faults
        if faults is not None and faults.enabled:
            self._injector = StorageFaultInjector(
                faults, rng=storage_rng, metrics=metrics
            )
        self._m_crashes = metrics.counter("repro.persist.crashes")
        self._m_recoveries = metrics.counter("repro.persist.recoveries")
        #: One RecoveryResult per restart (digest audits, replay sizes).
        self.recovery_audits: List[RecoveryResult] = []
        #: One StorageFaultReport per crash, index-aligned with
        #: ``recovery_audits`` (overlapping crash schedules are no-ops
        #: for both).
        self.storage_fault_reports: List[StorageFaultReport] = []
        self._crash_count = 0
        self._down = False
        self._server = server
        self._bind(server)

    def _bind(self, server) -> None:
        self._log.bind(server)
        server.attach_persistence(self._log)
        self._server = server

    # -- forwarding -------------------------------------------------------------------

    def __getattr__(self, name: str):
        # Only reached for attributes the host does not define itself;
        # private names never forward (they would mask init-order bugs).
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.__dict__["_server"], name)

    @property
    def server(self):
        """The current live (or fenced, while down) backend instance."""
        return self._server

    @property
    def down(self) -> bool:
        return self._down

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def snapshotter(self) -> Snapshotter:
        return self._snapshotter

    @property
    def crash_count(self) -> int:
        return self._crash_count

    @property
    def recovery_count(self) -> int:
        return len(self.recovery_audits)

    # -- lifecycle ----------------------------------------------------------------------

    def genesis(self) -> None:
        """Checkpoint the bootstrapped state (snapshot 0, WAL position 0).

        Taken once before the campaign starts, so recovery always has a
        base image — a crash before the first cadence checkpoint replays
        the whole WAL from genesis, and the ladder's deepest rung always
        exists (retention never prunes generation 0).
        """
        self._snapshotter.checkpoint(self._server, self._sim.now)

    def crash(self, downtime_s: float) -> None:
        """Kill the backend now; schedule its restart ``downtime_s`` later.

        In-flight processing and timers die with the fence; durable
        media (WAL + snapshots) survive — unless storage fault injection
        is armed, in which case the media take their seeded damage at
        this instant. Calls landing during the outage raise through the
        fenced server and are lost (clients retransmit).
        """
        if self._down:
            return  # overlapping schedules: already down, restart pending
        self._crash_count += 1
        self._m_crashes.inc()
        self._down = True
        self._server.fence()
        if self._injector is not None:
            report = self._injector.inject(
                self._wal, self._snapshotter, self._sim.now
            )
        else:
            report = StorageFaultReport(
                crash_t=self._sim.now, wal_records_before=self._wal.position
            )
        self.storage_fault_reports.append(report)
        if self._tracer.enabled:
            self._tracer.instant(
                "persist.backend_crash",
                category="persist",
                downtime_s=downtime_s,
                wal_records=self._wal.position,
                snapshots=self._snapshotter.count,
                wal_torn=report.wal_torn,
                wal_dropped_records=report.wal_dropped_records,
                snapshots_damaged=len(report.damaged_snapshot_seqs),
            )
        self._sim.schedule(downtime_s, self.restart, label="backend-restart")

    def restart(self) -> RecoveryResult:
        """Recover a fresh server from the durable media and go live.

        Walks the verify-then-fallback ladder; raises
        :class:`~repro.errors.UnrecoverableStateError` (fail closed)
        when every retained generation is damaged.
        """
        with self._tracer.span("persist.recovery", category="persist") as span:
            manager = RecoveryManager(
                self._wal, self._snapshotter, metrics=self._metrics
            )
            result = manager.recover(self._sim, audit=self._config.audit_recovery)
            self._bind(result.server)
            self._down = False
            self._m_recoveries.inc()
            self.recovery_audits.append(result)
            span.set_attr("replayed_records", result.replayed_records)
            span.set_attr("armed_leases", result.armed_leases)
            span.set_attr("audit_ok", result.audit_ok)
            span.set_attr("snapshot_seq", result.snapshot_seq)
            span.set_attr("generations_tried", result.generations_tried)
            span.set_attr("quarantined_bytes", result.quarantined_bytes)
        return result
