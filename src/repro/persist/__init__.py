"""Durability subsystem: WAL + snapshot checkpointing + crash recovery.

The backend's state-mutating handler outcomes are journaled to a
write-ahead log through a versioned, CRC-framed codec
(:mod:`repro.persist.codec`); a snapshotter periodically checkpoints
the whole backend state as one cheap deep copy
(:mod:`repro.persist.snapshot`); and recovery restores
latest-snapshot + WAL-replay into a fresh server, re-arming leases at
the recovered sim-time (:mod:`repro.persist.recovery`).

:class:`BackendHost` ties it together for deployments: it owns the
durable media, injects crash-restarts, and forwards calls to the
current live server so clients reconnect transparently through their
existing retry machinery.

Everything here is deterministic under the simulation clock; the only
wall-clock reads feed ``repro.persist.wall.*`` metrics, which the
determinism digests exclude.
"""

from __future__ import annotations

from .codec import CODEC_VERSION, CodecError, decode_wal, encode_record
from .digest import state_digest, state_projection
from .hooks import PersistenceLog
from .host import BackendHost
from .records import (
    RECORD_KINDS,
    AdmitRecord,
    BatchRecord,
    EmptyBatchRecord,
    GrantRecord,
    LocateRecord,
    ReapRecord,
)
from .recovery import RecoveryManager, RecoveryResult
from .snapshot import Snapshot, Snapshotter
from .wal import WriteAheadLog

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "encode_record",
    "decode_wal",
    "state_digest",
    "state_projection",
    "PersistenceLog",
    "BackendHost",
    "RECORD_KINDS",
    "GrantRecord",
    "AdmitRecord",
    "BatchRecord",
    "EmptyBatchRecord",
    "ReapRecord",
    "LocateRecord",
    "RecoveryManager",
    "RecoveryResult",
    "Snapshot",
    "Snapshotter",
    "WriteAheadLog",
]
