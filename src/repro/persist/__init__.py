"""Durability subsystem: WAL + snapshot checkpointing + crash recovery.

The backend's state-mutating handler outcomes are journaled to a
write-ahead log through a versioned, CRC-framed codec
(:mod:`repro.persist.codec`); a snapshotter periodically checkpoints
the whole backend state as one cheap deep copy, retaining multiple
sealed generations (:mod:`repro.persist.snapshot`); and recovery walks
a verify-then-fallback ladder over those generations + WAL-replay into
a fresh server, re-arming leases at the recovered sim-time
(:mod:`repro.persist.recovery`). Seeded storage fault injection
(:mod:`repro.persist.faults`) damages the media at crash instants to
prove the ladder holds.

:class:`BackendHost` ties it together for deployments: it owns the
durable media, injects crash-restarts, and forwards calls to the
current live server so clients reconnect transparently through their
existing retry machinery.

Everything here is deterministic under the simulation clock; the only
wall-clock reads feed ``repro.persist.wall.*`` metrics, which the
determinism digests exclude.
"""

from __future__ import annotations

from .codec import (
    CODEC_VERSION,
    CodecError,
    decode_seal,
    decode_wal,
    encode_record,
    encode_seal,
)
from .digest import (
    canonical_state_bytes,
    digest_of_state,
    projection_of_state,
    state_digest,
    state_projection,
)
from .faults import (
    SNAPSHOT_DAMAGE_MODES,
    StorageFaultConfig,
    StorageFaultInjector,
    StorageFaultReport,
)
from .hooks import PersistenceLog
from .host import BackendHost
from .records import (
    RECORD_KINDS,
    AdmitRecord,
    BatchRecord,
    EmptyBatchRecord,
    GrantRecord,
    LocateRecord,
    ReapRecord,
)
from .recovery import RecoveryManager, RecoveryResult
from .snapshot import Snapshot, Snapshotter, verify_snapshot
from .wal import WalLoadReport, WriteAheadLog

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "encode_record",
    "decode_wal",
    "encode_seal",
    "decode_seal",
    "state_digest",
    "state_projection",
    "projection_of_state",
    "canonical_state_bytes",
    "digest_of_state",
    "SNAPSHOT_DAMAGE_MODES",
    "StorageFaultConfig",
    "StorageFaultInjector",
    "StorageFaultReport",
    "PersistenceLog",
    "BackendHost",
    "RECORD_KINDS",
    "GrantRecord",
    "AdmitRecord",
    "BatchRecord",
    "EmptyBatchRecord",
    "ReapRecord",
    "LocateRecord",
    "RecoveryManager",
    "RecoveryResult",
    "Snapshot",
    "Snapshotter",
    "verify_snapshot",
    "WalLoadReport",
    "WriteAheadLog",
]
