"""The backend's WAL hook: handler commit points -> journal records.

:class:`PersistenceLog` is what :meth:`BackendServer.attach_persistence`
receives. Each ``log_*`` method materialises one record dataclass from
the handler's inputs at its commit point and appends it to the WAL;
``log_batch`` additionally drives the snapshot cadence (checkpoints are
counted in committed batches). The log is bound to the *current* server
instance so a checkpoint captures whoever is live; a fenced server
detaches itself on crash, and :class:`~repro.persist.host.BackendHost`
re-binds after recovery.
"""

from __future__ import annotations

import pickle
from typing import Optional, Tuple

from .records import (
    AdmitRecord,
    BatchRecord,
    EmptyBatchRecord,
    GrantRecord,
    LocateRecord,
    ReapRecord,
)

__all__ = ["PersistenceLog"]


class PersistenceLog:
    """Commit-point record builder over one WAL + snapshotter pair."""

    def __init__(self, wal, snapshotter):
        self._wal = wal
        self._snapshotter = snapshotter
        self._server = None

    def bind(self, server) -> None:
        """Point the snapshot cadence at the (new) live server."""
        self._server = server

    @property
    def wal(self):
        return self._wal

    def log_grant(self, request, t: float) -> None:
        position = request.position
        self._wal.append(
            GrantRecord(
                t=t,
                client_id=request.client_id,
                request_id=request.request_id,
                position_x=position.x if position is not None else None,
                position_y=position.y if position is not None else None,
            )
        )

    def log_admit(self, batch, seq: Optional[int], arrived_at: float) -> None:
        self._wal.append(
            AdmitRecord(
                t=arrived_at,
                batch_id=batch.batch_id,
                task_id=batch.task_id,
                seq=seq,
            )
        )

    def log_empty_batch(self, batch, t: float) -> None:
        self._wal.append(
            EmptyBatchRecord(
                t=t,
                client_id=batch.client_id,
                task_id=batch.task_id,
                batch_id=batch.batch_id,
            )
        )

    def log_batch(
        self,
        batch,
        arrived_at: float,
        done_t: float,
        lane: Optional[Tuple[int, float, float]] = None,
    ) -> None:
        seq, wait_s, service_s = lane if lane is not None else (None, None, None)
        self._wal.append(
            BatchRecord(
                arrived_t=arrived_at,
                done_t=done_t,
                client_id=batch.client_id,
                task_id=batch.task_id,
                batch_id=batch.batch_id,
                photos_blob=pickle.dumps(tuple(batch.photos), protocol=4),
                seq=seq,
                wait_s=wait_s,
                service_s=service_s,
            )
        )
        if self._server is not None:
            self._snapshotter.note_commit(self._server, done_t)

    def log_reap(self, task_id: int, t: float) -> None:
        self._wal.append(ReapRecord(t=t, task_id=task_id))

    def log_locate(self, query_count: int, t: float) -> None:
        self._wal.append(LocateRecord(t=t, query_count=query_count))
