"""Logical digest of a backend's durable state (recovery audits, seals).

Recovery must be *idempotent*: running latest-snapshot + WAL-replay
twice from the same media must yield the same backend. The audit pins
that with a digest over the recovered state's observable content — the
task ledger, dedup ledgers, result log, pipeline progress, localizer
counter — everything ``export_state()`` persists, projected onto
primitives and hashed as canonical JSON.

The same projection doubles as the snapshot *seal*: at checkpoint time
the snapshotter canonicalises the captured state dict and frames it
(CRC-protected, see :mod:`repro.persist.codec`); at recovery time the
ladder recomputes the projection from the stored object graph and
compares it byte-for-byte against the seal body, catching both media
damage (flips, truncation — already caught by the frame CRC) and
object-graph tampering that the frame alone cannot see.

Telemetry handles are excluded by construction (they are process
scoped, not state), as is anything keyed on live event tokens. Floats
travel as ``repr`` (exact round-trip), matching ``testkit.digests``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict

__all__ = [
    "canonical_state_bytes",
    "digest_of_state",
    "projection_of_state",
    "state_projection",
    "state_digest",
]


def _canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=repr)


def projection_of_state(state: Dict[str, object]) -> Dict[str, object]:
    """Primitive projection of an ``export_state()``-shaped dict.

    Works on the captured state graph directly so snapshot images can be
    digested without a live server (seal verification during recovery).
    """
    store = state["_store"]
    pipeline = state["_pipeline"]
    cloud = pipeline.model().cloud
    feature_ids = sorted(int(fid) for fid in cloud.feature_ids)
    localizer = state["_localizer"]
    return {
        "store": store.digest_view(),
        "task_queue": [t.task_id for t in state["_task_queue"]],
        "result_log": [repr(r) for r in state["_result_log"]],
        "request_ledger": {
            rid: repr(a) for rid, a in sorted(state["_request_ledger"].items())
        },
        "batch_ledger": {
            bid: repr(r) for bid, r in state["_batch_ledger"].items()
        },
        "inflight": {
            str(tid): n for tid, n in sorted(state["_inflight_batches"].items())
        },
        "admit_watermark": state["_admit_watermark"],
        "service_order": list(state["_service_order"]),
        "queue_wait_total": repr(state["_queue_wait_total"]),
        "peak_queue_depth": state["_peak_queue_depth"],
        "service_time_total": repr(state["_service_time_total"]),
        "gc_queue": [
            [repr(due), list(rids), list(bids)]
            for due, rids, bids in state["_gc_queue"]
        ],
        "rids_by_task": {
            str(tid): list(rids)
            for tid, rids in sorted(state["_rids_by_task"].items())
        },
        "bids_by_task": {
            str(tid): list(bids)
            for tid, bids in sorted(state["_bids_by_task"].items())
        },
        "pipeline": {
            "iteration": pipeline.iteration,
            "coverage_cells": pipeline.coverage_cells,
            "venue_covered": pipeline.venue_covered,
            "cloud_points": len(feature_ids),
            "cloud_ids_sha": hashlib.sha256(
                ",".join(map(str, feature_ids)).encode("ascii")
            ).hexdigest(),
        },
        "localizer_queries": (
            localizer.query_count if localizer is not None else None
        ),
        "protocol": repr(state["_protocol"]),
        "backend": repr(state["_backend"]),
    }


def canonical_state_bytes(state: Dict[str, object]) -> bytes:
    """Canonical-JSON encoding of the state projection (seal body)."""
    return _canonical(projection_of_state(state)).encode("utf-8")


def digest_of_state(state: Dict[str, object]) -> str:
    """SHA-256 of a state dict's canonical projection."""
    return hashlib.sha256(canonical_state_bytes(state)).hexdigest()


def state_projection(server) -> Dict[str, object]:
    """Primitive projection of every persisted backend field."""
    return projection_of_state(server.export_state())


def state_digest(server) -> str:
    """SHA-256 of the canonical state projection."""
    return hashlib.sha256(
        _canonical(state_projection(server)).encode("utf-8")
    ).hexdigest()
