"""Structured fast deep copy for snapshot/restore state graphs.

``copy.deepcopy`` spends most of a checkpoint inside ``__reduce_ex__``
protocol discovery: for every node of the state graph it builds a
reduction tuple, allocates the reconstructor arguments, and re-dispatches
— even though the graph is almost entirely plain containers and plain
``__dict__`` dataclasses (tasks, leases, batches, ledger rows).

:func:`fast_deepcopy` keeps deepcopy's *semantics* — shared objects stay
shared, cycles terminate, ``__deepcopy__`` hooks are honoured — but
dispatches structurally:

* atomic immutables return themselves;
* exact ``dict`` / ``list`` / ``tuple`` / ``set`` / ``frozenset`` /
  ``deque`` copy by direct construction;
* *plain* classes (no pickle/copy protocol customisation anywhere in the
  MRO) copy via ``cls.__new__`` plus a per-attribute copy of
  ``__dict__`` and ``__slots__``;
* everything else falls back to ``copy.deepcopy`` **with the shared
  memo**, so aliasing between fast-path and fallback regions of the
  graph is still preserved.

The persist differential tests pin fast_deepcopy against copy.deepcopy
on real exported backend state (same logical digests, same aliasing),
and the overload bench records the checkpoint wall-time improvement.
"""

from __future__ import annotations

import copy
import types
from collections import deque

__all__ = ["fast_deepcopy"]

#: Types whose instances are immutable (or process-lifetime handles) and
#: safe to share between the live graph and its snapshot.
_ATOMIC_TYPES = (
    type(None),
    bool,
    int,
    float,
    complex,
    str,
    bytes,
    type,
    range,
    slice,
    type(Ellipsis),
    type(NotImplemented),
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.ModuleType,
)

#: Per-class verdicts: True = plain `__dict__`/`__slots__` copy is safe,
#: False = defer to copy.deepcopy.
_PLAIN_CACHE: dict = {}

#: Copy/pickle protocol hooks whose presence (beyond object's defaults)
#: means the class opted into custom copy semantics we must not bypass.
_PROTOCOL_HOOKS = (
    "__copy__",
    "__getstate__",
    "__setstate__",
    "__getnewargs__",
    "__getnewargs_ex__",
)


def _is_plain(cls: type) -> bool:
    """Can instances be copied as ``__new__`` + copied attributes?"""
    # Builtin-container subclasses carry payload outside __dict__.
    if issubclass(
        cls, (dict, list, tuple, set, frozenset, str, bytes, bytearray, deque)
    ):
        return False
    if cls.__reduce_ex__ is not object.__reduce_ex__:
        return False
    if cls.__reduce__ is not object.__reduce__:
        return False
    if cls.__new__ is not object.__new__:
        return False
    for name in _PROTOCOL_HOOKS:
        hook = getattr(cls, name, None)
        if hook is not None and hook is not getattr(object, name, None):
            return False
    return True


def _slot_names(cls: type):
    for klass in cls.__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name not in ("__dict__", "__weakref__"):
                yield name


def _keep_alive(x, memo) -> None:
    # Same convention as the copy module: anchor originals on the memo so
    # their ids cannot be recycled (and re-matched) mid-copy.
    memo.setdefault(id(memo), []).append(x)


def fast_deepcopy(obj, memo=None):
    """Deep-copy ``obj`` preserving aliasing; see module docstring."""
    cls = type(obj)
    if cls in _ATOMIC_TYPES:
        return obj
    if memo is None:
        memo = {}
    key = id(obj)
    existing = memo.get(key, memo)
    if existing is not memo:
        return existing

    custom = getattr(cls, "__deepcopy__", None)
    if custom is not None:
        result = custom(obj, memo)
        memo[key] = result
        _keep_alive(obj, memo)
        return result

    if cls is dict:
        result = {}
        memo[key] = result
        _keep_alive(obj, memo)
        for k, v in obj.items():
            result[fast_deepcopy(k, memo)] = fast_deepcopy(v, memo)
        return result
    if cls is list:
        result = []
        memo[key] = result
        _keep_alive(obj, memo)
        for item in obj:
            result.append(fast_deepcopy(item, memo))
        return result
    if cls is tuple:
        copied = [fast_deepcopy(item, memo) for item in obj]
        # A tuple re-reads the memo after copying its items: a cycle
        # through a container item may already have produced the copy.
        existing = memo.get(key, memo)
        if existing is not memo:
            return existing
        if all(new is old for new, old in zip(copied, obj)):
            result = obj  # all-atomic tuple: share it
        else:
            result = tuple(copied)
        memo[key] = result
        return result
    if cls is set or cls is frozenset:
        result = cls(fast_deepcopy(item, memo) for item in obj)
        memo[key] = result
        _keep_alive(obj, memo)
        return result
    if cls is deque:
        result = deque((), obj.maxlen)
        memo[key] = result
        _keep_alive(obj, memo)
        result.extend(fast_deepcopy(item, memo) for item in obj)
        return result

    plain = _PLAIN_CACHE.get(cls)
    if plain is None:
        plain = _PLAIN_CACHE.setdefault(cls, _is_plain(cls))
    if plain:
        result = cls.__new__(cls)
        memo[key] = result
        _keep_alive(obj, memo)
        instance_dict = getattr(obj, "__dict__", None)
        if instance_dict:
            result.__dict__.update(
                {k: fast_deepcopy(v, memo) for k, v in instance_dict.items()}
            )
        for name in _slot_names(cls):
            try:
                value = getattr(obj, name)
            except AttributeError:
                continue  # unset slot
            # Frozen dataclasses block setattr; object.__setattr__ is
            # exactly what their own __init__ uses.
            object.__setattr__(result, name, fast_deepcopy(value, memo))
        return result

    # Anything protocol-customised (numpy scalars, enums, c-extension
    # types, classes with __getstate__, ...) keeps deepcopy's exact
    # behaviour — and the shared memo keeps cross-region aliasing.
    return copy.deepcopy(obj, memo)
