"""Seeded storage fault injection at crash instants.

Mirrors the :mod:`repro.simkit.network` fault plumbing for the durable
media: a frozen :class:`StorageFaultConfig` describes *what can go
wrong with the disk when the process dies*, an injector applies it to
the WAL + snapshot store at each crash, and a per-crash
:class:`StorageFaultReport` records exactly what was damaged so the
DST recovery-integrity invariant can check the recovery ladder made
the right calls (quarantined everything damaged, nothing clean).

Fault mechanisms (each an independent seeded draw per crash):

* **torn WAL tail** — the journal is cut at a byte offset strictly
  inside its final frame, exactly what a crash mid-``write(2)`` leaves;
  the framing CRC catches it at load.
* **dropped flushes** — the last *k* whole records vanish at a clean
  frame boundary (an lying-fsync medium): the journal still decodes
  cleanly, so nothing below the ledger/digest layer can notice.
* **snapshot damage cascade** — the newest generation's seal is
  truncated, byte-flipped, or its state graph tampered; with the same
  probability the damage continues to the next older generation, so a
  high setting can reach genesis and force a fail-closed recovery.

All draws come from a dedicated :class:`~repro.simkit.rng.RngStream`
(an independent DST child), and a disabled config performs **no draws
at all** — existing seeds' fault patterns and scenarios are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigError, SimulationError
from ..obs.metrics import NULL_REGISTRY

__all__ = [
    "StorageFaultConfig",
    "StorageFaultReport",
    "StorageFaultInjector",
    "SNAPSHOT_DAMAGE_MODES",
]

#: How a snapshot generation can be damaged. ``state-tamper`` is the
#: mode only the semantic (recompute-and-compare) rung of verification
#: can catch — the seal frame itself stays pristine.
SNAPSHOT_DAMAGE_MODES = ("seal-truncate", "seal-flip", "state-tamper")


@dataclass(frozen=True)
class StorageFaultConfig:
    """Per-crash storage damage probabilities (all default off)."""

    #: P(the WAL's final frame is cut mid-write at a crash).
    wal_torn_tail: float = 0.0
    #: P(the last flushes silently vanish at a clean frame boundary).
    wal_dropped_flush: float = 0.0
    #: Max whole records lost per dropped flush (uniform in [1, max]).
    max_dropped_flushes: int = 3
    #: P(the newest snapshot generation is damaged); the same draw
    #: repeats per older generation, so damage cascades geometrically
    #: and ``1.0`` deterministically damages every retained generation.
    snapshot_corruption: float = 0.0
    #: Cascade depth cap: at most this many generations are damaged per
    #: crash (``None`` = unbounded). ``snapshot_corruption=1.0`` with a
    #: cap of 1 deterministically damages *exactly* the newest
    #: generation — the forced older-generation-fallback configuration
    #: ``repro recover --storage-faults`` uses.
    max_damaged_generations: Optional[int] = None

    @property
    def enabled(self) -> bool:
        return (
            self.wal_torn_tail > 0.0
            or self.wal_dropped_flush > 0.0
            or self.snapshot_corruption > 0.0
        )

    @property
    def loses_wal_data(self) -> bool:
        """True when acknowledged records can vanish (twin-equivalence
        is then impossible by construction: clients hold ACKs they will
        never retransmit; the system must self-heal via lease expiry)."""
        return self.wal_torn_tail > 0.0 or self.wal_dropped_flush > 0.0

    def validate(self) -> None:
        for name in ("wal_torn_tail", "wal_dropped_flush", "snapshot_corruption"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"storage fault {name} must be in [0, 1], got {p}")
        if self.max_dropped_flushes < 1:
            raise ConfigError(
                f"max_dropped_flushes must be >= 1, got {self.max_dropped_flushes}"
            )
        if self.max_damaged_generations is not None and self.max_damaged_generations < 1:
            raise ConfigError(
                "max_damaged_generations must be >= 1 or None, "
                f"got {self.max_damaged_generations}"
            )


@dataclass(frozen=True)
class StorageFaultReport:
    """Exactly what one crash did to the durable media."""

    crash_t: float
    wal_records_before: int
    wal_torn: bool = False
    wal_dropped_records: int = 0
    damaged_snapshot_seqs: Tuple[int, ...] = ()
    damage_modes: Tuple[str, ...] = ()

    @property
    def any_damage(self) -> bool:
        return (
            self.wal_torn
            or self.wal_dropped_records > 0
            or bool(self.damaged_snapshot_seqs)
        )

    @property
    def loses_wal_data(self) -> bool:
        return self.wal_dropped_records > 0


class StorageFaultInjector:
    """Applies seeded storage damage to (WAL, snapshot store) at crashes."""

    def __init__(self, config: StorageFaultConfig, rng=None, metrics=NULL_REGISTRY):
        config.validate()
        if config.enabled and rng is None:
            raise SimulationError(
                "storage fault injection enabled but no RNG stream supplied"
            )
        self._config = config
        self._rng = rng
        self._m_torn = metrics.counter("repro.persist.faults.wal_torn")
        self._m_dropped = metrics.counter("repro.persist.faults.wal_dropped_records")
        self._m_damaged = metrics.counter("repro.persist.faults.snapshots_damaged")

    @property
    def config(self) -> StorageFaultConfig:
        return self._config

    def inject(self, wal, snapshotter, crash_t: float) -> StorageFaultReport:
        """Damage the media for one crash; returns the exact damage done."""
        cfg = self._config
        records_before = wal.position
        if not cfg.enabled:
            return StorageFaultReport(crash_t=crash_t, wal_records_before=records_before)
        rng = self._rng
        torn = False
        dropped = 0
        # Torn tail: cut strictly inside the final frame so the framing
        # CRC sees a short/corrupt body (exactly one record destroyed).
        if wal.position > 0 and rng.chance(cfg.wal_torn_tail):
            boundaries = wal.frame_boundaries()
            start = boundaries[-2] if len(boundaries) > 1 else 0
            cut = rng.integers(start + 1, boundaries[-1])
            dropped += wal.damage_truncate(cut)
            torn = True
            self._m_torn.inc()
        # Dropped flushes: clean-boundary loss of the last k records.
        if wal.position > 0 and rng.chance(cfg.wal_dropped_flush):
            k = rng.integers(1, cfg.max_dropped_flushes + 1)
            dropped += wal.damage_drop_records(k)
        if dropped > 0:
            self._m_dropped.inc(dropped)
        # Snapshot damage cascade, newest generation first.
        damaged: List[int] = []
        modes: List[str] = []
        cap = cfg.max_damaged_generations
        for snap in snapshotter.generations():
            if cap is not None and len(damaged) >= cap:
                break
            if not rng.chance(cfg.snapshot_corruption):
                break
            mode = rng.choice(SNAPSHOT_DAMAGE_MODES)
            self._damage_snapshot(snapshotter, snap, mode, rng)
            damaged.append(snap.seq)
            modes.append(mode)
            self._m_damaged.inc()
        return StorageFaultReport(
            crash_t=crash_t,
            wal_records_before=records_before,
            wal_torn=torn,
            wal_dropped_records=dropped,
            damaged_snapshot_seqs=tuple(damaged),
            damage_modes=tuple(modes),
        )

    @staticmethod
    def _damage_snapshot(snapshotter, snap, mode: str, rng) -> None:
        if mode == "seal-truncate":
            cut = rng.integers(0, max(len(snap.seal), 1))
            snapshotter.damage_seal(snap.seq, snap.seal[:cut])
        elif mode == "seal-flip":
            seal = bytearray(snap.seal)
            if seal:
                pos = rng.integers(0, len(seal))
                seal[pos] ^= rng.integers(1, 256)
            snapshotter.damage_seal(snap.seq, bytes(seal))
        elif mode == "state-tamper":
            # Deterministic object-graph corruption: the seal frame
            # stays valid, so only the semantic verification rung
            # (recompute projection, compare to seal body) can see it.
            snap.state["_admit_watermark"] = snap.state["_admit_watermark"] + 1
        else:  # pragma: no cover - modes are a closed tuple
            raise SimulationError(f"unknown snapshot damage mode {mode!r}")
