"""Aspect coverage (paper Fig. 4, after Zhang et al.).

"Zhang et al. distinguished two types of coverage in VCS: point coverage
and aspect coverage. In order to fully cover a particular aspect, one has
to take photos or videos that would cover all sides of that aspect", and
"Regarding a complete visibility of an area, it is required that all
aspects of the area are covered by camera views" (Secs. II/V-A).

The visibility map of Algorithm 3 counts *how many* cameras cover a cell;
this module additionally tracks *from which directions*: each covered
cell accumulates a bitmask of the viewing-direction sectors (camera →
cell bearing, quantised into N buckets). A cell's aspect coverage is the
fraction of sectors seen; guided 360° capture dominates this metric
because every sweep views its surroundings from a full ring of
directions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..sfm.model import RecoveredCamera, SfmModel
from .grid import Grid2D, GridSpec
from .visibility import camera_visible_cells, sector_information_ranges

#: Number of viewing-direction buckets per cell.
N_ASPECT_BUCKETS = 8


@dataclass(frozen=True)
class AspectCoverage:
    """Per-cell viewing-direction masks plus summary statistics."""

    spec: GridSpec
    masks: np.ndarray  # uint16 bitmasks, shape = spec.shape
    n_buckets: int = N_ASPECT_BUCKETS

    def aspects_seen(self) -> np.ndarray:
        """Per-cell count of distinct viewing directions."""
        counts = np.zeros(self.spec.shape, dtype=np.uint8)
        for b in range(self.n_buckets):
            counts += ((self.masks >> b) & 1).astype(np.uint8)
        return counts

    def mean_aspects(self, region_mask: Optional[np.ndarray] = None) -> float:
        """Mean viewing-direction count over covered cells in the region."""
        counts = self.aspects_seen()
        mask = counts > 0
        if region_mask is not None:
            mask &= region_mask
        if not mask.any():
            return 0.0
        return float(counts[mask].mean())

    def fully_covered_fraction(
        self,
        region_mask: Optional[np.ndarray] = None,
        min_aspects: int = 4,
    ) -> float:
        """Fraction of region cells seen from >= ``min_aspects`` directions.

        "Complete visibility" in the paper's sense; 4 of 8 buckets is the
        practical threshold for all *reachable* sides (wall-adjacent cells
        can never be viewed from inside the wall).
        """
        counts = self.aspects_seen()
        region = (
            region_mask
            if region_mask is not None
            else np.ones(self.spec.shape, dtype=bool)
        )
        total = int(region.sum())
        if total == 0:
            return 0.0
        return float(((counts >= min_aspects) & region).sum()) / total


def calculate_aspect_coverage(
    model: SfmModel,
    obstacles: Grid2D,
    max_range_m: float = 5.0,
    cameras: Optional[Iterable[RecoveredCamera]] = None,
    n_buckets: int = N_ASPECT_BUCKETS,
) -> AspectCoverage:
    """Accumulate per-cell viewing-direction masks over all cameras.

    Uses the same obstacle- and information-clipped wedges as
    Algorithm 3; for every cell a camera covers, the bucket of the
    camera→cell bearing is set in the cell's mask.
    """
    spec = obstacles.spec
    obstacle_mask = obstacles.nonzero_mask()
    masks = np.zeros(spec.shape, dtype=np.uint16)

    cloud = model.cloud
    order = np.argsort(cloud.feature_ids)
    ids_sorted = cloud.feature_ids[order]
    xy_sorted = cloud.floor_xy()[order]

    # Precompute cell-centre coordinates for bearing computation.
    cols = np.arange(spec.n_cols)
    rows = np.arange(spec.n_rows)
    centre_x = spec.origin_x + (cols + 0.5) * spec.cell_size_m
    centre_y = spec.origin_y + (rows + 0.5) * spec.cell_size_m
    grid_x = np.broadcast_to(centre_x, spec.shape)
    grid_y = np.broadcast_to(centre_y[:, None], spec.shape)

    for camera in cameras if cameras is not None else model.cameras:
        ranges = sector_information_ranges(camera, ids_sorted, xy_sorted, max_range_m)
        visible = camera_visible_cells(
            spec,
            obstacle_mask,
            camera.pose.position.x,
            camera.pose.position.y,
            camera.pose.yaw_rad,
            camera.hfov_rad,
            max_range_m,
            ray_ranges_m=ranges,
        )
        if not visible.any():
            continue
        dx = grid_x[visible] - camera.pose.position.x
        dy = grid_y[visible] - camera.pose.position.y
        bearing = np.arctan2(dy, dx)  # direction camera -> cell
        buckets = (
            ((bearing + math.pi) / (2.0 * math.pi) * n_buckets).astype(int) % n_buckets
        )
        masks[visible] |= (1 << buckets).astype(np.uint16)
    return AspectCoverage(spec=spec, masks=masks, n_buckets=n_buckets)
