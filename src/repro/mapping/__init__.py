"""Mapping substrate: grids, octomap, obstacle/visibility maps, coverage."""

from .aspects import AspectCoverage, calculate_aspect_coverage
from .boundary import BoundsReport, outer_bounds_report, wall_covered_length
from .export import (
    floorplan_to_csv,
    floorplan_to_json,
    floorplan_to_pgm,
    read_pgm,
    spec_metadata,
)
from .coverage import CoverageMaps, CoverageScore, score_against_ground_truth
from .floorplan import diff_layers, export_layers, render_ascii
from .grid import Grid2D, GridSpec
from .incremental import IncrementalMapEngine, MapUpdate
from .obstacles import calculate_obstacles_map
from .octomap import OctoMap
from .visibility import calculate_visibility_map, camera_visible_cells

__all__ = [
    "AspectCoverage",
    "BoundsReport",
    "calculate_aspect_coverage",
    "CoverageMaps",
    "CoverageScore",
    "Grid2D",
    "GridSpec",
    "IncrementalMapEngine",
    "MapUpdate",
    "OctoMap",
    "calculate_obstacles_map",
    "calculate_visibility_map",
    "camera_visible_cells",
    "diff_layers",
    "floorplan_to_csv",
    "floorplan_to_json",
    "floorplan_to_pgm",
    "read_pgm",
    "spec_metadata",
    "export_layers",
    "outer_bounds_report",
    "render_ascii",
    "score_against_ground_truth",
    "wall_covered_length",
]
