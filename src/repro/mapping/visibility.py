"""Algorithm 3: calculateVisibilityMap.

    1: extract camera positions P and facing directions D from M
    2: all_fields <= empty matrix
    3: for p in P, d in D:
    4:   f <= fov(p, d)                      // single camera coverage
    5:   visible_field <= intersect(f, O)    // clip by obstacles (Fig. 4)
    6:   all_fields += visible_field

"The value of a cell is equal to a number of cameras which fields-of-view
cover that particular cell." The map is built from "camera views of the
photos **used for reconstructing the 3D point cloud**" (Sec. IV): a
camera only covers space where it actually contributed model information.
Each camera's FOV wedge is therefore clipped twice:

* by the obstacles map O — rays stop at the first obstacle cell (the
  paper's Figure-4 aspect intersection), and
* by information — per angular sector, the wedge extends only slightly
  beyond the farthest *triangulated* point this camera observed there. A
  camera staring through a glass wall reconstructs nothing behind it, so
  its wedge does not mark that space as covered; this is precisely what
  keeps featureless areas "unvisited" until an annotation task fixes them.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..camera.pose import CameraPose
from ..sfm.model import RecoveredCamera, SfmModel
from .grid import Grid2D, GridSpec

#: Rays per camera FOV wedge are chosen so adjacent rays are at most one
#: cell apart at max range; this multiplier adds safety overlap.
_RAY_DENSITY = 1.6

#: Number of angular sectors used for information clipping.
_N_SECTORS = 9

#: A camera always covers its immediate vicinity, even in sectors where it
#: observed no triangulated points.
MIN_INFO_RANGE_M = 0.3

#: The wedge extends this far beyond the farthest observed point, so the
#: surface the point sits on is itself covered.
INFO_MARGIN_M = 1.0


def camera_visible_cells(
    spec: GridSpec,
    obstacle_mask: np.ndarray,
    position_x: float,
    position_y: float,
    yaw_rad: float,
    hfov_rad: float,
    max_range_m: float,
    ray_ranges_m: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Boolean mask of cells covered by one camera, clipped by obstacles.

    ``ray_ranges_m`` optionally limits each ray individually (information
    clipping); rays are spread uniformly across the FOV. Vectorised ray
    marching: all rays advance in lockstep along radial steps; a ray is
    dead after its first obstacle hit.
    """
    cell = spec.cell_size_m
    n_steps = max(1, int(math.ceil(max_range_m / (cell * 0.5))))
    arc_cells = (hfov_rad * max_range_m) / cell
    n_rays = max(3, int(math.ceil(arc_cells * _RAY_DENSITY)))

    angles = yaw_rad + np.linspace(-hfov_rad / 2.0, hfov_rad / 2.0, n_rays)
    radii = (np.arange(1, n_steps + 1) * (cell * 0.5)).reshape(1, -1)  # (1, S)
    if ray_ranges_m is not None:
        limits = _resample_ranges(ray_ranges_m, n_rays).reshape(-1, 1)
    else:
        limits = np.full((n_rays, 1), max_range_m)

    xs = position_x + np.cos(angles).reshape(-1, 1) * radii  # (R, S)
    ys = position_y + np.sin(angles).reshape(-1, 1) * radii
    within = radii <= limits  # (R, S)

    cols = np.floor((xs - spec.origin_x) / cell).astype(int)
    rows = np.floor((ys - spec.origin_y) / cell).astype(int)
    in_bounds = (rows >= 0) & (rows < spec.n_rows) & (cols >= 0) & (cols < spec.n_cols)

    rows_c = np.clip(rows, 0, spec.n_rows - 1)
    cols_c = np.clip(cols, 0, spec.n_cols - 1)
    blocked = obstacle_mask[rows_c, cols_c] & in_bounds

    # A step is visible while no *previous* step on its ray was blocked;
    # the blocking obstacle cell itself is visible (you can see the wall).
    prev_blocked = np.zeros_like(blocked)
    prev_blocked[:, 1:] = np.cumsum(blocked[:, :-1], axis=1) > 0
    visible = in_bounds & within & ~prev_blocked

    mask = np.zeros(spec.shape, dtype=bool)
    mask[rows_c[visible], cols_c[visible]] = True

    # The camera's own cell is covered if it is in bounds.
    col0 = int(math.floor((position_x - spec.origin_x) / cell))
    row0 = int(math.floor((position_y - spec.origin_y) / cell))
    if 0 <= row0 < spec.n_rows and 0 <= col0 < spec.n_cols:
        mask[row0, col0] = True
    return mask


def sector_information_ranges(
    camera: RecoveredCamera,
    cloud_ids_sorted: np.ndarray,
    cloud_xy_sorted: np.ndarray,
    max_range_m: float,
    n_sectors: int = _N_SECTORS,
) -> np.ndarray:
    """Per-sector wedge range from the camera's triangulated observations.

    Sector k spans an equal slice of the FOV; its range is the distance of
    the farthest triangulated point the camera observed in that slice,
    plus :data:`INFO_MARGIN_M`, clipped to ``max_range_m``. Sectors with
    no observed points keep only :data:`MIN_INFO_RANGE_M`.

    ``cloud_ids_sorted`` / ``cloud_xy_sorted`` are the triangulated cloud's
    feature ids (sorted) and matching floor positions.
    """
    observed = camera.observed_feature_ids
    if observed is None:
        return np.full(n_sectors, max_range_m)
    ranges = np.full(n_sectors, MIN_INFO_RANGE_M)
    obs = np.asarray(observed, dtype=int)
    if obs.size == 0 or cloud_ids_sorted.size == 0:
        return ranges
    pos = np.searchsorted(cloud_ids_sorted, obs)
    pos = np.minimum(pos, cloud_ids_sorted.size - 1)
    matched = cloud_ids_sorted[pos] == obs
    if not matched.any():
        return ranges
    pts = cloud_xy_sorted[pos[matched]]

    half = camera.hfov_rad / 2.0
    dx = pts[:, 0] - camera.pose.position.x
    dy = pts[:, 1] - camera.pose.position.y
    bearing = np.arctan2(dy, dx) - camera.pose.yaw_rad
    bearing = (bearing + np.pi) % (2.0 * np.pi) - np.pi
    in_fov = np.abs(bearing) <= half
    if not in_fov.any():
        return ranges
    sectors = np.minimum(
        n_sectors - 1,
        ((bearing[in_fov] + half) / (2.0 * half) * n_sectors).astype(int),
    )
    dists = np.minimum(max_range_m, np.hypot(dx[in_fov], dy[in_fov]) + INFO_MARGIN_M)
    np.maximum.at(ranges, sectors, dists)
    return ranges


def calculate_visibility_map(
    model: SfmModel,
    obstacles: Grid2D,
    max_range_m: float = 5.0,
    cameras: Optional[Iterable[RecoveredCamera]] = None,
    information_clipping: bool = True,
) -> Grid2D:
    """Build the visibility map for all cameras in ``model``.

    Camera FOVs come from EXIF-recovered intrinsics (Sec. II-A). The
    returned grid counts, per cell, how many camera views cover it.
    """
    spec = obstacles.spec
    obstacle_mask = obstacles.nonzero_mask()
    all_fields = Grid2D(spec)

    cloud_ids_sorted = np.zeros(0, dtype=int)
    cloud_xy_sorted = np.zeros((0, 2))
    if information_clipping:
        cloud = model.cloud
        order = np.argsort(cloud.feature_ids)
        cloud_ids_sorted = cloud.feature_ids[order]
        cloud_xy_sorted = cloud.floor_xy()[order]

    for camera in cameras if cameras is not None else model.cameras:
        ray_ranges = None
        if information_clipping:
            ray_ranges = sector_information_ranges(
                camera, cloud_ids_sorted, cloud_xy_sorted, max_range_m
            )
        mask = camera_visible_cells(
            spec,
            obstacle_mask,
            camera.pose.position.x,
            camera.pose.position.y,
            camera.pose.yaw_rad,
            camera.hfov_rad,
            max_range_m,
            ray_ranges_m=ray_ranges,
        )
        all_fields.data[mask] += 1.0
    return all_fields


def _resample_ranges(sector_ranges: np.ndarray, n_rays: int) -> np.ndarray:
    """Spread per-sector ranges across the ray bundle."""
    n_sectors = sector_ranges.shape[0]
    idx = np.minimum(
        (np.arange(n_rays) * n_sectors) // max(1, n_rays - 1), n_sectors - 1
    )
    return sector_ranges[idx]
