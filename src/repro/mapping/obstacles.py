"""Algorithm 2: calculateObstaclesMap.

    1: O <= empty
    2: compute OctoMap Om from M
    3: Om' <= merge Om cells along up-pointing axis
    4: for cell[i,j] in Om': O[i,j] = cell if cell >= OBSTACLE_THRESHOLD else 0

The obstacles map is "a 2D representation of non traversable areas": any
cell whose merged column holds at least OBSTACLE_THRESHOLD (= 4) points is
an obstacle, which suppresses isolated noise points without erasing thin
structures like wall bands.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Vec2
from ..sfm.pointcloud import PointCloud
from .grid import Grid2D, GridSpec
from .octomap import OctoMap

#: Vertical band of points contributing to obstacles. Points close to the
#: floor are mostly floor returns / noise; ceilings are above phone height.
#: The band is applied to *leaf centres* of the spec-anchored octree, whose
#: z lattice starts at 0: the bottom slab [0, cell) has its centre at
#: cell/2, so ``DEFAULT_Z_MIN`` is chosen above cell/2 for the map cell
#: sizes in use (0.10-0.30 m) — the floor slab is always excluded.
DEFAULT_Z_MIN = 0.15
DEFAULT_Z_MAX = 2.6


def calculate_obstacles_map(
    cloud: PointCloud,
    spec: GridSpec,
    obstacle_threshold: int = 4,
    z_min: float = DEFAULT_Z_MIN,
    z_max: float = DEFAULT_Z_MAX,
) -> Grid2D:
    """Build the obstacles map of ``cloud`` on grid ``spec``.

    The OctoMap lattice is anchored to ``spec`` (see
    :meth:`OctoMap.for_spec`): the leaf size equals the cell size and leaf
    boundaries align with cell boundaries, so one merged column corresponds
    to exactly one map cell. A fixed lattice is what allows
    :class:`~repro.mapping.incremental.IncrementalMapEngine` to maintain
    this map by delta insertion while staying cell-exact with this
    from-scratch implementation.
    """
    grid = Grid2D(spec)
    if len(cloud) == 0:
        return grid

    octomap = OctoMap.for_spec(spec)
    octomap.insert_array(cloud.xyz)
    counts = np.zeros(spec.shape, dtype=float)
    for cx, cy, cz, count in octomap.leaves():
        if not z_min <= cz <= z_max:
            continue
        cell = spec.cell_of(Vec2(cx, cy))
        if cell is not None:
            counts[cell] += count

    grid.data[:] = np.where(counts >= obstacle_threshold, counts, 0.0)
    return grid


def obstacle_cell_count(obstacles: Grid2D) -> int:
    return obstacles.nonzero_count()
