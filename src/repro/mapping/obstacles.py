"""Algorithm 2: calculateObstaclesMap.

    1: O <= empty
    2: compute OctoMap Om from M
    3: Om' <= merge Om cells along up-pointing axis
    4: for cell[i,j] in Om': O[i,j] = cell if cell >= OBSTACLE_THRESHOLD else 0

The obstacles map is "a 2D representation of non traversable areas": any
cell whose merged column holds at least OBSTACLE_THRESHOLD (= 4) points is
an obstacle, which suppresses isolated noise points without erasing thin
structures like wall bands.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Vec2
from ..sfm.pointcloud import PointCloud
from .grid import Grid2D, GridSpec
from .octomap import OctoMap

#: Vertical band of points contributing to obstacles. Points close to the
#: floor are mostly floor returns / noise; ceilings are above phone height.
DEFAULT_Z_MIN = 0.05
DEFAULT_Z_MAX = 2.6


def calculate_obstacles_map(
    cloud: PointCloud,
    spec: GridSpec,
    obstacle_threshold: int = 4,
    z_min: float = DEFAULT_Z_MIN,
    z_max: float = DEFAULT_Z_MAX,
) -> Grid2D:
    """Build the obstacles map of ``cloud`` on grid ``spec``.

    The OctoMap leaf resolution matches the map cell size, so one merged
    column corresponds to one map cell (up to lattice alignment).
    """
    grid = Grid2D(spec)
    if len(cloud) == 0:
        return grid

    octomap = OctoMap.for_cloud(cloud.xyz, resolution=spec.cell_size_m)
    octomap.insert_array(cloud.xyz)
    counts = np.zeros(spec.shape, dtype=float)
    for cx, cy, cz, count in octomap.leaves():
        if not z_min <= cz <= z_max:
            continue
        cell = spec.cell_of(Vec2(cx, cy))
        if cell is not None:
            counts[cell] += count

    grid.data[:] = np.where(counts >= obstacle_threshold, counts, 0.0)
    return grid


def obstacle_cell_count(obstacles: Grid2D) -> int:
    return obstacles.nonzero_count()
