"""Floor-plan export: PGM images, CSV matrices and JSON metadata.

SnapTask's product is the floor plan; downstream consumers (navigation
apps like the authors' SeeNav, robot planners) want it as files. PGM is
chosen for images because it is dependency-free and readable by
everything; CSV/JSON cover numeric pipelines.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

import numpy as np

from ..errors import MappingError
from .coverage import CoverageMaps
from .floorplan import export_layers
from .grid import GridSpec

PathLike = Union[str, pathlib.Path]

#: Grey levels used in exported PGM floor plans.
PGM_EMPTY = 255
PGM_VISIBLE = 180
PGM_OBSTACLE = 0
PGM_OUTSIDE = 220


def floorplan_to_pgm(
    maps: CoverageMaps,
    path: PathLike,
    region_mask: Optional[np.ndarray] = None,
) -> pathlib.Path:
    """Write the floor plan as a binary PGM (P5) image.

    Rows are flipped so north is up, like the ASCII renderer and the
    paper's figures.
    """
    layers = export_layers(maps)
    grey = np.full(layers.shape, PGM_EMPTY, dtype=np.uint8)
    if region_mask is not None:
        if region_mask.shape != layers.shape:
            raise MappingError("region mask shape mismatch")
        grey[~region_mask] = PGM_OUTSIDE
    grey[layers == 1] = PGM_VISIBLE
    grey[layers == 2] = PGM_OBSTACLE
    grey = np.flipud(grey)

    path = pathlib.Path(path)
    header = f"P5\n{grey.shape[1]} {grey.shape[0]}\n255\n".encode("ascii")
    path.write_bytes(header + grey.tobytes())
    return path


def floorplan_to_csv(maps: CoverageMaps, path: PathLike) -> pathlib.Path:
    """Write the layer matrix (0 empty / 1 visible / 2 obstacle) as CSV."""
    layers = export_layers(maps)
    path = pathlib.Path(path)
    np.savetxt(path, layers, fmt="%d", delimiter=",")
    return path


def spec_metadata(spec: GridSpec) -> Dict[str, float]:
    """JSON-serialisable grid georeference."""
    return {
        "origin_x_m": spec.origin_x,
        "origin_y_m": spec.origin_y,
        "cell_size_m": spec.cell_size_m,
        "n_rows": spec.n_rows,
        "n_cols": spec.n_cols,
    }


def floorplan_to_json(
    maps: CoverageMaps,
    path: PathLike,
    venue_name: str = "",
) -> pathlib.Path:
    """Write maps + georeference as one JSON document."""
    layers = export_layers(maps)
    document = {
        "venue": venue_name,
        "grid": spec_metadata(maps.spec),
        "legend": {"0": "unknown", "1": "visible", "2": "obstacle"},
        "covered_cells": maps.covered_cells(),
        "layers": layers.tolist(),
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(document))
    return path


def read_pgm(path: PathLike) -> np.ndarray:
    """Read back a binary P5 PGM written by :func:`floorplan_to_pgm`."""
    raw = pathlib.Path(path).read_bytes()
    if not raw.startswith(b"P5"):
        raise MappingError("not a binary PGM file")
    parts = raw.split(b"\n", 3)
    width, height = (int(v) for v in parts[1].split())
    data = np.frombuffer(parts[3], dtype=np.uint8, count=width * height)
    return data.reshape(height, width)
