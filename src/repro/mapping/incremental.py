"""Incremental map maintenance: O(delta) updates of the SnapTask maps.

Algorithm 1 rebuilds the obstacles map (Algorithm 2), the visibility map
(Algorithm 3) and the coverage union from scratch over the *entire* model
on every uploaded photo batch. The paper itself motivates why that cannot
scale: "a large number of photos leads to long processing time" (Sec.
II-A) — each guided task is slower than the last because the model only
grows. This engine maintains the same three artefacts by delta:

* **Obstacles** — the spec-anchored :class:`OctoMap` (fixed leaf lattice,
  one leaf column == one map cell) receives only the *diff* of the
  filtered cloud versus the previously applied cloud: new triangulated
  points are inserted, points dropped by the statistical outlier filter
  are removed, and only the dirtied vertical columns are re-merged into
  the obstacles grid.
* **Visibility** — per-camera FOV wedges are cached, keyed by the camera
  pose and its per-sector information-clip ranges. A cached wedge is
  invalidated only when (a) an obstacle cell within the camera's reach
  changed occupancy, or (b) the camera's observed-point set intersects
  cloud features that changed, *and* the recomputed clip ranges actually
  differ. Everything else is reused verbatim.
* **Coverage** — the covered-cell union (optionally restricted to a site
  mask) is maintained over the dirty region only; no full grid scans.

Cell-exactness against the from-scratch functions
(:func:`~repro.mapping.obstacles.calculate_obstacles_map`,
:func:`~repro.mapping.visibility.calculate_visibility_map`) is a hard
invariant, enforced by the differential oracle in
``tests/test_incremental_equivalence.py``. The arithmetic that makes it
hold: visibility counts are small integers stored in floats (order-free
addition/subtraction of 1.0 is exact), obstacle counts are integer sums,
and both paths share one octree lattice and one ray-marching routine.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..errors import MappingError
from ..geometry import Vec2
from ..obs import NULL_TELEMETRY, Telemetry
from ..sfm.model import RecoveredCamera, SfmModel
from ..sfm.pointcloud import PointCloud
from .coverage import CoverageMaps
from .grid import Grid2D, GridSpec
from .obstacles import DEFAULT_Z_MAX, DEFAULT_Z_MIN
from .octomap import OctoMap
from .visibility import camera_visible_cells, sector_information_ranges

#: Safety margin (in cells) added to a camera's reach when deciding whether
#: a dirtied obstacle cell can affect its cached wedge. Ray marching samples
#: radii up to ``max_range + cell/2`` and a sample lands anywhere inside its
#: cell (centre offset up to ``cell * sqrt(2)/2``), so 2 cells is strictly
#: conservative.
_REACH_MARGIN_CELLS = 2.0


@dataclass(frozen=True)
class MapUpdate:
    """Result of one engine update: snapshot maps + delta statistics."""

    maps: CoverageMaps
    covered_cells: int
    points_added: int
    points_removed: int
    cameras_added: int
    cameras_refreshed: int
    cameras_reused: int
    dirty_obstacle_cells: int
    full_rebuild: bool

    @property
    def cameras_total(self) -> int:
        return self.cameras_added + self.cameras_refreshed + self.cameras_reused


class _CameraEntry:
    """Cached wedge of one registered camera."""

    __slots__ = ("key", "observed_ref", "ranges", "cells", "x", "y")

    def __init__(self, key, observed_ref, ranges, cells, x, y):
        self.key = key  # (x, y, yaw, hfov) — invalidates on pose change
        self.observed_ref = observed_ref  # identity of observed-ids array
        self.ranges = ranges  # per-sector info-clip ranges (or None)
        self.cells = cells  # sorted flat cell indices of the wedge
        self.x = x
        self.y = y


class IncrementalMapEngine:
    """Maintains obstacles / visibility / coverage maps by delta.

    One engine instance tracks one growing reconstruction on one grid
    spec. Feed it successive ``(model, filtered_cloud)`` states via
    :meth:`update`; it diffs each state against the previous one by
    feature id / photo id and touches only the dirty region. Passing
    ``full_rebuild=True`` discards all cached state first — the escape
    hatch that forces from-scratch behaviour through the same code path.
    """

    def __init__(
        self,
        spec: GridSpec,
        obstacle_threshold: int = 4,
        max_range_m: float = 5.0,
        z_min: float = DEFAULT_Z_MIN,
        z_max: float = DEFAULT_Z_MAX,
        site_mask: Optional[np.ndarray] = None,
        information_clipping: bool = True,
        telemetry: Optional[Telemetry] = None,
    ):
        if obstacle_threshold <= 0:
            raise MappingError("obstacle threshold must be positive")
        obs = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = obs.metrics
        # Delta-size distributions + FOV-wedge cache effectiveness
        # (the two numbers DESIGN.md §5 argues about).
        self._m_updates = metrics.counter("repro.map.updates")
        self._m_cache_hits = metrics.counter("repro.map.fov_cache_hits")
        self._m_cache_misses = metrics.counter("repro.map.fov_cache_misses")
        self._h_dirty = metrics.histogram(
            "repro.map.dirty_columns", base=1.0, growth=2.0
        )
        self._g_covered = metrics.gauge("repro.map.covered_cells")
        self._spec = spec
        self._threshold = int(obstacle_threshold)
        self._max_range = float(max_range_m)
        self._z_min = float(z_min)
        self._z_max = float(z_max)
        self._clip = bool(information_clipping)
        if site_mask is not None:
            site_mask = np.asarray(site_mask, dtype=bool)
            if site_mask.shape != spec.shape:
                raise MappingError("site mask shape does not match grid spec")
        self._site_mask = site_mask
        self._reset()

    def __deepcopy__(self, memo):
        """Deep copy preserving the flat/2-D grid aliasing.

        ``_obst_flat``/``_vis_flat``/``_covered_flat``/``_site_flat``
        are ``ravel()`` views of their 2-D grids; numpy deep-copies each
        array standalone, which would sever the aliasing and silently
        split flat-indexed writes from 2-D reads after a snapshot
        restore. The flats are re-derived from the copied grids instead.
        """
        clone = self.__class__.__new__(self.__class__)
        memo[id(self)] = clone
        derived = ("_obst_flat", "_vis_flat", "_covered_flat", "_site_flat")
        for name, value in self.__dict__.items():
            if name in derived:
                continue
            setattr(clone, name, copy.deepcopy(value, memo))
        clone._obst_flat = clone._obst.ravel()
        clone._vis_flat = clone._vis.ravel()
        clone._covered_flat = clone._covered.ravel()
        clone._site_flat = (
            clone._site_mask.ravel() if clone._site_mask is not None else None
        )
        return clone

    # -- state access ------------------------------------------------------------

    @property
    def spec(self) -> GridSpec:
        return self._spec

    @property
    def covered_cells(self) -> int:
        """Covered-cell count (site-masked), maintained incrementally."""
        return self._covered_cells

    @property
    def n_cached_cameras(self) -> int:
        return len(self._cameras)

    @property
    def n_applied_points(self) -> int:
        return len(self._applied)

    def maps(self) -> CoverageMaps:
        """Independent snapshot of the current obstacles + visibility maps."""
        return CoverageMaps(
            Grid2D(self._spec, self._obst), Grid2D(self._spec, self._vis)
        )

    # -- the engine --------------------------------------------------------------

    def update(
        self,
        model: SfmModel,
        cloud: Optional[PointCloud] = None,
        full_rebuild: bool = False,
    ) -> MapUpdate:
        """Bring the maps up to date with ``model`` (+ filtered ``cloud``).

        ``cloud`` is the point cloud the maps should be built from —
        normally the SOR-filtered cloud, which is why it is passed
        separately from ``model`` (whose own cloud is unfiltered). Omitted,
        ``model.cloud`` is used.
        """
        if full_rebuild:
            self._reset()
        if cloud is None:
            cloud = model.cloud

        added, removed = self._diff_cloud(cloud)
        dirty_cols = self._apply_cloud_delta(added, removed)
        mask_changed = self._remerge_columns(dirty_cols)
        refreshed, reused, n_new = self._update_cameras(
            model, cloud, added, removed, mask_changed
        )
        self._update_coverage(mask_changed)

        self._m_updates.inc()
        self._m_cache_hits.inc(reused)
        self._m_cache_misses.inc(refreshed + n_new)
        self._h_dirty.record(len(dirty_cols))
        self._g_covered.set(self._covered_cells)
        return MapUpdate(
            maps=self.maps(),
            covered_cells=self._covered_cells,
            points_added=len(added),
            points_removed=len(removed),
            cameras_added=n_new,
            cameras_refreshed=refreshed,
            cameras_reused=reused,
            dirty_obstacle_cells=len(dirty_cols),
            full_rebuild=full_rebuild,
        )

    # -- obstacles: delta insertion + dirty-column re-merge ----------------------

    def _diff_cloud(
        self, cloud: PointCloud
    ) -> Tuple[List[Tuple[int, Tuple[float, float, float]]], List[Tuple[int, Tuple[float, float, float]]]]:
        """Symmetric diff of ``cloud`` against the applied point set.

        The SOR filter is a *global* statistic: adding points can evict
        previously-inlying points, so the delta is not insert-only. Points
        whose position changed are treated as remove + add.
        """
        ids = cloud.feature_ids
        xyz = cloud.xyz
        new: Dict[int, Tuple[float, float, float]] = {}
        for i in range(ids.shape[0]):
            new[int(ids[i])] = (float(xyz[i, 0]), float(xyz[i, 1]), float(xyz[i, 2]))
        if len(new) != ids.shape[0]:
            raise MappingError("point cloud has duplicate feature ids")

        added: List[Tuple[int, Tuple[float, float, float]]] = []
        removed: List[Tuple[int, Tuple[float, float, float]]] = []
        for fid, pos in new.items():
            old = self._applied.get(fid)
            if old is None:
                added.append((fid, pos))
            elif old != pos:
                removed.append((fid, old))
                added.append((fid, pos))
        if len(new) - len(added) != len(self._applied) - len(removed):
            # Some applied points vanished entirely from the cloud.
            for fid, old in self._applied.items():
                if fid not in new:
                    removed.append((fid, old))
        return added, removed

    def _apply_cloud_delta(self, added, removed) -> Set[Tuple[int, int]]:
        """Insert/remove the diff in the octree; return dirtied map cells."""
        dirty: Set[Tuple[int, int]] = set()
        for fid, pos in removed:
            del self._applied[fid]
            leaf = self._octomap.remove_point(*pos)
            self._mark_dirty(leaf, dirty)
        for fid, pos in added:
            self._applied[fid] = pos
            leaf = self._octomap.insert_point(*pos)
            self._mark_dirty(leaf, dirty)
        return dirty

    def _mark_dirty(self, leaf, dirty: Set[Tuple[int, int]]) -> None:
        if leaf is None:
            return  # outside the octree cube: contributes to no column
        cx, cy, cz = leaf
        if not self._z_min <= cz <= self._z_max:
            return  # outside the vertical band: merged count unchanged
        cell = self._spec.cell_of(Vec2(cx, cy))
        if cell is not None:
            dirty.add(cell)

    def _remerge_columns(self, dirty: Set[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Re-merge only the dirtied columns; return occupancy-flipped cells."""
        spec = self._spec
        cell = spec.cell_size_m
        flipped: List[Tuple[int, int]] = []
        for (row, col) in dirty:
            x_lo = spec.origin_x + col * cell
            y_lo = spec.origin_y + row * cell
            count = self._octomap.column_count(
                x_lo, x_lo + cell, y_lo, y_lo + cell, self._z_min, self._z_max
            )
            new_value = float(count) if count >= self._threshold else 0.0
            old_value = self._obst[row, col]
            if (new_value > 0.0) != (old_value > 0.0):
                flipped.append((row, col))
            self._obst[row, col] = new_value
        if flipped:
            rows = np.array([rc[0] for rc in flipped])
            cols = np.array([rc[1] for rc in flipped])
            self._obst_mask[rows, cols] = self._obst[rows, cols] > 0.0
        return flipped

    # -- visibility: cached FOV wedges with targeted invalidation ----------------

    def _update_cameras(
        self,
        model: SfmModel,
        cloud: PointCloud,
        added,
        removed,
        mask_changed: List[Tuple[int, int]],
    ) -> Tuple[int, int, int]:
        spec = self._spec
        current_ids = {camera.photo_id for camera in model.cameras}

        # Cameras that left the model (defensive; does not happen in the
        # simulator, but keeps the cache an exact function of the model).
        for photo_id in [pid for pid in self._cameras if pid not in current_ids]:
            self._retire_camera(photo_id)

        # (a) obstacle-dirt rule: any occupancy-flipped cell within reach
        # invalidates the wedge — rays may now stop earlier or reach
        # farther. Strictly conservative: the wedge is a subset of the
        # disc of radius max_range (+ margin) around the camera.
        obstacle_stale: Set[int] = set()
        if mask_changed and self._cameras:
            reach = self._max_range + _REACH_MARGIN_CELLS * spec.cell_size_m
            centers = np.array(
                [
                    (
                        spec.origin_x + (c + 0.5) * spec.cell_size_m,
                        spec.origin_y + (r + 0.5) * spec.cell_size_m,
                    )
                    for r, c in mask_changed
                ]
            )
            cam_ids = list(self._cameras)
            cam_xy = np.array(
                [(self._cameras[pid].x, self._cameras[pid].y) for pid in cam_ids]
            )
            d2 = (
                (cam_xy[:, None, 0] - centers[None, :, 0]) ** 2
                + (cam_xy[:, None, 1] - centers[None, :, 1]) ** 2
            )
            hit = (d2 <= reach * reach).any(axis=1)
            obstacle_stale = {pid for pid, h in zip(cam_ids, hit) if h}

        # (b) information rule: cameras whose observed-point sets intersect
        # changed cloud features may have different clip ranges.
        range_stale: Set[int] = set()
        if self._clip:
            for fid, _pos in added:
                range_stale.update(self._feature_cams.get(fid, ()))
            for fid, _pos in removed:
                range_stale.update(self._feature_cams.get(fid, ()))

        ids_sorted = np.zeros(0, dtype=int)
        xy_sorted = np.zeros((0, 2))
        if self._clip:
            order = np.argsort(cloud.feature_ids)
            ids_sorted = cloud.feature_ids[order]
            xy_sorted = cloud.floor_xy()[order]

        refreshed = 0
        reused = 0
        n_new = 0
        for camera in model.cameras:
            entry = self._cameras.get(camera.photo_id)
            key = self._camera_key(camera)
            if entry is None:
                self._admit_camera(camera, key, ids_sorted, xy_sorted)
                n_new += 1
                continue
            if entry.key != key or entry.observed_ref is not camera.observed_feature_ids:
                # Pose/intrinsics/observations changed: full refresh.
                self._retire_camera(camera.photo_id)
                self._admit_camera(camera, key, ids_sorted, xy_sorted)
                refreshed += 1
                continue
            pid = camera.photo_id
            needs_mask = pid in obstacle_stale
            if pid in range_stale:
                ranges = self._ranges_for(camera, ids_sorted, xy_sorted)
                if not np.array_equal(ranges, entry.ranges):
                    entry.ranges = ranges
                    needs_mask = True
            if needs_mask:
                self._refresh_wedge(camera, entry)
                refreshed += 1
            else:
                reused += 1
        return refreshed, reused, n_new

    def _camera_key(self, camera: RecoveredCamera):
        pose = camera.pose
        return (pose.position.x, pose.position.y, pose.yaw_rad, camera.hfov_rad)

    def _ranges_for(self, camera, ids_sorted, xy_sorted):
        if not self._clip:
            return None
        return sector_information_ranges(camera, ids_sorted, xy_sorted, self._max_range)

    def _wedge_cells(self, camera: RecoveredCamera, ranges) -> np.ndarray:
        mask = camera_visible_cells(
            self._spec,
            self._obst_mask,
            camera.pose.position.x,
            camera.pose.position.y,
            camera.pose.yaw_rad,
            camera.hfov_rad,
            self._max_range,
            ray_ranges_m=ranges,
        )
        return np.flatnonzero(mask.ravel())

    def _admit_camera(self, camera, key, ids_sorted, xy_sorted) -> None:
        ranges = self._ranges_for(camera, ids_sorted, xy_sorted)
        cells = self._wedge_cells(camera, ranges)
        self._vis_flat[cells] += 1.0
        self._cov_dirty.update(cells.tolist())
        self._cameras[camera.photo_id] = _CameraEntry(
            key,
            camera.observed_feature_ids,
            ranges,
            cells,
            camera.pose.position.x,
            camera.pose.position.y,
        )
        if self._clip and camera.observed_feature_ids is not None:
            pid = camera.photo_id
            for fid in camera.observed_feature_ids:
                self._feature_cams.setdefault(int(fid), set()).add(pid)

    def _retire_camera(self, photo_id: int) -> None:
        entry = self._cameras.pop(photo_id)
        self._vis_flat[entry.cells] -= 1.0
        self._cov_dirty.update(entry.cells.tolist())
        if self._clip and entry.observed_ref is not None:
            for fid in entry.observed_ref:
                observers = self._feature_cams.get(int(fid))
                if observers is not None:
                    observers.discard(photo_id)
                    if not observers:
                        del self._feature_cams[int(fid)]

    def _refresh_wedge(self, camera, entry: _CameraEntry) -> None:
        new_cells = self._wedge_cells(camera, entry.ranges)
        changed = np.setxor1d(entry.cells, new_cells, assume_unique=True)
        if changed.size == 0:
            return
        self._vis_flat[entry.cells] -= 1.0
        self._vis_flat[new_cells] += 1.0
        entry.cells = new_cells
        self._cov_dirty.update(changed.tolist())

    # -- coverage: dirty-region union maintenance --------------------------------

    def _update_coverage(self, mask_changed: List[Tuple[int, int]]) -> None:
        n_cols = self._spec.n_cols
        for row, col in mask_changed:
            self._cov_dirty.add(row * n_cols + col)
        if not self._cov_dirty:
            return
        idx = np.fromiter(self._cov_dirty, dtype=np.int64, count=len(self._cov_dirty))
        self._cov_dirty.clear()
        covered = (self._obst_flat[idx] > 0.0) | (self._vis_flat[idx] > 0.0)
        if self._site_flat is not None:
            covered &= self._site_flat[idx]
        before = self._covered_flat[idx]
        self._covered_cells += int(covered.sum()) - int(before.sum())
        self._covered_flat[idx] = covered

    # -- lifecycle ---------------------------------------------------------------

    def _reset(self) -> None:
        spec = self._spec
        self._octomap = OctoMap.for_spec(spec)
        self._applied: Dict[int, Tuple[float, float, float]] = {}
        self._obst = np.zeros(spec.shape, dtype=float)
        self._obst_mask = np.zeros(spec.shape, dtype=bool)
        self._vis = np.zeros(spec.shape, dtype=float)
        self._covered = np.zeros(spec.shape, dtype=bool)
        self._obst_flat = self._obst.ravel()
        self._vis_flat = self._vis.ravel()
        self._covered_flat = self._covered.ravel()
        self._site_flat = (
            self._site_mask.ravel() if self._site_mask is not None else None
        )
        self._covered_cells = 0
        self._cameras: Dict[int, _CameraEntry] = {}
        self._feature_cams: Dict[int, Set[int]] = {}
        self._cov_dirty: Set[int] = set()
