"""Floor-plan rendering: maps as ASCII art and export arrays.

"The floor plan is obtained by projecting a currently available 3D point
cloud onto a ground plane" (Sec. III). This module renders the paper's
map figures (Figs. 10 and 12) as terminal-friendly ASCII: obstacles are
``#``, camera-covered cells ``.``, uncovered interior space `` ``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import MappingError
from .coverage import CoverageMaps
from .grid import Grid2D

OBSTACLE_CHAR = "#"
VISIBLE_CHAR = "."
EMPTY_CHAR = " "
OUTSIDE_CHAR = "~"


def render_ascii(
    maps: CoverageMaps,
    region_mask: Optional[np.ndarray] = None,
    max_width: int = 110,
) -> str:
    """Render coverage maps as ASCII, optionally marking outside cells.

    Rows are flipped so north (larger y) is at the top, like a floor plan.
    The map is downsampled by integer factors to fit ``max_width``.
    """
    obstacle = maps.obstacles.nonzero_mask()
    visible = maps.visibility.nonzero_mask()
    n_rows, n_cols = obstacle.shape
    factor = max(1, int(np.ceil(n_cols / max_width)))

    lines: List[str] = []
    for row_block in range(n_rows - 1, -1, -factor):
        row_lo = max(0, row_block - factor + 1)
        chars: List[str] = []
        for col_block in range(0, n_cols, factor):
            col_hi = min(n_cols, col_block + factor)
            block = np.s_[row_lo : row_block + 1, col_block:col_hi]
            if obstacle[block].any():
                chars.append(OBSTACLE_CHAR)
            elif visible[block].any():
                chars.append(VISIBLE_CHAR)
            elif region_mask is not None and not region_mask[block].any():
                chars.append(OUTSIDE_CHAR)
            else:
                chars.append(EMPTY_CHAR)
        lines.append("".join(chars).rstrip())
    return "\n".join(lines)


def export_layers(maps: CoverageMaps) -> np.ndarray:
    """(rows, cols) uint8 array: 0 empty, 1 visible, 2 obstacle.

    Obstacles win over visibility, matching the paper's figures where
    obstacle pixels are drawn on top of the visibility layer.
    """
    out = np.zeros(maps.obstacles.spec.shape, dtype=np.uint8)
    out[maps.visibility.nonzero_mask()] = 1
    out[maps.obstacles.nonzero_mask()] = 2
    return out


def diff_layers(a: CoverageMaps, b: CoverageMaps) -> np.ndarray:
    """Cells covered in ``b`` but not in ``a`` (map growth between tasks)."""
    if a.spec != b.spec:
        raise MappingError("cannot diff maps on different specs")
    return b.covered_mask() & ~a.covered_mask()
