"""Outer-bounds reconstruction length (Fig. 11a's metric).

"We also measured the length of reconstructed outer bounds of the venue in
every obstacles map and compared it to the ground truth. During the
comparison, we set the bounds reconstruction threshold to T = 0.15m,
meaning that two segments of the bounds will be considered as one, if a
distance between them is less than T" (Sec. V-C1).

Implementation: for every ground-truth outer-wall segment, project nearby
obstacle cells onto the segment, convert each cell to a small covered
interval along the wall, merge intervals with gaps below T, and sum the
merged lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..geometry import Segment, Vec2, merge_intervals, total_interval_length
from ..venue.model import Venue
from ..venue.surfaces import Surface
from .grid import Grid2D

#: How far (metres) an obstacle cell centre may sit from the wall line and
#: still count as reconstructing that wall. Covers triangulation noise plus
#: half a cell of quantisation.
DEFAULT_WALL_TOLERANCE_M = 0.3


@dataclass(frozen=True)
class BoundsReport:
    """Reconstructed-vs-ground-truth outer bounds."""

    reconstructed_m: float
    ground_truth_m: float
    per_wall: Tuple[Tuple[str, float, float], ...]  # (label, got, total)

    @property
    def fraction(self) -> float:
        if self.ground_truth_m == 0:
            return 0.0
        return min(1.0, self.reconstructed_m / self.ground_truth_m)

    @property
    def percent(self) -> float:
        return 100.0 * self.fraction


def wall_covered_length(
    wall: Segment,
    obstacle_xy: np.ndarray,
    merge_threshold_m: float,
    tolerance_m: float,
    cell_size_m: float,
) -> float:
    """Length of ``wall`` covered by obstacle cells at ``obstacle_xy``."""
    if obstacle_xy.shape[0] == 0:
        return 0.0
    a = np.array([wall.a.x, wall.a.y])
    d = np.array([wall.b.x - wall.a.x, wall.b.y - wall.a.y])
    length = float(np.hypot(*d))
    d_unit = d / length
    rel = obstacle_xy - a
    t = rel @ d_unit  # distance along the wall, metres
    perp = np.abs(rel[:, 0] * (-d_unit[1]) + rel[:, 1] * d_unit[0])
    near = (perp <= tolerance_m) & (t >= -tolerance_m) & (t <= length + tolerance_m)
    if not near.any():
        return 0.0
    half = cell_size_m / 2.0
    intervals = []
    for ti in t[near]:
        lo = max(0.0, float(ti) - half)
        hi = min(length, float(ti) + half)
        if hi > lo:  # cells projecting just past the wall ends are void
            intervals.append((lo, hi))
    merged = merge_intervals(intervals, merge_threshold_m)
    return total_interval_length(merged)


def outer_bounds_report(
    venue: Venue,
    obstacles: Grid2D,
    merge_threshold_m: float = 0.15,
    tolerance_m: float = DEFAULT_WALL_TOLERANCE_M,
) -> BoundsReport:
    """Reconstructed outer-bound length against the venue's ground truth."""
    mask = obstacles.nonzero_mask()
    rows, cols = np.nonzero(mask)
    spec = obstacles.spec
    xs = spec.origin_x + (cols + 0.5) * spec.cell_size_m
    ys = spec.origin_y + (rows + 0.5) * spec.cell_size_m
    xy = np.stack([xs, ys], axis=1) if rows.size else np.zeros((0, 2))

    per_wall: List[Tuple[str, float, float]] = []
    total_got = 0.0
    total_len = 0.0
    for wall in venue.outer_wall_surfaces():
        got = wall_covered_length(
            wall.segment, xy, merge_threshold_m, tolerance_m, spec.cell_size_m
        )
        got = min(got, wall.segment.length)
        per_wall.append((wall.label or f"wall-{wall.surface_id}", got, wall.segment.length))
        total_got += got
        total_len += wall.segment.length
    return BoundsReport(
        reconstructed_m=total_got,
        ground_truth_m=total_len,
        per_wall=tuple(per_wall),
    )
