"""2-D map grids.

Both maps the paper builds — the obstacles map (Algorithm 2) and the
visibility map (Algorithm 3) — are "a matrix where each cell ... maps the
cell into a physical area of 15cm x 15cm". :class:`GridSpec` pins the
world-to-cell transform; :class:`Grid2D` is a numpy-backed matrix bound to
a spec so different maps of the same venue align cell-for-cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import MappingError
from ..geometry import BoundingBox, Vec2


@dataclass(frozen=True)
class GridSpec:
    """World-to-cell transform: origin, cell size, and matrix shape."""

    origin_x: float
    origin_y: float
    cell_size_m: float
    n_rows: int
    n_cols: int

    def __post_init__(self) -> None:
        if self.cell_size_m <= 0:
            raise MappingError("cell size must be positive")
        if self.n_rows <= 0 or self.n_cols <= 0:
            raise MappingError("grid must have positive shape")

    @staticmethod
    def from_bbox(bbox: BoundingBox, cell_size_m: float, margin_m: float = 1.0) -> "GridSpec":
        expanded = bbox.expanded(margin_m)
        n_cols = int(np.ceil(expanded.width / cell_size_m))
        n_rows = int(np.ceil(expanded.height / cell_size_m))
        return GridSpec(
            origin_x=expanded.min_x,
            origin_y=expanded.min_y,
            cell_size_m=cell_size_m,
            n_rows=max(1, n_rows),
            n_cols=max(1, n_cols),
        )

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def cell_area_m2(self) -> float:
        return self.cell_size_m ** 2

    def cell_of(self, p: Vec2) -> Optional[Tuple[int, int]]:
        """(row, col) of the cell containing ``p``, or None if outside."""
        col = int(np.floor((p.x - self.origin_x) / self.cell_size_m))
        row = int(np.floor((p.y - self.origin_y) / self.cell_size_m))
        if 0 <= row < self.n_rows and 0 <= col < self.n_cols:
            return (row, col)
        return None

    def cells_of(self, xy: np.ndarray) -> np.ndarray:
        """(N, 2) array of (row, col); out-of-bounds rows are marked -1."""
        xy = np.asarray(xy, dtype=float).reshape(-1, 2)
        cols = np.floor((xy[:, 0] - self.origin_x) / self.cell_size_m).astype(int)
        rows = np.floor((xy[:, 1] - self.origin_y) / self.cell_size_m).astype(int)
        valid = (rows >= 0) & (rows < self.n_rows) & (cols >= 0) & (cols < self.n_cols)
        rows = np.where(valid, rows, -1)
        cols = np.where(valid, cols, -1)
        return np.stack([rows, cols], axis=1)

    def center_of(self, row: int, col: int) -> Vec2:
        return Vec2(
            self.origin_x + (col + 0.5) * self.cell_size_m,
            self.origin_y + (row + 0.5) * self.cell_size_m,
        )

    def in_bounds(self, row: int, col: int) -> bool:
        return 0 <= row < self.n_rows and 0 <= col < self.n_cols

    def iter_cells(self) -> Iterator[Tuple[int, int]]:
        for row in range(self.n_rows):
            for col in range(self.n_cols):
                yield (row, col)


class Grid2D:
    """A float matrix bound to a :class:`GridSpec`."""

    def __init__(self, spec: GridSpec, data: Optional[np.ndarray] = None):
        self._spec = spec
        if data is None:
            self._data = np.zeros(spec.shape, dtype=float)
        else:
            data = np.asarray(data, dtype=float)
            if data.shape != spec.shape:
                raise MappingError(
                    f"grid data shape {data.shape} != spec shape {spec.shape}"
                )
            self._data = data.copy()

    @property
    def spec(self) -> GridSpec:
        return self._spec

    @property
    def data(self) -> np.ndarray:
        """The underlying matrix (mutable)."""
        return self._data

    def value_at(self, p: Vec2) -> float:
        cell = self._spec.cell_of(p)
        if cell is None:
            return 0.0
        return float(self._data[cell])

    def set_at(self, p: Vec2, value: float) -> None:
        cell = self._spec.cell_of(p)
        if cell is None:
            raise MappingError(f"point {p} outside grid")
        self._data[cell] = value

    def nonzero_mask(self) -> np.ndarray:
        return self._data > 0

    def nonzero_count(self) -> int:
        return int((self._data > 0).sum())

    def covered_area_m2(self) -> float:
        return self.nonzero_count() * self._spec.cell_area_m2

    def copy(self) -> "Grid2D":
        return Grid2D(self._spec, self._data)

    def union_mask(self, other: "Grid2D") -> np.ndarray:
        """Non-zero union with another grid of the same spec."""
        self._require_same_spec(other)
        return (self._data > 0) | (other._data > 0)

    def _require_same_spec(self, other: "Grid2D") -> None:
        if other.spec != self._spec:
            raise MappingError("grids are on different specs")

    @staticmethod
    def zeros_like(other: "Grid2D") -> "Grid2D":
        return Grid2D(other.spec)
