"""Model coverage: the union of the obstacles and visibility maps.

"The coverage of the 3D point cloud, also called the model coverage, is
the union of the coverage of the obstacles and the visibility maps. Any
particular place in a venue is considered as an unvisited area, if it is
not included in neither the obstacles map nor the visibility map"
(Sec. IV). Comparison against ground truth follows Sec. V-C1: only cells
inside the ground-truth coverage region are counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import MappingError
from .grid import Grid2D


@dataclass(frozen=True)
class CoverageMaps:
    """Obstacles map + visibility map + their union for one model state."""

    obstacles: Grid2D
    visibility: Grid2D

    def __post_init__(self) -> None:
        if self.obstacles.spec != self.visibility.spec:
            raise MappingError("obstacle/visibility maps on different specs")

    @property
    def spec(self):
        return self.obstacles.spec

    def covered_mask(self) -> np.ndarray:
        return self.obstacles.union_mask(self.visibility)

    def covered_cells(self) -> int:
        """The scalar "coverage" Algorithm 1 compares between iterations."""
        return int(self.covered_mask().sum())

    def covered_area_m2(self) -> float:
        return self.covered_cells() * self.spec.cell_area_m2


@dataclass(frozen=True)
class CoverageScore:
    """Model coverage relative to ground truth."""

    covered_in_region: int
    region_cells: int
    obstacle_cells_matched: int
    gt_obstacle_cells: int

    @property
    def coverage_fraction(self) -> float:
        if self.region_cells == 0:
            return 0.0
        return self.covered_in_region / self.region_cells

    @property
    def coverage_percent(self) -> float:
        return 100.0 * self.coverage_fraction

    @property
    def obstacle_recall(self) -> float:
        if self.gt_obstacle_cells == 0:
            return 0.0
        return self.obstacle_cells_matched / self.gt_obstacle_cells


def score_against_ground_truth(
    maps: CoverageMaps,
    gt_region_mask: np.ndarray,
    gt_obstacle_mask: np.ndarray,
    obstacle_tolerance_cells: int = 1,
) -> CoverageScore:
    """Compare model maps to ground truth.

    "We compared the coverage by directly comparing non-zero cells of
    obstacles and visibility matrices of the generated map to cells of
    corresponding matrices obtained from the ground truth floor plan. We
    did not consider any cells that were outside the ground truth coverage
    map" (Sec. V-C1). Obstacle matching tolerates ``obstacle_tolerance_cells``
    of displacement, absorbing reconstruction noise at cell granularity.
    """
    covered = maps.covered_mask()
    if covered.shape != gt_region_mask.shape:
        raise MappingError("ground truth masks on a different grid")
    covered_in_region = int((covered & gt_region_mask).sum())
    region_cells = int(gt_region_mask.sum())

    model_obstacles = maps.obstacles.nonzero_mask()
    dilated = _dilate(model_obstacles, obstacle_tolerance_cells)
    matched = int((dilated & gt_obstacle_mask).sum())
    return CoverageScore(
        covered_in_region=covered_in_region,
        region_cells=region_cells,
        obstacle_cells_matched=matched,
        gt_obstacle_cells=int(gt_obstacle_mask.sum()),
    )


def _dilate(mask: np.ndarray, cells: int) -> np.ndarray:
    """Binary dilation by ``cells`` using numpy shifts (no scipy.ndimage)."""
    if cells <= 0:
        return mask
    out = mask.copy()
    for _ in range(cells):
        grown = out.copy()
        grown[1:, :] |= out[:-1, :]
        grown[:-1, :] |= out[1:, :]
        grown[:, 1:] |= out[:, :-1]
        grown[:, :-1] |= out[:, 1:]
        out = grown
    return out
