"""A simplified OctoMap: octree occupancy over 3-D point clouds.

Algorithm 2 computes "OctoMap Om from M" and then merges "Om cells along
up-pointing axis". This is a count-occupancy octree (no probabilistic ray
updates — SnapTask only inserts triangulated points and counts them),
subdividing space down to a configurable leaf resolution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import MappingError


@dataclass
class _Node:
    """Internal octree node; leaves carry point counts."""

    cx: float
    cy: float
    cz: float
    half: float
    depth: int
    count: int = 0
    children: Optional[List[Optional["_Node"]]] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class OctoMap:
    """Count-occupancy octree with fixed leaf resolution."""

    def __init__(
        self,
        center: Tuple[float, float, float],
        half_extent: float,
        resolution: float,
    ):
        if resolution <= 0:
            raise MappingError("octree resolution must be positive")
        if half_extent <= 0:
            raise MappingError("octree half extent must be positive")
        self._resolution = resolution
        # Depth so that leaf half-size <= resolution / 2.
        depth = max(0, int(math.ceil(math.log2((2.0 * half_extent) / resolution))))
        self._max_depth = depth
        self._root = _Node(center[0], center[1], center[2], half_extent, 0)
        self._n_points = 0

    @property
    def resolution(self) -> float:
        return self._resolution

    @property
    def max_depth(self) -> int:
        return self._max_depth

    @property
    def n_points(self) -> int:
        return self._n_points

    def insert(self, x: float, y: float, z: float) -> bool:
        """Insert one point; returns False if outside the octree bounds."""
        return self.insert_point(x, y, z) is not None

    def insert_point(
        self, x: float, y: float, z: float
    ) -> Optional[Tuple[float, float, float]]:
        """Insert one point, returning the centre of the leaf it landed in.

        Returns ``None`` (and inserts nothing) when the point is outside
        the octree bounds. The returned leaf centre is the authoritative
        lattice position — incremental callers use it to decide which
        merged column the point dirties, so point-on-boundary assignment
        always agrees with the octree's own descent rule.
        """
        node = self._root
        if not self._inside(node, x, y, z):
            return None
        while node.depth < self._max_depth:
            if node.children is None:
                node.children = [None] * 8
            octant = self._octant(node, x, y, z)
            child = node.children[octant]
            if child is None:
                child = self._make_child(node, octant)
                node.children[octant] = child
            node.count += 1
            node = child
        node.count += 1
        self._n_points += 1
        return (node.cx, node.cy, node.cz)

    def remove_point(
        self, x: float, y: float, z: float
    ) -> Optional[Tuple[float, float, float]]:
        """Remove one previously-inserted point (delta maintenance).

        Returns the centre of the leaf the point was removed from, or
        ``None`` when the point lies outside the bounds. Removing from an
        empty leaf is a caller bug (the incremental engine only removes
        points it inserted) and raises :class:`MappingError`.
        """
        node = self._root
        if not self._inside(node, x, y, z):
            return None
        path: List[_Node] = [node]
        while node.depth < self._max_depth:
            if node.children is None:
                raise MappingError("remove_point: point was never inserted")
            child = node.children[self._octant(node, x, y, z)]
            if child is None:
                raise MappingError("remove_point: point was never inserted")
            node = child
            path.append(node)
        if node.count <= 0:
            raise MappingError("remove_point: leaf already empty")
        for visited in path:
            visited.count -= 1
        self._n_points -= 1
        return (node.cx, node.cy, node.cz)

    def insert_array(self, xyz: np.ndarray) -> int:
        """Insert (N, 3) points; returns how many fell inside the bounds."""
        xyz = np.asarray(xyz, dtype=float).reshape(-1, 3)
        inserted = 0
        for x, y, z in xyz:
            if self.insert(float(x), float(y), float(z)):
                inserted += 1
        return inserted

    def leaves(self) -> Iterator[Tuple[float, float, float, int]]:
        """Occupied leaves as (center_x, center_y, center_z, count)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if node.count > 0 and node.depth == self._max_depth:
                    yield (node.cx, node.cy, node.cz, node.count)
            else:
                for child in node.children:  # type: ignore[union-attr]
                    if child is not None:
                        stack.append(child)

    def count_at(self, x: float, y: float, z: float) -> int:
        """Point count in the leaf containing (x, y, z)."""
        node = self._root
        if not self._inside(node, x, y, z):
            return 0
        while not node.is_leaf:
            child = node.children[self._octant(node, x, y, z)]  # type: ignore[index]
            if child is None:
                return 0
            node = child
        return node.count if node.depth == self._max_depth else 0

    def merge_columns(
        self, z_min: float = -math.inf, z_max: float = math.inf
    ) -> Dict[Tuple[int, int], int]:
        """Merge leaves along the up axis (Algorithm 2 line 3).

        Returns column point counts keyed by integer (ix, iy) leaf indices;
        only leaves with centres in [z_min, z_max] contribute — callers use
        this to ignore floor and ceiling returns.
        """
        columns: Dict[Tuple[int, int], int] = {}
        leaf_size = self.leaf_size
        for cx, cy, cz, count in self.leaves():
            if not z_min <= cz <= z_max:
                continue
            key = (
                int(math.floor(cx / leaf_size)),
                int(math.floor(cy / leaf_size)),
            )
            columns[key] = columns.get(key, 0) + count
        return columns

    def column_count(
        self,
        x_lo: float,
        x_hi: float,
        y_lo: float,
        y_hi: float,
        z_min: float = -math.inf,
        z_max: float = math.inf,
    ) -> int:
        """Re-merge one vertical column (Algorithm 2 line 3, locally).

        Sum of occupied max-depth leaf counts whose centres satisfy
        ``x_lo <= cx < x_hi``, ``y_lo <= cy < y_hi`` and
        ``z_min <= cz <= z_max`` — the same half-open x/y and closed z
        semantics the full merge uses. The traversal prunes subtrees that
        cannot intersect the column, so re-merging one dirtied cell costs
        O(depth + leaves in that column) instead of O(all leaves).
        """
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.count == 0:
                continue
            # Prune: node's x/y extent entirely outside the column.
            if (
                node.cx + node.half <= x_lo
                or node.cx - node.half >= x_hi
                or node.cy + node.half <= y_lo
                or node.cy - node.half >= y_hi
            ):
                continue
            if node.is_leaf:
                if (
                    node.depth == self._max_depth
                    and x_lo <= node.cx < x_hi
                    and y_lo <= node.cy < y_hi
                    and z_min <= node.cz <= z_max
                ):
                    total += node.count
                continue
            for child in node.children:  # type: ignore[union-attr]
                if child is not None:
                    stack.append(child)
        return total

    @property
    def leaf_size(self) -> float:
        return (2.0 * self._root.half) / (2 ** self._max_depth)

    @property
    def min_corner(self) -> Tuple[float, float, float]:
        """Minimum (x, y, z) corner of the octree cube."""
        return (
            self._root.cx - self._root.half,
            self._root.cy - self._root.half,
            self._root.cz - self._root.half,
        )

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _inside(node: _Node, x: float, y: float, z: float) -> bool:
        return (
            abs(x - node.cx) <= node.half
            and abs(y - node.cy) <= node.half
            and abs(z - node.cz) <= node.half
        )

    @staticmethod
    def _octant(node: _Node, x: float, y: float, z: float) -> int:
        return (
            (1 if x >= node.cx else 0)
            | (2 if y >= node.cy else 0)
            | (4 if z >= node.cz else 0)
        )

    @staticmethod
    def _make_child(node: _Node, octant: int) -> _Node:
        quarter = node.half / 2.0
        cx = node.cx + (quarter if octant & 1 else -quarter)
        cy = node.cy + (quarter if octant & 2 else -quarter)
        cz = node.cz + (quarter if octant & 4 else -quarter)
        return _Node(cx, cy, cz, node.half / 2.0, node.depth + 1)

    @staticmethod
    def for_cloud(
        xyz: np.ndarray, resolution: float, padding: float = 1.0
    ) -> "OctoMap":
        """Octree sized to enclose ``xyz`` with ``padding`` metres of slack."""
        xyz = np.asarray(xyz, dtype=float).reshape(-1, 3)
        if xyz.shape[0] == 0:
            return OctoMap((0.0, 0.0, 0.0), max(padding, resolution), resolution)
        lo = xyz.min(axis=0) - padding
        hi = xyz.max(axis=0) + padding
        center = (lo + hi) / 2.0
        half = float(max(hi - lo) / 2.0)
        return OctoMap((center[0], center[1], center[2]), max(half, resolution), resolution)

    @staticmethod
    def for_spec(
        spec,
        z_floor_m: float = -4.0,
        padding_m: float = 2.0,
    ) -> "OctoMap":
        """Octree whose leaf lattice is anchored to a :class:`GridSpec`.

        Unlike :meth:`for_cloud` — whose lattice drifts as the cloud's
        bounding box grows — this octree is a *fixed* function of the grid
        spec: leaf size equals the cell size exactly (the cube side is
        ``cell * 2**depth``), and the cube's minimum corner sits an integer
        number of cells below the spec origin. Every leaf column therefore
        corresponds to exactly one map cell for the lifetime of the map,
        which is what makes delta insertion and from-scratch rebuilds
        cell-exact against each other.

        ``z_floor_m`` anchors the bottom of the cube (points below it are
        out of bounds); the cube always spans at least the grid's x/y
        extent plus ``padding_m`` on each side.
        """
        cell = float(spec.cell_size_m)
        pad_cells = int(math.ceil(padding_m / cell))
        width_cells = spec.n_cols + 2 * pad_cells
        height_cells = spec.n_rows + 2 * pad_cells
        floor_cells = int(math.ceil(max(0.0, -z_floor_m) / cell))
        # The cube must cover the padded grid in x/y and reach down to the
        # z floor; side = cell * 2**depth keeps the leaf size exact.
        need = max(width_cells, height_cells, floor_cells + 1)
        depth = max(0, int(math.ceil(math.log2(need))))
        side_cells = 2 ** depth
        half = cell * side_cells / 2.0
        cx = (spec.origin_x - pad_cells * cell) + half
        cy = (spec.origin_y - pad_cells * cell) + half
        cz = (-floor_cells * cell) + half
        return OctoMap((cx, cy, cz), half, cell)
