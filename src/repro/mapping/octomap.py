"""A simplified OctoMap: octree occupancy over 3-D point clouds.

Algorithm 2 computes "OctoMap Om from M" and then merges "Om cells along
up-pointing axis". This is a count-occupancy octree (no probabilistic ray
updates — SnapTask only inserts triangulated points and counts them),
subdividing space down to a configurable leaf resolution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import MappingError


@dataclass
class _Node:
    """Internal octree node; leaves carry point counts."""

    cx: float
    cy: float
    cz: float
    half: float
    depth: int
    count: int = 0
    children: Optional[List[Optional["_Node"]]] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class OctoMap:
    """Count-occupancy octree with fixed leaf resolution."""

    def __init__(
        self,
        center: Tuple[float, float, float],
        half_extent: float,
        resolution: float,
    ):
        if resolution <= 0:
            raise MappingError("octree resolution must be positive")
        if half_extent <= 0:
            raise MappingError("octree half extent must be positive")
        self._resolution = resolution
        # Depth so that leaf half-size <= resolution / 2.
        depth = max(0, int(math.ceil(math.log2((2.0 * half_extent) / resolution))))
        self._max_depth = depth
        self._root = _Node(center[0], center[1], center[2], half_extent, 0)
        self._n_points = 0

    @property
    def resolution(self) -> float:
        return self._resolution

    @property
    def max_depth(self) -> int:
        return self._max_depth

    @property
    def n_points(self) -> int:
        return self._n_points

    def insert(self, x: float, y: float, z: float) -> bool:
        """Insert one point; returns False if outside the octree bounds."""
        node = self._root
        if not self._inside(node, x, y, z):
            return False
        while node.depth < self._max_depth:
            if node.children is None:
                node.children = [None] * 8
            octant = self._octant(node, x, y, z)
            child = node.children[octant]
            if child is None:
                child = self._make_child(node, octant)
                node.children[octant] = child
            node.count += 1
            node = child
        node.count += 1
        self._n_points += 1
        return True

    def insert_array(self, xyz: np.ndarray) -> int:
        """Insert (N, 3) points; returns how many fell inside the bounds."""
        xyz = np.asarray(xyz, dtype=float).reshape(-1, 3)
        inserted = 0
        for x, y, z in xyz:
            if self.insert(float(x), float(y), float(z)):
                inserted += 1
        return inserted

    def leaves(self) -> Iterator[Tuple[float, float, float, int]]:
        """Occupied leaves as (center_x, center_y, center_z, count)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if node.count > 0 and node.depth == self._max_depth:
                    yield (node.cx, node.cy, node.cz, node.count)
            else:
                for child in node.children:  # type: ignore[union-attr]
                    if child is not None:
                        stack.append(child)

    def count_at(self, x: float, y: float, z: float) -> int:
        """Point count in the leaf containing (x, y, z)."""
        node = self._root
        if not self._inside(node, x, y, z):
            return 0
        while not node.is_leaf:
            child = node.children[self._octant(node, x, y, z)]  # type: ignore[index]
            if child is None:
                return 0
            node = child
        return node.count if node.depth == self._max_depth else 0

    def merge_columns(
        self, z_min: float = -math.inf, z_max: float = math.inf
    ) -> Dict[Tuple[int, int], int]:
        """Merge leaves along the up axis (Algorithm 2 line 3).

        Returns column point counts keyed by integer (ix, iy) leaf indices;
        only leaves with centres in [z_min, z_max] contribute — callers use
        this to ignore floor and ceiling returns.
        """
        columns: Dict[Tuple[int, int], int] = {}
        leaf_size = self.leaf_size
        for cx, cy, cz, count in self.leaves():
            if not z_min <= cz <= z_max:
                continue
            key = (
                int(math.floor(cx / leaf_size)),
                int(math.floor(cy / leaf_size)),
            )
            columns[key] = columns.get(key, 0) + count
        return columns

    @property
    def leaf_size(self) -> float:
        return (2.0 * self._root.half) / (2 ** self._max_depth)

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _inside(node: _Node, x: float, y: float, z: float) -> bool:
        return (
            abs(x - node.cx) <= node.half
            and abs(y - node.cy) <= node.half
            and abs(z - node.cz) <= node.half
        )

    @staticmethod
    def _octant(node: _Node, x: float, y: float, z: float) -> int:
        return (
            (1 if x >= node.cx else 0)
            | (2 if y >= node.cy else 0)
            | (4 if z >= node.cz else 0)
        )

    @staticmethod
    def _make_child(node: _Node, octant: int) -> _Node:
        quarter = node.half / 2.0
        cx = node.cx + (quarter if octant & 1 else -quarter)
        cy = node.cy + (quarter if octant & 2 else -quarter)
        cz = node.cz + (quarter if octant & 4 else -quarter)
        return _Node(cx, cy, cz, node.half / 2.0, node.depth + 1)

    @staticmethod
    def for_cloud(
        xyz: np.ndarray, resolution: float, padding: float = 1.0
    ) -> "OctoMap":
        """Octree sized to enclose ``xyz`` with ``padding`` metres of slack."""
        xyz = np.asarray(xyz, dtype=float).reshape(-1, 3)
        if xyz.shape[0] == 0:
            return OctoMap((0.0, 0.0, 0.0), max(padding, resolution), resolution)
        lo = xyz.min(axis=0) - padding
        hi = xyz.max(axis=0) + padding
        center = (lo + hi) / 2.0
        half = float(max(hi - lo) / 2.0)
        return OctoMap((center[0], center[1], center[2]), max(half, resolution), resolution)
