"""Replayable failing-seed artifacts.

When a fuzz campaign fails, the scenario (post-shrink) plus everything
needed to re-trigger and triage the failure is serialised to a small
JSON document. Because a scenario fully determines its deployment, the
artifact *is* the reproduction: ``python -m repro fuzz --replay f.json``
re-runs it and must reach the same verdict on any machine.

Artifacts double as regression corpus entries — CI's nightly long-fuzz
uploads them, and a fixed bug's artifact can be committed under
``tests/`` to pin the fix forever.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .harness import CampaignResult, run_scenario
from .invariants import Violation
from .scenario import Scenario

#: Schema version for failing-seed artifacts.
ARTIFACT_SCHEMA = "repro.testkit.seed/v1"


def make_artifact(
    result: CampaignResult,
    shrunk_from: Optional[Scenario] = None,
    shrink_steps: Optional[List[str]] = None,
    shrink_runs: int = 0,
    mutation: Optional[str] = None,
) -> Dict:
    """Build the artifact document for a failing campaign result."""
    if result.ok:
        raise ValueError("artifacts are only written for failing results")
    doc: Dict = {
        "schema": ARTIFACT_SCHEMA,
        "failure": result.label,
        "failure_kind": result.failure_kind,
        "scenario": result.scenario.to_dict(),
        "mutation": mutation,
    }
    if result.violation is not None:
        doc["violation"] = result.violation.to_dict()
    if result.crash is not None:
        doc["crash"] = result.crash
    if result.determinism_detail is not None:
        doc["determinism_detail"] = result.determinism_detail
    if shrunk_from is not None and shrunk_from != result.scenario:
        doc["shrunk_from"] = shrunk_from.to_dict()
        doc["shrink_steps"] = list(shrink_steps or [])
        doc["shrink_runs"] = shrink_runs
    return doc


def write_artifact(doc: Dict, path: Union[str, Path]) -> Path:
    """Write one artifact document as pretty, key-sorted JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: Union[str, Path]) -> Dict:
    """Load and schema-check one artifact document."""
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(
            f"unsupported artifact schema {schema!r} (want {ARTIFACT_SCHEMA!r})"
        )
    return doc


def replay_artifact(
    source: Union[str, Path, Dict], check_determinism: bool = True
) -> CampaignResult:
    """Re-run an artifact's scenario (under its mutation, if any).

    Returns the fresh :class:`CampaignResult`; callers compare its
    ``label`` against the artifact's recorded ``failure`` to decide
    whether the bug still reproduces.
    """
    doc = source if isinstance(source, dict) else load_artifact(source)
    scenario = Scenario.from_dict(doc["scenario"])
    return run_scenario(
        scenario,
        mutation=doc.get("mutation"),
        check_determinism=check_determinism,
    )


def artifact_violation(doc: Dict) -> Optional[Violation]:
    """The recorded violation, if the artifact captured an invariant failure."""
    raw = doc.get("violation")
    return Violation.from_dict(raw) if raw else None
