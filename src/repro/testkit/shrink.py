"""Failing-seed shrinking: delta-debug a scenario to a minimal repro.

A fuzz failure arrives wrapped in incidental complexity — four clients,
three fault mechanisms, a big venue, a long horizon. The shrinker
greedily applies *reduction passes* (zero a fault axis, drop a dropout,
halve the horizon, simplify the venue, reset protocol knobs to their
defaults), keeping a candidate only when the re-run still fails with
the **same failure label** (same invariant / crash class — chasing a
different bug is not shrinking, it is finding). This is the classic
ddmin shape specialised to the scenario's named axes, which converge in
tens of runs rather than thousands because each axis is independent.

Every accepted step is recorded, so the artifact shows *what was
irrelevant* to the bug — often as informative as the repro itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from .scenario import Scenario

#: Re-run budget for one shrink (each candidate costs one campaign run).
DEFAULT_SHRINK_BUDGET = 60

FailurePredicate = Callable[[Scenario], Optional[str]]


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal scenario and how we got there."""

    scenario: Scenario
    failure_label: str
    runs_used: int
    steps: List[str]

    @property
    def shrunk(self) -> bool:
        return bool(self.steps)


def _venue_candidates(s: Scenario) -> List[Tuple[str, Scenario]]:
    out: List[Tuple[str, Scenario]] = []
    if s.n_furniture > 0:
        out.append(("n_furniture=0", replace(s, n_furniture=0)))
    if s.glass_walls > 0:
        out.append(("glass_walls=0", replace(s, glass_walls=0)))
    if s.n_hotspots > 2:
        out.append(("n_hotspots=2", replace(s, n_hotspots=2)))
    if s.venue_width_m > 8.0 or s.venue_depth_m > 7.0:
        out.append(
            (
                "venue=8x7",
                replace(s, venue_width_m=8.0, venue_depth_m=7.0),
            )
        )
    return out


def _clients_for(s: Scenario, n: int) -> Scenario:
    """Reduce the fleet, dropping dropout entries that name removed clients."""
    keep = tuple(
        (cid, at) for cid, at in s.dropouts if int(cid.split("-")[-1]) < n
    )
    return replace(s, n_clients=n, dropouts=keep)


def _no_storage(s: Scenario) -> Scenario:
    """Zero the storage damage axes (inert without a crash schedule)."""
    return replace(
        s, wal_torn_tail=0.0, wal_dropped_flush=0.0, snapshot_corruption=0.0
    )


def _candidates(s: Scenario) -> List[Tuple[str, Scenario]]:
    """All reduction candidates for one greedy round, simplest-win first."""
    out: List[Tuple[str, Scenario]] = []
    # -- fault schedule: clear whole axes first (biggest simplification) --
    if s.dropouts:
        out.append(("dropouts=()", replace(s, dropouts=())))
        if len(s.dropouts) > 1:
            for i in range(len(s.dropouts)):
                kept = s.dropouts[:i] + s.dropouts[i + 1:]
                out.append((f"drop dropout #{i}", replace(s, dropouts=kept)))
    if s.dropout_hazard:
        out.append(("dropout_hazard=0", replace(s, dropout_hazard=0.0)))
    if s.duplicate_probability:
        out.append(("duplicate_probability=0", replace(s, duplicate_probability=0.0)))
    if s.drop_probability:
        out.append(("drop_probability=0", replace(s, drop_probability=0.0)))
    if s.jitter_s:
        out.append(("jitter_s=0", replace(s, jitter_s=0.0)))
    if s.disconnect_windows:
        out.append(("disconnect_windows=()", replace(s, disconnect_windows=())))
        if len(s.disconnect_windows) > 1:
            for i in range(len(s.disconnect_windows)):
                kept = s.disconnect_windows[:i] + s.disconnect_windows[i + 1:]
                out.append(
                    (f"drop disconnect #{i}", replace(s, disconnect_windows=kept))
                )
    # -- storage damage: zeroing an axis separates media-damage bugs
    #    from plain crash-recovery bugs (whole-axis cuts, like faults) --
    if s.snapshot_corruption:
        out.append(("snapshot_corruption=0", replace(s, snapshot_corruption=0.0)))
    if s.wal_torn_tail:
        out.append(("wal_torn_tail=0", replace(s, wal_torn_tail=0.0)))
    if s.wal_dropped_flush:
        out.append(("wal_dropped_flush=0", replace(s, wal_dropped_flush=0.0)))
    # -- durability: no crashes + no persistence is the biggest cut; a
    #    persistence-only repro (crashes gone, WAL/snapshots still on)
    #    separates recovery bugs from bookkeeping bugs. Dropping the
    #    crashes also drops the storage axes (they only act at crashes).
    if s.backend_crashes:
        out.append(
            (
                "backend_crashes=() persist=False",
                _no_storage(replace(s, backend_crashes=(), persist=False)),
            )
        )
        out.append(
            ("backend_crashes=()", _no_storage(replace(s, backend_crashes=())))
        )
        if len(s.backend_crashes) > 1:
            for i in range(len(s.backend_crashes)):
                kept = s.backend_crashes[:i] + s.backend_crashes[i + 1:]
                out.append((f"drop crash #{i}", replace(s, backend_crashes=kept)))
    elif s.persist:
        out.append(("persist=False", replace(s, persist=False)))
    if (s.persist or s.backend_crashes) and s.snapshot_every != 8:
        out.append(("snapshot_every=8", replace(s, snapshot_every=8)))
    if (s.persist or s.backend_crashes) and s.snapshot_retain != 3:
        out.append(("snapshot_retain=3", replace(s, snapshot_retain=3)))
    # -- crowd size --
    if s.n_clients > 1:
        out.append(("n_clients=1", _clients_for(s, 1)))
        half = s.n_clients // 2
        if half > 1:
            out.append((f"n_clients={half}", _clients_for(s, half)))
    # -- horizon --
    if s.until_s > 1000.0:
        quarter = max(1000.0, round(s.until_s / 4.0))
        half = max(1000.0, round(s.until_s / 2.0))
        out.append((f"until_s={quarter:.0f}", replace(s, until_s=quarter)))
        if half != quarter:
            out.append((f"until_s={half:.0f}", replace(s, until_s=half)))
    # -- venue geometry --
    out.extend(_venue_candidates(s))
    # -- protocol knobs back to defaults --
    if s.lease_duration_s != 600.0:
        out.append(("lease_duration_s=600", replace(s, lease_duration_s=600.0)))
    if s.rto_initial_s != 4.0:
        out.append(("rto_initial_s=4", replace(s, rto_initial_s=4.0)))
    if s.upload_subbatch != 45:
        out.append(("upload_subbatch=45", replace(s, upload_subbatch=45)))
    if s.poll_jitter_s:
        out.append(("poll_jitter_s=0", replace(s, poll_jitter_s=0.0)))
    # -- backend lane back to the infinite-server default --
    if s.sfm_workers is not None:
        out.append(
            ("sfm_workers=None", replace(s, sfm_workers=None, sfm_queue_limit=None))
        )
    if s.sfm_queue_limit is not None:
        out.append(("sfm_queue_limit=None", replace(s, sfm_queue_limit=None)))
    if s.max_tasks != 1:
        out.append(("max_tasks=1", replace(s, max_tasks=1)))
    # -- tighter checking finds the same bug earlier --
    if s.checkpoint_every > 1:
        out.append(("checkpoint_every=1", replace(s, checkpoint_every=1)))
    return out


def shrink_scenario(
    scenario: Scenario,
    fails: FailurePredicate,
    failure_label: str,
    max_runs: int = DEFAULT_SHRINK_BUDGET,
    progress: Optional[Callable[[str], None]] = None,
) -> ShrinkResult:
    """Greedily minimise ``scenario`` while ``fails`` keeps reproducing.

    ``fails(candidate)`` re-runs the candidate and returns its failure
    label (or ``None`` when it passes); only candidates reproducing
    ``failure_label`` exactly are accepted. Budget-bounded: at most
    ``max_runs`` candidate runs.
    """
    current = scenario
    steps: List[str] = []
    runs = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        for step, candidate in _candidates(current):
            if runs >= max_runs:
                break
            runs += 1
            if fails(candidate) == failure_label:
                current = candidate
                steps.append(step)
                if progress is not None:
                    progress(f"shrink: accepted {step} (run {runs}/{max_runs})")
                improved = True
                break  # restart passes from the simplified scenario
    return ShrinkResult(
        scenario=current,
        failure_label=failure_label,
        runs_used=runs,
        steps=steps,
    )
