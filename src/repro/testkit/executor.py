"""Deterministic seed-sharded process pool for multi-campaign workloads.

Every multi-campaign workload in this repo — ``repro fuzz`` batches, the
``repro recover`` crash/twin pair, and the parameter-sweep benchmarks —
is embarrassingly parallel: each campaign is a pure function of
``(Scenario, seed)`` (DESIGN §8), so campaigns can run in separate
processes and *nothing about the outcome may change*. This module is the
single sanctioned door to host parallelism (the determinism lint bans
``multiprocessing`` everywhere else) and preserves the byte-determinism
contract by construction:

* **Sharding** follows the existing per-campaign seed derivation — a
  shard is ``(index, spec)`` and the worker recomputes everything from
  the spec, never from pool state;
* **Merging** is strictly campaign-index ordered: results are buffered
  until contiguous, so summaries, artifacts and printed lines are
  byte-identical to a serial run regardless of completion order;
* **Workers** are ``spawn``-context processes running named task
  functions from :data:`EXECUTOR_TASKS`; each request/response is a
  versioned envelope (:data:`ENVELOPE_SCHEMA`);
* **Crashes** cannot hang the pool: a worker that dies mid-shard is
  detected via its process sentinel, the shard is reported as a
  ``worker_crash`` envelope (the fuzz merge layer turns that into a
  recorded failure with a replayable seed artifact), and a replacement
  worker is spawned while shards remain.

``jobs=1`` (or a single shard) degrades to an inline loop with the same
envelope shape — the serial and parallel paths share every byte of
downstream merge code.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from ..obs.wallclock import cpu_now_s, wall_now_s

__all__ = [
    "ENVELOPE_SCHEMA",
    "EXECUTOR_TASKS",
    "ExecutorStats",
    "resolve_jobs",
    "run_shards",
]

#: Envelope schema version for worker request/response payloads.
ENVELOPE_SCHEMA = "repro.testkit.executor/v1"

#: Exit code used by the self-test kill switch (fault-path tests).
_SELFTEST_EXIT_CODE = 113


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalise a ``--jobs`` value: int, numeric string, or ``"auto"``.

    ``auto`` resolves to the host's CPU count. The resolved value never
    affects *outputs* (merge order is index-determined), only wall
    clock, so reading host topology here does not break determinism.
    """
    if jobs is None or jobs == "auto":
        return max(1, os.cpu_count() or 1)
    n = int(jobs)
    if n < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {jobs!r}")
    return n


@dataclass
class ExecutorStats:
    """Accounting for one pool run (feeds ``BENCH_dst.json``).

    ``busy_s`` maps worker slot -> total in-worker shard **CPU seconds**
    (``time.process_time`` measured inside the worker, excluding
    queue/dispatch time). CPU time is immune to host contention — N
    workers timesharing one core each still accumulate only their own
    work — so ``critical_path_s`` is the wall clock the pool would need
    on a host with at least ``jobs`` free cores, even when the
    *measuring* host has fewer.
    """

    jobs: int = 1
    shards: int = 0
    worker_crashes: int = 0
    workers_spawned: int = 0
    busy_s: Dict[int, float] = field(default_factory=dict)

    @property
    def total_busy_s(self) -> float:
        return sum(self.busy_s.values())

    @property
    def critical_path_s(self) -> float:
        return max(self.busy_s.values(), default=0.0)

    @property
    def balance_speedup(self) -> float:
        """Work-balance speedup: total shard work / slowest worker lane.

        This is the speedup the sharding itself achieves, independent of
        how many physical cores the measuring host happens to have.
        """
        critical = self.critical_path_s
        return self.total_busy_s / critical if critical > 0 else 1.0


# ---------------------------------------------------------------------------
# named task functions (must be importable by spawned workers)
# ---------------------------------------------------------------------------


def _fuzz_campaign_task(spec: dict) -> dict:
    """One fuzz campaign: sample, run, shrink on failure (in-worker)."""
    from ..obs.metrics import MetricsRegistry
    from .fuzzer import run_campaign

    if spec.get("selftest_exit"):
        # Fault-path test hook: die exactly like a worker segfault/OOM
        # would, mid-campaign, without running Python teardown.
        os._exit(_SELFTEST_EXIT_CODE)

    lines: List[str] = []
    registry = MetricsRegistry()
    t0 = wall_now_s()
    outcome = run_campaign(
        campaigns=spec["campaigns"],
        master_seed=spec["master_seed"],
        index=spec["index"],
        mutation=spec.get("mutation"),
        shrink=spec.get("shrink", True),
        shrink_budget=spec["shrink_budget"],
        check_determinism=spec.get("check_determinism", True),
        scratch_twin_every=spec.get("scratch_twin_every", 0),
        crashes=spec.get("crashes", False),
        storage_faults=spec.get("storage_faults", False),
        progress=lines.append,
    )
    registry.counter("repro.executor.campaigns").inc()
    if not outcome.result.ok:
        registry.counter("repro.executor.campaign_failures").inc()
    registry.counter("repro.executor.shrink_runs").inc(outcome.shrink_runs)
    registry.histogram(
        "repro.executor.campaign_wall_s", base=0.01, growth=2.0
    ).record(wall_now_s() - t0)
    # The report is a live object graph the merge layer never reads;
    # drop it so the envelope ships only the structured outcome.
    outcome.result.report = None
    return {"outcome": outcome, "lines": lines, "metrics": registry.dump()}


def _library_deployment_task(spec: dict) -> dict:
    """One library-venue deployment run for sweep benchmarks.

    The spec names config axes (lane shape, fault schedule, horizon);
    the payload carries the full report as a plain dict plus the task
    ledger summary and an optional metrics dump, so sweep benchmarks can
    fan independent configurations across the pool and merge registries
    with :meth:`MetricsRegistry.merge`.
    """
    import dataclasses as _dc

    from ..config import BackendConfig, FaultConfig, paper_config
    from ..eval import Workbench
    from ..obs import Telemetry
    from ..server import Deployment

    config = paper_config(seed=spec.get("seed", 2018))
    if "max_tasks" in spec:
        config = _dc.replace(
            config, tasks=_dc.replace(config.tasks, max_tasks=spec["max_tasks"])
        )
    if "sfm_workers" in spec or "sfm_queue_limit" in spec:
        config = _dc.replace(
            config,
            backend=BackendConfig(
                sfm_workers=spec.get("sfm_workers"),
                queue_limit=spec.get("sfm_queue_limit"),
            ),
        )
    if spec.get("snapshot_every"):
        config = config.with_persistence(
            snapshot_every_batches=spec["snapshot_every"]
        )
    faults = None
    if any(
        spec.get(key)
        for key in ("drop_probability", "duplicate_probability", "jitter_s",
                    "backend_crashes")
    ):
        faults = FaultConfig(
            drop_probability=spec.get("drop_probability", 0.0),
            duplicate_probability=spec.get("duplicate_probability", 0.0),
            jitter_s=spec.get("jitter_s", 0.0),
            backend_crashes=tuple(
                (float(a), float(b)) for a, b in spec.get("backend_crashes", ())
            ),
        )
    telemetry = Telemetry.enable() if spec.get("telemetry") else None
    deployment = Deployment(
        Workbench.for_library(config),
        n_clients=spec.get("n_clients", 2),
        faults=faults,
        dropouts=spec.get("dropouts"),
        telemetry=telemetry,
    )
    report = deployment.run(
        until_s=spec.get("until_s", 20_000.0),
        max_events=spec.get("max_events", 200_000),
    )
    store = deployment.server.store
    payload = {
        "report": _dc.asdict(report),
        "tasks_by_status": dict(store.tasks_by_status()),
        "recorded_tasks": store.recorded_task_count(),
    }
    if telemetry is not None:
        payload["metrics"] = telemetry.metrics.dump()
    return payload


def _recover_run_task(spec: dict) -> dict:
    """One ``repro recover`` leg: the crashed run or its crash-free twin."""
    import dataclasses as _dc

    from ..config import paper_config
    from ..eval import Workbench
    from ..server import Deployment

    if spec.get("crashed"):
        from ..persist import StorageFaultConfig

        storage_spec = spec.get("storage_faults")
        config = paper_config(seed=spec["seed"]).with_persistence(
            snapshot_every_batches=spec["snapshot_every"],
            snapshot_retain=spec.get("snapshot_retain", 3),
            storage_faults=(
                StorageFaultConfig(**storage_spec) if storage_spec else None
            ),
        )
        faults = _dc.replace(
            config.network.faults,
            backend_crashes=((spec["crash_at"], spec["downtime"]),),
        )
        bench = Workbench.for_library(config)
        deployment = Deployment(bench, n_clients=spec["clients"], faults=faults)
        report = deployment.run(until_s=spec["until"])
        host = deployment.host
        audits = [
            {
                "snapshot_seq": rec.snapshot_seq,
                "replayed_records": rec.replayed_records,
                "dropped_remnants": rec.dropped_remnants,
                "armed_leases": rec.armed_leases,
                "audit_ok": rec.audit_ok,
                "generations_tried": rec.generations_tried,
                "quarantined_seqs": list(rec.quarantined_seqs),
                "quarantine_reasons": list(rec.quarantine_reasons),
                "quarantined_bytes": rec.quarantined_bytes,
                "fallback": rec.fallback,
            }
            for rec in host.recovery_audits
        ]
        storage_reports = [
            {
                "wal_torn": r.wal_torn,
                "wal_dropped_records": r.wal_dropped_records,
                "damaged_snapshot_seqs": list(r.damaged_snapshot_seqs),
                "damage_modes": list(r.damage_modes),
            }
            for r in host.storage_fault_reports
        ]
        return {
            "report": _dc.asdict(report),
            "audits": audits,
            "storage": storage_reports,
        }
    bench = Workbench.for_library(paper_config(seed=spec["seed"]))
    report = Deployment(bench, n_clients=spec["clients"]).run(until_s=spec["until"])
    return {"report": _dc.asdict(report), "audits": []}


def _selftest_task(spec: dict) -> dict:
    """Cheap executor self-test shard (unit tests exercise pool plumbing)."""
    mode = spec.get("mode", "echo")
    if mode == "exit":
        os._exit(_SELFTEST_EXIT_CODE)
    if mode == "raise":
        raise RuntimeError(spec.get("message", "selftest failure"))
    return {"value": spec.get("value")}


#: The named tasks a worker can run. Specs must be plain JSON-able dicts
#: so the envelope stays versionable; payloads may carry repo dataclasses
#: (they cross the pipe via pickle).
EXECUTOR_TASKS: Dict[str, Callable[[dict], dict]] = {
    "fuzz-campaign": _fuzz_campaign_task,
    "library-deployment": _library_deployment_task,
    "recover-run": _recover_run_task,
    "selftest": _selftest_task,
}


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _worker_main(conn) -> None:
    """Worker loop: receive ``{task, index, spec}``, send result envelopes.

    Runs until the parent sends ``None`` (drain) or the pipe closes.
    Task exceptions are returned as ``ok=False`` envelopes — only a
    process death (signal, ``os._exit``) leaves a request unanswered.
    """
    try:
        while True:
            message = conn.recv()
            if message is None:
                return
            t0 = wall_now_s()
            c0 = cpu_now_s()
            try:
                payload = EXECUTOR_TASKS[message["task"]](message["spec"])
                envelope = {
                    "schema": ENVELOPE_SCHEMA,
                    "index": message["index"],
                    "ok": True,
                    "payload": payload,
                    "wall_s": wall_now_s() - t0,
                    "cpu_s": cpu_now_s() - c0,
                }
            except BaseException as exc:  # noqa: BLE001 — shipped to the parent
                envelope = {
                    "schema": ENVELOPE_SCHEMA,
                    "index": message["index"],
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "wall_s": wall_now_s() - t0,
                    "cpu_s": cpu_now_s() - c0,
                }
            conn.send(envelope)
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _Worker:
    """One pool slot: a spawned process, its pipe, and its current shard."""

    def __init__(self, context, slot: int):
        self.slot = slot
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        #: (index, message) of the in-flight shard, or None when idle.
        self.current: Optional[tuple] = None

    def dispatch(self, task: str, index: int, spec: dict) -> None:
        message = {"task": task, "index": index, "spec": spec}
        self.current = (index, message)
        self.conn.send(message)

    def shutdown(self) -> None:
        """Drain (idle) or terminate (busy/dead) this worker, then reap it."""
        try:
            if self.process.is_alive() and self.current is None:
                self.conn.send(None)
                self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)
        except (OSError, ValueError):
            pass
        finally:
            try:
                self.conn.close()
            except OSError:
                pass
            self.process.close()


def _crash_envelope(index: int, worker: _Worker) -> dict:
    exitcode = worker.process.exitcode
    detail = (
        f"killed by signal {-exitcode}" if exitcode is not None and exitcode < 0
        else f"exited with code {exitcode}"
    )
    return {
        "schema": ENVELOPE_SCHEMA,
        "index": index,
        "ok": False,
        "worker_crash": True,
        "error": f"worker process {detail} mid-shard",
        "wall_s": 0.0,
        "cpu_s": 0.0,
    }


# ---------------------------------------------------------------------------
# the pool
# ---------------------------------------------------------------------------


def run_shards(
    task: str,
    specs: Sequence[dict],
    jobs: Union[int, str, None] = 1,
    stats: Optional[ExecutorStats] = None,
) -> Iterator[dict]:
    """Run ``specs`` through ``task`` workers; yield envelopes in index order.

    The generator owns the pool: closing it early (``break`` in the
    consumer, or an explicit ``.close()``) stops dispatching and shuts
    every worker down, so early-stop consumers (``max_failures``) never
    leak processes. Worker deaths yield ``worker_crash`` envelopes and
    respawn a replacement while undispatched shards remain.
    """
    if task not in EXECUTOR_TASKS:
        raise ValueError(f"unknown executor task {task!r}")
    specs = list(specs)
    if stats is None:
        stats = ExecutorStats()
    n_jobs = min(resolve_jobs(jobs), len(specs)) if specs else 1
    stats.jobs = max(n_jobs, 1)

    if n_jobs <= 1:
        # Inline path: same envelopes, no processes. Serial callers and
        # single-shard batches share every byte of merge code.
        fn = EXECUTOR_TASKS[task]
        for index, spec in enumerate(specs):
            t0 = wall_now_s()
            c0 = cpu_now_s()
            try:
                envelope = {
                    "schema": ENVELOPE_SCHEMA,
                    "index": index,
                    "ok": True,
                    "payload": fn(spec),
                    "wall_s": wall_now_s() - t0,
                    "cpu_s": cpu_now_s() - c0,
                }
            except Exception as exc:  # noqa: BLE001 — mirrored worker behaviour
                envelope = {
                    "schema": ENVELOPE_SCHEMA,
                    "index": index,
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "wall_s": wall_now_s() - t0,
                    "cpu_s": cpu_now_s() - c0,
                }
            stats.shards += 1
            stats.busy_s[0] = stats.busy_s.get(0, 0.0) + envelope["cpu_s"]
            yield envelope
        return

    context = multiprocessing.get_context("spawn")
    workers = [_Worker(context, slot) for slot in range(n_jobs)]
    stats.workers_spawned = n_jobs
    next_spec = 0
    next_emit = 0
    buffered: Dict[int, dict] = {}

    def feed(worker: _Worker) -> None:
        nonlocal next_spec
        if next_spec < len(specs):
            worker.dispatch(task, next_spec, specs[next_spec])
            next_spec += 1

    try:
        for worker in workers:
            feed(worker)
        while next_emit < len(specs):
            busy = [w for w in workers if w.current is not None]
            if not busy:
                break  # every remaining spec is buffered or unreachable
            ready = _connection_wait(
                [w.conn for w in busy] + [w.process.sentinel for w in busy]
            )
            for worker in list(busy):
                envelope = None
                if worker.conn in ready:
                    try:
                        envelope = worker.conn.recv()
                    except (EOFError, OSError):
                        envelope = None  # died while (or after) sending
                elif worker.process.sentinel not in ready:
                    continue  # not this worker's turn
                index = worker.current[0]
                if envelope is None and worker.process.is_alive():
                    # Sentinel raced a still-live worker (rare spurious
                    # wakeup); let the next wait() round pick it up.
                    continue
                if envelope is None:
                    envelope = _crash_envelope(index, worker)
                    stats.worker_crashes += 1
                    worker.current = None
                    worker.shutdown()
                    workers.remove(worker)
                    if next_spec < len(specs):
                        replacement = _Worker(context, worker.slot)
                        stats.workers_spawned += 1
                        workers.append(replacement)
                        feed(replacement)
                else:
                    worker.current = None
                    stats.busy_s[worker.slot] = (
                        stats.busy_s.get(worker.slot, 0.0) + envelope["cpu_s"]
                    )
                    feed(worker)
                stats.shards += 1
                buffered[index] = envelope
            while next_emit in buffered:
                yield buffered.pop(next_emit)
                next_emit += 1
    finally:
        for worker in workers:
            worker.shutdown()
