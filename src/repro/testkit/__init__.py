"""Deterministic simulation testing (DST) for the SnapTask stack.

FoundationDB-style testing layer: because every subsystem — event loop,
network, protocol, SfM, mapping — runs on one seeded discrete-event
simulation, an entire crowd-mapping deployment is a pure function of
``(Scenario, seed)``. This package exploits that:

* :mod:`~repro.testkit.scenario` — seeded random deployment scenarios
  (venue geometry x crowd mix x fault schedule x protocol params);
* :mod:`~repro.testkit.invariants` — a live invariant registry hooked
  into simulator event dispatch, checking lease exclusivity, ledger
  idempotency, coverage monotonicity and incremental-vs-oracle
  exactness *while the simulation runs*;
* :mod:`~repro.testkit.harness` — runs one scenario under the registry,
  with end-of-run determinism (seed twice -> byte-identical report and
  metrics/trace digests), the ``full_rebuild`` scratch-twin diff, and
  the crash-restart vs crash-free convergence twin;
* :mod:`~repro.testkit.shrink` — delta-debugs a failing scenario down
  to a minimal reproduction;
* :mod:`~repro.testkit.artifact` — replayable failing-seed artifacts;
* :mod:`~repro.testkit.mutations` — planted bugs that prove the
  invariants actually catch what they claim to catch;
* :mod:`~repro.testkit.fuzzer` — the campaign loop behind
  ``python -m repro fuzz``;
* :mod:`~repro.testkit.executor` — the seed-sharded process pool behind
  ``--jobs N`` (byte-identical merge in campaign-index order).
"""

from .artifact import load_artifact, replay_artifact, write_artifact
from .executor import ExecutorStats, resolve_jobs, run_shards
from .fuzzer import FuzzSummary, run_fuzz
from .harness import CampaignResult, run_scenario
from .invariants import InvariantRegistry, InvariantViolationError, Violation
from .mutations import MUTATIONS, apply_mutation, mutation_probe, overload_probe
from .scenario import Scenario
from .shrink import shrink_scenario

__all__ = [
    "CampaignResult",
    "ExecutorStats",
    "FuzzSummary",
    "InvariantRegistry",
    "InvariantViolationError",
    "MUTATIONS",
    "Scenario",
    "Violation",
    "apply_mutation",
    "load_artifact",
    "mutation_probe",
    "overload_probe",
    "replay_artifact",
    "resolve_jobs",
    "run_fuzz",
    "run_scenario",
    "run_shards",
    "shrink_scenario",
    "write_artifact",
]
