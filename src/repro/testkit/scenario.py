"""Seeded random deployment scenarios for the DST campaign fuzzer.

A :class:`Scenario` is the complete, JSON-serialisable description of
one simulated deployment: venue geometry, crowd mix and dropout
hazards, the network fault schedule, protocol timeouts and batch sizes,
and the run/checkpoint bounds. ``Scenario.sample(seed)`` derives every
field from named :class:`~repro.simkit.rng.RngStream` draws, so the
scenario space is explored reproducibly and any point in it can be
reconstructed from its seed alone — which is what makes failing-seed
artifacts replayable and shrinkable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional, Tuple

from ..config import BackendConfig, FaultConfig, SnapTaskConfig, paper_config
from ..persist.faults import StorageFaultConfig
from ..simkit.rng import RngStream

#: Artifact schema version for serialised scenarios.
SCENARIO_SCHEMA = "repro.testkit.scenario/v1"


@dataclass(frozen=True)
class Scenario:
    """One fully specified fuzz deployment (see module docstring).

    Defaults describe the smallest quiet deployment; the sampler widens
    every axis. All fields are primitives/tuples so ``to_dict`` round-
    trips through JSON exactly.
    """

    seed: int = 0
    # -- venue geometry (parametric office replica) --
    venue_seed: int = 0
    venue_width_m: float = 9.0
    venue_depth_m: float = 7.5
    glass_walls: int = 0
    n_furniture: int = 2
    n_hotspots: int = 2
    # -- crowd mix --
    n_clients: int = 2
    dropout_hazard: float = 0.0
    #: Explicit mid-campaign abandonment: ((client_id, sim_time_s), ...).
    dropouts: Tuple[Tuple[str, float], ...] = ()
    # -- network fault schedule --
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    jitter_s: float = 0.0
    disconnect_windows: Tuple[Tuple[float, float], ...] = ()
    # -- backend durability / crash-restart schedule --
    #: Seeded backend crashes: ((at_s, downtime_s), ...). Requires persist.
    backend_crashes: Tuple[Tuple[float, float], ...] = ()
    #: WAL + snapshot persistence on (exercised with or without crashes).
    persist: bool = False
    #: Snapshot cadence in committed photo batches.
    snapshot_every: int = 8
    #: Checkpoint generations retained (newest N + genesis).
    snapshot_retain: int = 3
    # -- storage fault axes (per-crash damage probabilities; require
    #    backend_crashes, drawn from the independent "storage" child so
    #    existing seeds' scenarios are unperturbed) --
    wal_torn_tail: float = 0.0
    wal_dropped_flush: float = 0.0
    snapshot_corruption: float = 0.0
    # -- protocol / batch-size parameters --
    lease_duration_s: float = 600.0
    rto_initial_s: float = 4.0
    upload_subbatch: int = 45
    poll_jitter_s: float = 0.0
    # -- backend SfM lane (None/None = legacy infinite-server model) --
    sfm_workers: Optional[int] = None
    sfm_queue_limit: Optional[int] = None
    #: Parallel photo tasks the backend may issue per processed batch;
    #: >1 lets several clients upload concurrently (overload pressure).
    max_tasks: int = 1
    # -- run bounds + checking cadence --
    until_s: float = 12_000.0
    max_events: int = 40_000
    #: Oracle (map/SOR exactness) checks run every N processed batches.
    checkpoint_every: int = 4
    #: Also diff the whole run against its ``full_rebuild=True`` twin.
    scratch_twin: bool = False

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    @classmethod
    def sample(cls, seed: int) -> "Scenario":
        """Draw one scenario from the campaign distribution for ``seed``."""
        rng = RngStream(seed, "testkit/scenario")
        venue = rng.child("venue")
        crowd = rng.child("crowd")
        faults = rng.child("faults")
        proto = rng.child("protocol")
        # Independent child: adding the backend axes never perturbs the
        # draws (and thus the scenarios) of the streams above.
        backend = rng.child("backend")
        # Same trick again for the durability axes (PR-8).
        crashes = rng.child("crashes")
        # And once more for the storage fault axes: media damage draws
        # come from their own child, so arming them never perturbs the
        # crash schedules (or anything else) of existing seeds.
        storage = rng.child("storage")

        n_clients = crowd.integers(1, 5)
        dropouts: Tuple[Tuple[str, float], ...] = ()
        if crowd.chance(0.3) and n_clients > 1:
            victim = crowd.integers(0, n_clients)
            dropouts = ((f"client-{victim}", round(crowd.uniform(200.0, 3000.0), 3)),)

        windows: Tuple[Tuple[float, float], ...] = ()
        if faults.chance(0.3):
            n_windows = faults.integers(1, 3)
            cursor = faults.uniform(100.0, 1500.0)
            acc = []
            for _ in range(n_windows):
                length = faults.uniform(30.0, 300.0)
                acc.append((round(cursor, 3), round(cursor + length, 3)))
                cursor += length + faults.uniform(200.0, 2000.0)
            windows = tuple(acc)

        sfm_workers: Optional[int] = None
        sfm_queue_limit: Optional[int] = None
        if backend.chance(0.35):
            sfm_workers = int(backend.integers(1, 5))
            if backend.chance(0.5):
                sfm_queue_limit = int(backend.choice([0, 2, 8]))
        max_tasks = int(backend.choice([1, 1, 2, 3]))
        poll_jitter_s = (
            round(backend.uniform(0.5, 4.0), 3) if backend.chance(0.3) else 0.0
        )

        backend_crashes: Tuple[Tuple[float, float], ...] = ()
        persist = False
        snapshot_every = 8
        if crashes.chance(0.25):
            # Crash-restart campaign: persistence on, 1-2 seeded crashes.
            persist = True
            snapshot_every = int(crashes.choice([1, 2, 4, 8]))
            n_crashes = crashes.integers(1, 3)
            cursor = crashes.uniform(150.0, 1500.0)
            acc = []
            for _ in range(n_crashes):
                downtime = round(crashes.uniform(10.0, 90.0), 3)
                acc.append((round(cursor, 3), downtime))
                cursor += downtime + crashes.uniform(500.0, 3000.0)
            backend_crashes = tuple(acc)
        elif crashes.chance(0.15):
            # Persistence-on, zero-crash: the WAL/snapshot machinery must
            # be behaviourally invisible (the differential pin, fuzzed).
            persist = True
            snapshot_every = int(crashes.choice([1, 2, 4, 8]))

        snapshot_retain = 3
        wal_torn_tail = 0.0
        wal_dropped_flush = 0.0
        snapshot_corruption = 0.0
        if backend_crashes and storage.chance(0.35):
            # Storage-fault campaign: the crash also damages the media.
            snapshot_retain = int(storage.choice([1, 2, 3, 4]))
            if storage.chance(0.6):
                snapshot_corruption = round(storage.uniform(0.2, 1.0), 4)
            if storage.chance(0.3):
                wal_torn_tail = round(storage.uniform(0.2, 1.0), 4)
            if storage.chance(0.3):
                wal_dropped_flush = round(storage.uniform(0.2, 1.0), 4)
            if not (snapshot_corruption or wal_torn_tail or wal_dropped_flush):
                # At least one mechanism must be armed for the campaign
                # to actually exercise the recovery ladder.
                snapshot_corruption = round(storage.uniform(0.2, 1.0), 4)

        return cls(
            seed=seed,
            venue_seed=venue.integers(0, 2**31),
            venue_width_m=round(venue.uniform(8.0, 12.0), 2),
            venue_depth_m=round(venue.uniform(7.0, 10.0), 2),
            glass_walls=venue.integers(0, 3),
            n_furniture=venue.integers(0, 5),
            n_hotspots=venue.integers(2, 5),
            n_clients=n_clients,
            dropout_hazard=(
                round(crowd.uniform(0.01, 0.08), 4) if crowd.chance(0.35) else 0.0
            ),
            dropouts=dropouts,
            drop_probability=(
                round(faults.uniform(0.02, 0.25), 4) if faults.chance(0.5) else 0.0
            ),
            duplicate_probability=(
                round(faults.uniform(0.02, 0.15), 4) if faults.chance(0.4) else 0.0
            ),
            jitter_s=round(faults.uniform(0.1, 2.0), 3) if faults.chance(0.4) else 0.0,
            disconnect_windows=windows,
            backend_crashes=backend_crashes,
            persist=persist,
            snapshot_every=snapshot_every,
            snapshot_retain=snapshot_retain,
            wal_torn_tail=wal_torn_tail,
            wal_dropped_flush=wal_dropped_flush,
            snapshot_corruption=snapshot_corruption,
            lease_duration_s=float(proto.choice([120.0, 300.0, 600.0])),
            rto_initial_s=float(proto.choice([2.0, 4.0])),
            upload_subbatch=int(proto.choice([15, 30, 45])),
            poll_jitter_s=poll_jitter_s,
            sfm_workers=sfm_workers,
            sfm_queue_limit=sfm_queue_limit,
            max_tasks=max_tasks,
            until_s=float(proto.choice([6_000.0, 10_000.0, 16_000.0])),
            max_events=40_000,
            checkpoint_every=int(proto.choice([2, 4])),
        )

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------

    def make_config(self) -> SnapTaskConfig:
        """The :class:`SnapTaskConfig` this scenario deploys under."""
        config = paper_config(seed=self.seed)
        config = replace(
            config,
            protocol=replace(
                config.protocol,
                lease_duration_s=self.lease_duration_s,
                rto_initial_s=self.rto_initial_s,
                poll_jitter_s=self.poll_jitter_s,
            ),
            tasks=replace(
                config.tasks,
                upload_subbatch=self.upload_subbatch,
                max_tasks=self.max_tasks,
            ),
            backend=BackendConfig(
                sfm_workers=self.sfm_workers,
                queue_limit=self.sfm_queue_limit,
            ),
        )
        if self.persist or self.backend_crashes:
            config = config.with_persistence(
                snapshot_every_batches=self.snapshot_every,
                snapshot_retain=self.snapshot_retain,
                storage_faults=self.make_storage_faults(),
            )
        return config.validate()

    def make_storage_faults(self) -> Optional[StorageFaultConfig]:
        """The storage damage config, or None with all axes at zero."""
        faults = StorageFaultConfig(
            wal_torn_tail=self.wal_torn_tail,
            wal_dropped_flush=self.wal_dropped_flush,
            snapshot_corruption=self.snapshot_corruption,
        )
        return faults if faults.enabled else None

    def make_faults(self) -> Optional[FaultConfig]:
        faults = FaultConfig(
            drop_probability=self.drop_probability,
            duplicate_probability=self.duplicate_probability,
            jitter_s=self.jitter_s,
            disconnect_windows=tuple(tuple(w) for w in self.disconnect_windows),
            backend_crashes=tuple(tuple(c) for c in self.backend_crashes),
        )
        return faults if (faults.enabled or faults.backend_crashes) else None

    def make_bench(self):
        """A fresh workbench on this scenario's venue (never cached)."""
        from ..eval import Workbench
        from ..venue import OfficeSpec, generate_office

        spec = OfficeSpec(
            width_m=self.venue_width_m,
            depth_m=self.venue_depth_m,
            glass_walls=self.glass_walls,
            n_furniture=self.n_furniture,
            n_hotspots=self.n_hotspots,
        )
        venue = generate_office(spec, RngStream(self.venue_seed, "testkit/office"))
        return Workbench(venue, self.make_config())

    def make_deployment(self, telemetry=None, full_rebuild: bool = False):
        """Build the deployment (bench + clients + faults) for this scenario."""
        from ..server import Deployment

        return Deployment(
            self.make_bench(),
            n_clients=self.n_clients,
            faults=self.make_faults(),
            dropouts=dict(self.dropouts) or None,
            dropout_hazard=self.dropout_hazard,
            telemetry=telemetry,
            full_rebuild=full_rebuild,
        )

    # ------------------------------------------------------------------
    # durability helpers
    # ------------------------------------------------------------------

    def with_crashes(self) -> "Scenario":
        """Force a seeded crash schedule (``repro fuzz --crashes``).

        Scenarios that already crash are returned unchanged; everything
        else gets 1-2 crashes drawn from a dedicated stream of this
        scenario's seed, so the forced schedule is as reproducible as a
        sampled one.
        """
        if self.backend_crashes:
            return self
        rng = RngStream(self.seed, "testkit/forced-crashes")
        n_crashes = rng.integers(1, 3)
        cursor = rng.uniform(150.0, 1500.0)
        acc = []
        for _ in range(n_crashes):
            downtime = round(rng.uniform(10.0, 90.0), 3)
            acc.append((round(cursor, 3), downtime))
            cursor += downtime + rng.uniform(500.0, 3000.0)
        return replace(
            self,
            backend_crashes=tuple(acc),
            persist=True,
            snapshot_every=int(rng.choice([1, 2, 4, 8])),
        )

    def with_storage_faults(self) -> "Scenario":
        """Force storage damage at crashes (``repro fuzz --storage-faults``).

        Ensures a crash schedule exists (via :meth:`with_crashes`), then
        arms the media damage axes from a dedicated stream of this
        scenario's seed. Snapshot corruption is always armed (the
        recovery ladder's headline case); the WAL-loss axes join with
        moderate probability since they forfeit crash-twin eligibility.
        """
        base = self.with_crashes()
        if base.storage_faults_enabled:
            return base
        rng = RngStream(self.seed, "testkit/forced-storage")
        return replace(
            base,
            snapshot_retain=int(rng.choice([2, 3, 4])),
            # Moderate corruption keeps a healthy mix of outcomes: early
            # crashes retain few generations, so a high probability here
            # would fail-close most campaigns instead of exercising the
            # older-generation fallback + post-recovery behaviour.
            snapshot_corruption=round(rng.uniform(0.3, 0.8), 4),
            wal_torn_tail=(
                round(rng.uniform(0.2, 0.8), 4) if rng.chance(0.3) else 0.0
            ),
            wal_dropped_flush=(
                round(rng.uniform(0.2, 0.8), 4) if rng.chance(0.3) else 0.0
            ),
        )

    @property
    def storage_faults_enabled(self) -> bool:
        return bool(
            self.wal_torn_tail or self.wal_dropped_flush or self.snapshot_corruption
        )

    @property
    def loses_wal_data(self) -> bool:
        """Whether crashes can destroy acknowledged WAL records."""
        return bool(self.wal_torn_tail or self.wal_dropped_flush)

    @property
    def crash_twin_eligible(self) -> bool:
        """Whether the crash-free twin must converge identically.

        Crash-restart recovery is behaviourally exact only when no
        *other* nondeterministic timing interacts with the outage: a
        lost in-flight message is retransmitted on a timer, shifting
        every subsequent event. With a single client and no link faults
        the retry timeline is itself deterministic and the recovered
        campaign must reach the crash-free twin's converged state.

        Snapshot corruption keeps eligibility — the WAL holds everything
        from genesis, so the ladder's older-generation fallback must
        reach the *same* state with a longer replay. WAL damage does
        not: torn tails and dropped flushes destroy acknowledged records
        that clients will never retransmit, so state equivalence is
        impossible by construction (the system self-heals at the task
        level via lease expiry instead).
        """
        return bool(
            self.backend_crashes
            and self.n_clients == 1
            and not self.drop_probability
            and not self.duplicate_probability
            and not self.jitter_s
            and not self.disconnect_windows
            and not self.dropouts
            and not self.dropout_hazard
            and not self.loses_wal_data
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        doc = asdict(self)
        doc["schema"] = SCENARIO_SCHEMA
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "Scenario":
        doc = dict(doc)
        schema = doc.pop("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ValueError(f"unsupported scenario schema {schema!r}")
        doc["dropouts"] = tuple((str(c), float(t)) for c, t in doc.get("dropouts", ()))
        doc["disconnect_windows"] = tuple(
            (float(a), float(b)) for a, b in doc.get("disconnect_windows", ())
        )
        doc["backend_crashes"] = tuple(
            (float(a), float(b)) for a, b in doc.get("backend_crashes", ())
        )
        return cls(**doc)

    def describe(self) -> str:
        """One-line scenario summary for fuzz progress output."""
        fault_bits = []
        if self.drop_probability:
            fault_bits.append(f"drop={self.drop_probability:.2f}")
        if self.duplicate_probability:
            fault_bits.append(f"dup={self.duplicate_probability:.2f}")
        if self.jitter_s:
            fault_bits.append(f"jit={self.jitter_s:.1f}s")
        if self.disconnect_windows:
            fault_bits.append(f"disc x{len(self.disconnect_windows)}")
        if self.dropout_hazard:
            fault_bits.append(f"hazard={self.dropout_hazard:.2f}")
        if self.dropouts:
            fault_bits.append(f"dropouts x{len(self.dropouts)}")
        if self.sfm_workers is not None:
            limit = "inf" if self.sfm_queue_limit is None else self.sfm_queue_limit
            fault_bits.append(f"workers={self.sfm_workers} q={limit}")
        if self.max_tasks != 1:
            fault_bits.append(f"max_tasks={self.max_tasks}")
        if self.poll_jitter_s:
            fault_bits.append(f"poll_jit={self.poll_jitter_s:.1f}s")
        if self.backend_crashes:
            fault_bits.append(
                f"crashes x{len(self.backend_crashes)} snap={self.snapshot_every}"
            )
        elif self.persist:
            fault_bits.append(f"persist snap={self.snapshot_every}")
        if self.storage_faults_enabled:
            storage_bits = [f"retain={self.snapshot_retain}"]
            if self.snapshot_corruption:
                storage_bits.append(f"corrupt={self.snapshot_corruption:.2f}")
            if self.wal_torn_tail:
                storage_bits.append(f"tear={self.wal_torn_tail:.2f}")
            if self.wal_dropped_flush:
                storage_bits.append(f"unflushed={self.wal_dropped_flush:.2f}")
            fault_bits.append(f"storage[{' '.join(storage_bits)}]")
        return (
            f"venue {self.venue_width_m:.0f}x{self.venue_depth_m:.0f}m "
            f"clients={self.n_clients} lease={self.lease_duration_s:.0f}s "
            f"batch={self.upload_subbatch} until={self.until_s:.0f}s "
            f"[{' '.join(fault_bits) or 'lossless'}]"
        )
