"""The campaign fuzzer: sample scenarios, run, shrink what fails.

One fuzz *campaign* is: derive a scenario seed from the master seed,
sample a :class:`Scenario`, run it under the live invariant registry
with the determinism double-run, and — on failure — delta-debug the
scenario to a minimal repro and write a replayable artifact.

The campaign seeds are derived through named RNG streams
(``fuzz-campaign-<i>`` under the master seed), so ``--seed 0
--campaigns 50`` explores the same 50 scenarios on every machine, and
campaign *i* can be re-run alone without running the first *i - 1*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..simkit.rng import RngStream
from .artifact import make_artifact, write_artifact
from .harness import CampaignResult, run_scenario
from .mutations import MUTATIONS, mutation_probe
from .scenario import Scenario
from .shrink import DEFAULT_SHRINK_BUDGET, shrink_scenario

ProgressFn = Callable[[str], None]


def campaign_seed(master_seed: int, index: int) -> int:
    """The scenario seed for campaign ``index`` under ``master_seed``."""
    return int(RngStream(master_seed, f"fuzz-campaign-{index}").integers(0, 2**31))


@dataclass
class FuzzFailure:
    """One failed campaign, after shrinking."""

    index: int
    seed: int
    result: CampaignResult  # the *shrunk* reproduction
    original: Scenario
    shrink_steps: List[str]
    shrink_runs: int
    artifact_path: Optional[Path] = None


@dataclass
class FuzzSummary:
    """Aggregate outcome of one fuzz run."""

    master_seed: int
    campaigns: int
    passed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    checks_run: int = 0
    checkpoints_run: int = 0
    labels: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def _shrink_failure(
    result: CampaignResult,
    mutation: Optional[str],
    shrink_budget: int,
    progress: Optional[ProgressFn],
) -> "tuple[CampaignResult, List[str], int]":
    """Minimise a failing scenario; return the shrunk repro run."""
    target = result.label

    def fails(candidate: Scenario) -> Optional[str]:
        rerun = run_scenario(candidate, mutation=mutation, check_determinism=False)
        return None if rerun.ok else rerun.label

    shrunk = shrink_scenario(
        result.scenario,
        fails,
        failure_label=target,
        max_runs=shrink_budget,
        progress=progress,
    )
    if not shrunk.shrunk:
        return result, [], shrunk.runs_used
    # Final authoritative run of the minimal scenario (records the
    # violation at its new, earlier event).
    final = run_scenario(shrunk.scenario, mutation=mutation, check_determinism=False)
    if final.ok or final.label != target:  # shrinker raced a flaky repro
        return result, [], shrunk.runs_used
    return final, shrunk.steps, shrunk.runs_used


def run_fuzz(
    campaigns: int = 20,
    master_seed: int = 0,
    mutation: Optional[str] = None,
    shrink: bool = True,
    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
    check_determinism: bool = True,
    scratch_twin_every: int = 0,
    crashes: bool = False,
    artifact_dir: Optional[Union[str, Path]] = None,
    max_failures: int = 3,
    progress: Optional[ProgressFn] = None,
) -> FuzzSummary:
    """Run a fuzz campaign batch (see module docstring).

    ``scratch_twin_every=N`` additionally diffs every N-th campaign
    against its ``full_rebuild=True`` twin (0 disables — the twin
    doubles that campaign's cost). ``crashes=True`` forces a seeded
    backend crash-restart schedule (plus persistence) onto every
    sampled scenario, concentrating the batch on the durability
    subsystem. Stops early after ``max_failures`` distinct failures;
    each failure is shrunk and (when ``artifact_dir`` is set) written
    as a replayable artifact.
    """
    summary = FuzzSummary(master_seed=master_seed, campaigns=campaigns)
    say = progress or (lambda line: None)
    for index in range(campaigns):
        seed = campaign_seed(master_seed, index)
        if mutation is not None and index == 0:
            # Mutation mode leads with the crafted probe scenario: sampled
            # campaigns rarely produce the traffic shapes (e.g. a
            # post-completion duplicate upload, a saturated SfM lane) the
            # planted bugs need. Mutations with a dedicated probe use it.
            probe = MUTATIONS[mutation].probe if mutation in MUTATIONS else None
            scenario = probe() if probe is not None else mutation_probe()
            seed = scenario.seed
        else:
            scenario = Scenario.sample(seed)
        if crashes:
            scenario = scenario.with_crashes()
        if scratch_twin_every and index % scratch_twin_every == 0:
            scenario = replace(scenario, scratch_twin=True)
        say(f"campaign {index + 1}/{campaigns} seed={seed}: {scenario.describe()}")
        result = run_scenario(
            scenario, mutation=mutation, check_determinism=check_determinism
        )
        summary.checks_run += result.checks_run
        summary.checkpoints_run += result.checkpoints_run
        summary.labels[result.label] = summary.labels.get(result.label, 0) + 1
        if result.ok:
            summary.passed += 1
            continue

        say(f"campaign {index + 1} FAILED ({result.label}); shrinking...")
        original = scenario
        steps: List[str] = []
        runs_used = 0
        if shrink:
            result, steps, runs_used = _shrink_failure(
                result, mutation, shrink_budget, say
            )
        failure = FuzzFailure(
            index=index,
            seed=seed,
            result=result,
            original=original,
            shrink_steps=steps,
            shrink_runs=runs_used,
        )
        if artifact_dir is not None:
            doc = make_artifact(
                result,
                shrunk_from=original,
                shrink_steps=steps,
                shrink_runs=runs_used,
                mutation=mutation,
            )
            failure.artifact_path = write_artifact(
                doc, Path(artifact_dir) / f"seed-{seed}-{result.failure_kind}.json"
            )
            say(f"  wrote artifact {failure.artifact_path}")
        summary.failures.append(failure)
        if len(summary.failures) >= max_failures:
            say(f"stopping after {max_failures} failures")
            break
    return summary
