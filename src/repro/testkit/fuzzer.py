"""The campaign fuzzer: sample scenarios, run, shrink what fails.

One fuzz *campaign* is: derive a scenario seed from the master seed,
sample a :class:`Scenario`, run it under the live invariant registry
with the determinism double-run, and — on failure — delta-debug the
scenario to a minimal repro and write a replayable artifact.

The campaign seeds are derived through named RNG streams
(``fuzz-campaign-<i>`` under the master seed), so ``--seed 0
--campaigns 50`` explores the same 50 scenarios on every machine, and
campaign *i* can be re-run alone without running the first *i - 1*.

That per-campaign independence is also the sharding contract for
``jobs > 1``: :func:`run_campaign` is a pure function of the fuzz
parameters plus the campaign index, so campaigns fan out across the
:mod:`executor <.executor>` process pool and merge back — in strict
index order, through the same :func:`_merge_outcome` the serial loop
uses — into a byte-identical :class:`FuzzSummary`, identical artifacts
and identical progress lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..simkit.rng import RngStream
from .artifact import make_artifact, write_artifact
from .harness import CampaignResult, run_scenario
from .mutations import MUTATIONS, mutation_probe
from .scenario import Scenario
from .shrink import DEFAULT_SHRINK_BUDGET, shrink_scenario

ProgressFn = Callable[[str], None]


def campaign_seed(master_seed: int, index: int) -> int:
    """The scenario seed for campaign ``index`` under ``master_seed``."""
    return int(RngStream(master_seed, f"fuzz-campaign-{index}").integers(0, 2**31))


def derive_scenario(
    master_seed: int,
    index: int,
    mutation: Optional[str] = None,
    scratch_twin_every: int = 0,
    crashes: bool = False,
    storage_faults: bool = False,
) -> Tuple[int, Scenario]:
    """Derive campaign ``index``'s ``(seed, scenario)`` — pure, no run.

    Shared by the campaign runner and the worker-crash path: when a pool
    worker dies mid-campaign the parent re-derives the exact scenario it
    was running to record a replayable failure artifact.
    """
    seed = campaign_seed(master_seed, index)
    if mutation is not None and index == 0:
        # Mutation mode leads with the crafted probe scenario: sampled
        # campaigns rarely produce the traffic shapes (e.g. a
        # post-completion duplicate upload, a saturated SfM lane) the
        # planted bugs need. Mutations with a dedicated probe use it.
        probe = MUTATIONS[mutation].probe if mutation in MUTATIONS else None
        scenario = probe() if probe is not None else mutation_probe()
        seed = scenario.seed
    else:
        scenario = Scenario.sample(seed)
    if storage_faults:
        scenario = scenario.with_storage_faults()
    elif crashes:
        scenario = scenario.with_crashes()
    if scratch_twin_every and index % scratch_twin_every == 0:
        scenario = replace(scenario, scratch_twin=True)
    return seed, scenario


@dataclass
class CampaignOutcome:
    """Everything one campaign produced, before summary merging.

    This is the unit that crosses the worker pipe in parallel runs, so
    it must stay picklable: ``result.report`` (a live object graph) is
    stripped by the worker before shipping.
    """

    index: int
    seed: int
    result: CampaignResult
    original: Scenario
    shrink_steps: List[str] = field(default_factory=list)
    shrink_runs: int = 0


@dataclass
class FuzzFailure:
    """One failed campaign, after shrinking."""

    index: int
    seed: int
    result: CampaignResult  # the *shrunk* reproduction
    original: Scenario
    shrink_steps: List[str]
    shrink_runs: int
    artifact_path: Optional[Path] = None


@dataclass
class FuzzSummary:
    """Aggregate outcome of one fuzz run."""

    master_seed: int
    campaigns: int
    passed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    checks_run: int = 0
    checkpoints_run: int = 0
    labels: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        """Stable JSON projection (pins ``--jobs N`` byte-equality).

        Volatile host facts (absolute artifact paths, wall times) are
        reduced to their deterministic parts — the artifact *filename*
        is seed-derived, its directory is not.
        """
        return {
            "master_seed": self.master_seed,
            "campaigns": self.campaigns,
            "passed": self.passed,
            "checks_run": self.checks_run,
            "checkpoints_run": self.checkpoints_run,
            "labels": dict(self.labels),
            "failures": [
                {
                    "index": f.index,
                    "seed": f.seed,
                    "label": f.result.label,
                    "failure_kind": f.result.failure_kind,
                    "scenario": f.result.scenario.to_dict(),
                    "original": f.original.to_dict(),
                    "shrink_steps": list(f.shrink_steps),
                    "shrink_runs": f.shrink_runs,
                    "artifact": (
                        f.artifact_path.name if f.artifact_path is not None else None
                    ),
                }
                for f in self.failures
            ],
        }


def _shrink_failure(
    result: CampaignResult,
    mutation: Optional[str],
    shrink_budget: int,
    progress: Optional[ProgressFn],
) -> "tuple[CampaignResult, List[str], int]":
    """Minimise a failing scenario; return the shrunk repro run."""
    target = result.label

    def fails(candidate: Scenario) -> Optional[str]:
        rerun = run_scenario(candidate, mutation=mutation, check_determinism=False)
        return None if rerun.ok else rerun.label

    shrunk = shrink_scenario(
        result.scenario,
        fails,
        failure_label=target,
        max_runs=shrink_budget,
        progress=progress,
    )
    if not shrunk.shrunk:
        return result, [], shrunk.runs_used
    # Final authoritative run of the minimal scenario (records the
    # violation at its new, earlier event).
    final = run_scenario(shrunk.scenario, mutation=mutation, check_determinism=False)
    if final.ok or final.label != target:  # shrinker raced a flaky repro
        return result, [], shrunk.runs_used
    return final, shrunk.steps, shrunk.runs_used


def run_campaign(
    campaigns: int,
    master_seed: int,
    index: int,
    mutation: Optional[str] = None,
    shrink: bool = True,
    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
    check_determinism: bool = True,
    scratch_twin_every: int = 0,
    crashes: bool = False,
    storage_faults: bool = False,
    progress: Optional[ProgressFn] = None,
) -> CampaignOutcome:
    """Run fuzz campaign ``index`` — a pure function of its arguments.

    This is the parallel shard unit: everything up to (but excluding)
    summary accounting and artifact writing, which stay in the parent so
    serial and parallel runs share one merge path.
    """
    say = progress or (lambda line: None)
    seed, scenario = derive_scenario(
        master_seed, index, mutation, scratch_twin_every, crashes, storage_faults
    )
    say(f"campaign {index + 1}/{campaigns} seed={seed}: {scenario.describe()}")
    result = run_scenario(
        scenario, mutation=mutation, check_determinism=check_determinism
    )
    outcome = CampaignOutcome(index=index, seed=seed, result=result, original=scenario)
    if result.ok:
        return outcome
    say(f"campaign {index + 1} FAILED ({result.label}); shrinking...")
    if shrink:
        outcome.result, outcome.shrink_steps, outcome.shrink_runs = _shrink_failure(
            result, mutation, shrink_budget, say
        )
    return outcome


def crashed_outcome(
    master_seed: int,
    index: int,
    error: str,
    mutation: Optional[str] = None,
    scratch_twin_every: int = 0,
    crashes: bool = False,
    storage_faults: bool = False,
) -> CampaignOutcome:
    """Synthesise the outcome for a campaign whose worker died mid-run.

    The scenario is re-derived in the parent (sampling is pure), so the
    failure still gets a replayable seed artifact even though the worker
    took its in-flight state down with it.
    """
    seed, scenario = derive_scenario(
        master_seed, index, mutation, scratch_twin_every, crashes, storage_faults
    )
    result = CampaignResult(
        scenario=scenario,
        ok=False,
        failure_kind="worker-crash",
        crash=error,
    )
    return CampaignOutcome(index=index, seed=seed, result=result, original=scenario)


def _merge_outcome(
    summary: FuzzSummary,
    outcome: CampaignOutcome,
    mutation: Optional[str],
    artifact_dir: Optional[Union[str, Path]],
    max_failures: int,
    say: ProgressFn,
) -> bool:
    """Fold one campaign outcome into the summary; True means stop.

    The single accounting path for serial and parallel runs: because
    outcomes arrive here in campaign-index order either way, the summary
    counters, label insertion order, artifact files and printed lines
    cannot depend on ``--jobs``.
    """
    result = outcome.result
    summary.checks_run += result.checks_run
    summary.checkpoints_run += result.checkpoints_run
    summary.labels[result.label] = summary.labels.get(result.label, 0) + 1
    if result.ok:
        summary.passed += 1
        return False
    failure = FuzzFailure(
        index=outcome.index,
        seed=outcome.seed,
        result=result,
        original=outcome.original,
        shrink_steps=outcome.shrink_steps,
        shrink_runs=outcome.shrink_runs,
    )
    if artifact_dir is not None:
        doc = make_artifact(
            result,
            shrunk_from=outcome.original,
            shrink_steps=outcome.shrink_steps,
            shrink_runs=outcome.shrink_runs,
            mutation=mutation,
        )
        failure.artifact_path = write_artifact(
            doc,
            Path(artifact_dir) / f"seed-{outcome.seed}-{result.failure_kind}.json",
        )
        say(f"  wrote artifact {failure.artifact_path}")
    summary.failures.append(failure)
    if len(summary.failures) >= max_failures:
        say(f"stopping after {max_failures} failures")
        return True
    return False


def run_fuzz(
    campaigns: int = 20,
    master_seed: int = 0,
    mutation: Optional[str] = None,
    shrink: bool = True,
    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
    check_determinism: bool = True,
    scratch_twin_every: int = 0,
    crashes: bool = False,
    storage_faults: bool = False,
    artifact_dir: Optional[Union[str, Path]] = None,
    max_failures: int = 3,
    progress: Optional[ProgressFn] = None,
    jobs: Union[int, str, None] = 1,
    stats: Optional[object] = None,
    metrics: Optional[object] = None,
    _kill_indices: Sequence[int] = (),
) -> FuzzSummary:
    """Run a fuzz campaign batch (see module docstring).

    ``scratch_twin_every=N`` additionally diffs every N-th campaign
    against its ``full_rebuild=True`` twin (0 disables — the twin
    doubles that campaign's cost). ``crashes=True`` forces a seeded
    backend crash-restart schedule (plus persistence) onto every
    sampled scenario, concentrating the batch on the durability
    subsystem; ``storage_faults=True`` goes further and also arms the
    storage damage axes (implies the forced crash schedule), aiming the
    batch at the recovery ladder. Stops early after ``max_failures``
    distinct failures;
    each failure is shrunk and (when ``artifact_dir`` is set) written
    as a replayable artifact.

    ``jobs`` (int or ``"auto"``) shards campaigns across the executor
    process pool; output is byte-identical to ``jobs=1`` because merging
    is campaign-index ordered. ``stats`` (an
    :class:`~.executor.ExecutorStats`) and ``metrics`` (a
    :class:`~..obs.metrics.MetricsRegistry`, merged from per-worker
    registries) collect executor accounting when provided.
    ``_kill_indices`` is a fault-injection hook for the executor tests:
    those campaigns' workers hard-exit mid-run.
    """
    from .executor import resolve_jobs, run_shards

    summary = FuzzSummary(master_seed=master_seed, campaigns=campaigns)
    say = progress or (lambda line: None)

    if resolve_jobs(jobs) <= 1 or campaigns <= 1:
        for index in range(campaigns):
            outcome = run_campaign(
                campaigns=campaigns,
                master_seed=master_seed,
                index=index,
                mutation=mutation,
                shrink=shrink,
                shrink_budget=shrink_budget,
                check_determinism=check_determinism,
                scratch_twin_every=scratch_twin_every,
                crashes=crashes,
                storage_faults=storage_faults,
                progress=say,
            )
            if _merge_outcome(
                summary, outcome, mutation, artifact_dir, max_failures, say
            ):
                break
        return summary

    specs = [
        {
            "campaigns": campaigns,
            "master_seed": master_seed,
            "index": index,
            "mutation": mutation,
            "shrink": shrink,
            "shrink_budget": shrink_budget,
            "check_determinism": check_determinism,
            "scratch_twin_every": scratch_twin_every,
            "crashes": crashes,
            "storage_faults": storage_faults,
            **({"selftest_exit": True} if index in set(_kill_indices) else {}),
        }
        for index in range(campaigns)
    ]
    shards = run_shards("fuzz-campaign", specs, jobs=jobs, stats=stats)
    try:
        for envelope in shards:
            if envelope["ok"]:
                payload = envelope["payload"]
                for line in payload["lines"]:
                    say(line)
                if metrics is not None:
                    metrics.merge(payload["metrics"])
                outcome = payload["outcome"]
            else:
                # Worker died (or its task raised, which run_scenario's
                # blanket except makes near-impossible): re-derive the
                # scenario and record a replayable worker-crash failure.
                outcome = crashed_outcome(
                    master_seed,
                    envelope["index"],
                    envelope.get("error", "worker failed"),
                    mutation=mutation,
                    scratch_twin_every=scratch_twin_every,
                    crashes=crashes,
                    storage_faults=storage_faults,
                )
                index = outcome.index
                say(
                    f"campaign {index + 1}/{campaigns} seed={outcome.seed}: "
                    f"WORKER CRASH ({envelope.get('error', 'worker failed')})"
                )
            if _merge_outcome(
                summary, outcome, mutation, artifact_dir, max_failures, say
            ):
                break
    finally:
        shards.close()  # early stop: shut the pool down, drop stale shards
    return summary
