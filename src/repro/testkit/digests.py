"""Deterministic digests of a deployment run's observable outputs.

The end-of-run determinism invariant needs "same seed twice -> the same
run" to be checkable cheaply and explainably. These helpers project the
three run outputs — :class:`DeploymentReport`, the metrics registry and
the span trace — onto their *simulation-deterministic* content (wall-
clock measurements are observability about the host, not the run, and
are excluded) and hash the canonical JSON encoding.

``diff_projections`` pinpoints the first diverging entry, so a
determinism failure names the leaking subsystem instead of just two
hashes that differ.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional, Tuple

#: Metric-name prefixes measuring host wall time (nondeterministic by
#: design); everything else in the registry is simulation-driven.
WALL_METRIC_PREFIXES: Tuple[str, ...] = (
    "repro.pipeline.phase.",
    "repro.persist.wall.",
)

#: Span attribute keys carrying wall-clock measurements.
_WALL_ATTR_MARKER = "wall"


def _canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=repr)


def _digest(doc) -> str:
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()


def report_projection(report) -> Dict:
    """The full DeploymentReport as an exact, ordered field map."""
    return {
        field.name: repr(getattr(report, field.name))
        for field in dataclasses.fields(report)
    }


def metrics_projection(registry) -> Dict[str, dict]:
    """Registry snapshot minus wall-clock metrics (sim-deterministic)."""
    return {
        name: snap
        for name, snap in registry.snapshot().items()
        if not any(name.startswith(p) for p in WALL_METRIC_PREFIXES)
    }


def trace_projection(tracer) -> List[list]:
    """Finished spans as (name, category, sim interval, parent, attrs).

    Wall-time span fields and any ``*wall*`` attribute are dropped;
    span/parent ids are kept (they are sequence-derived, deterministic).
    """
    rows: List[list] = []
    for span in tracer.spans():
        attrs = {
            k: span.attrs[k]
            for k in sorted(span.attrs)
            if _WALL_ATTR_MARKER not in k
        }
        rows.append(
            [
                span.name,
                span.category,
                repr(span.start_sim_s),
                repr(span.end_sim_s),
                span.span_id,
                span.parent_id,
                attrs,
            ]
        )
    rows.append(["__dropped__", tracer.dropped_spans])
    return rows


def run_digests(report, telemetry) -> Dict[str, str]:
    """The three output digests of one instrumented run."""
    return {
        "report": _digest(report_projection(report)),
        "metrics": _digest(metrics_projection(telemetry.metrics)),
        "trace": _digest(trace_projection(telemetry.tracer)),
    }


def diff_projections(a, b, limit: int = 3) -> Optional[str]:
    """Human-readable first divergences between two projections.

    Returns ``None`` when equal. Works on the dict/list shapes the
    projection helpers emit.
    """
    diffs: List[str] = []

    def walk(path: str, x, y) -> None:
        if len(diffs) >= limit:
            return
        if type(x) is not type(y):
            diffs.append(f"{path}: type {type(x).__name__} != {type(y).__name__}")
            return
        if isinstance(x, dict):
            for key in sorted(set(x) | set(y)):
                if key not in x:
                    diffs.append(f"{path}.{key}: only in second")
                elif key not in y:
                    diffs.append(f"{path}.{key}: only in first")
                else:
                    walk(f"{path}.{key}", x[key], y[key])
                if len(diffs) >= limit:
                    return
        elif isinstance(x, (list, tuple)):
            if len(x) != len(y):
                diffs.append(f"{path}: length {len(x)} != {len(y)}")
            for i, (xi, yi) in enumerate(zip(x, y)):
                walk(f"{path}[{i}]", xi, yi)
                if len(diffs) >= limit:
                    return
        elif x != y:
            diffs.append(f"{path}: {x!r} != {y!r}")

    walk("$", a, b)
    return "; ".join(diffs) if diffs else None
