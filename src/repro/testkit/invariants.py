"""Live invariant registry: checks that run *during* the simulation.

The registry attaches to a deployment's :class:`Simulator` as a
post-dispatch probe (``Simulator.add_probe``). Between any two events
every subsystem is quiescent, so the probe sees exactly the states a
real distributed system would expose between message deliveries —
without races and without perturbing the run (probes schedule nothing
and draw no RNG).

Two cadences:

* **per-event invariants** (cheap ledger/lease/coverage consistency)
  run after every dispatched event;
* **checkpoint invariants** (incremental-vs-oracle exactness: the map
  stack against Algorithm 2+3 rebuilt from scratch, the SOR-filtered
  cloud against the batch ``sor_filter`` oracle) run every
  ``checkpoint_every``-th processed photo batch.

A violation is recorded and raised as :class:`InvariantViolationError`
at the exact event that broke the invariant — the simulated time and
event label land in the violation record, which is what makes shrunk
failing-seed artifacts actionable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.tasks import TaskStatus
from ..mapping import calculate_obstacles_map, calculate_visibility_map
from ..sfm.filters import sor_filter


class InvariantViolationError(AssertionError):
    """Raised from the probe at the first event that breaks an invariant."""

    def __init__(self, violation: "Violation"):
        super().__init__(str(violation))
        self.violation = violation


@dataclass(frozen=True)
class Violation:
    """One invariant failure, pinned to the event that exposed it."""

    invariant: str
    sim_time_s: float
    event_label: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.invariant}] at t={self.sim_time_s:.3f}s "
            f"(event {self.event_label!r}): {self.detail}"
        )

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict) -> "Violation":
        return cls(
            invariant=str(doc["invariant"]),
            sim_time_s=float(doc["sim_time_s"]),
            event_label=str(doc["event_label"]),
            detail=str(doc["detail"]),
        )


class InvariantRegistry:
    """All live invariants for one deployment run.

    Usage::

        registry = InvariantRegistry(checkpoint_every=4)
        registry.attach(deployment)
        deployment.run(...)        # raises InvariantViolationError on breakage
        registry.detach()
    """

    #: Names of the per-event invariants this registry enforces.
    LIVE_INVARIANTS = (
        "lease-exclusivity",
        "ledger-idempotency",
        "coverage-monotonicity",
        "admission-bound",
        "recovery-idempotency",
        "recovery-integrity",
    )
    #: Names of the checkpointed incremental-vs-oracle invariants.
    CHECKPOINT_INVARIANTS = (
        "map-oracle-exactness",
        "sor-oracle-exactness",
    )

    def __init__(self, checkpoint_every: int = 4, oracle_checks: bool = True):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.checkpoint_every = checkpoint_every
        self.oracle_checks = oracle_checks
        self.violations: List[Violation] = []
        self.checks_run = 0
        self.checkpoints_run = 0
        self._deployment = None
        self._server = None
        self._sim = None
        # incremental cursors
        self._seen_results = 0
        #: batch_id -> (result index, sim time first observed committed).
        self._seen_batch_ids: Dict[str, "tuple[int, float]"] = {}
        self._audits_seen = 0  # consumed prefix of host.recovery_audits
        self._fault_reports_seen = 0  # consumed prefix of storage_fault_reports
        #: Snapshot generations the injector damaged and recovery has not
        #: yet quarantined (recovery-integrity bookkeeping).
        self._damaged_seqs: set = set()
        #: ACKed WAL records were destroyed since the last recovery; the
        #: next recovery legitimately rolls observable state back.
        self._wal_loss_pending = False
        self._service_cursor = 0  # consumed prefix of the FIFO audit log
        self._last_service_seq = 0
        self._last_raw_points = 0
        self._last_iteration = 0
        self._grid_cells = 0
        self._covered_latched = False
        self._batches_since_checkpoint = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach(self, deployment) -> "InvariantRegistry":
        if self._deployment is not None:
            raise RuntimeError("registry already attached")
        self._deployment = deployment
        self._server = deployment.server
        self._sim = deployment.simulator
        self._grid_cells = int(np.prod(self._pipeline.spec.shape))
        self._sim.add_probe(self._on_event)
        return self

    def detach(self) -> None:
        if self._sim is not None:
            self._sim.remove_probe(self._on_event)
        self._deployment = self._server = self._sim = None

    @property
    def _pipeline(self):
        """The *current* pipeline — crash recovery replaces the instance."""
        return self._server.pipeline if self._server is not None else None

    # ------------------------------------------------------------------
    # probe
    # ------------------------------------------------------------------

    def _on_event(self, token) -> None:
        self.checks_run += 1
        # Recovery bookkeeping first: it audits fresh recoveries
        # (idempotency + ladder integrity) and — after a legitimate
        # WAL-data-loss rollback — rebases the incremental cursors the
        # later checks compare against.
        self._note_recoveries(token)
        self._check_lease_exclusivity(token)
        new_batches = self._check_ledger_idempotency(token)
        self._check_coverage_monotonicity(token)
        self._check_admission_bound(token)
        if new_batches and self.oracle_checks:
            self._batches_since_checkpoint += new_batches
            if self._batches_since_checkpoint >= self.checkpoint_every:
                self._batches_since_checkpoint = 0
                self.checkpoints_run += 1
                self._check_map_oracle(token)
                self._check_sor_oracle(token)

    def _fail(self, token, invariant: str, detail: str) -> None:
        violation = Violation(
            invariant=invariant,
            sim_time_s=self._sim.now,
            event_label=token.label,
            detail=detail,
        )
        self.violations.append(violation)
        raise InvariantViolationError(violation)

    # ------------------------------------------------------------------
    # per-event invariants
    # ------------------------------------------------------------------

    def _check_lease_exclusivity(self, token) -> None:
        """No lease without exactly one live ASSIGNED holder.

        The store keys leases by task id, so *two leases on one task*
        is structurally impossible — what can break is the lease/status
        ledger agreement: a lease on a task that is no longer ASSIGNED
        (two effective holders once the task is reissued), a lease whose
        client is not the recorded assignee, or an ASSIGNED task with no
        lease backing it (an assignment the reaper can never recover).
        """
        store = self._server.store
        leased = set()
        for lease in store.active_leases():
            leased.add(lease.task_id)
            task = store.maybe_task(lease.task_id)
            if task is None:
                self._fail(
                    token,
                    "lease-exclusivity",
                    f"live lease for unknown task {lease.task_id}",
                )
            if task.status != TaskStatus.ASSIGNED:
                self._fail(
                    token,
                    "lease-exclusivity",
                    f"task {lease.task_id} holds a live lease (client "
                    f"{lease.client_id!r}) but is {task.status.value}, not assigned",
                )
            assignee = store.assignee_of(lease.task_id)
            if assignee != lease.client_id:
                self._fail(
                    token,
                    "lease-exclusivity",
                    f"task {lease.task_id} leased to {lease.client_id!r} but "
                    f"assigned to {assignee!r}",
                )
        for task in store.tasks_with_status(TaskStatus.ASSIGNED):
            if task.task_id not in leased:
                self._fail(
                    token,
                    "lease-exclusivity",
                    f"task {task.task_id} is assigned with no live lease",
                )

    def _check_ledger_idempotency(self, token) -> int:
        """Replayed batch ids must never double-apply.

        Each distinct ``batch_id`` may produce at most one
        :class:`ProcessingResult`, and once a result exists the dedup
        ledger must keep answering with it — a ledger entry that
        *reopens* (goes back to in-flight after completing) is the
        precursor of a double-apply and is flagged at the event where it
        happens, before the second application can corrupt the model.

        Returns the number of newly processed (non-deduped) batches, so
        the registry can pace its oracle checkpoints.
        """
        results = self._server.results
        fresh = results[self._seen_results:]
        for offset, result in enumerate(fresh):
            index = self._seen_results + offset
            bid = result.batch_id
            if bid is None:
                continue
            if bid in self._seen_batch_ids:
                self._fail(
                    token,
                    "ledger-idempotency",
                    f"batch {bid!r} applied twice (results "
                    f"#{self._seen_batch_ids[bid][0]} and #{index})",
                )
            self._seen_batch_ids[bid] = (index, self._sim.now)
        self._seen_results = len(results)
        store = self._server.store
        retention = self._server.protocol.archive_retention_s
        for bid, (_index, seen_t) in self._seen_batch_ids.items():
            if self._server.ledger_contains(bid):
                if self._server.ledger_entry(bid) is None:
                    self._fail(
                        token,
                        "ledger-idempotency",
                        f"ledger entry for completed batch {bid!r} reopened "
                        f"(dedup bypassed; replay would double-apply)",
                    )
            elif store.archived_batch(bid) is None:
                # Eviction is legal only through the GC path, which
                # archives the outcome first; the archive itself expires
                # ``archive_retention_s`` after eviction (eviction never
                # precedes completion, so ``seen_t + retention`` bounds
                # the earliest legal disappearance from below). Inside
                # that horizon a vanished entry means dedup protection
                # is simply gone.
                if self._sim.now < seen_t + retention:
                    self._fail(
                        token,
                        "ledger-idempotency",
                        f"ledger entry for completed batch {bid!r} vanished "
                        f"without an archive record inside the retention "
                        f"horizon (replay would double-apply)",
                    )
        return len(fresh)

    def _check_admission_bound(self, token) -> None:
        """The SfM lane respects its declared bounds and serves FIFO.

        With a bounded pool configured: never more busy workers than the
        pool size, never a deeper admission queue than the bound (excess
        must be shed, not queued), no idle worker while batches wait
        (work conservation), and service starts in admission order.
        """
        server = self._server
        limit = server.sfm_worker_limit
        if limit is None:
            return
        busy = server.sfm_busy_workers
        if busy > limit:
            self._fail(
                token,
                "admission-bound",
                f"{busy} busy SfM workers exceed the pool bound {limit}",
            )
        depth = server.sfm_queue_depth
        queue_limit = server.sfm_queue_limit
        if queue_limit is not None and depth > queue_limit:
            self._fail(
                token,
                "admission-bound",
                f"admission queue depth {depth} exceeds bound {queue_limit} "
                f"(overflow must be shed, not queued)",
            )
        if depth > 0 and busy < limit:
            self._fail(
                token,
                "admission-bound",
                f"{depth} batches queued while only {busy}/{limit} workers busy "
                f"(lane is not work-conserving)",
            )
        order = server.sfm_service_order()
        if self._service_cursor > len(order):
            # A crash dropped in-flight (uncommitted) service entries; the
            # recovered audit log is a checked prefix of what we saw live.
            self._service_cursor = len(order)
        for seq in order[self._service_cursor:]:
            if seq <= self._last_service_seq:
                self._fail(
                    token,
                    "admission-bound",
                    f"service started for admission #{seq} after #"
                    f"{self._last_service_seq} (FIFO order violated)",
                )
            self._last_service_seq = seq
        self._service_cursor = len(order)

    def _check_coverage_monotonicity(self, token) -> None:
        """Mapping knowledge only grows; the covered verdict latches.

        Instantaneous *covered-cell counts* are deliberately not required
        to be monotone: the fuzzer falsified that assumption (seed
        1529914845, shrunk to one lossless client) — adding points shifts
        SOR's global neighbour statistics, which can retract previously
        kept inliers and with them a few map cells. What the stack does
        guarantee, and what this invariant pins:

        * the raw registered cloud never loses points (SfM only adds);
        * the Algorithm 1 iteration counter never runs backwards;
        * the coverage count stays within the venue grid;
        * ``venue_covered``, once declared, stays declared (the campaign
          stop condition must not flap).
        """
        pipeline = self._pipeline
        raw_points = len(pipeline.model().cloud)
        if raw_points < self._last_raw_points:
            self._fail(
                token,
                "coverage-monotonicity",
                f"registered cloud shrank {self._last_raw_points} -> "
                f"{raw_points} points",
            )
        self._last_raw_points = raw_points
        iteration = pipeline.iteration
        if iteration < self._last_iteration:
            self._fail(
                token,
                "coverage-monotonicity",
                f"iteration ran backwards {self._last_iteration} -> {iteration}",
            )
        self._last_iteration = iteration
        coverage = pipeline.coverage_cells
        if coverage < 0 or coverage > self._grid_cells:
            self._fail(
                token,
                "coverage-monotonicity",
                f"coverage {coverage} outside venue grid [0, {self._grid_cells}]",
            )
        covered = pipeline.venue_covered
        if self._covered_latched and not covered:
            self._fail(
                token,
                "coverage-monotonicity",
                "venue_covered unlatched (True -> False)",
            )
        self._covered_latched = covered

    def _note_recoveries(self, token) -> None:
        """Audit fresh crashes and recoveries (two invariants + rebasing).

        **recovery-idempotency** — with ``audit_recovery`` on (the
        default), each restart restores the state twice from the same
        snapshot + WAL suffix and digests both. A digest mismatch means
        recovery is not a pure function of the durable media — replaying
        it again (or on another host) would yield a different backend.

        **recovery-integrity** — the verify-then-fallback ladder must
        make exactly the right quarantine calls against the injector's
        ground truth (``host.storage_fault_reports``): every generation
        it restored from must be undamaged, every generation it
        quarantined must actually have been damaged, and no damaged
        generation newer than the chosen one may survive unquarantined.
        This is the check that catches a recovery that skips (or fakes)
        digest verification.

        After a recovery that follows genuine WAL data loss (torn tail /
        dropped flushes destroyed acknowledged records), the observable
        state legitimately rolls back: completed ledger entries vanish,
        the registered cloud shrinks, admission seqs are reissued. The
        incremental cursors are rebased onto the recovered state so the
        rolled-back timeline is checked on its own terms; the system
        must still self-heal from it without violating any invariant.
        """
        host = getattr(self._deployment, "host", None)
        if host is None:
            return
        reports = host.storage_fault_reports
        wal_loss = False
        for report in reports[self._fault_reports_seen:]:
            self._damaged_seqs.update(report.damaged_snapshot_seqs)
            if report.wal_dropped_records > 0:
                wal_loss = True
        self._fault_reports_seen = len(reports)
        if wal_loss:
            self._wal_loss_pending = True
        audits = host.recovery_audits
        for result in audits[self._audits_seen:]:
            if not result.audit_ok:
                self._fail(
                    token,
                    "recovery-idempotency",
                    f"recovery digest mismatch after restart (snapshot "
                    f"#{result.snapshot_seq}, {result.replayed_records} "
                    f"records replayed): {result.digest[:12]} != "
                    f"{(result.audit_digest or '')[:12]}",
                )
            quarantined = set(result.quarantined_seqs)
            false_quarantine = quarantined - self._damaged_seqs
            if false_quarantine:
                self._fail(
                    token,
                    "recovery-integrity",
                    f"recovery quarantined undamaged snapshot generation(s) "
                    f"{sorted(false_quarantine)} (verification rejects clean "
                    f"media)",
                )
            if result.snapshot_seq in self._damaged_seqs:
                self._fail(
                    token,
                    "recovery-integrity",
                    f"recovery restored from damaged snapshot generation "
                    f"#{result.snapshot_seq} (digest verification bypassed "
                    f"or broken)",
                )
            self._damaged_seqs -= quarantined
            # Generations pruned by retention can never be restored
            # from; stop tracking their damage.
            retained = {s.seq for s in host.snapshotter.generations()}
            self._damaged_seqs &= retained
            missed = {s for s in self._damaged_seqs if s > result.snapshot_seq}
            if missed:
                self._fail(
                    token,
                    "recovery-integrity",
                    f"recovery restored from generation #{result.snapshot_seq} "
                    f"but left newer damaged generation(s) {sorted(missed)} "
                    f"unquarantined",
                )
            if self._wal_loss_pending:
                self._rebase_cursors()
                self._wal_loss_pending = False
        self._audits_seen = len(audits)

    def _rebase_cursors(self) -> None:
        """Re-anchor incremental cursors after a data-loss rollback."""
        server = self._server
        pipeline = self._pipeline
        store = server.store
        results = server.results
        self._seen_results = len(results)
        # Keep tracking only batches whose dedup protection still exists;
        # entries destroyed with the lost WAL suffix were never recovered,
        # so their vanishing is the rollback itself, not a GC bug.
        self._seen_batch_ids = {
            bid: seen
            for bid, seen in self._seen_batch_ids.items()
            if server.ledger_contains(bid) or store.archived_batch(bid) is not None
        }
        self._last_raw_points = len(pipeline.model().cloud)
        self._last_iteration = pipeline.iteration
        self._covered_latched = pipeline.venue_covered
        order = server.sfm_service_order()
        self._service_cursor = len(order)
        self._last_service_seq = order[-1] if order else 0

    # ------------------------------------------------------------------
    # checkpoint invariants (incremental vs from-scratch oracles)
    # ------------------------------------------------------------------

    def _check_map_oracle(self, token) -> None:
        """Incremental maps must be cell-exact vs Algorithm 2+3 rebuilds."""
        pipeline = self._pipeline
        if not pipeline.history:
            return
        outcome = pipeline.history[-1]
        model = outcome.model  # carries the SOR-filtered cloud
        config = pipeline.config
        obstacles = calculate_obstacles_map(
            model.cloud, pipeline.spec, config.tasks.obstacle_threshold
        )
        visibility = calculate_visibility_map(
            model, obstacles, config.sfm.visibility_range_m
        )
        if not np.array_equal(outcome.maps.obstacles.data, obstacles.data):
            bad = int(np.sum(outcome.maps.obstacles.data != obstacles.data))
            self._fail(
                token,
                "map-oracle-exactness",
                f"obstacles map diverged from from-scratch rebuild in {bad} "
                f"cells at iteration {outcome.iteration}",
            )
        if not np.array_equal(outcome.maps.visibility.data, visibility.data):
            bad = int(np.sum(outcome.maps.visibility.data != visibility.data))
            self._fail(
                token,
                "map-oracle-exactness",
                f"visibility map diverged from from-scratch rebuild in {bad} "
                f"cells at iteration {outcome.iteration}",
            )
        covered = obstacles.nonzero_mask() | visibility.nonzero_mask()
        if pipeline.site_mask is not None:
            covered = covered & pipeline.site_mask
        expected = int(covered.sum())
        if outcome.coverage_cells != expected:
            self._fail(
                token,
                "map-oracle-exactness",
                f"coverage count {outcome.coverage_cells} != oracle {expected} "
                f"at iteration {outcome.iteration}",
            )

    def _check_sor_oracle(self, token) -> None:
        """Incremental SOR must be bit-identical to the batch oracle."""
        pipeline = self._pipeline
        if not pipeline.history:
            return
        outcome = pipeline.history[-1]
        config = pipeline.config.sfm
        raw = pipeline.model().cloud  # the unfiltered incremental model
        oracle = sor_filter(raw, config.sor_neighbors, config.sor_std_ratio)
        got = outcome.model.cloud
        if len(got) != len(oracle) or not (
            np.array_equal(got.feature_ids, oracle.feature_ids)
            and np.array_equal(got.xyz, oracle.xyz)
            and np.array_equal(got.view_counts, oracle.view_counts)
        ):
            self._fail(
                token,
                "sor-oracle-exactness",
                f"SOR-filtered cloud diverged from sor_filter oracle at "
                f"iteration {outcome.iteration} "
                f"({len(got)} vs {len(oracle)} points)",
            )

    # ------------------------------------------------------------------

    def summary(self) -> Dict:
        return {
            "checks_run": self.checks_run,
            "checkpoints_run": self.checkpoints_run,
            "violations": [v.to_dict() for v in self.violations],
        }
