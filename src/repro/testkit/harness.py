"""Run one scenario under the live invariant registry.

``run_scenario`` is the unit the fuzzer, the shrinker and the artifact
replayer all share: build the deployment a scenario describes, attach
the invariant registry, drive the event loop, and classify the outcome.

Failure classes:

* ``invariant`` — a live/checkpoint invariant fired mid-run (the run
  stops at the exact offending event);
* ``crash`` — the simulation raised (a protocol/SfM/simulation error
  escaping the event loop is as much a bug as a broken invariant);
* ``determinism`` — the same scenario run twice produced different
  reports or metrics/trace digests;
* ``scratch-twin`` — the incremental deployment and its
  ``full_rebuild=True`` twin diverged;
* ``crash-twin`` — a crash-restart campaign converged to a different
  final coverage / task outcome than its crash-free same-seed twin
  (only checked when :attr:`Scenario.crash_twin_eligible`).

One non-failure deserves its own label: a storage-fault campaign whose
crash damaged *every* retained snapshot generation fails closed with
:class:`~repro.errors.UnrecoverableStateError`. That is the recovery
ladder doing exactly its job — refusing to restore untrustworthy state
— so the run counts as ``ok`` with label ``fail-closed`` (the same
exception *without* storage faults armed is still a ``crash`` finding).

Every run is instrumented with an enabled :class:`Telemetry` bundle so
the determinism check covers the metrics registry and span trace, not
just the final report — telemetry is pinned inert by the obs
differential suite, so checking under instrumentation checks the
uninstrumented run too.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import UnrecoverableStateError
from ..obs import Telemetry
from .digests import (
    diff_projections,
    metrics_projection,
    report_projection,
    run_digests,
    trace_projection,
)
from .invariants import InvariantRegistry, InvariantViolationError, Violation
from .mutations import apply_mutation
from .scenario import Scenario


@dataclass
class CampaignResult:
    """Outcome of one scenario run (plus its verification twins)."""

    scenario: Scenario
    ok: bool
    #: invariant | crash | determinism | scratch-twin | crash-twin
    failure_kind: Optional[str] = None
    violation: Optional[Violation] = None
    crash: Optional[str] = None
    report: Optional[object] = None
    digests: Dict[str, str] = field(default_factory=dict)
    determinism_detail: Optional[str] = None
    checks_run: int = 0
    checkpoints_run: int = 0
    #: storage faults destroyed every generation and recovery refused to
    #: restore — an *ok* outcome with its own label (see module docstring).
    fail_closed: bool = False

    @property
    def label(self) -> str:
        if self.ok:
            return "fail-closed" if self.fail_closed else "ok"
        if self.failure_kind == "invariant" and self.violation is not None:
            return f"invariant:{self.violation.invariant}"
        return self.failure_kind or "unknown"


def _run_once(
    scenario: Scenario,
    mutation: Optional[str],
    full_rebuild: bool = False,
) -> Tuple[object, Telemetry, InvariantRegistry]:
    """One instrumented, invariant-checked deployment run."""
    telemetry = Telemetry.enable()
    registry = InvariantRegistry(checkpoint_every=scenario.checkpoint_every)
    with apply_mutation(mutation):
        deployment = scenario.make_deployment(
            telemetry=telemetry, full_rebuild=full_rebuild
        )
        registry.attach(deployment)
        try:
            report = deployment.run(
                until_s=scenario.until_s, max_events=scenario.max_events
            )
        finally:
            registry.detach()
    return report, telemetry, registry


def run_scenario(
    scenario: Scenario,
    mutation: Optional[str] = None,
    check_determinism: bool = True,
) -> CampaignResult:
    """Run ``scenario`` and classify the outcome (see module docstring)."""
    try:
        report, telemetry, registry = _run_once(scenario, mutation)
    except InvariantViolationError as exc:
        return CampaignResult(
            scenario=scenario,
            ok=False,
            failure_kind="invariant",
            violation=exc.violation,
        )
    except UnrecoverableStateError as exc:
        if scenario.storage_faults_enabled:
            # Every retained generation was damaged and recovery refused
            # to restore: failing closed is the correct outcome, and the
            # quarantine report documents it. No report exists, so the
            # twin/determinism checks are skipped.
            return CampaignResult(
                scenario=scenario,
                ok=True,
                fail_closed=True,
                crash=f"{type(exc).__name__}: {exc}",
            )
        return CampaignResult(
            scenario=scenario,
            ok=False,
            failure_kind="crash",
            crash=f"{type(exc).__name__}: {exc}",
        )
    except Exception as exc:  # noqa: BLE001 — any escape from the sim is a finding
        return CampaignResult(
            scenario=scenario,
            ok=False,
            failure_kind="crash",
            crash=f"{type(exc).__name__}: {exc}",
        )

    result = CampaignResult(
        scenario=scenario,
        ok=True,
        report=report,
        digests=run_digests(report, telemetry),
        checks_run=registry.checks_run,
        checkpoints_run=registry.checkpoints_run,
    )

    if check_determinism:
        detail = _determinism_diff(scenario, mutation, report, telemetry)
        if detail is not None:
            result.ok = False
            result.failure_kind = "determinism"
            result.determinism_detail = detail
            return result

    if scenario.scratch_twin:
        detail = _scratch_twin_diff(scenario, mutation, report)
        if detail is not None:
            result.ok = False
            result.failure_kind = "scratch-twin"
            result.determinism_detail = detail
            return result

    if scenario.crash_twin_eligible:
        detail = _crash_twin_diff(scenario, mutation, report)
        if detail is not None:
            result.ok = False
            result.failure_kind = "crash-twin"
            result.determinism_detail = detail
    return result


def _determinism_diff(
    scenario: Scenario,
    mutation: Optional[str],
    report,
    telemetry: Telemetry,
) -> Optional[str]:
    """Same seed twice -> byte-identical report + metrics/trace hashes."""
    try:
        report2, telemetry2, _registry = _run_once(scenario, mutation)
    except Exception as exc:  # noqa: BLE001
        return f"second run diverged by raising {type(exc).__name__}: {exc}"
    for name, project, a, b in (
        ("report", report_projection, report, report2),
        ("metrics", metrics_projection, telemetry.metrics, telemetry2.metrics),
        ("trace", trace_projection, telemetry.tracer, telemetry2.tracer),
    ):
        detail = diff_projections(project(a), project(b))
        if detail is not None:
            return f"{name} diverged between identical-seed runs: {detail}"
    return None


def _scratch_twin_diff(
    scenario: Scenario, mutation: Optional[str], report
) -> Optional[str]:
    """The full_rebuild oracle twin must reproduce the deployment exactly.

    Only the :class:`DeploymentReport` is compared: the incremental and
    from-scratch pipelines intentionally differ in their *internal*
    telemetry (wavefront counters, cache histograms), but every
    externally observable output must match.
    """
    try:
        twin, _telemetry, _registry = _run_once(scenario, mutation, full_rebuild=True)
    except Exception as exc:  # noqa: BLE001
        return f"full_rebuild twin raised {type(exc).__name__}: {exc}"
    detail = diff_projections(report_projection(report), report_projection(twin))
    if detail is not None:
        return f"full_rebuild twin diverged: {detail}"
    return None


def _crash_twin_diff(
    scenario: Scenario, mutation: Optional[str], report
) -> Optional[str]:
    """A recovered campaign must converge exactly like its crash-free twin.

    The twin drops the crash schedule *and* persistence (so it is the
    plain pre-durability deployment). Timing legitimately shifts by the
    downtime, so only runs in which **both** campaigns declared the
    venue covered are compared — and then the final coverage and task
    outcomes must be identical: recovery restored exactly the state the
    live backend had, or the campaigns would have diverged.
    """
    twin_scenario = replace(scenario, backend_crashes=(), persist=False)
    try:
        twin, _telemetry, _registry = _run_once(twin_scenario, mutation)
    except Exception as exc:  # noqa: BLE001
        return f"crash-free twin raised {type(exc).__name__}: {exc}"
    if not (report.venue_covered and twin.venue_covered):
        return None  # one horizon ended mid-campaign: timing, not state
    diffs = [
        f"{name}: crashed={getattr(report, name)} crash-free={getattr(twin, name)}"
        for name in (
            "coverage_cells",
            "tasks_completed",
            "tasks_failed",
            "photos_uploaded",
        )
        if getattr(report, name) != getattr(twin, name)
    ]
    if diffs:
        return "crash-restart campaign diverged from its crash-free twin: " + "; ".join(diffs)
    return None
