"""Planted bugs (mutation mode): prove the invariants catch real faults.

A DST harness that never fails is indistinguishable from one that
checks nothing. Each mutation here deterministically re-introduces a
class of bug the production code guards against, by monkeypatching the
*real* subsystem for the duration of one run; the matching invariant
must catch it mid-simulation. ``repro fuzz --mutate <name>`` runs a
campaign under a mutation and treats "caught + shrunk" as success.

Mutations patch class attributes inside a context manager and always
restore them, so they compose with the determinism double-run (both
runs see the same planted bug).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional


@dataclass(frozen=True)
class Mutation:
    """One named planted bug."""

    name: str
    description: str
    expected_invariant: str  # which invariant should catch it
    patch: Callable[[], contextlib.AbstractContextManager]
    #: Scenario factory whose traffic shape triggers this bug; mutation-
    #: mode fuzzing leads with it (``None`` = the default probe).
    probe: Optional[Callable[[], "object"]] = None


@contextlib.contextmanager
def _patched(cls, attr: str, wrapper_factory) -> Iterator[None]:
    original = getattr(cls, attr)
    setattr(cls, attr, wrapper_factory(original))
    try:
        yield
    finally:
        setattr(cls, attr, original)


# ----------------------------------------------------------------------
# skip-batch-dedupe: drop the upload ledger's protection
# ----------------------------------------------------------------------


def _skip_batch_dedupe():
    """Evict known batch ids before handling, bypassing upload dedup.

    A retransmitted or network-duplicated batch then re-enters SfM
    processing — the double-apply the ledger exists to prevent. The
    ledger-idempotency invariant sees the completed entry vanish at the
    duplicate's arrival event and fails the run there, *before* the
    second application lands.
    """
    from ..server.backend import BackendServer

    def factory(original):
        def handle(self, batch, on_done=None):
            if batch.batch_id is not None:
                self._batch_ledger.pop(batch.batch_id, None)
            return original(self, batch, on_done)

        return handle

    return _patched(BackendServer, "handle_photo_batch", factory)


# ----------------------------------------------------------------------
# leak-completed-lease: completion stops releasing the lease
# ----------------------------------------------------------------------


def _leak_completed_lease():
    """Completed tasks keep their live lease (release paths disabled).

    The server drops a finishing task's lease twice over —
    ``release_lease`` on upload success, then ``complete_task``'s own
    pop — so the mutation disables both. The lease ledger now disagrees
    with the task ledger: a COMPLETED task holds a "live" lease, the
    two-effective-holders precursor lease-exclusivity guards against.
    """
    import contextlib as _ctx

    from ..server.storage import BackendStore

    def release_factory(original):
        def release_lease(self, task_id):
            return self._leases.get(task_id)  # report it, never drop it

        return release_lease

    def complete_factory(original):
        def complete_task(self, task_id):
            lease = self._leases.get(task_id)
            done = original(self, task_id)
            if lease is not None:
                self._leases[task_id] = lease  # the leak
            return done

        return complete_task

    stack = _ctx.ExitStack()
    stack.enter_context(_patched(BackendStore, "release_lease", release_factory))
    stack.enter_context(_patched(BackendStore, "complete_task", complete_factory))
    return stack


# ----------------------------------------------------------------------
# skip-admission-bound: overload stops shedding; everything queues
# ----------------------------------------------------------------------


def _skip_admission_bound():
    """Admission control stops refusing work; the bounded queue overfills.

    With ``_overloaded`` pinned False the backend queues every arrival
    even when the admission queue is at its declared bound — the
    unbounded-buffer bug admission control exists to prevent. The
    admission-bound invariant sees the queue depth exceed the bound at
    the offending upload's arrival event.
    """
    from ..server.backend import BackendServer

    def factory(original):
        def _overloaded(self):
            return False

        return _overloaded

    return _patched(BackendServer, "_overloaded", factory)


# ----------------------------------------------------------------------
# skip-map-dirty-marking: incremental maps stop re-merging changed columns
# ----------------------------------------------------------------------


def _skip_map_dirty_marking():
    """Point inserts stop dirtying their map columns.

    New cloud points land in the octree but their (row, col) columns are
    never re-merged into the obstacles map — the incremental map drifts
    from the Algorithm 2+3 from-scratch rebuild, which the checkpointed
    map-oracle invariant detects cell-exactly.
    """
    from ..mapping.incremental import IncrementalMapEngine

    def factory(original):
        def _mark_dirty(self, leaf, dirty):
            return None  # swallow the dirty-column bookkeeping

        return _mark_dirty

    return _patched(IncrementalMapEngine, "_mark_dirty", factory)


# ----------------------------------------------------------------------
# skip-digest-verify: the recovery ladder stops verifying snapshot seals
# ----------------------------------------------------------------------


def _skip_digest_verify():
    """Recovery trusts every generation's seal without verification.

    The ladder's whole job is refusing to restore a damaged checkpoint;
    with ``_verify`` pinned to "fine", recovery restores the *newest*
    generation even when the storage fault injector just corrupted it —
    silently resurrecting tampered or truncated state instead of falling
    back to an older verified generation (or failing closed). The
    recovery-integrity invariant compares the restored generation
    against the injector's ground-truth damage report at the first
    post-restart event and fails the run there.
    """
    from ..persist.recovery import RecoveryManager

    def factory(original):
        def _verify(self, snapshot):
            return None  # every generation "verifies clean"

        return _verify

    return _patched(RecoveryManager, "_verify", factory)


MUTATIONS: Dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in (
        Mutation(
            name="skip-batch-dedupe",
            description="uploads bypass the batch_id dedup ledger",
            expected_invariant="ledger-idempotency",
            patch=_skip_batch_dedupe,
        ),
        Mutation(
            name="leak-completed-lease",
            description="completing a task no longer releases its lease",
            expected_invariant="lease-exclusivity",
            patch=_leak_completed_lease,
        ),
        Mutation(
            name="skip-map-dirty-marking",
            description="incremental map engine stops dirtying changed columns",
            expected_invariant="map-oracle-exactness",
            patch=_skip_map_dirty_marking,
        ),
        Mutation(
            name="skip-admission-bound",
            description="backend admits uploads past the bounded SfM queue",
            expected_invariant="admission-bound",
            patch=_skip_admission_bound,
            probe=lambda: overload_probe(),
        ),
        Mutation(
            name="skip-digest-verify",
            description="recovery restores snapshots without seal verification",
            expected_invariant="recovery-integrity",
            patch=_skip_digest_verify,
            probe=lambda: storage_probe(),
        ),
    )
}


def mutation_probe():
    """A scenario crafted to exercise every mutation's trigger path.

    Random scenarios rarely produce a *post-completion* duplicate upload
    (the callback ACK cannot be lost, and link-duplicated copies arrive
    while the original is still processing), so ``skip-batch-dedupe``
    would survive most sampled campaigns. This scenario forces the
    trigger deterministically: ``jitter_s`` far above ``rto_initial_s``
    makes the upload RTO fire before the (jittered) ACK, so the client
    retransmits a batch the server has already completed — the dedup
    ledger's core case. Single client + lossless delivery keep the rest
    of the run boring; completed tasks and processed batches exercise
    the lease-release and map-update paths the other mutations break.

    Mutation-mode fuzzing runs this as campaign 0.
    """
    from .scenario import Scenario

    return Scenario(
        seed=3,
        venue_seed=11,
        venue_width_m=8.0,
        venue_depth_m=7.0,
        glass_walls=1,
        n_furniture=1,
        n_hotspots=2,
        n_clients=1,
        jitter_s=6.0,
        rto_initial_s=2.0,
        until_s=6000.0,
        checkpoint_every=2,
    )


def overload_probe():
    """A scenario crafted to saturate a bounded SfM lane.

    Random scenarios with a bounded pool usually also draw small crowds
    and a serial task stream, so the admission queue rarely reaches its
    bound and ``skip-admission-bound`` could survive a sampled campaign.
    This scenario forces saturation deterministically: one worker with a
    zero-length admission queue, three clients fed from a parallel task
    stream (``max_tasks=3``), lossless links so every upload arrives.
    Any two concurrent uploads overfill the lane — the healthy backend
    sheds the second; the mutated backend queues it past the bound,
    which the admission-bound invariant fails on arrival.

    Mutation-mode fuzzing for ``skip-admission-bound`` runs this as
    campaign 0.
    """
    from .scenario import Scenario

    return Scenario(
        seed=4,
        venue_seed=11,
        venue_width_m=8.0,
        venue_depth_m=7.0,
        glass_walls=1,
        n_furniture=1,
        n_hotspots=2,
        n_clients=3,
        max_tasks=3,
        sfm_workers=1,
        sfm_queue_limit=0,
        until_s=6000.0,
        checkpoint_every=2,
    )


def storage_probe():
    """A scenario crafted to crash onto damaged storage media.

    Random scenarios arm the storage axes rarely and dilute them with
    partial probabilities, so ``skip-digest-verify`` could survive a
    sampled campaign whose damage happened to miss the restored
    generation. This scenario forces the trigger deterministically:
    ``snapshot_corruption=1.0`` damages **every** retained generation at
    the crash, so the healthy ladder must quarantine them all and fail
    closed (an ``ok`` fail-closed outcome), while the mutated ladder
    restores the newest damaged generation — which the
    recovery-integrity invariant fails against the injector's ground
    truth at the first post-restart event. ``snapshot_every=1`` builds
    several generations before the crash; a single lossless client keeps
    the rest of the run boring.

    Mutation-mode fuzzing for ``skip-digest-verify`` runs this as
    campaign 0.
    """
    from .scenario import Scenario

    return Scenario(
        seed=5,
        venue_seed=11,
        venue_width_m=8.0,
        venue_depth_m=7.0,
        glass_walls=1,
        n_furniture=1,
        n_hotspots=2,
        n_clients=1,
        backend_crashes=((900.0, 30.0),),
        persist=True,
        snapshot_every=1,
        snapshot_retain=3,
        snapshot_corruption=1.0,
        until_s=6000.0,
        checkpoint_every=2,
    )


@contextlib.contextmanager
def apply_mutation(name: Optional[str]) -> Iterator[None]:
    """Context manager applying the named mutation (no-op for ``None``)."""
    if name is None:
        yield
        return
    if name not in MUTATIONS:
        raise KeyError(
            f"unknown mutation {name!r}; available: {sorted(MUTATIONS)}"
        )
    with MUTATIONS[name].patch():
        yield
