"""Algorithm 4: findUnvisited — flood-fill search for uncovered areas.

    "We start at a cell in a matrix and search for a closest unvisited cell
    by recursively checking four neighbouring cells (up, down, left,
    right). We consider a cell unvisited if it does not contain any
    obstacles and is covered by less than COVERED_VIEW_TOLERANCE camera
    views. Once we find an unvisited cell, we recursively check unvisited
    neighbouring cells until we find enough cells to cover an area defined
    by MIN_AREA_SIZE. We take a center point of the discovered unvisited
    area and convert it to a 3D position."

The outer search runs breadth-first from the initial position so nearer
unvisited areas are found first, matching "search for a closest unvisited
cell".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TaskGenerationError
from ..geometry import Vec2
from ..mapping.grid import Grid2D

_NEIGHBOURS = ((1, 0), (-1, 0), (0, 1), (0, -1))


@dataclass(frozen=True)
class UnvisitedArea:
    """One connected region of under-covered, obstacle-free cells."""

    cells: Tuple[Tuple[int, int], ...]
    center_cell: Tuple[int, int]
    center_world: Vec2

    @property
    def n_cells(self) -> int:
        return len(self.cells)


def find_unvisited(
    obstacles: Grid2D,
    visibility: Grid2D,
    start_world: Vec2,
    max_areas: int,
    covered_view_tolerance: int = 3,
    min_area_cells: int = 100,
    site_mask: Optional[np.ndarray] = None,
    expansion_cap_cells: Optional[int] = None,
) -> List[UnvisitedArea]:
    """Find up to ``max_areas`` unvisited areas, nearest-first.

    ``site_mask`` restricts the search to cells inside the deployment
    site: the backend's matrix covers the venue being mapped, so space
    beyond the site outline (e.g. seen through glass walls) is never
    "unvisited". Pass None to search the whole grid.
    """
    if obstacles.spec != visibility.spec:
        raise TaskGenerationError("maps on different grid specs")
    if max_areas < 1:
        return []
    spec = obstacles.spec
    start = spec.cell_of(start_world)
    if start is None:
        raise TaskGenerationError(f"start position {start_world} outside the grid")

    obstacle = obstacles.nonzero_mask()
    views = visibility.data
    unvisited = (~obstacle) & (views < covered_view_tolerance)
    if site_mask is not None:
        if site_mask.shape != unvisited.shape:
            raise TaskGenerationError("site mask on a different grid")
        unvisited &= site_mask
    checked = np.zeros(spec.shape, dtype=bool)

    cap = expansion_cap_cells if expansion_cap_cells else min_area_cells
    found: List[UnvisitedArea] = []
    queue: deque = deque([start])
    queued = np.zeros(spec.shape, dtype=bool)
    queued[start] = True
    while queue and len(found) < max_areas:
        q = queue.popleft()
        if not checked[q]:
            if unvisited[q]:
                area_cells = _expand(q, unvisited, checked, cap)
                if len(area_cells) >= min_area_cells:
                    found.append(_make_area(area_cells, spec))
            checked[q] = True
        for dr, dc in _NEIGHBOURS:
            nr, nc = q[0] + dr, q[1] + dc
            if (
                spec.in_bounds(nr, nc)
                and not queued[nr, nc]
                and not obstacle[nr, nc]
            ):
                queued[nr, nc] = True
                queue.append((nr, nc))
    return found


def _expand(
    seed: Tuple[int, int],
    unvisited: np.ndarray,
    checked: np.ndarray,
    min_area_cells: int,
) -> List[Tuple[int, int]]:
    """Grow the unvisited region around ``seed`` up to MIN_AREA_SIZE.

    Algorithm 4 expands "until we find enough cells to cover an area
    defined by MIN_AREA_SIZE" — the expansion stops once the target size
    is reached, so task locations stay *adjacent to the already-mapped
    area* (a 360° capture there overlaps the existing model and can
    register). Breadth-first growth keeps the patch compact around the
    seed. Marks grown cells as checked (updateCheckedCells).
    """
    n_rows, n_cols = unvisited.shape
    region: List[Tuple[int, int]] = []
    queue: deque = deque([seed])
    checked[seed] = True
    while queue and len(region) < min_area_cells:
        cell = queue.popleft()
        region.append(cell)
        for dr, dc in _NEIGHBOURS:
            nr, nc = cell[0] + dr, cell[1] + dc
            if 0 <= nr < n_rows and 0 <= nc < n_cols:
                if unvisited[nr, nc] and not checked[nr, nc]:
                    checked[nr, nc] = True
                    queue.append((nr, nc))
    return region


def unvisited_region_at(
    obstacles: Grid2D,
    visibility: Grid2D,
    location: Vec2,
    covered_view_tolerance: int = 3,
    cap_cells: int = 400,
    site_mask: Optional[np.ndarray] = None,
) -> List[Tuple[int, int]]:
    """The unvisited region containing ``location``, up to ``cap_cells``.

    Used by the backend's write-off guard: when a location keeps failing
    (photos register, coverage never grows, annotation exhausted), the
    region around it is excluded from future task generation. Returns an
    empty list when the location's cell is covered or an obstacle.
    """
    spec = obstacles.spec
    seed = spec.cell_of(location)
    if seed is None:
        return []
    obstacle = obstacles.nonzero_mask()
    unvisited = (~obstacle) & (visibility.data < covered_view_tolerance)
    if site_mask is not None:
        unvisited &= site_mask
    if not unvisited[seed]:
        # Fall back to the nearest unvisited cell within a small window, so
        # a slightly-off task location still anchors its failing region.
        seed = _nearest_unvisited(seed, unvisited, radius=6)
        if seed is None:
            return []
    checked = np.zeros(spec.shape, dtype=bool)
    return _expand(seed, unvisited, checked, cap_cells)


def _nearest_unvisited(
    seed: Tuple[int, int], unvisited: np.ndarray, radius: int
) -> Optional[Tuple[int, int]]:
    n_rows, n_cols = unvisited.shape
    best = None
    best_d2 = None
    for dr in range(-radius, radius + 1):
        for dc in range(-radius, radius + 1):
            r, c = seed[0] + dr, seed[1] + dc
            if 0 <= r < n_rows and 0 <= c < n_cols and unvisited[r, c]:
                d2 = dr * dr + dc * dc
                if best_d2 is None or d2 < best_d2:
                    best, best_d2 = (r, c), d2
    return best


def _make_area(cells: List[Tuple[int, int]], spec) -> UnvisitedArea:
    arr = np.array(cells)
    mean_r, mean_c = arr[:, 0].mean(), arr[:, 1].mean()
    # Use the region cell closest to the centroid so the task location is
    # always inside the region even for L-shaped areas.
    d2 = (arr[:, 0] - mean_r) ** 2 + (arr[:, 1] - mean_c) ** 2
    center = tuple(int(v) for v in arr[int(np.argmin(d2))])
    return UnvisitedArea(
        cells=tuple((int(r), int(c)) for r, c in cells),
        center_cell=center,  # type: ignore[arg-type]
        center_world=spec.center_of(*center),
    )
