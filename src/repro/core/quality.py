"""checkPhotoQuality (Algorithm 1, line 14).

"It uses variation of the Laplacian to calculate the blurriness of the
photos, as blurry photos cannot be used for 3D reconstruction. High
blurriness indicates poor quality input, when e.g. the camera was of a low
quality or the worker did not manage to capture steady pictures."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..camera.photo import Photo
from ..errors import TaskGenerationError


@dataclass(frozen=True)
class QualityReport:
    """Sharpness statistics of one uploaded batch."""

    n_photos: int
    mean_sharpness: float
    min_sharpness: float
    n_blurry: int
    threshold: float

    @property
    def is_low_quality(self) -> bool:
        """Batch verdict: the *typical* photo is below the threshold."""
        return self.mean_sharpness <= self.threshold

    @property
    def blurry_fraction(self) -> float:
        return self.n_blurry / self.n_photos if self.n_photos else 0.0


def check_photo_quality(photos: Sequence[Photo], threshold: float) -> QualityReport:
    """Score a batch with variance-of-Laplacian (higher = sharper)."""
    if not photos:
        raise TaskGenerationError("cannot score an empty photo batch")
    scores = [p.sharpness() for p in photos]
    return QualityReport(
        n_photos=len(photos),
        mean_sharpness=sum(scores) / len(scores),
        min_sharpness=min(scores),
        n_blurry=sum(1 for s in scores if s <= threshold),
        threshold=threshold,
    )


def filter_blurry(photos: Sequence[Photo], threshold: float) -> List[Photo]:
    """Drop photos below the sharpness threshold.

    Used by the unguided-participatory dataset preparation: "we filtered
    out blurry ones with variation of the Laplacian, since this task can be
    done automatically" (Sec. V-B2).
    """
    return [p for p in photos if p.sharpness() > threshold]


def sharpest(photos: Sequence[Photo]) -> Photo:
    """The sharpest photo of a window (video frame extraction helper)."""
    if not photos:
        raise TaskGenerationError("cannot pick sharpest of an empty window")
    return max(photos, key=lambda p: p.sharpness())
