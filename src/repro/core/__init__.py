"""SnapTask core: task generation, quality checks, the backend pipeline."""

from .pipeline import BatchOutcome, SnapTaskPipeline
from .quality import QualityReport, check_photo_quality, filter_blurry, sharpest
from .tasks import Task, TaskFactory, TaskKind, TaskStatus
from .unvisited import UnvisitedArea, find_unvisited

__all__ = [
    "BatchOutcome",
    "QualityReport",
    "SnapTaskPipeline",
    "Task",
    "TaskFactory",
    "TaskKind",
    "TaskStatus",
    "UnvisitedArea",
    "check_photo_quality",
    "filter_blurry",
    "find_unvisited",
    "sharpest",
]
