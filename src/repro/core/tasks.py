"""Crowdsourcing task objects.

"We identify 2 different tasks: to collect images and to annotate
featureless surfaces" (Sec. III). Tasks carry the floor location the
participant must reach; annotation tasks additionally go through the
online labelling tool after the photos are taken.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from ..geometry import Vec2


class TaskKind(enum.Enum):
    PHOTO_COLLECTION = "photo_collection"
    ANNOTATION = "annotation"


class TaskStatus(enum.Enum):
    PENDING = "pending"
    ASSIGNED = "assigned"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass(frozen=True)
class Task:
    """One crowdsourcing task issued by the backend."""

    task_id: int
    kind: TaskKind
    location: Vec2
    created_iteration: int
    status: TaskStatus = TaskStatus.PENDING
    reissue_of: Optional[int] = None  # task id this re-attempts, if any

    def assigned(self) -> "Task":
        return replace(self, status=TaskStatus.ASSIGNED)

    def completed(self) -> "Task":
        return replace(self, status=TaskStatus.COMPLETED)

    def failed(self) -> "Task":
        return replace(self, status=TaskStatus.FAILED)

    @property
    def is_annotation(self) -> bool:
        return self.kind == TaskKind.ANNOTATION


class TaskFactory:
    """Hands out tasks with unique consecutive ids."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def photo_task(
        self, location: Vec2, iteration: int, reissue_of: Optional[int] = None
    ) -> Task:
        return Task(
            task_id=next(self._counter),
            kind=TaskKind.PHOTO_COLLECTION,
            location=location,
            created_iteration=iteration,
            reissue_of=reissue_of,
        )

    def annotation_task(
        self, location: Vec2, iteration: int, reissue_of: Optional[int] = None
    ) -> Task:
        return Task(
            task_id=next(self._counter),
            kind=TaskKind.ANNOTATION,
            location=location,
            created_iteration=iteration,
            reissue_of=reissue_of,
        )
