"""Algorithm 1: the SnapTask backend processing pipeline.

    Input: set of photos P, existing model M, current model coverage C,
           task location L
    Output: new model Mf, obstacles map O, visibility map CV, tasks T

     1: build an SfM model M1 from P and M
     2: Mf <= sorFilter(M1)
     3: O <= calculateObstaclesMap(Mf)
     4: CV <= calculateVisibilityMap(Mf, O)
     5: coverage <= O u CV
     6: if P in Mf and coverage > C:
     7:   areas <= findUnvisited(O, CV, MAX_TASKS)
     8:   T <= (empty if no areas else setLocationNextTasks(areas))
    13: else:
    14:   quality <= checkPhotoQuality(P)
    15:   if quality <= LOW_QUALITY:       T <= generateTask(L)
    17:   else if triedAtLocation(L) > TT: T <= generateAnnotationTask(L)

This module keeps the pipeline state across iterations: the incremental
SfM engine, the current maps, the scalar coverage C, and the per-location
attempt counters that drive annotation-task escalation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..camera.photo import Photo
from ..config import SnapTaskConfig
from ..errors import TaskGenerationError
from ..geometry import Vec2, Vec3
from ..mapping import (
    CoverageMaps,
    GridSpec,
    IncrementalMapEngine,
    MapUpdate,
)
from ..obs import NULL_TELEMETRY, Telemetry
from ..obs.wallclock import wall_now_s
from ..sfm import (
    IncrementalSfm,
    IncrementalSorFilter,
    RegistrationReport,
    SfmModel,
    sor_filter,
)
from ..simkit.rng import RngStream
from ..venue.features import FeatureWorld
import numpy as np

from .quality import QualityReport, check_photo_quality
from .tasks import Task, TaskFactory, TaskKind
from .unvisited import UnvisitedArea, find_unvisited, unvisited_region_at


@dataclass(frozen=True)
class BatchOutcome:
    """Everything Algorithm 1 returns for one processed batch."""

    iteration: int
    report: RegistrationReport
    model: SfmModel
    maps: CoverageMaps
    coverage_cells: int
    previous_coverage_cells: int
    photos_added: bool
    quality: Optional[QualityReport]
    new_tasks: Tuple[Task, ...]
    unvisited_areas: Tuple[UnvisitedArea, ...]
    venue_covered: bool
    map_update: Optional[MapUpdate] = None

    @property
    def coverage_increased(self) -> bool:
        return self.coverage_cells > self.previous_coverage_cells


class SnapTaskPipeline:
    """Stateful backend: incremental model + maps + task generation."""

    def __init__(
        self,
        world: FeatureWorld,
        config: SnapTaskConfig,
        spec: GridSpec,
        initial_position: Vec2,
        rng: RngStream,
        site_mask=None,
        full_rebuild: bool = False,
        telemetry: Optional[Telemetry] = None,
    ):
        self._world = world
        self._config = config
        self._spec = spec
        self._initial_position = initial_position
        self._site_mask = site_mask
        obs = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tracer = obs.tracer
        metrics = obs.metrics
        # Wall-time phase histograms (seconds); BENCH_pipeline.json is
        # derived from exactly these names (repro.obs.bench.PHASE_PREFIX).
        self._obs_on = bool(self._tracer.enabled or metrics.enabled)
        self._h_phase = {
            name: metrics.histogram(f"repro.pipeline.phase.{name}")
            for name in ("registration", "map_merge", "unvisited", "task_gen", "total")
        }
        self._m_batches = metrics.counter("repro.pipeline.batches")
        self._m_tasks_generated = metrics.counter("repro.pipeline.tasks_generated")
        # ``full_rebuild=True`` is the escape hatch that forces from-scratch
        # recomputation on every batch, through all three incremental
        # subsystems: the columnar SfM engine falls back to full pending
        # rescans + eager snapshots, the SOR filter to a fresh cKDTree
        # query, and the map engine to Algorithm 2 + 3 rebuilds.
        self._full_rebuild = full_rebuild
        self._sfm = IncrementalSfm(
            world, config.sfm, rng.child("sfm"), telemetry=obs,
            full_rebuild=full_rebuild,
        )
        # Incremental SOR (Algorithm 1 line 2): per-point kNN caches keyed
        # to the growing reconstruction; bit-identical to ``sor_filter``.
        self._sor = IncrementalSorFilter(
            config.sfm.sor_neighbors, config.sfm.sor_std_ratio, telemetry=obs
        )
        # Incremental map maintenance (DESIGN.md §5): obstacles, visibility
        # and coverage are updated by delta instead of rebuilt per batch.
        self._map_engine = IncrementalMapEngine(
            spec,
            obstacle_threshold=config.tasks.obstacle_threshold,
            max_range_m=config.sfm.visibility_range_m,
            site_mask=site_mask,
            telemetry=obs,
        )
        self._factory = TaskFactory()
        self._iteration = 0
        self._coverage_cells = 0
        self._maps: Optional[CoverageMaps] = None
        self._attempts: Dict[Tuple[int, int], int] = {}
        self._annotated_keys: Dict[Tuple[int, int], int] = {}
        self._written_off = np.zeros(spec.shape, dtype=bool)
        self._history: List[BatchOutcome] = []
        self._venue_covered = False
        self._grew_tasks: set = set()

    # -- state access -----------------------------------------------------------

    @property
    def config(self) -> SnapTaskConfig:
        return self._config

    @property
    def site_mask(self):
        """The venue region mask coverage is counted against (or None)."""
        return self._site_mask

    @property
    def spec(self) -> GridSpec:
        return self._spec

    @property
    def iteration(self) -> int:
        return self._iteration

    @property
    def coverage_cells(self) -> int:
        return self._coverage_cells

    @property
    def maps(self) -> CoverageMaps:
        if self._maps is None:
            raise TaskGenerationError("pipeline has not processed any batch yet")
        return self._maps

    @property
    def history(self) -> List[BatchOutcome]:
        return list(self._history)

    @contextmanager
    def compact_history(self):
        """Temporarily truncate history to the latest outcome.

        Durability snapshots deep-copy the pipeline; only ``history[-1]``
        is ever consulted afterwards (the oracle checkpoints), so the
        checkpoint need not copy every past batch outcome. The full list
        is restored on exit — the live pipeline is never perturbed.
        """
        full = self._history
        self._history = full[-1:]
        try:
            yield self
        finally:
            self._history = full

    @property
    def venue_covered(self) -> bool:
        return self._venue_covered

    @property
    def sfm(self) -> IncrementalSfm:
        return self._sfm

    @property
    def map_engine(self) -> IncrementalMapEngine:
        return self._map_engine

    @property
    def full_rebuild(self) -> bool:
        """True when the from-scratch escape hatch is active."""
        return self._full_rebuild

    def model(self) -> SfmModel:
        return self._sfm.model()

    def register_artificial_features(self, ids, positions: Sequence[Vec3]) -> None:
        """Expose Algorithm 6's artificial-feature registration."""
        self._sfm.register_artificial_features(ids, positions)

    # -- Algorithm 1 -------------------------------------------------------------

    def process_batch(
        self, photos: Sequence[Photo], task: Optional[Task] = None
    ) -> BatchOutcome:
        """Run one Algorithm-1 iteration over an uploaded photo batch."""
        photos = list(photos)
        if not photos:
            raise TaskGenerationError("empty photo batch")
        self._iteration += 1
        previous_coverage = self._coverage_cells
        obs_on = self._obs_on
        t_total = wall_now_s() if obs_on else 0.0

        t0 = t_total
        report = self._sfm.add_photos(photos)  # line 1
        model = self._sfm.model()
        if self._full_rebuild:  # line 2 (from-scratch oracle)
            filtered_cloud = sor_filter(
                model.cloud,
                self._config.sfm.sor_neighbors,
                self._config.sfm.sor_std_ratio,
            )
        else:  # line 2, amortized over the growing cloud
            filtered_cloud = self._sor.filter(model.cloud)
        if obs_on:
            self._phase("registration", t0, photos=len(photos))
            t0 = wall_now_s()
        # Lines 3-5 via the incremental engine: the SfM deltas (new points
        # + new cameras, see ``report``) plus SOR churn dirty only a small
        # region of the maps; everything else is reused from the previous
        # iteration. Cell-exactness vs calculate_obstacles_map /
        # calculate_visibility_map is enforced by the differential oracle
        # in tests/test_incremental_equivalence.py.
        map_update = self._map_engine.update(
            model, filtered_cloud, full_rebuild=self._full_rebuild
        )
        obstacles = map_update.maps.obstacles  # line 3
        visibility = map_update.maps.visibility  # line 4
        maps = map_update.maps
        coverage = map_update.covered_cells  # line 5
        if obs_on:
            self._phase(
                "map_merge", t0, dirty_cells=map_update.dirty_obstacle_cells
            )
            t0 = wall_now_s()

        photos_added = report.any_registered
        quality: Optional[QualityReport] = None
        tasks: List[Task] = []
        areas: Tuple[UnvisitedArea, ...] = ()

        grew_coverage = (
            coverage > previous_coverage + self._config.tasks.min_growth_cells
        )
        # "the photos ... did not contribute in growing the 3D model"
        # (Sec. IV-A): photos that only re-observe known structure add no
        # new points — the signature of facing a featureless surface.
        grew_model = report.new_points >= self._config.tasks.min_new_points
        if photos_added and grew_coverage and grew_model:  # line 6
            found, covered = self._find_next_areas(obstacles, visibility)
            areas = tuple(found)
            if covered:  # line 8-9: venue fully covered
                self._venue_covered = True
            else:  # line 11
                tasks = [
                    self._factory.photo_task(area.center_world, self._iteration)
                    for area in found
                ]
            if task is not None:
                self._attempts.pop(self._location_key(task.location), None)
                self._grew_tasks.add(task.task_id)
        elif task is not None and task.task_id in self._grew_tasks:
            # A streamed capture already grew the model and received its
            # follow-up task from an earlier sub-batch; trailing sub-batches
            # of the same capture are redundant views, not failures.
            quality = check_photo_quality(photos, self._config.tasks.low_quality_laplacian)
        else:  # lines 13-20
            quality = check_photo_quality(photos, self._config.tasks.low_quality_laplacian)
            if task is not None:
                location = task.location
                key = self._location_key(location)
                if task.kind == TaskKind.ANNOTATION:
                    # A fruitless annotation answers the question the photo
                    # attempts were asking; skip straight to escalation.
                    self._attempts[key] = max(
                        self._attempts.get(key, 0),
                        self._config.tasks.annotation_trigger_attempts,
                    )
                if quality.is_low_quality:  # line 15-16: reassign same task
                    tasks = [
                        self._factory.photo_task(
                            location, self._iteration, reissue_of=task.task_id
                        )
                    ]
                else:
                    attempts = self._bump_attempts(location)
                    if attempts <= self._config.tasks.annotation_trigger_attempts:
                        tasks = [
                            self._factory.photo_task(
                                location, self._iteration, reissue_of=task.task_id
                            )
                        ]
                    elif (
                        self._annotated_keys.get(key, 0)
                        < self._config.tasks.max_annotations_per_location
                    ):
                        self._annotated_keys[key] = self._annotated_keys.get(key, 0) + 1
                        self._attempts.pop(key, None)  # line 17-18
                        tasks = [
                            self._factory.annotation_task(
                                location, self._iteration, reissue_of=task.task_id
                            )
                        ]
                    else:
                        # Termination guard (extension; see DESIGN.md): both
                        # repeated photo collection and annotation failed to
                        # grow the model here, so the surrounding unvisited
                        # pocket is unmappable (e.g. the inside of a solid
                        # obstacle). Write it off and move on.
                        self._write_off(obstacles, visibility, location)
                        self._attempts.pop(key, None)
                        found, covered = self._find_next_areas(obstacles, visibility)
                        areas = tuple(found)
                        if covered:
                            self._venue_covered = True
                        else:
                            tasks = [
                                self._factory.photo_task(
                                    area.center_world, self._iteration
                                )
                                for area in found
                            ]

        if obs_on:
            # task_gen covers the whole line 6-20 decision (the nested
            # flood-fill time is also reported separately as "unvisited").
            self._phase("task_gen", t0, tasks=len(tasks))
            self._phase("total", t_total)
            self._m_batches.inc()
            self._m_tasks_generated.inc(len(tasks))
        self._coverage_cells = coverage
        self._maps = maps
        outcome = BatchOutcome(
            iteration=self._iteration,
            report=report,
            model=model.with_cloud(filtered_cloud),
            maps=maps,
            coverage_cells=coverage,
            previous_coverage_cells=previous_coverage,
            photos_added=photos_added,
            quality=quality,
            new_tasks=tuple(tasks),
            unvisited_areas=areas,
            venue_covered=self._venue_covered,
            map_update=map_update,
        )
        self._history.append(outcome)
        return outcome

    def _phase(self, name: str, t0: float, **attrs) -> None:
        """Close one wall-time phase: histogram record + instant span."""
        dt = wall_now_s() - t0
        self._h_phase[name].record(dt)
        if self._tracer.enabled:
            self._tracer.instant(
                f"pipeline.{name}",
                category="pipeline",
                iteration=self._iteration,
                wall_phase_ms=dt * 1e3,
                **attrs,
            )

    def _find_next_areas(self, obstacles, visibility):
        """findUnvisited with the site and write-off masks applied.

        Returns (areas, venue_covered).
        """
        t0 = wall_now_s() if self._obs_on else 0.0
        mask = ~self._written_off
        if self._site_mask is not None:
            mask = mask & self._site_mask
        found = find_unvisited(  # line 7
            obstacles,
            visibility,
            self._initial_position,
            self._config.tasks.max_tasks,
            self._config.tasks.covered_view_tolerance,
            self._config.min_area_cells,
            site_mask=mask,
            expansion_cap_cells=self._config.min_area_cells
            * self._config.tasks.area_expansion_factor,
        )
        if self._obs_on:
            self._phase("unvisited", t0, areas=len(found))
        return found, not found

    def _write_off(self, obstacles, visibility, location: Vec2) -> None:
        region = unvisited_region_at(
            obstacles,
            visibility,
            location,
            self._config.tasks.covered_view_tolerance,
            cap_cells=4 * self._config.min_area_cells,
            site_mask=self._site_mask,
        )
        for cell in region:
            self._written_off[cell] = True

    def attempts_at(self, location: Vec2) -> int:
        """triedAtLocation(L) — failed good-quality attempts near L."""
        return self._attempts.get(self._location_key(location), 0)

    # -- internals -----------------------------------------------------------------

    def _bump_attempts(self, location: Vec2) -> int:
        key = self._location_key(location)
        self._attempts[key] = self._attempts.get(key, 0) + 1
        return self._attempts[key]

    @staticmethod
    def _location_key(location: Vec2) -> Tuple[int, int]:
        """Locations within ~0.5 m share one attempt counter."""
        return (int(round(location.x * 2)), int(round(location.y * 2)))
