"""``BENCH_pipeline.json``: machine-readable per-phase pipeline timings.

The benchmark harness historically wrote human-readable ``.txt`` rows to
``benchmarks/results/``; this writer adds the machine-readable artefact
the perf trajectory accumulates over: one JSON document per run with the
Algorithm-1 phase timings (registration, map merge, unvisited flood-fill,
task generation) pulled from the ``repro.pipeline.phase.*`` histograms,
campaign-level facts, and the full metrics snapshot.

The schema is validated in-repo (:func:`validate_bench_pipeline`) — no
jsonschema dependency — and enforced by CI on every generated document.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from ..errors import ObservabilityError
from .wallclock import utc_now_iso

PathLike = Union[str, pathlib.Path]

BENCH_PIPELINE_SCHEMA = "repro.bench.pipeline/v1"

#: Histogram-name prefix the phase table is derived from.
PHASE_PREFIX = "repro.pipeline.phase."


def _phase_rows(registry) -> Dict[str, dict]:
    phases: Dict[str, dict] = {}
    for name in registry.names():
        if not name.startswith(PHASE_PREFIX):
            continue
        hist = registry.get(name)
        if hist is None or not hasattr(hist, "quantile"):
            continue
        phases[name[len(PHASE_PREFIX):]] = {
            "count": hist.count,
            "total_s": round(hist.total, 9),
            "mean_s": round(hist.mean, 9),
            "p50_s": round(hist.quantile(0.5), 9),
            "max_s": round(hist.max if hist.max is not None else 0.0, 9),
        }
    return phases


def bench_pipeline_document(registry, campaign: Optional[dict] = None) -> dict:
    """Build the ``BENCH_pipeline.json`` document from a live registry."""
    return {
        "schema": BENCH_PIPELINE_SCHEMA,
        "generated_at": utc_now_iso(),
        "campaign": dict(campaign or {}),
        "phases": _phase_rows(registry),
        "metrics": registry.snapshot(),
    }


def write_bench_pipeline(
    path: PathLike, registry, campaign: Optional[dict] = None
) -> pathlib.Path:
    doc = bench_pipeline_document(registry, campaign)
    assert_valid_bench_pipeline(doc)
    path = pathlib.Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


_PHASE_FIELDS = ("count", "total_s", "mean_s", "p50_s", "max_s")


def validate_bench_pipeline(doc) -> List[str]:
    """Return a list of schema violations (empty == valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != BENCH_PIPELINE_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_PIPELINE_SCHEMA!r}"
        )
    if not isinstance(doc.get("generated_at"), str):
        problems.append("generated_at missing or not a string")
    if not isinstance(doc.get("campaign"), dict):
        problems.append("campaign missing or not an object")
    phases = doc.get("phases")
    if not isinstance(phases, dict):
        problems.append("phases missing or not an object")
    else:
        for phase, row in phases.items():
            if not isinstance(row, dict):
                problems.append(f"phase {phase!r} is not an object")
                continue
            for field in _PHASE_FIELDS:
                value = row.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"phase {phase!r} field {field!r} not numeric")
            count = row.get("count")
            if isinstance(count, (int, float)) and count < 0:
                problems.append(f"phase {phase!r} has negative count")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics missing or not an object")
    else:
        for name, snap in metrics.items():
            if not isinstance(snap, dict) or snap.get("type") not in (
                "counter", "gauge", "histogram",
            ):
                problems.append(f"metric {name!r} has no valid type")
    return problems


def assert_valid_bench_pipeline(doc) -> None:
    problems = validate_bench_pipeline(doc)
    if problems:
        raise ObservabilityError(
            "invalid BENCH_pipeline document: " + "; ".join(problems[:10])
        )


def load_and_validate(path: PathLike) -> dict:
    """CI helper: load ``path``, validate, return the document."""
    doc = json.loads(pathlib.Path(path).read_text())
    assert_valid_bench_pipeline(doc)
    return doc


# ---------------------------------------------------------------------------
# BENCH_sfm.json — scratch-vs-incremental SfM registration-phase timings
# ---------------------------------------------------------------------------

BENCH_SFM_SCHEMA = "repro.bench.sfm/v1"

_SFM_BATCH_FIELDS = (
    "batch",
    "points",
    "cameras",
    "pending",
    "scratch_ms",
    "incremental_ms",
    "speedup",
)

_SFM_SUMMARY_FIELDS = (
    "late_from_batch",
    "late_batches",
    "late_scratch_ms",
    "late_incremental_ms",
    "late_speedup",
    "target_speedup",
)


def bench_sfm_document(
    batches: List[dict], summary: dict, campaign: Optional[dict] = None
) -> dict:
    """Build the ``BENCH_sfm.json`` document (see ``validate_bench_sfm``)."""
    return {
        "schema": BENCH_SFM_SCHEMA,
        "generated_at": utc_now_iso(),
        "campaign": dict(campaign or {}),
        "batches": [dict(row) for row in batches],
        "summary": dict(summary),
    }


def write_bench_sfm(
    path: PathLike,
    batches: List[dict],
    summary: dict,
    campaign: Optional[dict] = None,
) -> pathlib.Path:
    doc = bench_sfm_document(batches, summary, campaign)
    assert_valid_bench_sfm(doc)
    path = pathlib.Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def validate_bench_sfm(doc) -> List[str]:
    """Return a list of schema violations (empty == valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != BENCH_SFM_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_SFM_SCHEMA!r}"
        )
    if not isinstance(doc.get("generated_at"), str):
        problems.append("generated_at missing or not a string")
    if not isinstance(doc.get("campaign"), dict):
        problems.append("campaign missing or not an object")
    batches = doc.get("batches")
    if not isinstance(batches, list) or not batches:
        problems.append("batches missing, not a list, or empty")
    else:
        for i, row in enumerate(batches):
            if not isinstance(row, dict):
                problems.append(f"batches[{i}] is not an object")
                continue
            for field in _SFM_BATCH_FIELDS:
                value = row.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"batches[{i}] field {field!r} not numeric")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary missing or not an object")
    else:
        for field in _SFM_SUMMARY_FIELDS:
            value = summary.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"summary field {field!r} not numeric")
    return problems


def assert_valid_bench_sfm(doc) -> None:
    problems = validate_bench_sfm(doc)
    if problems:
        raise ObservabilityError(
            "invalid BENCH_sfm document: " + "; ".join(problems[:10])
        )


def load_and_validate_sfm(path: PathLike) -> dict:
    """CI helper: load ``path``, validate as BENCH_sfm, return the document."""
    doc = json.loads(pathlib.Path(path).read_text())
    assert_valid_bench_sfm(doc)
    return doc


# ---------------------------------------------------------------------------
# BENCH_backend.json — SfM-lane overload sweep (workers x queue bound)
# ---------------------------------------------------------------------------

BENCH_BACKEND_SCHEMA = "repro.bench.backend/v1"

#: One row per lane shape. ``workers=0`` encodes the infinite-server
#: model; ``queue_limit=-1`` encodes an unbounded admission queue.
_BACKEND_ROW_FIELDS = (
    "workers",
    "queue_limit",
    "sim_time_s",
    "tasks_completed",
    "photos_uploaded",
    "batches_shed",
    "client_backpressure",
    "queue_wait_s",
    "peak_queue_depth",
    "service_time_s",
)

_BACKEND_SUMMARY_FIELDS = (
    "rows",
    "baseline_tasks_completed",
    "max_queue_wait_s",
    "total_shed",
)


def bench_backend_document(
    rows: List[dict], summary: dict, campaign: Optional[dict] = None
) -> dict:
    """Build the ``BENCH_backend.json`` document (see ``validate_bench_backend``)."""
    return {
        "schema": BENCH_BACKEND_SCHEMA,
        "generated_at": utc_now_iso(),
        "campaign": dict(campaign or {}),
        "rows": [dict(row) for row in rows],
        "summary": dict(summary),
    }


def write_bench_backend(
    path: PathLike,
    rows: List[dict],
    summary: dict,
    campaign: Optional[dict] = None,
) -> pathlib.Path:
    doc = bench_backend_document(rows, summary, campaign)
    assert_valid_bench_backend(doc)
    path = pathlib.Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def validate_bench_backend(doc) -> List[str]:
    """Return a list of schema violations (empty == valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != BENCH_BACKEND_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_BACKEND_SCHEMA!r}"
        )
    if not isinstance(doc.get("generated_at"), str):
        problems.append("generated_at missing or not a string")
    if not isinstance(doc.get("campaign"), dict):
        problems.append("campaign missing or not an object")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows missing, not a list, or empty")
    else:
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"rows[{i}] is not an object")
                continue
            for field in _BACKEND_ROW_FIELDS:
                value = row.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"rows[{i}] field {field!r} not numeric")
            workers = row.get("workers")
            if isinstance(workers, int) and workers < 0:
                problems.append(f"rows[{i}] has negative workers")
            limit = row.get("queue_limit")
            if isinstance(limit, int) and limit < -1:
                problems.append(f"rows[{i}] queue_limit below -1")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary missing or not an object")
    else:
        for field in _BACKEND_SUMMARY_FIELDS:
            value = summary.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"summary field {field!r} not numeric")
    return problems


def assert_valid_bench_backend(doc) -> None:
    problems = validate_bench_backend(doc)
    if problems:
        raise ObservabilityError(
            "invalid BENCH_backend document: " + "; ".join(problems[:10])
        )


def load_and_validate_backend(path: PathLike) -> dict:
    """CI helper: load ``path``, validate as BENCH_backend, return the document."""
    doc = json.loads(pathlib.Path(path).read_text())
    assert_valid_bench_backend(doc)
    return doc


# ---------------------------------------------------------------------------
# BENCH_dst.json — parallel campaign-executor speedup (serial vs --jobs N)
# ---------------------------------------------------------------------------

BENCH_DST_SCHEMA = "repro.bench.dst/v1"

#: One row per executor run (``mode`` is "serial" or "parallel").
_DST_RUN_FIELDS = (
    "jobs",
    "wall_s",
    "campaigns",
    "passed",
    "failed",
    "checks_run",
)

_DST_SUMMARY_FIELDS = (
    "campaigns",
    "jobs",
    "cpu_count",
    "serial_wall_s",
    "parallel_wall_s",
    "wall_speedup",
    "total_busy_s",
    "critical_path_s",
    "critical_path_speedup",
    "target_speedup",
)


def bench_dst_document(
    runs: List[dict], summary: dict, campaign: Optional[dict] = None
) -> dict:
    """Build the ``BENCH_dst.json`` document (see ``validate_bench_dst``).

    ``summary.wall_speedup`` is the *measured* serial/parallel wall
    ratio on the generating host; ``summary.critical_path_speedup``
    (total worker busy seconds / slowest worker lane) is the speedup the
    sharding achieves independent of how many physical cores that host
    had — the two coincide on an unloaded machine with >= ``jobs``
    cores. ``summary.cpu_count`` records which regime the document was
    generated under; ``summary.byte_identical`` asserts the serial and
    parallel runs produced identical summaries.
    """
    return {
        "schema": BENCH_DST_SCHEMA,
        "generated_at": utc_now_iso(),
        "campaign": dict(campaign or {}),
        "runs": [dict(row) for row in runs],
        "summary": dict(summary),
    }


def write_bench_dst(
    path: PathLike,
    runs: List[dict],
    summary: dict,
    campaign: Optional[dict] = None,
) -> pathlib.Path:
    doc = bench_dst_document(runs, summary, campaign)
    assert_valid_bench_dst(doc)
    path = pathlib.Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def validate_bench_dst(doc) -> List[str]:
    """Return a list of schema violations (empty == valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != BENCH_DST_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_DST_SCHEMA!r}"
        )
    if not isinstance(doc.get("generated_at"), str):
        problems.append("generated_at missing or not a string")
    if not isinstance(doc.get("campaign"), dict):
        problems.append("campaign missing or not an object")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs missing, not a list, or empty")
    else:
        for i, row in enumerate(runs):
            if not isinstance(row, dict):
                problems.append(f"runs[{i}] is not an object")
                continue
            if row.get("mode") not in ("serial", "parallel"):
                problems.append(f"runs[{i}] mode must be 'serial' or 'parallel'")
            for field in _DST_RUN_FIELDS:
                value = row.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"runs[{i}] field {field!r} not numeric")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary missing or not an object")
    else:
        for field in _DST_SUMMARY_FIELDS:
            value = summary.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"summary field {field!r} not numeric")
        if not isinstance(summary.get("byte_identical"), bool):
            problems.append("summary field 'byte_identical' not a bool")
        speedup = summary.get("wall_speedup")
        if isinstance(speedup, (int, float)) and speedup <= 0:
            problems.append("summary wall_speedup must be positive")
    return problems


def assert_valid_bench_dst(doc) -> None:
    problems = validate_bench_dst(doc)
    if problems:
        raise ObservabilityError(
            "invalid BENCH_dst document: " + "; ".join(problems[:10])
        )


def load_and_validate_dst(path: PathLike) -> dict:
    """CI helper: load ``path``, validate as BENCH_dst, return the document."""
    doc = json.loads(pathlib.Path(path).read_text())
    assert_valid_bench_dst(doc)
    return doc


# ---------------------------------------------------------------------------
# BENCH_recovery.json — recovery-ladder cost vs fallback depth
# ---------------------------------------------------------------------------

BENCH_RECOVERY_SCHEMA = "repro.bench.recovery/v1"

#: One row per forced fallback depth (``depth`` = newest generations
#: damaged before recovery; 0 = the clean happy path).
_RECOVERY_ROW_FIELDS = (
    "depth",
    "snapshot_seq",
    "generations_tried",
    "quarantined",
    "quarantined_bytes",
    "replayed_records",
    "wall_s",
)

_RECOVERY_SUMMARY_FIELDS = (
    "generations",
    "wal_records",
    "newest_replayed_records",
    "genesis_replayed_records",
    "newest_wall_s",
    "genesis_wall_s",
    "replay_amplification",
    "wall_amplification",
)


def bench_recovery_document(
    rows: List[dict], summary: dict, campaign: Optional[dict] = None
) -> dict:
    """Build the ``BENCH_recovery.json`` document.

    ``summary.replay_amplification`` is the genesis-rung replay length
    over the newest-rung replay length — the price (in replayed
    records) of falling all the way down the ladder;
    ``summary.wall_amplification`` is the same ratio in wall seconds.
    ``summary.digest_identical`` asserts every rung recovered the same
    logical state digest — the ladder trades replay work for nothing
    else.
    """
    return {
        "schema": BENCH_RECOVERY_SCHEMA,
        "generated_at": utc_now_iso(),
        "campaign": dict(campaign or {}),
        "rows": [dict(row) for row in rows],
        "summary": dict(summary),
    }


def write_bench_recovery(
    path: PathLike,
    rows: List[dict],
    summary: dict,
    campaign: Optional[dict] = None,
) -> pathlib.Path:
    doc = bench_recovery_document(rows, summary, campaign)
    assert_valid_bench_recovery(doc)
    path = pathlib.Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def validate_bench_recovery(doc) -> List[str]:
    """Return a list of schema violations (empty == valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != BENCH_RECOVERY_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_RECOVERY_SCHEMA!r}"
        )
    if not isinstance(doc.get("generated_at"), str):
        problems.append("generated_at missing or not a string")
    if not isinstance(doc.get("campaign"), dict):
        problems.append("campaign missing or not an object")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows missing, not a list, or empty")
    else:
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"rows[{i}] is not an object")
                continue
            for field in _RECOVERY_ROW_FIELDS:
                value = row.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"rows[{i}] field {field!r} not numeric")
            depth = row.get("depth")
            if isinstance(depth, int) and depth < 0:
                problems.append(f"rows[{i}] has negative depth")
            tried = row.get("generations_tried")
            if isinstance(tried, int) and isinstance(depth, int):
                if tried != depth + 1:
                    problems.append(
                        f"rows[{i}] generations_tried != depth + 1"
                    )
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary missing or not an object")
    else:
        for field in _RECOVERY_SUMMARY_FIELDS:
            value = summary.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"summary field {field!r} not numeric")
        if not isinstance(summary.get("digest_identical"), bool):
            problems.append("summary field 'digest_identical' not a bool")
        amp = summary.get("replay_amplification")
        if isinstance(amp, (int, float)) and amp < 1.0:
            problems.append("summary replay_amplification below 1.0")
    return problems


def assert_valid_bench_recovery(doc) -> None:
    problems = validate_bench_recovery(doc)
    if problems:
        raise ObservabilityError(
            "invalid BENCH_recovery document: " + "; ".join(problems[:10])
        )


def load_and_validate_recovery(path: PathLike) -> dict:
    """CI helper: load ``path``, validate as BENCH_recovery, return the document."""
    doc = json.loads(pathlib.Path(path).read_text())
    assert_valid_bench_recovery(doc)
    return doc
