"""Structured spans keyed by simulated time, with wall time alongside.

A :class:`Span` records a named interval on the **simulation clock**
(``start_sim_s`` / ``end_sim_s``) plus the wall-clock cost of the code
that ran inside it (``wall_ms``) — the two questions the paper's
evaluation asks ("how long did the campaign take?" vs "how expensive is
the backend?") answered by one record.

Three span shapes cover every call site:

* ``with tracer.span("pipeline.registration", category="pipeline"):`` —
  scoped spans for synchronous sections; nesting gives parentage.
* ``span = tracer.begin(...); ...; span.end()`` — detached spans for
  lifecycles that cross event-queue hops (a task lease, an upload
  exchange). ``begin`` inherits the ambient parent unless given one.
* ``tracer.record(name, start_sim_s, end_sim_s, ...)`` — pre-computed
  intervals whose endpoints are already known (a network transfer whose
  delivery time the channel just scheduled).

**Context propagation across scheduled events**: the tracer keeps an
active-span stack. ``Simulator.schedule`` captures :meth:`capture` into
the event and re-activates it (:meth:`activate`) around the handler, so
a span opened in one handler is the ambient parent of spans created
when a *later* event fires — the chain from a task request to its upload
ACK survives every hop through the event queue.

Finished spans land in a bounded ring buffer (``capacity``): a
long-running campaign keeps the most recent spans and counts what it
dropped instead of growing without bound (the failure mode of the old
``Simulator`` label trace).

:class:`NullTracer` is the disabled fast path: ``enabled`` is a class
attribute (one lookup to skip instrumentation) and every method is a
no-op returning shared singletons.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..errors import ObservabilityError
from .wallclock import wall_now_s


class Span:
    """One named interval; ``end()`` seals it into the tracer's ring."""

    __slots__ = (
        "name", "category", "span_id", "parent_id",
        "start_sim_s", "end_sim_s", "start_wall_s", "end_wall_s",
        "attrs", "_tracer", "_scoped",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        span_id: int,
        parent_id: Optional[int],
        start_sim_s: float,
        attrs: Dict[str, Any],
    ):
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_sim_s = start_sim_s
        self.end_sim_s: Optional[float] = None
        self.start_wall_s = wall_now_s()
        self.end_wall_s: Optional[float] = None
        self.attrs = attrs
        self._tracer = tracer
        self._scoped = False

    # -- lifecycle ---------------------------------------------------------

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def end(self, **attrs: Any) -> None:
        """Seal the span at the current sim/wall time (idempotent)."""
        if self.end_sim_s is not None:
            return
        if attrs:
            self.attrs.update(attrs)
        self.end_sim_s = self._tracer._clock()
        self.end_wall_s = wall_now_s()
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        self._scoped = True
        self._tracer._push(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self.span_id)
        self.end()

    # -- derived views -----------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_sim_s is not None

    @property
    def sim_duration_s(self) -> float:
        if self.end_sim_s is None:
            raise ObservabilityError(f"span {self.name!r} not finished")
        return self.end_sim_s - self.start_sim_s

    @property
    def wall_ms(self) -> float:
        if self.end_wall_s is None:
            raise ObservabilityError(f"span {self.name!r} not finished")
        return (self.end_wall_s - self.start_wall_s) * 1e3

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end_sim_s:.6f}" if self.end_sim_s is not None else "…"
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"sim=[{self.start_sim_s:.6f}, {end}], id={self.span_id}, "
            f"parent={self.parent_id})"
        )


#: A counter time-series sample: (sim_time_s, metric_name, value).
CounterSample = Tuple[float, str, float]


class Tracer:
    """Span factory + bounded ring of finished spans + counter samples."""

    enabled = True

    def __deepcopy__(self, memo: dict) -> "Tracer":
        return self  # live telemetry handle, shared by snapshots

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = 65536,
    ):
        if capacity < 1:
            raise ObservabilityError("tracer capacity must be >= 1")
        self._clock: Callable[[], float] = clock if clock is not None else lambda: 0.0
        self.capacity = int(capacity)
        self._spans: Deque[Span] = deque(maxlen=self.capacity)
        self._samples: Deque[CounterSample] = deque(maxlen=self.capacity)
        self._stack: List[int] = []
        self._ids = itertools.count(1)
        self.dropped_spans = 0
        self.finished_count = 0

    # -- clock -------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock (the :class:`Simulator` does this)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # -- span creation -----------------------------------------------------

    def span(self, name: str, category: str = "app", **attrs: Any) -> Span:
        """A scoped span: use as a context manager for nesting/parentage."""
        return self._make(name, category, self.current_id(), attrs)

    def begin(
        self,
        name: str,
        category: str = "app",
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """A detached span; the caller ends it explicitly (maybe much
        later, in a different event handler). Inherits the ambient parent
        unless ``parent`` is given."""
        pid = parent if parent is not None else self.current_id()
        return self._make(name, category, pid, attrs)

    def record(
        self,
        name: str,
        start_sim_s: float,
        end_sim_s: float,
        category: str = "app",
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Record an interval with known endpoints (may end in the sim
        future — e.g. a transfer whose delivery is already scheduled)."""
        pid = parent if parent is not None else self.current_id()
        span = Span(self, name, category, next(self._ids), pid, start_sim_s, attrs)
        span.end_sim_s = end_sim_s
        span.end_wall_s = span.start_wall_s
        self._finish(span)
        return span

    def instant(self, name: str, category: str = "app", **attrs: Any) -> Span:
        now = self._clock()
        return self.record(name, now, now, category=category, **attrs)

    def counter(self, name: str, value: float) -> None:
        """Append one sample to the ``name`` time-series (Perfetto "C")."""
        self._samples.append((self._clock(), name, float(value)))

    def _make(
        self, name: str, category: str, parent: Optional[int], attrs: Dict[str, Any]
    ) -> Span:
        return Span(self, name, category, next(self._ids), parent, self._clock(), attrs)

    # -- ambient context ---------------------------------------------------

    def current_id(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def capture(self) -> Optional[int]:
        """Snapshot the ambient context for cross-event propagation."""
        return self.current_id()

    def activate(self, ctx: Optional[int]) -> "_Activation":
        """Re-enter a captured context (no-op for ``ctx=None``)."""
        return _Activation(self, ctx)

    def _push(self, span_id: int) -> None:
        self._stack.append(span_id)

    def _pop(self, span_id: int) -> None:
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        elif span_id in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span_id)

    # -- ring --------------------------------------------------------------

    def _finish(self, span: Span) -> None:
        if len(self._spans) == self.capacity:
            self.dropped_spans += 1
        self._spans.append(span)
        self.finished_count += 1

    def spans(
        self, category: Optional[str] = None, name: Optional[str] = None
    ) -> List[Span]:
        """Finished spans still in the ring, oldest first."""
        out = list(self._spans)
        if category is not None:
            out = [s for s in out if s.category == category]
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def counter_samples(self, name: Optional[str] = None) -> List[CounterSample]:
        out = list(self._samples)
        if name is not None:
            out = [s for s in out if s[1] == name]
        return out

    def clear(self) -> None:
        self._spans.clear()
        self._samples.clear()
        self.dropped_spans = 0
        self.finished_count = 0


# -- disabled fast path --------------------------------------------------------


class _Activation:
    __slots__ = ("_tracer", "_ctx", "_pushed")

    def __init__(self, tracer: Optional[Tracer], ctx: Optional[int]):
        self._tracer = tracer
        self._ctx = ctx
        self._pushed = False

    def __enter__(self) -> "_Activation":
        if self._tracer is not None and self._ctx is not None:
            self._tracer._push(self._ctx)
            self._pushed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._pushed:
            self._tracer._pop(self._ctx)


class NullSpan:
    """Shared no-op span: context manager, ``end``, ``set_attr`` all free."""

    __slots__ = ()
    name = "null"
    category = "null"
    span_id = 0
    parent_id = None
    start_sim_s = 0.0
    end_sim_s = 0.0
    attrs: Dict[str, Any] = {}
    finished = True
    sim_duration_s = 0.0
    wall_ms = 0.0

    def __deepcopy__(self, memo: dict) -> "NullSpan":
        return self

    def set_attr(self, key: str, value: Any) -> "NullSpan":
        return self

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = NullSpan()
_NULL_ACTIVATION = _Activation(None, None)


class NullTracer:
    """Disabled tracer: ``enabled`` is False, every method is a no-op."""

    enabled = False
    capacity = 0
    dropped_spans = 0
    finished_count = 0

    def __deepcopy__(self, memo: dict) -> "NullTracer":
        return self

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def span(self, name: str, category: str = "app", **attrs: Any) -> NullSpan:
        return _NULL_SPAN

    def begin(self, name: str, category: str = "app", parent=None, **attrs) -> NullSpan:
        return _NULL_SPAN

    def record(self, name, start_sim_s, end_sim_s, category="app", parent=None, **attrs):
        return _NULL_SPAN

    def instant(self, name: str, category: str = "app", **attrs: Any) -> NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, value: float) -> None:
        pass

    def current_id(self) -> None:
        return None

    def capture(self) -> None:
        return None

    def activate(self, ctx) -> _Activation:
        return _NULL_ACTIVATION

    def spans(self, category=None, name=None) -> List[Span]:
        return []

    def counter_samples(self, name=None) -> List[CounterSample]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
