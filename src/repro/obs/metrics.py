"""Always-on metrics: counters, gauges, and log-bucketed histograms.

The registry is designed around two constraints:

* **Cheap enough to leave on.** A counter increment is one attribute add;
  a histogram record is one log + one dict add. Instrumented modules
  resolve their metric handles *once* (at construction), so the hot path
  never touches the registry or hashes a metric name.
* **Free when off.** :data:`NULL_REGISTRY` hands out shared no-op
  instruments; the disabled cost of an instrumented call site is a
  single bound-method call on a singleton (and ``registry.enabled`` is a
  plain class attribute for sites that want to skip argument
  construction entirely).

Naming convention (see DESIGN.md "Observability"): every metric is
``repro.<layer>.<name>`` — e.g. ``repro.sim.events.cancelled``,
``repro.pipeline.phase.registration``. Phase histograms record seconds.

Instruments are *process-lifetime telemetry*, not simulated state: a
durability snapshot that deep-copies backend state must keep pointing at
the live instruments, never clone them (a clone would silently fork the
registry). Every instrument therefore implements ``__deepcopy__`` as
identity.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ObservabilityError

Number = Union[int, float]

_NAME_RE = re.compile(r"^[a-z0-9_.]+$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(
            f"metric name {name!r} violates the [a-z0-9_.] convention"
        )
    return name


class Counter:
    """Monotonically increasing value (float increments allowed: MB, etc.)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def __deepcopy__(self, memo: dict) -> "Counter":
        return self  # live telemetry handle, shared by snapshots

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}

    def dump_state(self) -> dict:
        return {"type": "counter", "value": self.value}

    def merge_state(self, state: dict) -> None:
        """Counters merge by summation."""
        self.value += state["value"]


class Gauge:
    """Last-set value with a high-watermark (queue depths, cache sizes)."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0
        self.max_value: Number = 0

    def __deepcopy__(self, memo: dict) -> "Gauge":
        return self  # live telemetry handle, shared by snapshots

    def set(self, v: Number) -> None:
        self.value = v
        if v > self.max_value:
            self.max_value = v

    def inc(self, n: Number = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: Number = 1) -> None:
        self.value -= n

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value, "max": self.max_value}

    def dump_state(self) -> dict:
        return {"type": "gauge", "value": self.value, "max": self.max_value}

    def merge_state(self, state: dict) -> None:
        """Gauges merge last-by-index: the incoming value wins, peaks max.

        The executor merges worker states in campaign-index order, so
        "incoming wins" reproduces exactly the value a serial run would
        have left behind after the same final campaign.
        """
        self.value = state["value"]
        if state["max"] > self.max_value:
            self.max_value = state["max"]


class Histogram:
    """Log-bucketed histogram (sparse; geometric bucket edges).

    Bucket ``k`` (``k >= 0``) holds values in ``(edge(k-1), edge(k)]``
    where ``edge(k) = base * growth**k`` — so bucket 0 is ``(0, base]``.
    Values ``<= 0`` land in a dedicated ``zeros`` bucket, values above
    ``edge(max_buckets - 1)`` clamp into the last (overflow) bucket.
    Edges are resolved exactly (a value equal to ``edge(k)`` is in bucket
    ``k``, never ``k + 1``), which the bucket-edge tests pin down.
    """

    __slots__ = (
        "name", "base", "growth", "max_buckets",
        "count", "total", "zeros", "min", "max", "_counts", "_log_growth",
    )

    def __init__(
        self,
        name: str,
        base: float = 1e-4,
        growth: float = 2.0,
        max_buckets: int = 64,
    ):
        if base <= 0 or growth <= 1.0 or max_buckets < 1:
            raise ObservabilityError(
                f"histogram {name!r}: need base > 0, growth > 1, max_buckets >= 1"
            )
        self.name = name
        self.base = float(base)
        self.growth = float(growth)
        self.max_buckets = int(max_buckets)
        self.count = 0
        self.total = 0.0
        self.zeros = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._counts: Dict[int, int] = {}
        self._log_growth = math.log(self.growth)

    def __deepcopy__(self, memo: dict) -> "Histogram":
        return self  # live telemetry handle, shared by snapshots

    # -- recording ---------------------------------------------------------

    def record(self, v: Number) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        idx = self.bucket_index(v)
        if idx < 0:
            self.zeros += 1
        else:
            self._counts[idx] = self._counts.get(idx, 0) + 1

    def bucket_index(self, v: float) -> int:
        """Bucket of ``v`` (-1 for the zeros bucket). Exact at edges."""
        if v <= 0.0:
            return -1
        # Float log is within one bucket of the truth; fix up exactly.
        idx = int(math.ceil(math.log(v / self.base) / self._log_growth - 1e-9))
        if idx < 0:
            idx = 0
        while idx > 0 and v <= self.bucket_edge(idx - 1):
            idx -= 1
        while v > self.bucket_edge(idx):
            idx += 1
        return min(idx, self.max_buckets - 1)

    def bucket_edge(self, k: int) -> float:
        """Inclusive upper edge of bucket ``k``."""
        return self.base * self.growth ** k

    # -- reading -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Sorted ``(upper_edge, count)`` pairs for occupied buckets."""
        return [
            (self.bucket_edge(k), self._counts[k]) for k in sorted(self._counts)
        ]

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding it.

        Exact observed extremes are used for q=0/q=1; the zeros bucket
        reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min if self.min is not None else 0.0
        if q >= 1.0:
            return self.max if self.max is not None else 0.0
        target = q * self.count
        seen = float(self.zeros)
        if seen >= target:
            return 0.0
        for k in sorted(self._counts):
            seen += self._counts[k]
            if seen >= target:
                return min(self.bucket_edge(k), self.max)
        return self.max if self.max is not None else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "zeros": self.zeros,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "buckets": [
                {"le": edge, "count": n} for edge, n in self.bucket_counts()
            ],
        }

    def dump_state(self) -> dict:
        """Loss-free, JSON-able state (raw bucket indices + config)."""
        return {
            "type": "histogram",
            "base": self.base,
            "growth": self.growth,
            "max_buckets": self.max_buckets,
            "count": self.count,
            "sum": self.total,
            "zeros": self.zeros,
            "min": self.min,
            "max": self.max,
            "counts": {str(k): n for k, n in self._counts.items()},
        }

    def merge_state(self, state: dict) -> None:
        """Histograms merge bucket-wise; configs must agree exactly."""
        if (
            state["base"] != self.base
            or state["growth"] != self.growth
            or state["max_buckets"] != self.max_buckets
        ):
            raise ObservabilityError(
                f"histogram {self.name!r}: cannot merge state with bucket "
                f"config base={state['base']} growth={state['growth']} "
                f"max_buckets={state['max_buckets']} (have base={self.base} "
                f"growth={self.growth} max_buckets={self.max_buckets})"
            )
        self.count += state["count"]
        self.total += state["sum"]
        self.zeros += state["zeros"]
        if state["min"] is not None and (self.min is None or state["min"] < self.min):
            self.min = state["min"]
        if state["max"] is not None and (self.max is None or state["max"] > self.max):
            self.max = state["max"]
        for key, n in state["counts"].items():
            idx = int(key)
            self._counts[idx] = self._counts.get(idx, 0) + n


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Instruments are keyed by name; asking twice returns the same object,
    so modules can resolve handles at construction and share instruments
    across instances (e.g. every :class:`Channel` increments the same
    ``repro.net.dropped`` counter).
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, requested {cls.__name__}"
                )
            return existing
        instrument = cls(_check_name(name), *args)
        self._instruments[name] = instrument
        return instrument

    def __deepcopy__(self, memo: dict) -> "MetricsRegistry":
        return self  # live telemetry handle, shared by snapshots

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self,
        name: str,
        base: float = 1e-4,
        growth: float = 2.0,
        max_buckets: int = 64,
    ) -> Histogram:
        return self._get(name, Histogram, base, growth, max_buckets)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str):
        """The instrument registered under ``name`` (or None)."""
        return self._instruments.get(name)

    def snapshot(self) -> Dict[str, dict]:
        """Flat JSON-able view of every instrument, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def dump(self) -> Dict[str, dict]:
        """Loss-free, JSON-able state of every instrument (for merging).

        Unlike :meth:`snapshot` (a reporting view with derived quantiles),
        the dump carries the raw histogram bucket indices and configs so a
        peer registry can merge it exactly — this is the envelope a
        process-pool worker ships back to the parent.
        """
        return {
            name: self._instruments[name].dump_state()
            for name in sorted(self._instruments)
        }

    _MERGE_CLASSES = None  # filled in after the class definitions below

    def merge(self, other: "Union[MetricsRegistry, Dict[str, dict]]") -> None:
        """Merge another registry (or its :meth:`dump`) into this one.

        Semantics per instrument type: counters sum, gauges take the
        incoming value (last-by-index — callers merge in shard order)
        with peak max, histograms add bucket-wise. Instruments missing
        on either side are created / left untouched; a name registered
        as a different type on the two sides is an error.
        """
        states = other.dump() if hasattr(other, "dump") else other
        for name in sorted(states):
            state = states[name]
            kind = state.get("type")
            cls_and_args = self._MERGE_CLASSES.get(kind)
            if cls_and_args is None:
                raise ObservabilityError(
                    f"cannot merge instrument {name!r} of unknown type {kind!r}"
                )
            cls, extract = cls_and_args
            instrument = self._get(name, cls, *extract(state))
            instrument.merge_state(state)


#: type tag -> (instrument class, state -> constructor args past the name).
MetricsRegistry._MERGE_CLASSES = {
    "counter": (Counter, lambda state: ()),
    "gauge": (Gauge, lambda state: ()),
    "histogram": (
        Histogram,
        lambda state: (state["base"], state["growth"], state["max_buckets"]),
    ),
}


# -- disabled fast path --------------------------------------------------------


class NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def __deepcopy__(self, memo: dict) -> "NullCounter":
        return self

    def inc(self, n: Number = 1) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "counter", "value": 0}


class NullGauge:
    __slots__ = ()
    name = "null"
    value = 0
    max_value = 0

    def __deepcopy__(self, memo: dict) -> "NullGauge":
        return self

    def set(self, v: Number) -> None:
        pass

    def inc(self, n: Number = 1) -> None:
        pass

    def dec(self, n: Number = 1) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": 0, "max": 0}


class NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    zeros = 0
    min = None
    max = None
    mean = 0.0

    def __deepcopy__(self, memo: dict) -> "NullHistogram":
        return self

    def record(self, v: Number) -> None:
        pass

    def bucket_counts(self) -> List[Tuple[float, int]]:
        return []

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram", "count": 0, "sum": 0.0, "mean": 0.0,
            "min": None, "max": None, "zeros": 0, "p50": 0.0, "p95": 0.0,
            "buckets": [],
        }


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Disabled registry: every lookup returns a shared no-op instrument."""

    enabled = False

    def __deepcopy__(self, memo: dict) -> "NullRegistry":
        return self

    def counter(self, name: str) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, *_args, **_kwargs) -> NullHistogram:
        return _NULL_HISTOGRAM

    def names(self) -> List[str]:
        return []

    def get(self, name: str):
        return None

    def snapshot(self) -> Dict[str, dict]:
        return {}

    def dump(self) -> Dict[str, dict]:
        return {}

    def merge(self, other) -> None:
        pass


NULL_REGISTRY = NullRegistry()
