"""The sanctioned wall-clock shim — the only gate to host time.

Determinism contract (DESIGN.md "Deterministic simulation testing"):
simulation behaviour must be a pure function of (config, master seed).
Host wall-clock reads are therefore confined to observability — phase
timing histograms, span wall-duration annotations, report timestamps —
and every such read goes through this module. The determinism lint test
(``tests/test_determinism_lint.py``) AST-walks ``src/`` and fails any
module outside this shim and ``simkit/rng.py`` that imports ``random``
or touches ``time.time`` / ``time.perf_counter`` / ``datetime.now``
directly.

Nothing returned here may ever feed back into simulation state: wall
times are recorded *about* the run, never *into* it.
"""

from __future__ import annotations

import datetime
import time


def wall_now_s() -> float:
    """Monotonic host time in seconds (observability only)."""
    return time.perf_counter()


def cpu_now_s() -> float:
    """Process CPU time in seconds (observability only).

    Unlike :func:`wall_now_s`, this is immune to host contention: N
    processes timesharing one core each still accumulate only their own
    CPU seconds. The parallel executor uses it to account per-worker
    shard work, so ``BENCH_dst.json``'s critical-path speedup measures
    the sharding itself rather than the measuring host's core count.
    """
    return time.process_time()


def utc_now_iso() -> str:
    """Wall-clock UTC timestamp for report/benchmark provenance fields."""
    return datetime.datetime.now(datetime.timezone.utc).isoformat()
