"""Exporters: Chrome-trace/Perfetto JSON and flat metrics JSON.

The trace exporter emits the ``trace_event`` format understood by
``chrome://tracing`` and https://ui.perfetto.dev: one process ("repro
sim"), one thread per span category, ``X`` (complete) events whose
timestamps are **simulated microseconds**, and ``C`` (counter) events for
sampled time-series such as the event-queue depth. Wall-clock cost rides
along as ``args.wall_ms`` on every span.

Zero-width sim intervals (synchronous compute such as a pipeline phase)
are widened to 1 µs so they stay clickable in the viewer; their true
cost is ``args.wall_ms``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from ..errors import ObservabilityError

PathLike = Union[str, pathlib.Path]

METRICS_SCHEMA = "repro.metrics/v1"

_S_TO_US = 1e6


def _json_safe(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def chrome_trace_events(tracer) -> List[dict]:
    """Spans + counter samples as a ``traceEvents`` list."""
    events: List[dict] = []
    categories: Dict[str, int] = {}

    def tid_of(category: str) -> int:
        tid = categories.get(category)
        if tid is None:
            tid = len(categories) + 1
            categories[category] = tid
        return tid

    for span in tracer.spans():
        if span.end_sim_s is None:
            continue
        args = {k: _json_safe(v) for k, v in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.end_wall_s is not None:
            args["wall_ms"] = round((span.end_wall_s - span.start_wall_s) * 1e3, 6)
        dur_us = (span.end_sim_s - span.start_sim_s) * _S_TO_US
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.start_sim_s * _S_TO_US, 3),
                "dur": round(max(dur_us, 1.0), 3),
                "pid": 1,
                "tid": tid_of(span.category),
                "args": args,
            }
        )
    for sim_time, name, value in tracer.counter_samples():
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": round(sim_time * _S_TO_US, 3),
                "pid": 1,
                "args": {name.rsplit(".", 1)[-1]: value},
            }
        )
    # Metadata: name the process and one "thread" per category so the
    # viewer shows repro.<layer> tracks instead of bare tids.
    meta: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro sim (timestamps = simulated time)"},
        }
    ]
    for category, tid in sorted(categories.items(), key=lambda kv: kv[1]):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": category},
            }
        )
    return meta + events


def chrome_trace(tracer, metrics=None) -> dict:
    """Full Chrome-trace document (``{"traceEvents": [...]}`` shape)."""
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated seconds (exported as microseconds)",
            "spans_recorded": tracer.finished_count,
            "spans_dropped": tracer.dropped_spans,
        },
    }
    if metrics is not None:
        doc["otherData"]["metrics"] = len(metrics.names())
    return doc


def write_chrome_trace(tracer, path: PathLike, metrics=None) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, metrics)))
    return path


def metrics_document(registry, extra: Optional[dict] = None) -> dict:
    """Flat metrics JSON: ``{"schema", "metrics": {name: snapshot}}``."""
    doc = {"schema": METRICS_SCHEMA, "metrics": registry.snapshot()}
    if extra:
        doc.update(extra)
    return doc


def write_metrics_json(
    registry, path: PathLike, extra: Optional[dict] = None
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(metrics_document(registry, extra), indent=2))
    return path


def validate_chrome_trace(doc: dict) -> List[str]:
    """Schema check for an exported trace document; returns problems."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "C", "M", "i", "b", "e"):
            problems.append(f"event {i} has unknown phase {ph!r}")
            continue
        if "name" not in event or "pid" not in event:
            problems.append(f"event {i} missing name/pid")
        if ph in ("X", "C") and not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {i} ({ph}) missing numeric ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur <= 0:
                problems.append(f"event {i} (X) needs positive dur, got {dur!r}")
            if not isinstance(event.get("args"), dict):
                problems.append(f"event {i} (X) missing args")
    return problems


def assert_valid_chrome_trace(doc: dict) -> None:
    problems = validate_chrome_trace(doc)
    if problems:
        raise ObservabilityError(
            "invalid chrome trace: " + "; ".join(problems[:10])
        )
