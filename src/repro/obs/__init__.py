"""Observability: sim-time spans, always-on metrics, Chrome-trace export.

One :class:`Telemetry` bundle (a tracer + a metrics registry) threads
through the whole stack — event loop, network, protocol, pipeline, SfM,
map engine. Disabled telemetry is the default everywhere and costs a
single attribute lookup / no-op method call per instrumented site;
enabling it never changes behaviour (no extra events, no RNG draws),
which the tracing-on/off differential test pins byte-for-byte.

Quickstart::

    from repro.obs import Telemetry
    from repro.obs.export import write_chrome_trace, write_metrics_json

    telemetry = Telemetry.enable()
    deployment = Deployment(bench, n_clients=3, telemetry=telemetry)
    report = deployment.run()
    write_chrome_trace(telemetry.tracer, "trace.json")   # -> Perfetto
    write_metrics_json(telemetry.metrics, "metrics.json")

or simply ``python -m repro trace --out obs-out``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .tracing import NULL_TRACER, NullSpan, NullTracer, Span, Tracer


@dataclass(frozen=True)
class Telemetry:
    """The tracer + registry pair every instrumented layer receives."""

    tracer: object = NULL_TRACER
    metrics: object = NULL_REGISTRY

    @property
    def enabled(self) -> bool:
        return bool(self.tracer.enabled or self.metrics.enabled)

    @staticmethod
    def disabled() -> "Telemetry":
        """The shared no-op bundle (the default everywhere)."""
        return NULL_TELEMETRY

    @staticmethod
    def enable(span_capacity: int = 262144) -> "Telemetry":
        """A live bundle: real tracer (bounded ring) + real registry.

        The tracer's clock starts at 0 and is rebound to simulated time
        by the first :class:`~repro.simkit.events.Simulator` built with
        this bundle.
        """
        return Telemetry(
            tracer=Tracer(capacity=span_capacity), metrics=MetricsRegistry()
        )


NULL_TELEMETRY = Telemetry()

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullSpan",
    "NullTracer",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "Span",
    "Telemetry",
    "Tracer",
]
