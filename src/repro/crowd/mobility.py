"""Hotspot-biased participant mobility.

The core premise motivating guided crowdsourcing (Sec. I): "participants
tend to move around public hotspots instead of performing a purely random
movement". Mobility here samples hotspot itineraries weighted by hotspot
popularity and walks between them with A*, producing timed trajectories.
Rarely-weighted hotspots (the library's annex room) are rarely visited —
which is precisely why the baselines under-cover them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..geometry import Vec2
from ..nav.pathfinding import PathPlanner
from ..simkit.rng import RngStream
from ..venue.model import Hotspot, Venue


@dataclass(frozen=True)
class TrajectoryPoint:
    """One timestep of a walk."""

    time_s: float
    position: Vec2
    heading_rad: float
    speed_mps: float


@dataclass(frozen=True)
class Trajectory:
    """A timed walk through the venue."""

    points: Tuple[TrajectoryPoint, ...]

    @property
    def duration_s(self) -> float:
        return self.points[-1].time_s if self.points else 0.0

    @property
    def length_m(self) -> float:
        total = 0.0
        for a, b in zip(self.points, self.points[1:]):
            total += a.position.distance_to(b.position)
        return total


class HotspotMobility:
    """Generates daily-activity walks between weighted hotspots."""

    def __init__(
        self,
        venue: Venue,
        planner: PathPlanner,
        rng: RngStream,
        timestep_s: float = 0.2,
    ):
        if timestep_s <= 0:
            raise SimulationError("timestep must be positive")
        self._venue = venue
        self._planner = planner
        self._rng = rng
        self._timestep = timestep_s
        self._walk_count = 0

    def pick_itinerary(self, n_stops: int, rng: RngStream) -> List[Hotspot]:
        """Weighted hotspot sequence without immediate repeats."""
        hotspots = list(self._venue.hotspots)
        weights = [h.weight for h in hotspots]
        itinerary: List[Hotspot] = []
        previous: Optional[Hotspot] = None
        for _ in range(n_stops):
            choice = rng.weighted_choice(hotspots, weights)
            while previous is not None and choice.label == previous.label:
                choice = rng.weighted_choice(hotspots, weights)
            itinerary.append(choice)
            previous = choice
        return itinerary

    def walk(
        self,
        start: Vec2,
        stops: Sequence[Vec2],
        speed_mps: float,
        dwell_s: float = 2.0,
    ) -> Trajectory:
        """Walk from ``start`` through ``stops``, dwelling at each stop.

        The trajectory is resampled at the mobility timestep with small
        lateral jitter, so video frames do not all come from cell centres.
        """
        self._walk_count += 1
        jitter_rng = self._rng.child(f"walk-{self._walk_count}")
        waypoints: List[Vec2] = []
        current = start
        dwell_marks: List[int] = []
        for stop in stops:
            leg = self._planner.plan(current, stop)
            if leg is None:
                raise SimulationError(f"no path from {current} to {stop}")
            if waypoints:
                leg = leg[1:]
            waypoints.extend(leg)
            dwell_marks.append(len(waypoints) - 1)
            current = stop

        points: List[TrajectoryPoint] = []
        time_s = 0.0
        step_len = speed_mps * self._timestep
        for i, waypoint in enumerate(waypoints):
            if points:
                prev = points[-1].position
                distance = prev.distance_to(waypoint)
                heading = (waypoint - prev).angle() if distance > 1e-9 else points[-1].heading_rad
                n_steps = max(1, int(round(distance / step_len)))
                for k in range(1, n_steps + 1):
                    t = k / n_steps
                    pos = prev.lerp(waypoint, t)
                    jittered = pos + Vec2(
                        jitter_rng.normal(0.0, 0.03), jitter_rng.normal(0.0, 0.03)
                    )
                    if not self._venue.is_traversable(jittered):
                        jittered = pos
                    time_s += self._timestep
                    points.append(
                        TrajectoryPoint(time_s, jittered, heading, speed_mps)
                    )
            else:
                points.append(TrajectoryPoint(0.0, waypoint, 0.0, 0.0))
            if i in dwell_marks and dwell_s > 0:
                # Dwell: look around a little, standing still.
                base_heading = points[-1].heading_rad
                n_dwell = max(1, int(round(dwell_s / self._timestep)))
                for k in range(n_dwell):
                    time_s += self._timestep
                    points.append(
                        TrajectoryPoint(
                            time_s,
                            points[-1].position,
                            base_heading + jitter_rng.normal(0.0, 0.5),
                            0.0,
                        )
                    )
        return Trajectory(points=tuple(points))
