"""Guided participatory VCS — the full SnapTask campaign loop (Sec. III).

The user scenario, end to end:

1. bootstrap: "we shot a 2-minutes video near the entrance, and collected
   39 photos for geo-calibration. From the video we extracted 46 frames"
   -> initial model;
2. the backend generates a task; a participant navigates to it (AR
   navigation, <= 1 m positioning error) and performs the 360° capture
   (one photo every 8 degrees);
3. the batch is processed by Algorithm 1, which yields the next task —
   photo collection or featureless-surface annotation;
4. "the loop continues until the system determines that the area is fully
   covered and no more tasks are sent to mobile clients."
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..annotation.tool import AnnotationCampaign, AnnotationTaskResult
from ..camera.capture import CaptureSimulator
from ..camera.photo import Photo
from ..core.pipeline import BatchOutcome, SnapTaskPipeline
from ..core.tasks import Task, TaskKind
from ..errors import SimulationError
from ..geometry import Vec2
from ..nav.navigation import Navigator
from ..simkit.rng import RngStream
from ..venue.model import Venue
from .participants import Participant

#: Steady guided rotation produces very little motion blur.
GUIDED_BASE_BLUR = 0.03

#: Geo-calibration photo count at bootstrap (Sec. V-A).
GEO_CALIBRATION_PHOTOS = 39

#: Video frames extracted from the bootstrap video (Sec. V-A).
BOOTSTRAP_VIDEO_FRAMES = 46


@dataclass(frozen=True)
class CompletedTask:
    """One executed task with its pipeline outcome."""

    task: Task
    participant: str
    arrived_at: Optional[Vec2]
    n_photos: int
    outcome: BatchOutcome
    annotation: Optional[AnnotationTaskResult] = None
    next_tasks: Tuple[Task, ...] = ()


@dataclass(frozen=True)
class GuidedRunResult:
    """A whole guided campaign."""

    bootstrap_outcome: BatchOutcome
    completed: Tuple[CompletedTask, ...]
    venue_covered: bool

    @property
    def photo_tasks(self) -> List[CompletedTask]:
        return [c for c in self.completed if c.task.kind == TaskKind.PHOTO_COLLECTION]

    @property
    def annotation_tasks(self) -> List[CompletedTask]:
        return [c for c in self.completed if c.task.kind == TaskKind.ANNOTATION]

    @property
    def n_collection_photos(self) -> int:
        """Photos taken for reconstruction by photo tasks (excl. bootstrap)."""
        return sum(c.n_photos for c in self.photo_tasks)


class GuidedCampaign:
    """Drives the guided loop against a :class:`SnapTaskPipeline`."""

    def __init__(
        self,
        venue: Venue,
        capture: CaptureSimulator,
        pipeline: SnapTaskPipeline,
        navigator: Navigator,
        annotation: AnnotationCampaign,
        participants: Sequence[Participant],
        rng: RngStream,
    ):
        if not participants:
            raise SimulationError("guided campaign needs participants")
        self._venue = venue
        self._capture = capture
        self._pipeline = pipeline
        self._navigator = navigator
        self._annotation = annotation
        self._participants = list(participants)
        self._rng = rng
        self._clock_s = 0.0

    # -- bootstrap -----------------------------------------------------------

    def bootstrap(self) -> BatchOutcome:
        """Create the initial model from entrance video + geo-calibration."""
        photos = self.bootstrap_photos()
        return self._pipeline.process_batch(photos)

    def bootstrap_photos(self) -> List[Photo]:
        participant = self._participants[0]
        entrance = self._venue.entrance
        rng = self._rng.child("bootstrap")
        photos: List[Photo] = []

        # Video walk: a slow arc near the entrance, 46 extracted frames.
        for i in range(BOOTSTRAP_VIDEO_FRAMES):
            angle = 2.0 * math.pi * i / BOOTSTRAP_VIDEO_FRAMES
            offset = Vec2.from_angle(angle, 0.5 + 0.3 * rng.uniform())
            position = entrance + offset
            if not self._venue.is_traversable(position):
                position = entrance
            pose = self._sweep_pose(position, angle + rng.normal(0.0, 0.2))
            photos.append(
                self._capture.take_photo(
                    pose,
                    participant.device,
                    blur=participant.blur_for(0.08, rng.child(f"vframe-{i}")),
                    timestamp_s=self._tick(0.5),
                    source="bootstrap-video",
                )
            )
        # Geo-calibration ring: 39 stills around the entrance.
        for i in range(GEO_CALIBRATION_PHOTOS):
            yaw = 2.0 * math.pi * i / GEO_CALIBRATION_PHOTOS
            photos.append(
                self._capture.take_photo(
                    self._sweep_pose(entrance, yaw),
                    participant.device,
                    blur=participant.blur_for(GUIDED_BASE_BLUR, rng.child(f"geo-{i}")),
                    timestamp_s=self._tick(1.0),
                    source="geo-calibration",
                )
            )
        return photos

    # -- campaign loop ------------------------------------------------------------

    def run(self, max_tasks: int = 60) -> GuidedRunResult:
        """Execute the guided loop until coverage or the task budget ends."""
        bootstrap_outcome = self.bootstrap()
        completed: List[CompletedTask] = []
        pending = list(bootstrap_outcome.new_tasks)
        position = self._venue.entrance
        task_round = 0

        while pending and task_round < max_tasks and not self._pipeline.venue_covered:
            task = pending.pop(0)
            participant = self._participants[task_round % len(self._participants)]
            task_round += 1

            if task.kind == TaskKind.PHOTO_COLLECTION:
                record, position = self._execute_photo_task(task, participant, position)
            else:
                record = self._execute_annotation_task(task, participant)
            completed.append(record)
            pending.extend(record.next_tasks)

        return GuidedRunResult(
            bootstrap_outcome=bootstrap_outcome,
            completed=tuple(completed),
            venue_covered=self._pipeline.venue_covered,
        )

    # -- task execution ------------------------------------------------------------

    def _execute_photo_task(
        self, task: Task, participant: Participant, position: Vec2
    ) -> Tuple[CompletedTask, Vec2]:
        nav = self._navigator.navigate(position, task.location)
        self._clock_s += nav.walk_time_s
        step_deg = self._pipeline.config.tasks.capture_step_deg
        rng = self._rng.child(f"task-{task.task_id}")
        photos = [
            photo
            for photo in self._capture.sweep(
                nav.arrived,
                participant.device,
                step_deg,
                blur=participant.blur_for(GUIDED_BASE_BLUR, rng),
                start_timestamp_s=self._tick(1.0),
                source="guided",
                start_deg=rng.uniform(0.0, step_deg),
            )
        ]
        self._clock_s += len(photos)
        # Photos stream to the backend during capture; Algorithm 1 runs on
        # each uploaded sub-batch (Sec. III).
        chunk = max(1, self._pipeline.config.tasks.upload_subbatch)
        outcome = None
        next_tasks: List[Task] = []
        for start in range(0, len(photos), chunk):
            outcome = self._pipeline.process_batch(photos[start : start + chunk], task)
            next_tasks.extend(outcome.new_tasks)
        assert outcome is not None
        record = CompletedTask(
            task=task,
            participant=participant.name,
            arrived_at=nav.arrived,
            n_photos=len(photos),
            outcome=outcome,
            next_tasks=tuple(next_tasks),
        )
        return record, nav.arrived

    def _execute_annotation_task(
        self, task: Task, participant: Participant
    ) -> CompletedTask:
        result = self._annotation.run(
            task, self._pipeline, participant.device, timestamp_s=self._tick(30.0)
        )
        if result.outcome is None:
            raise SimulationError("annotation campaign did not update the pipeline")
        return CompletedTask(
            task=task,
            participant=participant.name,
            arrived_at=task.location,
            n_photos=len(result.photos),
            outcome=result.outcome,
            annotation=result,
            next_tasks=tuple(result.outcome.new_tasks),
        )

    # -- helpers -------------------------------------------------------------------

    def _tick(self, seconds: float) -> float:
        self._clock_s += seconds
        return self._clock_s

    @staticmethod
    def _sweep_pose(position: Vec2, yaw: float):
        from ..camera.pose import CameraPose

        return CameraPose(position, yaw)
