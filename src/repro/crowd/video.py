"""Video capture along a walk + sharpest-frame extraction.

Opportunistic participants carry the phone "in front of them - mocking a
smart wearable device - that was taking a video of the surroundings"
(Sec. V-B1). Frames of a moving camera are motion-blurred in proportion to
walking speed; the dataset preparation then uses "a sliding window frame
extraction approach, where we select only a sharpest frame in that window,
to prevent blurry samples from being added to the dataset".

Scoring every raw frame with a full capture would be wasteful, so frame
specs (pose + blur + rendered patch) are generated first and only window
winners become full photos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..camera.blur import render_patch, variance_of_laplacian
from ..camera.capture import CaptureSimulator
from ..camera.intrinsics import Intrinsics
from ..camera.photo import Photo
from ..camera.pose import CameraPose
from ..errors import SimulationError
from ..simkit.rng import RngStream
from .mobility import Trajectory
from .participants import Participant

#: Motion blur contributed per m/s of walking speed.
SPEED_BLUR_GAIN = 0.22

#: Blur floor for hand-held video while moving.
VIDEO_BASE_BLUR = 0.08


@dataclass(frozen=True)
class FrameSpec:
    """A candidate video frame before full capture."""

    time_s: float
    pose: CameraPose
    blur: float
    sharpness: float


def frame_specs_for_walk(
    trajectory: Trajectory,
    participant: Participant,
    rng: RngStream,
    fps: float = 10.0,
    patch_size: int = 24,
) -> List[FrameSpec]:
    """Sample video frames along a trajectory at ``fps``."""
    if fps <= 0:
        raise SimulationError("fps must be positive")
    specs: List[FrameSpec] = []
    next_frame_time = 0.0
    frame_idx = 0
    for point in trajectory.points:
        if point.time_s + 1e-9 < next_frame_time:
            continue
        next_frame_time = point.time_s + 1.0 / fps
        frame_rng = rng.child(f"frame-{frame_idx}")
        base_blur = VIDEO_BASE_BLUR + SPEED_BLUR_GAIN * point.speed_mps
        blur = participant.blur_for(base_blur, frame_rng)
        patch = render_patch(blur, frame_rng.child("patch"), patch_size)
        specs.append(
            FrameSpec(
                time_s=point.time_s,
                pose=CameraPose(point.position, point.heading_rad),
                blur=blur,
                sharpness=variance_of_laplacian(patch),
            )
        )
        frame_idx += 1
    return specs


def extract_sharpest_frames(
    specs: Sequence[FrameSpec], window: int
) -> List[FrameSpec]:
    """Sliding-window sharpest-frame selection (window size 30 in Sec. V-B1)."""
    if window < 1:
        raise SimulationError("window must be >= 1")
    winners: List[FrameSpec] = []
    for start in range(0, len(specs), window):
        chunk = specs[start : start + window]
        if chunk:
            winners.append(max(chunk, key=lambda s: s.sharpness))
    return winners


def capture_frames(
    capture: CaptureSimulator,
    specs: Sequence[FrameSpec],
    intrinsics: Intrinsics,
    source: str = "opportunistic",
) -> List[Photo]:
    """Turn selected frame specs into full photos."""
    return [
        capture.take_photo(
            spec.pose,
            intrinsics,
            blur=spec.blur,
            timestamp_s=spec.time_s,
            source=source,
        )
        for spec in specs
    ]
