"""Crowd behaviour: participants, mobility, the three collection modes."""

from .guided import (
    BOOTSTRAP_VIDEO_FRAMES,
    GEO_CALIBRATION_PHOTOS,
    CompletedTask,
    GuidedCampaign,
    GuidedRunResult,
)
from .mobility import HotspotMobility, Trajectory, TrajectoryPoint
from .opportunistic import OpportunisticCollector, OpportunisticDataset
from .participants import (
    Participant,
    guided_participants,
    make_participants,
    unreliable_participants,
)
from .selection import (
    BudgetGreedyPolicy,
    IncentiveLedger,
    NearestIdlePolicy,
    ParticipantSelector,
    RoundRobinPolicy,
    SelectionReport,
    replay_task_locations,
)
from .participatory import ParticipatoryDataset, UnguidedCollector
from .video import (
    FrameSpec,
    capture_frames,
    extract_sharpest_frames,
    frame_specs_for_walk,
)

__all__ = [
    "BOOTSTRAP_VIDEO_FRAMES",
    "CompletedTask",
    "FrameSpec",
    "GEO_CALIBRATION_PHOTOS",
    "GuidedCampaign",
    "GuidedRunResult",
    "HotspotMobility",
    "OpportunisticCollector",
    "OpportunisticDataset",
    "BudgetGreedyPolicy",
    "IncentiveLedger",
    "NearestIdlePolicy",
    "Participant",
    "ParticipantSelector",
    "RoundRobinPolicy",
    "SelectionReport",
    "replay_task_locations",
    "ParticipatoryDataset",
    "Trajectory",
    "TrajectoryPoint",
    "UnguidedCollector",
    "capture_frames",
    "extract_sharpest_frames",
    "frame_specs_for_walk",
    "guided_participants",
    "make_participants",
    "unreliable_participants",
]
