"""Opportunistic VCS data collection (Sec. V-B1).

"We have asked 10 participants to carry out their daily activities in the
library, e.g. going to a meeting room, finding a book, accessing a local
workstation, and collected visual data while they were walking through the
library. We collected 20 videos along the participants' walking paths."

Each simulated video is a hotspot-to-hotspot walk; frames are extracted
with the sliding-window sharpest-frame rule and turned into photos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..camera.capture import CaptureSimulator
from ..camera.photo import Photo
from ..simkit.rng import RngStream
from ..venue.model import Venue
from .mobility import HotspotMobility, Trajectory
from .participants import Participant
from .video import capture_frames, extract_sharpest_frames, frame_specs_for_walk


@dataclass(frozen=True)
class OpportunisticDataset:
    """One opportunistic collection campaign."""

    photos: Tuple[Photo, ...]
    n_videos: int
    total_video_s: float
    n_raw_frames: int

    @property
    def n_photos(self) -> int:
        return len(self.photos)


class OpportunisticCollector:
    """Simulates the opportunistic campaign end to end."""

    def __init__(
        self,
        venue: Venue,
        capture: CaptureSimulator,
        mobility: HotspotMobility,
        rng: RngStream,
        fps: float = 5.0,
        window: int = 6,
    ):
        """``fps``/``window`` default to 5 Hz sampling with 6-sample
        windows — the same 1.2 s sharpest-frame windows as the paper's
        "window size of 30" at a 25 fps phone video."""
        self._venue = venue
        self._capture = capture
        self._mobility = mobility
        self._rng = rng
        self._fps = fps
        self._window = window

    def collect(
        self,
        participants: Sequence[Participant],
        n_videos: int,
        stops_per_video: Tuple[int, int] = (2, 3),
        walk_speed_range: Tuple[float, float] = (0.8, 1.3),
    ) -> OpportunisticDataset:
        """Record ``n_videos`` daily-activity walks and extract frames."""
        photos: List[Photo] = []
        total_video_s = 0.0
        n_raw = 0
        for video_idx in range(n_videos):
            participant = participants[video_idx % len(participants)]
            video_rng = self._rng.child(f"video-{video_idx}")
            itinerary = self._mobility.pick_itinerary(
                video_rng.integers(stops_per_video[0], stops_per_video[1] + 1),
                video_rng.child("itinerary"),
            )
            start = self._venue.entrance if video_idx % 2 == 0 else itinerary[0].position
            speed = video_rng.uniform(*walk_speed_range)
            trajectory = self._mobility.walk(
                start, [h.position for h in itinerary], speed_mps=speed, dwell_s=6.0
            )
            total_video_s += trajectory.duration_s

            specs = frame_specs_for_walk(
                trajectory, participant, video_rng.child("frames"), fps=self._fps
            )
            n_raw += len(specs)
            winners = extract_sharpest_frames(specs, self._window)
            photos.extend(
                capture_frames(self._capture, winners, participant.device, "opportunistic")
            )
        return OpportunisticDataset(
            photos=tuple(photos),
            n_videos=n_videos,
            total_video_s=total_video_s,
            n_raw_frames=n_raw,
        )
