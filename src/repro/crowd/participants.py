"""Participant profiles.

The field test used 10 participants with specific devices (Sec. V-B):
Galaxy S7 / iPhone 7 for the opportunistic and unguided datasets, Galaxy
S7 / Nexus 5 for the guided one. A profile bundles the participant's
device with a hand-steadiness parameter that scales their motion blur.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..camera.intrinsics import GALAXY_S7, IPHONE_7, NEXUS_5, Intrinsics
from ..simkit.rng import RngStream


@dataclass(frozen=True)
class Participant:
    """One crowdsourcing participant."""

    name: str
    device: Intrinsics
    steadiness: float  # in (0, 1]; 1 = perfectly steady hands

    def blur_for(self, base_blur: float, rng: RngStream) -> float:
        """Actual motion blur of one capture given situational base blur."""
        shake = max(0.0, rng.normal(0.0, 0.05)) * (1.5 - self.steadiness)
        return float(min(1.0, max(0.0, base_blur / self.steadiness + shake)))


def make_participants(
    count: int,
    rng: RngStream,
    devices: Sequence[Intrinsics] = (GALAXY_S7, IPHONE_7),
) -> List[Participant]:
    """Build a cohort of participants with varied steadiness."""
    participants = []
    for i in range(count):
        participants.append(
            Participant(
                name=f"participant-{i}",
                device=devices[i % len(devices)],
                steadiness=rng.child(f"steadiness-{i}").uniform(0.7, 1.0),
            )
        )
    return participants


def guided_participants(count: int, rng: RngStream) -> List[Participant]:
    """The guided cohort used Galaxy S7 + Nexus 5 (Sec. V-B)."""
    return make_participants(count, rng, devices=(GALAXY_S7, NEXUS_5))
