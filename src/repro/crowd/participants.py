"""Participant profiles.

The field test used 10 participants with specific devices (Sec. V-B):
Galaxy S7 / iPhone 7 for the opportunistic and unguided datasets, Galaxy
S7 / Nexus 5 for the guided one. A profile bundles the participant's
device with a hand-steadiness parameter that scales their motion blur.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from ..camera.intrinsics import GALAXY_S7, IPHONE_7, NEXUS_5, Intrinsics
from ..simkit.rng import RngStream


@dataclass(frozen=True)
class Participant:
    """One crowdsourcing participant.

    ``dropout_hazard`` is the per-task probability that the participant
    abandons an assigned task without a word — paid-crowdsourcing field
    studies (arXiv:1901.09264) show abandonment is the norm, not the
    exception. The default of 0 models the paper's supervised cohort;
    the deployment layer's task leases absorb any non-zero hazard.
    """

    name: str
    device: Intrinsics
    steadiness: float  # in (0, 1]; 1 = perfectly steady hands
    dropout_hazard: float = 0.0  # per-task abandonment probability in [0, 1)

    def blur_for(self, base_blur: float, rng: RngStream) -> float:
        """Actual motion blur of one capture given situational base blur."""
        shake = max(0.0, rng.normal(0.0, 0.05)) * (1.5 - self.steadiness)
        return float(min(1.0, max(0.0, base_blur / self.steadiness + shake)))


def make_participants(
    count: int,
    rng: RngStream,
    devices: Sequence[Intrinsics] = (GALAXY_S7, IPHONE_7),
) -> List[Participant]:
    """Build a cohort of participants with varied steadiness."""
    participants = []
    for i in range(count):
        participants.append(
            Participant(
                name=f"participant-{i}",
                device=devices[i % len(devices)],
                steadiness=rng.child(f"steadiness-{i}").uniform(0.7, 1.0),
            )
        )
    return participants


def guided_participants(count: int, rng: RngStream) -> List[Participant]:
    """The guided cohort used Galaxy S7 + Nexus 5 (Sec. V-B)."""
    return make_participants(count, rng, devices=(GALAXY_S7, NEXUS_5))


def unreliable_participants(
    count: int,
    rng: RngStream,
    dropout_hazard: float = 0.15,
    devices: Sequence[Intrinsics] = (GALAXY_S7, NEXUS_5),
) -> List[Participant]:
    """A cohort of real-world crowd workers who sometimes walk away.

    Same device/steadiness mix as the guided cohort but with a per-task
    abandonment probability, for fault-tolerance experiments.
    """
    if not 0.0 <= dropout_hazard < 1.0:
        raise ValueError(f"dropout_hazard must be in [0, 1), got {dropout_hazard}")
    return [
        replace(p, dropout_hazard=dropout_hazard)
        for p in make_participants(count, rng, devices=devices)
    ]
