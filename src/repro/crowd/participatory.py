"""Unguided participatory VCS data collection (Sec. V-B2).

"We asked each of the 10 participants to capture 100 photos inside a
library. None of the participants were experts in computer vision and were
taking arbitrary photos in the venue. After obtaining the photos, we
filtered out blurry ones with variation of the Laplacian."

Participants cluster around hotspots (weighted), stand at a jittered spot
and shoot in an arbitrary direction with hand-held blur — no coverage
intent whatsoever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..camera.capture import CaptureSimulator
from ..camera.photo import Photo
from ..camera.pose import CameraPose
from ..core.quality import filter_blurry
from ..geometry import Vec2
from ..simkit.rng import RngStream
from ..venue.model import Venue
from .participants import Participant

#: Std-dev of participant position around their chosen hotspot, metres.
HOTSPOT_SPREAD_M = 1.7

#: Base hand-held blur of casual still photos.
STILL_BASE_BLUR = 0.05

#: Fraction of clumsy shots with heavy motion blur (later filtered out).
CLUMSY_RATE = 0.12


@dataclass(frozen=True)
class ParticipatoryDataset:
    """One unguided participatory campaign."""

    photos: Tuple[Photo, ...]  # after blur filtering
    n_taken: int

    @property
    def n_photos(self) -> int:
        return len(self.photos)

    @property
    def n_filtered_out(self) -> int:
        return self.n_taken - len(self.photos)


class UnguidedCollector:
    """Simulates arbitrary photo-taking around hotspots."""

    def __init__(
        self,
        venue: Venue,
        capture: CaptureSimulator,
        rng: RngStream,
        blur_filter_threshold: float,
    ):
        self._venue = venue
        self._capture = capture
        self._rng = rng
        self._threshold = blur_filter_threshold

    def collect(
        self,
        participants: Sequence[Participant],
        photos_per_participant: int,
    ) -> ParticipatoryDataset:
        """Everyone takes their quota of arbitrary photos; filter blur."""
        photos: List[Photo] = []
        hotspots = list(self._venue.hotspots)
        weights = [h.weight for h in hotspots]
        taken = 0
        for p_idx, participant in enumerate(participants):
            p_rng = self._rng.child(f"participant-{p_idx}")
            # "people tend to move around particular places": each person
            # shoots around a few personal favourite hotspots only.
            favourites = []
            fav_rng = p_rng.child("favourites")
            for _ in range(3):
                favourites.append(fav_rng.weighted_choice(hotspots, weights))
            fav_weights = [h.weight for h in favourites]
            for shot in range(photos_per_participant):
                shot_rng = p_rng.child(f"shot-{shot}")
                position = self._sample_position(favourites, fav_weights, shot_rng)
                yaw = shot_rng.uniform(-math.pi, math.pi)
                base = STILL_BASE_BLUR
                if shot_rng.chance(CLUMSY_RATE):
                    base = shot_rng.uniform(0.45, 0.9)
                blur = participant.blur_for(base, shot_rng.child("blur"))
                photos.append(
                    self._capture.take_photo(
                        CameraPose(position, yaw),
                        participant.device,
                        blur=blur,
                        timestamp_s=float(taken),
                        source="participatory",
                    )
                )
                taken += 1
        kept = filter_blurry(photos, self._threshold)
        return ParticipatoryDataset(photos=tuple(kept), n_taken=taken)

    def _sample_position(self, hotspots, weights, rng: RngStream) -> Vec2:
        """Gaussian around a weighted hotspot, re-drawn until walkable."""
        for _ in range(60):
            hotspot = rng.weighted_choice(hotspots, weights)
            candidate = hotspot.position + Vec2(
                rng.normal(0.0, HOTSPOT_SPREAD_M), rng.normal(0.0, HOTSPOT_SPREAD_M)
            )
            if self._venue.is_traversable(candidate):
                return candidate
        return self._venue.nearest_traversable(hotspots[0].position)
